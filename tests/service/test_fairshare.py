"""Fair-share scheduling: stride-queue unit tests plus end-to-end
ordering through a running server."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.experiment import ExperimentConfig
from repro.service.fairshare import FairShareQueue
from repro.service.client import ServiceClient
from repro.service.jobs import JobRecord, JobSpec
from repro.service.server import SweepService, serve_in_thread


def make_job(job_id: str, *, client: str, priority: str = "normal",
             n_configs: int = 1) -> JobRecord:
    configs = tuple(ExperimentConfig(app="ffvc", n_ranks=1, n_threads=t)
                    for t in range(1, n_configs + 1))
    return JobRecord(JobSpec(job_id=job_id, name=job_id, engine="event",
                             configs=configs, priority=priority,
                             client=client))


def grant_order(jobs: list[JobRecord], *, slots: int = 1) -> list[str]:
    """Drive a FairShareQueue with a held slot, enqueue ``jobs`` in
    order, then drain — returning the job ids in grant order."""
    order: list[str] = []

    async def run() -> None:
        queue = FairShareQueue(slots)
        await queue.acquire(make_job("hold", client="hold"))

        async def contend(job: JobRecord) -> None:
            await queue.acquire(job)
            order.append(job.spec.job_id)
            queue.release()

        tasks = [asyncio.ensure_future(contend(j)) for j in jobs]
        for _ in range(3):          # let every waiter enqueue
            await asyncio.sleep(0)
        queue.release()             # free the held slot; drain
        await asyncio.gather(*tasks)

    asyncio.run(run())
    return order


def test_light_client_interleaves_with_heavy_backlog():
    heavy = [make_job(f"a{i}", client="heavy", n_configs=4)
             for i in range(10)]
    light = [make_job(f"b{i}", client="light", n_configs=4)
             for i in range(2)]
    order = grant_order(heavy + light)
    # stride scheduling: both light jobs land in the first four grants
    # instead of queueing behind the 10-job backlog
    assert order[:4] == ["a0", "b0", "a1", "b1"]
    assert sorted(order) == sorted(j.spec.job_id
                                   for j in heavy + light)


def test_high_priority_wins_ties_without_starving_normal():
    normals = [make_job(f"n{i}", client="steady") for i in range(5)]
    urgent = make_job("u0", client="vip", priority="high")
    order = grant_order(normals + [urgent])
    assert order[0] == "u0"         # weight breaks the start-time tie
    assert sorted(order[1:]) == ["n0", "n1", "n2", "n3", "n4"]


def test_low_priority_accrues_virtual_time_faster():
    cheap = [make_job(f"l{i}", client="batch", priority="low",
                      n_configs=2) for i in range(4)]
    normal = [make_job(f"n{i}", client="user", n_configs=2)
              for i in range(4)]
    order = grant_order(cheap + normal)
    # low weight 1 vs normal weight 2: the normal client gets two
    # grants for every one of the low client's after the opening tie
    assert order.index("n3") < order.index("l3")


def test_cancelled_waiter_leaves_no_entry_and_no_slot():
    async def run() -> None:
        queue = FairShareQueue(1)
        await queue.acquire(make_job("hold", client="x"))
        victim = make_job("victim", client="y")
        task = asyncio.ensure_future(queue.acquire(victim))
        await asyncio.sleep(0)
        assert queue.depth == 1
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        assert queue.depth == 0
        assert queue.in_service == 1    # only the held slot
        queue.release()
        assert queue.in_service == 0

    asyncio.run(run())


def test_drop_unblocks_the_waiting_task():
    async def run() -> None:
        queue = FairShareQueue(1)
        await queue.acquire(make_job("hold", client="x"))
        victim = make_job("victim", client="y")
        task = asyncio.ensure_future(queue.acquire(victim))
        await asyncio.sleep(0)
        assert queue.drop(victim) is True
        assert queue.drop(victim) is False   # idempotent
        with pytest.raises(asyncio.CancelledError):
            await task
        assert queue.depth == 0

    asyncio.run(run())


def test_rejects_zero_slots():
    with pytest.raises(ValueError):
        FairShareQueue(0)


def test_stats_snapshot():
    async def run() -> None:
        queue = FairShareQueue(2)
        await queue.acquire(make_job("j1", client="a", n_configs=4))
        stats = queue.stats()
        assert stats["slots"] == 2
        assert stats["in_service"] == 1
        assert stats["depth"] == 0
        assert stats["granted"] == 1
        assert stats["clients"] == {"a": 2.0}   # 4 configs / weight 2

    asyncio.run(run())


# ----------------------------------------------------------------------
# end to end: ordering through a live server
# ----------------------------------------------------------------------
@pytest.fixture
def contended_service(cache, socket_path):
    """max_jobs=1 with blocked executions: submissions pile into the
    fair-share queue until the test releases them."""
    release = threading.Event()

    def blocked(config):
        from repro.core.parallel import simulate_config

        release.wait(30.0)
        return simulate_config(config)

    svc = SweepService(socket_path, cache=cache, workers=1, max_jobs=1,
                       simulate_fn=blocked)
    thread = serve_in_thread(svc)
    yield release
    release.set()
    thread.stop()


def configs_for(index: int) -> list[ExperimentConfig]:
    return [ExperimentConfig(app="ffvc", n_ranks=1,
                             n_threads=index + 1)]


def test_light_client_not_starved_behind_heavy_backlog(
        contended_service, socket_path):
    release = contended_service
    heavy = ServiceClient(socket_path, timeout_s=60.0,
                          client_name="heavy")
    light = ServiceClient(socket_path, timeout_s=60.0,
                          client_name="light")
    with heavy, light:
        heavy_jobs = [heavy.submit(f"heavy-{i}", configs_for(i))
                      for i in range(10)]
        light_job = light.submit("light-0", configs_for(10))
        release.set()
        done = {j["job_id"]: light.wait(j["job_id"])
                for j in heavy_jobs + [light_job]}
        assert all(j["state"] == "completed" for j in done.values())
        starts = {jid: j["started_at"] for jid, j in done.items()}
        light_start = starts.pop(light_job["job_id"])
        heavy_starts = sorted(starts.values())
        # the light job was submitted 11th yet runs second — only the
        # already-running heavy job precedes it
        assert light_start < heavy_starts[1]
        # 10:1 volume, but aggregate wait stays within 2x: the light
        # client never waits for more than a couple of heavy grants
        waits = {jid: j["started_at"] - j["submitted_at"]
                 for jid, j in done.items()}
        light_wait = waits.pop(light_job["job_id"])
        mean_heavy_wait = sum(waits.values()) / len(waits)
        assert light_wait <= 2 * mean_heavy_wait


def test_high_priority_overtakes_queued_normal_jobs(
        contended_service, socket_path):
    release = contended_service
    steady = ServiceClient(socket_path, timeout_s=60.0,
                           client_name="steady")
    vip = ServiceClient(socket_path, timeout_s=60.0, client_name="vip")
    with steady, vip:
        queued = [steady.submit(f"steady-{i}", configs_for(i))
                  for i in range(4)]
        urgent = vip.submit("urgent", configs_for(4), priority="high")
        release.set()
        done = {j["job_id"]: vip.wait(j["job_id"])
                for j in queued + [urgent]}
        assert all(j["state"] == "completed" for j in done.values())
        starts = {jid: j["started_at"] for jid, j in done.items()}
        urgent_start = starts.pop(urgent["job_id"])
        queued_starts = sorted(starts.values())
        # the high-priority job overtakes every *queued* normal job
        # (the one already running keeps its slot) ...
        assert urgent_start < queued_starts[1]
        # ... and no normal job starves: all completed above
