"""Wire-protocol unit tests: framing, validation, round-trips."""

import json

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_config
from repro.errors import ProtocolError
from repro.service import protocol


def test_frame_round_trip():
    frame = {"v": 1, "op": "ping", "extra": [1, 2.5, "x"]}
    assert protocol.decode_frame(protocol.encode_frame(frame)) == frame


def test_encode_is_one_line():
    data = protocol.encode_frame({"op": "ping", "v": 1})
    assert data.endswith(b"\n")
    assert data.count(b"\n") == 1


@pytest.mark.parametrize("line", [b"", b"   \n", b"not json\n",
                                  b"[1,2,3]\n", b'"str"\n'])
def test_decode_rejects_garbage(line):
    with pytest.raises(ProtocolError):
        protocol.decode_frame(line)


def test_decode_rejects_oversized():
    blob = b"x" * (protocol.MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.decode_frame(blob)


def test_check_request_validates_version_and_op():
    assert protocol.check_request({"v": 1, "op": "submit"}) == "submit"
    with pytest.raises(ProtocolError, match="version"):
        protocol.check_request({"v": 99, "op": "submit"})
    with pytest.raises(ProtocolError, match="unknown op"):
        protocol.check_request({"v": 1, "op": "explode"})


def test_submit_frame_round_trip():
    configs = [ExperimentConfig(app="ffvc", n_ranks=2, n_threads=2),
               ExperimentConfig(app="ccs-qcd", n_ranks=4, n_threads=2)]
    frame = protocol.submit_frame("f1", configs, "event", watch=False)
    # survives the actual wire encoding
    frame = protocol.decode_frame(protocol.encode_frame(frame))
    req = protocol.parse_submit(frame)
    assert (req.name, req.engine, req.watch) == ("f1", "event", False)
    assert req.configs == configs
    # defaults: the pre-deadline wire format decodes unchanged
    assert (req.priority, req.deadline_s, req.client) \
        == ("normal", None, "")


def test_submit_frame_scheduling_fields_round_trip():
    configs = [ExperimentConfig(app="ffvc", n_ranks=2, n_threads=2)]
    frame = protocol.submit_frame("f1", configs, "event", watch=False,
                                  priority="high", deadline_s=12.5,
                                  client="bench-7")
    frame = protocol.decode_frame(protocol.encode_frame(frame))
    req = protocol.parse_submit(frame)
    assert (req.priority, req.deadline_s, req.client) \
        == ("high", 12.5, "bench-7")


def test_parse_submit_rejects_bad_specs():
    good = protocol.submit_frame(
        "f1", [ExperimentConfig(app="ffvc")], "event")
    for breakage in (
            {"name": ""}, {"engine": "warp"}, {"configs": []},
            {"configs": "nope"}, {"configs": [{"app": "no-such-app"}]},
            {"priority": "urgent"}, {"deadline_s": -1},
            {"deadline_s": "soon"}):
        frame = {**good, **breakage}
        with pytest.raises(ProtocolError):
            protocol.parse_submit(frame)


def test_row_frame_is_bit_exact():
    config = ExperimentConfig(app="ffvc", n_ranks=2, n_threads=2)
    row = run_config(config)
    frame = protocol.row_frame(3, row, "executed")
    # through real JSON bytes, as on the socket
    frame = json.loads(json.dumps(frame))
    index, decoded, source = protocol.parse_row(frame)
    assert index == 3 and source == "executed"
    assert decoded == row
    assert decoded.elapsed == row.elapsed  # float identity, not approx
    assert decoded.gflops == row.gflops


def test_parse_row_rejects_malformed():
    with pytest.raises(ProtocolError):
        protocol.parse_row({"type": "row", "index": 0, "row": {"bad": 1}})
