"""Job state machine and crash-durable ledger tests."""

import json

import pytest

from repro.core.experiment import ExperimentConfig
from repro.errors import ServiceError
from repro.service import jobs as jobs_mod
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    JobLedger,
    JobRecord,
    JobSpec,
    new_job_id,
)


def spec(name="f1", engine="event", n=2) -> JobSpec:
    configs = tuple(ExperimentConfig(app="ffvc", n_ranks=r, n_threads=2)
                    for r in range(1, n + 1))
    return JobSpec(job_id=new_job_id(), name=name, engine=engine,
                   configs=configs)


def test_job_ids_are_unique_and_sortable():
    ids = [new_job_id() for _ in range(100)]
    assert len(set(ids)) == 100


def test_spec_round_trip():
    original = spec(n=3)
    clone = JobSpec.from_dict(json.loads(json.dumps(original.to_dict())))
    assert clone == original


def test_legal_lifecycle():
    job = JobRecord(spec())
    assert job.state == QUEUED and not job.terminal
    job.transition(RUNNING)
    assert job.started_at is not None
    job.transition(COMPLETED)
    assert job.terminal and job.finished_at is not None


@pytest.mark.parametrize("path", [
    (RUNNING, QUEUED),             # no going back
    (COMPLETED, RUNNING),          # terminal states are final
    (CANCELLED, RUNNING),
    (FAILED, COMPLETED),
])
def test_illegal_transitions_raise(path):
    job = JobRecord(spec())
    job.state = path[0]
    with pytest.raises(ServiceError, match="illegal transition"):
        job.transition(path[1])


def test_queued_to_completed_is_illegal():
    job = JobRecord(spec())
    with pytest.raises(ServiceError):
        job.transition(COMPLETED)


def test_note_row_attribution():
    job = JobRecord(spec())
    for source in ("cache", "dedup", "executed", "executed"):
        job.note_row(source)
    assert (job.n_done, job.n_cache_hits, job.n_dedup_hits,
            job.n_executed) == (4, 1, 1, 2)


def test_ledger_replay_round_trip(tmp_path):
    ledger = JobLedger(tmp_path / "ledger.jsonl")
    a, b, c = spec("a"), spec("b"), spec("c")
    for s in (a, b, c):
        ledger.record_submit(JobRecord(s))
    done = JobRecord(b)
    done.transition(RUNNING)
    done.transition(COMPLETED)
    ledger.record_state(done)
    running = JobRecord(c)
    running.transition(RUNNING)
    ledger.record_state(running)

    fresh = JobLedger(tmp_path / "ledger.jsonl")
    incomplete = {s.job_id for s in fresh.incomplete()}
    assert incomplete == {a.job_id, c.job_id}  # completed b is gone
    assert fresh.replay()[b.job_id][1] == COMPLETED


def test_ledger_tolerates_torn_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = JobLedger(path)
    keeper = spec("keeper")
    ledger.record_submit(JobRecord(keeper))
    with open(path, "a") as fh:
        fh.write('{"format": 1, "event": "submitted", "job": {tru\n')
        fh.write("garbage\n")
        fh.write(json.dumps({"format": jobs_mod.LEDGER_FORMAT,
                             "event": "state", "job_id": "never-seen",
                             "state": "running"}) + "\n")
    survivors = JobLedger(path).incomplete()
    assert [s.job_id for s in survivors] == [keeper.job_id]


def test_ledger_counts_line_torn_mid_multibyte_utf8(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = JobLedger(path)
    survivor = spec("survivor")
    ledger.record_submit(JobRecord(survivor))
    # crash mid-write: a record containing "café" truncated inside the
    # two-byte é sequence — undecodable, not merely unparsable
    victim = spec("café")
    line = json.dumps({"format": jobs_mod.LEDGER_FORMAT,
                       "event": "submitted",
                       "job": victim.to_dict()},
                      ensure_ascii=False).encode()
    cut = line.index("é".encode()) + 1
    with open(path, "ab") as fh:
        fh.write(line[:cut] + b"\n")
    fresh = JobLedger(path)
    replayed = fresh.replay()
    assert fresh.torn_lines == 1
    assert set(replayed) == {survivor.job_id}


def test_ledger_torn_tail_merges_with_next_append(tmp_path):
    # a torn line with NO newline (the realistic crash shape) merges
    # with the next append into one undecodable line; that one merged
    # line is counted torn and later records survive
    path = tmp_path / "ledger.jsonl"
    ledger = JobLedger(path)
    with open(path, "ab") as fh:
        fh.write(b'{"format":1,"event":"submitted","job":{"na\xe2\x82')
    after = spec("after-the-crash")
    ledger.record_submit(JobRecord(after))
    keeper = spec("keeper")
    ledger.record_submit(JobRecord(keeper))
    fresh = JobLedger(path)
    replayed = fresh.replay()
    assert fresh.torn_lines == 1
    assert set(replayed) == {keeper.job_id}  # merged line ate "after"


def test_ledger_tolerates_duplicate_terminal_transition(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = JobLedger(path)
    job = JobRecord(spec("twice"))
    ledger.record_submit(job)
    job.transition(RUNNING)
    ledger.record_state(job)
    job.transition(CANCELLED)
    ledger.record_state(job)
    # crash between append and ack, replayed on restart as COMPLETED
    clone = JobRecord(job.spec)
    clone.state = COMPLETED
    ledger.record_state(clone)
    fresh = JobLedger(path)
    replayed = fresh.replay()
    assert fresh.duplicate_transitions == 1
    # first terminal state wins; the duplicate is observed, not applied
    assert replayed[job.job_id][1] == CANCELLED
    assert fresh.incomplete() == []


def test_replay_resets_tolerance_counters(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = JobLedger(path)
    ledger.record_submit(JobRecord(spec()))
    with open(path, "ab") as fh:
        fh.write(b"\xff\xfe broken\n")
    assert ledger.replay() and ledger.torn_lines == 1
    # counters describe the *last* replay, they do not accumulate
    assert ledger.replay() and ledger.torn_lines == 1


def test_memory_only_ledger_is_silent(tmp_path):
    ledger = JobLedger.for_cache({})  # plain dict: no directory
    ledger.record_submit(JobRecord(spec()))
    assert ledger.replay() == {}
    assert ledger.incomplete() == []
