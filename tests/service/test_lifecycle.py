"""Lifecycle and robustness: concurrency, cancel, drain, resume,
typed unavailability, and per-job telemetry runs."""

import json
import threading
import time

import pytest

from repro.core.cache import ResultCache
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_sweep
from repro.errors import ServiceUnavailable
from repro.service.client import ServiceClient
from repro.service.jobs import JobLedger, JobRecord, JobSpec, new_job_id
from repro.service.server import SweepService, serve_in_thread

from .conftest import tiny_configs


def slow_configs(n=4):
    """Event configs slow enough (~0.3-0.6 s each) to catch mid-run."""
    return [ExperimentConfig(app="ccs-qcd", n_ranks=4, n_threads=12,
                             n_nodes=nodes)
            for nodes in range(1, n + 1)]


# ----------------------------------------------------------------------
# concurrent clients
# ----------------------------------------------------------------------
def test_overlapping_sweeps_simulate_each_config_once(
        service, socket_path, tmp_path):
    configs = tiny_configs(n=3)
    direct = run_sweep("fleet", configs,
                       ResultCache(tmp_path / "direct"), engine="event")
    results, failures = {}, []

    def one_client(tag):
        try:
            with ServiceClient(socket_path, timeout_s=120) as c:
                results[tag] = c.run_sweep("fleet", configs,
                                           engine="event")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=one_client, args=(i,))
               for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert not failures
    assert len(results) == 3
    for result in results.values():
        assert result.rows == direct.rows  # bit-identical, all clients
    stats = service.stats()
    # at most one simulation per unique config digest, fleet-wide
    assert stats["executed"] == len(configs)
    assert stats["dedup_hits"] + stats["cache_hits"] \
        == len(configs) * (len(threads) - 1)


# ----------------------------------------------------------------------
# cancel
# ----------------------------------------------------------------------
def test_cancel_mid_stream_is_resumable(service, socket_path, cache):
    configs = slow_configs(4)
    with ServiceClient(socket_path, timeout_s=120) as watcher, \
            ServiceClient(socket_path, timeout_s=120) as controller:
        stream = watcher.stream("cancel-me", configs, engine="event")
        job = next(stream)["job"]
        # wait for the first row, then cancel mid-stream
        for frame in stream:
            if frame["type"] == "row":
                controller.cancel(job["job_id"])
                break
        tail = list(stream)
    assert tail[-1]["type"] == "done"
    final = tail[-1]["job"]
    assert final["state"] == "cancelled"
    assert final["n_done"] < len(configs)

    # in-flight executions still land in the cache (that is what makes
    # the cancelled job resumable): resubmitting re-simulates nothing
    # that already finished
    with ServiceClient(socket_path, timeout_s=120) as again:
        redo = again.run_sweep("cancel-me", configs, engine="event")
    assert len(redo.rows) == len(configs)
    assert service.stats()["executed"] <= len(configs)


def test_cancel_queued_job(cache, socket_path):
    svc = SweepService(socket_path, cache=cache, workers=1, max_jobs=1)
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=120) as client:
            blocker = client.submit("blocker", slow_configs(2),
                                    engine="event")
            queued = client.submit("queued", tiny_configs(n=2),
                                   engine="event")
            cancelled = client.cancel(queued["job_id"])
            assert cancelled["state"] == "cancelled"
            # the cancelled job's watchers get a clean done frame
            final = client.wait(queued["job_id"])
            assert final["state"] == "cancelled"
            assert final["n_done"] == 0
            assert client.wait(blocker["job_id"])["state"] == "completed"
    finally:
        thread.stop()


def test_cancel_is_idempotent_on_terminal_jobs(client):
    job = client.submit("fin", tiny_configs(n=1), engine="event")
    client.wait(job["job_id"])
    final = client.cancel(job["job_id"])
    assert final["state"] == "completed"  # not clobbered


# ----------------------------------------------------------------------
# graceful shutdown + resume
# ----------------------------------------------------------------------
def test_drain_finishes_running_jobs(cache, socket_path):
    svc = SweepService(socket_path, cache=cache, workers=2)
    thread = serve_in_thread(svc)
    with ServiceClient(socket_path, timeout_s=120) as client:
        job = client.submit("draining", slow_configs(2), engine="event")
    thread.stop(timeout_s=120)  # SIGTERM equivalent: drain + join
    record = svc.jobs[job["job_id"]]
    assert record.state == "completed"
    assert record.n_done == 2
    # and the rows really are in the shared cache
    reread = ResultCache(cache.directory)
    assert all(reread.get(c) is not None for c in slow_configs(2))


def test_queued_jobs_survive_restart(cache, socket_path, tmp_path):
    svc1 = SweepService(socket_path, cache=cache, workers=1, max_jobs=1)
    thread1 = serve_in_thread(svc1)
    with ServiceClient(socket_path, timeout_s=120) as client:
        running = client.submit("restart-running", slow_configs(2),
                                engine="event")
        queued = client.submit("restart-queued", tiny_configs(n=2),
                               engine="event")
    # drain: the running job finishes, the queued one stays journaled
    thread1.stop(timeout_s=120)
    assert svc1.jobs[running["job_id"]].state == "completed"
    assert svc1.jobs[queued["job_id"]].state == "queued"

    # a new server on the same cache resumes it
    svc2 = SweepService(socket_path, cache=ResultCache(cache.directory),
                        workers=1)
    assert [s.job_id for s in svc2.ledger.incomplete()] \
        == [queued["job_id"]]
    thread2 = serve_in_thread(svc2)
    try:
        with ServiceClient(socket_path, timeout_s=120) as client:
            final = client.wait(queued["job_id"])
        assert final["state"] == "completed"
        assert final["n_done"] == 2
        assert svc2.stats()["jobs_resumed"] == 1
    finally:
        thread2.stop()


def test_ledger_resume_round_trips_the_spec(cache, socket_path):
    """A job written only to the ledger (server died pre-start) runs."""
    spec = JobSpec(job_id=new_job_id(), name="orphan", engine="event",
                   configs=tuple(tiny_configs(n=2)))
    JobLedger.for_cache(cache).record_submit(JobRecord(spec))
    svc = SweepService(socket_path, cache=cache, workers=1)
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=120) as client:
            final = client.wait(spec.job_id)
        assert final["state"] == "completed"
        assert final["n_done"] == 2
    finally:
        thread.stop()


# ----------------------------------------------------------------------
# typed unavailability
# ----------------------------------------------------------------------
def test_no_server_raises_service_unavailable(tmp_path):
    client = ServiceClient(tmp_path / "nobody-home.sock",
                           connect_retries=2, backoff_s=0.01)
    with pytest.raises(ServiceUnavailable) as info:
        client.connect()
    assert info.value.retryable
    assert "3 attempt(s)" in str(info.value)


def test_server_shutdown_surfaces_as_unavailable(cache, socket_path):
    svc = SweepService(socket_path, cache=cache, workers=1)
    thread = serve_in_thread(svc)
    client = ServiceClient(socket_path, timeout_s=30, connect_retries=0)
    client.connect()
    thread.stop(timeout_s=60)
    with pytest.raises(ServiceUnavailable):
        client.ping()
    client.close()


def test_draining_server_refuses_submits(cache, socket_path):
    svc = SweepService(socket_path, cache=cache, workers=1)
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=30) as client:
            svc.draining = True  # drain begun, socket still open
            with pytest.raises(ServiceUnavailable, match="draining"):
                client.submit("late", tiny_configs(n=1), engine="event")
    finally:
        svc.draining = False
        thread.stop()


# ----------------------------------------------------------------------
# per-job telemetry runs
# ----------------------------------------------------------------------
def test_each_job_records_a_run_directory(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    results = tmp_path / "results"
    cache = ResultCache(tmp_path / "cache")
    socket_path = tmp_path / "svc.sock"
    svc = SweepService(socket_path, cache=cache, workers=1,
                       results_dir=results)
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=120) as client:
            client.run_sweep("telemetry-a", tiny_configs(n=2),
                             engine="event")
            client.run_sweep("telemetry-b", tiny_configs(n=2),
                             engine="event")
    finally:
        thread.stop()

    run_dirs = sorted((results / "runs").iterdir())
    assert len(run_dirs) == 2  # one run directory per job
    manifests = [json.loads((d / "manifest.json").read_text())
                 for d in run_dirs]
    assert {m["kind"] for m in manifests} == {"service-job"}
    assert {m["name"] for m in manifests} \
        == {"telemetry-a", "telemetry-b"}
    assert all(m["status"] == "completed" for m in manifests)
    assert all(m.get("job_id") for m in manifests)
    for directory in run_dirs:
        spans = (directory / "spans.jsonl").read_text()
        assert "queue-wait" in spans
        assert "execute" in spans
        summary = json.loads((directory / "summary.json").read_text())
        assert len(summary["rows"]) == 2


def test_jobs_queue_behind_max_jobs(cache, socket_path):
    svc = SweepService(socket_path, cache=cache, workers=1, max_jobs=1)
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=120) as client:
            first = client.submit("head", slow_configs(1), engine="event")
            second = client.submit("tail", tiny_configs(n=1),
                                   engine="event")
            time.sleep(0.05)
            states = {j["job_id"]: j["state"] for j in client.jobs()}
            assert states[second["job_id"]] == "queued"
            assert client.wait(second["job_id"])["state"] == "completed"
            assert client.wait(first["job_id"])["state"] == "completed"
    finally:
        thread.stop()
