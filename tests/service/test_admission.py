"""Admission control: the --max-queued cap, typed overload errors,
client backoff, and the fallback="local" degraded path."""

from __future__ import annotations

import threading

import pytest

from repro.core.cache import ResultCache
from repro.core.runner import run_sweep
from repro.errors import ServiceOverloaded, ServiceUnavailable
from repro.service.client import ServiceClient
from repro.service.server import SweepService, serve_in_thread

from .conftest import tiny_configs


@pytest.fixture
def blocked_service(cache, socket_path):
    """A server whose executions block until the test releases them —
    submitted jobs stay pending, so the admission cap is observable."""
    release = threading.Event()

    def blocked(config):
        from repro.core.parallel import simulate_config

        release.wait(30.0)
        return simulate_config(config)

    svc = SweepService(socket_path, cache=cache, workers=1, max_jobs=2,
                       max_queued=3, simulate_fn=blocked)
    thread = serve_in_thread(svc)
    yield svc, release
    release.set()
    thread.stop()


def test_exactly_k_overflow_submissions_rejected(blocked_service,
                                                 socket_path):
    _svc, release = blocked_service
    with ServiceClient(socket_path, timeout_s=60.0) as client:
        accepted = [client.submit(f"fill-{i}", tiny_configs(n=1))
                    for i in range(3)]          # up to the cap
        rejected = 0
        for i in range(4):                      # k = 4 over the cap
            with pytest.raises(ServiceOverloaded):
                client.submit(f"over-{i}", tiny_configs(n=1))
            rejected += 1
        assert rejected == 4
        # nothing lost, nothing duplicated: exactly the accepted jobs
        # exist, and every rejected submission left no trace
        jobs = client.jobs()
        assert len(jobs) == 3
        assert {j["job_id"] for j in jobs} \
            == {j["job_id"] for j in accepted}
        release.set()
        for job in accepted:
            assert client.wait(job["job_id"])["state"] == "completed"
        assert client.status()["jobs_rejected"] == 4


def test_overload_error_carries_backpressure_hints(blocked_service,
                                                   socket_path):
    _svc, _release = blocked_service
    with ServiceClient(socket_path, timeout_s=60.0) as client:
        for i in range(3):
            client.submit(f"fill-{i}", tiny_configs(n=1))
        with pytest.raises(ServiceOverloaded) as err:
            client.submit("over", tiny_configs(n=1))
    exc = err.value
    assert exc.retryable is True
    assert isinstance(exc, ServiceUnavailable)   # retryable family
    assert exc.queue_depth == 3
    assert exc.max_queued == 3
    assert exc.retry_after_s > 0


def test_run_sweep_backs_off_through_transient_overload(
        blocked_service, socket_path):
    _svc, release = blocked_service
    with ServiceClient(socket_path, timeout_s=60.0) as saturator:
        for i in range(3):          # fill the queue to max_queued=3
            saturator.submit(f"fill-{i}", tiny_configs(n=1))
        # while the new client backs off, the saturating jobs drain
        unblock = threading.Timer(0.3, release.set)
        unblock.start()
        client = ServiceClient(socket_path, timeout_s=60.0,
                               backoff_s=0.05, jitter_seed=7,
                               overload_retries=30)
        try:
            with client:
                result = client.run_sweep("retried", tiny_configs(n=1))
        finally:
            unblock.cancel()
        assert len(result.rows) == 1
        assert saturator.status()["jobs_rejected"] >= 1


def test_fallback_local_is_bit_identical(blocked_service, socket_path,
                                         tmp_path):
    _svc, _release = blocked_service
    configs = tiny_configs(n=2)
    with ServiceClient(socket_path, timeout_s=60.0) as client:
        for i in range(3):
            client.submit(f"fill-{i}", tiny_configs(n=1))
        degraded = ServiceClient(socket_path, timeout_s=60.0,
                                 backoff_s=0.001, jitter_seed=3,
                                 overload_retries=2)
        with degraded:
            result = degraded.run_sweep("degraded", configs,
                                        fallback="local")
    direct = run_sweep("degraded", configs,
                       ResultCache(tmp_path / "direct"), engine="event")
    assert result.rows == direct.rows
    assert [r.elapsed for r in result.rows] \
        == [r.elapsed for r in direct.rows]


def test_fallback_local_on_unreachable_server(tmp_path):
    client = ServiceClient(tmp_path / "nobody-home.sock",
                           connect_retries=0, timeout_s=5.0)
    result = client.run_sweep("offline", tiny_configs(n=1),
                              fallback="local")
    assert len(result.rows) == 1
    with pytest.raises(ServiceUnavailable):
        client.run_sweep("offline", tiny_configs(n=1))


def test_rejects_bad_fallback_value(tmp_path):
    client = ServiceClient(tmp_path / "x.sock", connect_retries=0)
    with pytest.raises(ValueError, match="fallback"):
        client.run_sweep("x", tiny_configs(n=1), fallback="remote")


def test_backoff_jitter_is_seeded_and_floored():
    a = ServiceClient("/tmp/x.sock", jitter_seed=42, backoff_s=0.1)
    b = ServiceClient("/tmp/x.sock", jitter_seed=42, backoff_s=0.1)
    c = ServiceClient("/tmp/x.sock", jitter_seed=43, backoff_s=0.1)
    seq_a = [a._backoff_delay(i) for i in range(5)]
    seq_b = [b._backoff_delay(i) for i in range(5)]
    seq_c = [c._backoff_delay(i) for i in range(5)]
    assert seq_a == seq_b          # same seed, same schedule
    assert seq_a != seq_c          # different seed, spread out
    for i, delay in enumerate(seq_a):
        assert 0.05 * 2**i <= delay < 0.1 * 2**i
    # the server's retry_after_s hint is a floor, never ignored
    assert a._backoff_delay(0, floor_s=9.0) == 9.0


def test_env_var_sets_the_admission_cap(cache, socket_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_MAX_QUEUED", "2")
    svc = SweepService(socket_path, cache=cache)
    assert svc.max_queued == 2
    monkeypatch.setenv("REPRO_SERVICE_MAX_QUEUED", "0")
    assert SweepService(socket_path, cache=cache).max_queued is None
    monkeypatch.delenv("REPRO_SERVICE_MAX_QUEUED")
    assert SweepService(socket_path, cache=cache).max_queued is None
    flag_wins = SweepService(socket_path, cache=cache, max_queued=7)
    assert flag_wins.max_queued == 7
