"""Server basics: ops, streaming parity with run_sweep, quarantine."""

import socket as socket_mod

import pytest

from repro.core.cache import ResultCache
from repro.core.journal import SweepJournal
from repro.core.runner import QUARANTINE_AFTER, run_sweep
from repro.errors import ProtocolError
from repro.service import protocol
from repro.service.client import ServiceClient

from .conftest import tiny_configs


def test_hello_then_ping(client):
    assert client.server_info["type"] == "hello"
    assert client.server_info["v"] == protocol.PROTOCOL_VERSION
    assert client.ping() < 60.0


def test_status_reports_scheduler_stats(client):
    stats = client.status()
    for key in ("executed", "dedup_hits", "cache_hits", "jobs_total",
                "draining", "uptime_s"):
        assert key in stats
    assert stats["draining"] is False


def test_jobs_empty_initially(client):
    assert client.jobs() == []


def test_run_sweep_matches_direct_bit_for_bit(client, tmp_path):
    configs = tiny_configs(n=3)
    direct = run_sweep("parity", configs,
                       ResultCache(tmp_path / "direct"), engine="event")
    via_service = client.run_sweep("parity", configs, engine="event")
    assert via_service.rows == direct.rows
    assert [r.elapsed for r in via_service.rows] \
        == [r.elapsed for r in direct.rows]
    assert via_service.errors == []


def test_rows_cached_for_the_next_job(client):
    configs = tiny_configs(n=2)
    first = client.run_sweep("warm", configs, engine="event")
    again = client.run_sweep("warm", configs, engine="event")
    assert again.rows == first.rows
    stats = client.status()
    assert stats["executed"] == 2       # the second job hit the cache
    assert stats["cache_hits"] >= 2


def test_duplicate_configs_within_a_job_simulate_once(client):
    config = tiny_configs(n=1)[0]
    result = client.run_sweep("dup", [config, config, config],
                              engine="event")
    assert len(result.rows) == 3
    assert len(set(map(id, result.rows))) >= 1
    assert client.status()["executed"] == 1


def test_analytic_jobs_batch_through_the_scorer(client):
    configs = tiny_configs(n=4)
    result = client.run_sweep("analytic", configs, engine="analytic")
    assert len(result.rows) == 4
    assert all(row.engine == "analytic" for row in result.rows)
    stats = client.status()
    assert stats["analytic_batched_rows"] == 4
    # coalescing means strictly fewer scorer calls than rows
    assert stats["analytic_batches"] < 4


def test_quarantined_configs_reported_per_job(service, client, cache_dir):
    configs = tiny_configs(n=3)
    poisoned = configs[1]
    journal = SweepJournal(cache_dir / SweepJournal.FILENAME)
    for _ in range(QUARANTINE_AFTER):
        journal.record("quar", poisoned, ok=False,
                       exc=RuntimeError("synthetic crash"))

    frames = list(client.stream("quar", configs, engine="event"))
    row_errors = [f for f in frames if f["type"] == "row-error"]
    assert len(row_errors) == 1
    assert row_errors[0]["index"] == 1
    assert row_errors[0]["quarantined"] is True
    assert "synthetic crash" in row_errors[0]["message"]
    done = [f for f in frames if f["type"] == "done"][0]["job"]
    assert done["n_quarantined"] == 1
    assert done["n_done"] == 2
    # quarantine is per sweep name: a different sweep still runs it
    clean = client.run_sweep("other-sweep", [poisoned], engine="event")
    assert len(clean.rows) == 1


def test_protocol_error_keeps_connection_usable(service, socket_path):
    with socket_mod.socket(socket_mod.AF_UNIX) as raw:
        raw.settimeout(30)
        raw.connect(str(socket_path))
        reader = raw.makefile("rb")
        assert protocol.decode_frame(reader.readline())["type"] == "hello"
        raw.sendall(b"this is not json\n")
        reply = protocol.decode_frame(reader.readline())
        assert reply["type"] == "error" and reply["code"] == "protocol"
        raw.sendall(protocol.encode_frame(
            {"v": protocol.PROTOCOL_VERSION, "op": "ping"}))
        assert protocol.decode_frame(reader.readline())["type"] == "pong"


def test_submit_rejects_malformed_specs(client):
    client._write_frame({"v": protocol.PROTOCOL_VERSION, "op": "submit",
                         "name": "bad", "engine": "event",
                         "configs": [{"app": "no-such-app"}]})
    with pytest.raises(ProtocolError, match="bad-request: configs"):
        reply = client._read_frame()
        client._raise_error(reply)


def test_watch_unknown_job_errors(client):
    with pytest.raises(ProtocolError, match="no job matches"):
        list(client.watch("nope-never-existed"))


def test_watch_replays_finished_job(service, socket_path, client):
    configs = tiny_configs(n=2)
    job = None
    for frame in client.stream("replay", configs, engine="event"):
        if frame["type"] == "job":
            job = frame["job"]
    assert job is not None
    # a second client attaching after completion sees the whole stream
    with ServiceClient(socket_path, timeout_s=60) as late:
        frames = list(late.watch(job["job_id"]))
    kinds = [f["type"] for f in frames]
    assert kinds[0] == "job" and kinds[-1] == "done"
    assert kinds.count("row") == 2


def test_job_id_prefix_lookup(client):
    configs = tiny_configs(n=1)
    job = client.submit("prefix", configs, engine="event")
    final = client.wait(job["job_id"][:18])
    assert final["state"] == "completed"
