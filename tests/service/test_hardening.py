"""Operational hardening: health probes, heartbeats, the execution
watchdog, deadline expiry, and stale-socket recovery."""

from __future__ import annotations

import asyncio
import json
import socket as socket_mod
import threading
import time

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.parallel import RetryPolicy, simulate_config
from repro.errors import ServiceError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import SweepService, serve_in_thread

from .conftest import tiny_configs


# ----------------------------------------------------------------------
# health probe
# ----------------------------------------------------------------------
def test_health_reports_the_operational_snapshot(service, client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["pending"] == 0
    assert health["queue_depth"] == 0
    assert health["running"] == 0
    assert health["max_jobs"] == 4
    assert health["max_queued"] is None
    assert health["pool_state"] in ("cold", "warm", "broken")
    assert health["watchdog_kills"] == 0
    assert health["uptime_s"] >= 0
    assert health["pid"] > 0
    assert health["fair_share"]["slots"] == 4
    assert health["ledger_lag_s"] is None   # nothing appended yet


def test_health_tracks_jobs_and_ledger_activity(service, client):
    client.run_sweep("probe", tiny_configs(n=2))
    health = client.health()
    assert health["jobs_by_state"] == {"completed": 1}
    assert health["pending"] == 0
    assert health["ledger_lag_s"] is not None
    assert health["fair_share"]["granted"] == 1


# ----------------------------------------------------------------------
# heartbeats
# ----------------------------------------------------------------------
def test_silent_stream_carries_heartbeats(cache, socket_path):
    def slow(config):
        time.sleep(0.4)
        return simulate_config(config)

    svc = SweepService(socket_path, cache=cache, workers=1,
                       heartbeat_s=0.05, simulate_fn=slow)
    thread = serve_in_thread(svc)
    try:
        # raw socket: the client SDK swallows heartbeats, the wire
        # must show them
        raw = socket_mod.socket(socket_mod.AF_UNIX,
                                socket_mod.SOCK_STREAM)
        raw.settimeout(30.0)
        raw.connect(str(socket_path))
        with raw, raw.makefile("rb") as reader:
            hello = json.loads(reader.readline())
            assert hello["type"] == "hello"
            frame = protocol.submit_frame(
                "slow", tiny_configs(n=1), "event", watch=True)
            raw.sendall(protocol.encode_frame(frame))
            kinds = []
            while True:
                kind = json.loads(reader.readline()).get("type")
                kinds.append(kind)
                if kind == "done":
                    break
        assert kinds.count("heartbeat") >= 1
        assert kinds.index("heartbeat") < kinds.index("row")
    finally:
        thread.stop()


def test_heartbeats_can_be_disabled(cache, socket_path):
    svc = SweepService(socket_path, cache=cache, heartbeat_s=None)
    assert svc.heartbeat_s is None
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=60.0) as client:
            assert client.health()["heartbeat_s"] is None
    finally:
        thread.stop()


# ----------------------------------------------------------------------
# execution watchdog
# ----------------------------------------------------------------------
def test_watchdog_kills_stalled_execution_and_retry_succeeds(
        cache, socket_path):
    hang = threading.Event()
    calls: list[int] = []

    def stall_once(config):
        calls.append(1)
        if len(calls) == 1:
            hang.wait(10.0)     # first attempt never progresses
        return simulate_config(config)

    svc = SweepService(socket_path, cache=cache, workers=1,
                       exec_timeout_s=0.25,
                       retry=RetryPolicy(max_attempts=2, backoff_s=0.01),
                       simulate_fn=stall_once)
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=60.0) as client:
            result = client.run_sweep("stalled", tiny_configs(n=1))
            assert len(result.rows) == 1
            assert result.errors == []
            status = client.status()
        assert status["watchdog_kills"] == 1
        assert len(calls) == 2      # killed once, retried once
    finally:
        hang.set()
        thread.stop()


def test_watchdog_exhausting_retries_fails_the_config(cache,
                                                      socket_path):
    hang = threading.Event()

    def always_stalls(config):
        hang.wait(10.0)
        return simulate_config(config)

    svc = SweepService(socket_path, cache=cache, workers=1,
                       exec_timeout_s=0.2,
                       retry=RetryPolicy(max_attempts=2, backoff_s=0.01),
                       simulate_fn=always_stalls)
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=60.0) as client:
            result = client.run_sweep("doomed", tiny_configs(n=1))
            assert result.rows == []
            assert len(result.errors) == 1
            assert "watchdog" in result.errors[0].message
            assert client.status()["watchdog_kills"] == 2
    finally:
        hang.set()
        thread.stop()


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_queued_job_past_deadline_expires(cache, socket_path):
    release = threading.Event()

    def blocked(config):
        release.wait(30.0)
        return simulate_config(config)

    svc = SweepService(socket_path, cache=cache, workers=1, max_jobs=1,
                       simulate_fn=blocked)
    thread = serve_in_thread(svc)
    try:
        with ServiceClient(socket_path, timeout_s=60.0) as client:
            occupier = client.submit("occupier", tiny_configs(n=1))
            doomed = client.submit(
                "doomed",
                [ExperimentConfig(app="ffvc", n_ranks=8, n_threads=8)],
                deadline_s=0.05)
            final = client.wait(doomed["job_id"])
            assert final["state"] == "expired"
            assert "deadline" in final["error"]
            release.set()
            assert client.wait(occupier["job_id"])["state"] \
                == "completed"
            status = client.status()
            assert status["jobs_expired"] == 1
            assert status["jobs_by_state"] == {"completed": 1,
                                               "expired": 1}
    finally:
        release.set()
        thread.stop()


# ----------------------------------------------------------------------
# stale sockets
# ----------------------------------------------------------------------
def test_dead_socket_file_is_reclaimed(cache, socket_path):
    leftover = socket_mod.socket(socket_mod.AF_UNIX,
                                 socket_mod.SOCK_STREAM)
    leftover.bind(str(socket_path))
    leftover.close()            # crashed server: file without listener
    assert socket_path.exists()
    thread = serve_in_thread(SweepService(socket_path, cache=cache))
    try:
        with ServiceClient(socket_path, timeout_s=30.0) as client:
            assert client.ping() >= 0
    finally:
        thread.stop()


def test_live_socket_is_refused(cache, socket_path, tmp_path):
    thread = serve_in_thread(SweepService(socket_path, cache=cache))
    try:
        from repro.core.cache import ResultCache

        impostor = SweepService(socket_path,
                                cache=ResultCache(tmp_path / "other"))
        with pytest.raises(ServiceError, match="live"):
            asyncio.run(impostor.start())
        # the incumbent is untouched
        with ServiceClient(socket_path, timeout_s=30.0) as client:
            assert client.health()["status"] == "ok"
    finally:
        thread.stop()
