"""Fixtures for the sweep-service tests: a real in-thread server.

Every test that needs a server gets a fresh :class:`SweepService` on
its own unix socket (under ``tmp_path``, so paths stay short and
per-test) backed by a fresh persistent cache directory.  The server
runs on a daemon thread via :func:`serve_in_thread`; teardown drains
it, so a hanging job fails the test rather than leaking a thread.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.cache import ResultCache
from repro.core.experiment import ExperimentConfig
from repro.service.client import ServiceClient
from repro.service.server import SweepService, serve_in_thread


@pytest.fixture
def cache_dir(tmp_path) -> Path:
    return tmp_path / "cache"


@pytest.fixture
def cache(cache_dir) -> ResultCache:
    return ResultCache(cache_dir)


@pytest.fixture
def socket_path(tmp_path) -> Path:
    return tmp_path / "svc.sock"


@pytest.fixture
def service(cache, socket_path):
    """A running server on a background thread; drained at teardown."""
    svc = SweepService(socket_path, cache=cache, workers=2, max_jobs=4)
    thread = serve_in_thread(svc)
    yield svc
    thread.stop()


@pytest.fixture
def client(service, socket_path):
    with ServiceClient(socket_path, timeout_s=120.0) as c:
        yield c


def tiny_configs(app: str = "ffvc", n: int = 3) -> list[ExperimentConfig]:
    """A few fast event-engine configs (distinct rank counts)."""
    pairs = [(1, 2), (2, 2), (4, 2), (2, 4), (4, 4)]
    return [ExperimentConfig(app=app, n_ranks=r, n_threads=t)
            for r, t in pairs[:n]]
