"""Tests for the parallel-filesystem model and the I/O ops."""

import pytest

from repro.compile import PRESETS
from repro.errors import ConfigurationError
from repro.kernels import presets
from repro.machine import catalog
from repro.machine.storage import StorageSpec, fefs, lustre
from repro.runtime import Job, JobPlacement, run_job
from repro.runtime.program import FileRead, FileWrite
from repro.units import GB_S


class TestStorageSpec:
    def test_transfer_seconds(self):
        spec = StorageSpec("t", aggregate_bandwidth=100 * GB_S,
                           per_node_bandwidth=2 * GB_S, open_latency_s=1e-3)
        assert spec.transfer_seconds(2e9) == pytest.approx(1.001)

    def test_aggregate_seconds(self):
        spec = fefs()
        assert spec.aggregate_seconds(150e9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StorageSpec("bad", aggregate_bandwidth=1 * GB_S,
                        per_node_bandwidth=2 * GB_S, open_latency_s=0)
        with pytest.raises(ConfigurationError):
            fefs().transfer_seconds(-1)

    def test_presets(self):
        assert fefs().aggregate_bandwidth > lustre().aggregate_bandwidth

    def test_clusters_carry_storage(self):
        assert catalog.a64fx().storage.name == "FEFS"


class TestIoOps:
    @staticmethod
    def run(program, n_ranks=2):
        cluster = catalog.a64fx()
        job = Job(cluster=cluster, placement=JobPlacement(cluster, n_ranks, 1),
                  kernels={"k": presets.stream_triad()}, program=program,
                  options=PRESETS["kfast"])
        return run_job(job)

    def test_file_read_takes_time_and_is_traced(self):
        def program(rank, size):
            if rank == 0:
                yield FileRead(size_bytes=3e9)

        res = self.run(program)
        assert res.elapsed >= 1.0               # 3 GB at 3 GB/s per node
        assert res.io_bytes == 3e9
        assert res.traces[0].total("io") > 0

    def test_reads_share_aggregate_bandwidth(self):
        """Many concurrent readers are bounded by the aggregate channel."""
        per_rank = 30e9

        def program(rank, size):
            yield FileRead(size_bytes=per_rank)

        res = self.run(program, n_ranks=8)
        # 8 x 30 GB over a 150 GB/s aggregate: >= 1.6 s even though each
        # node alone would finish in 10 s... per-node = 30/3 = 10 s baseline
        agg_bound = 8 * per_rank / fefs().aggregate_bandwidth
        assert res.elapsed >= agg_bound * 0.99

    def test_write_accounted(self):
        def program(rank, size):
            yield FileWrite(size_bytes=1e9)

        res = self.run(program, n_ranks=1)
        assert res.io_bytes == 1e9

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FileRead(size_bytes=-1)


class TestNgsaPipelineIo:
    def test_ngsa_includes_io_phases(self):
        from repro.miniapps import by_name

        cluster = catalog.a64fx()
        app = by_name("ngsa")
        res = run_job(app.build_job(cluster, JobPlacement(cluster, 4, 12),
                                    "as-is"))
        assert res.io_bytes > 0
        assert res.traces[0].total("io") > 0
        # but compute still dominates the as-is pipeline
        assert res.traces[0].total("io") < res.elapsed * 0.5
