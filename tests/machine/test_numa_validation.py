"""Validation-path tests for the NUMA aggregation classes."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.machine import catalog
from repro.machine.numa import Chip, Node, NumaDomain


@pytest.fixture(scope="module")
def parts():
    dom = catalog.a64fx().node.chips[0].domains[0]
    chip = catalog.a64fx().node.chips[0]
    return dom, chip


class TestNumaDomainValidation:
    def test_rejects_zero_cores(self, parts):
        dom, _ = parts
        with pytest.raises(ConfigurationError):
            dataclasses.replace(dom, n_cores=0)

    def test_rejects_shared_l1(self, parts):
        dom, _ = parts
        bad_l1 = dataclasses.replace(dom.l1d, shared=True)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(dom, l1d=bad_l1)

    def test_rejects_wrong_levels(self, parts):
        dom, _ = parts
        l3 = dataclasses.replace(dom.l2, level=3)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(dom, l2=l3)

    def test_l2_share_validation(self, parts):
        dom, _ = parts
        with pytest.raises(ConfigurationError):
            dom.l2_bandwidth_share(0)

    def test_private_l2_not_divided(self):
        dom = catalog.xeon_skylake().node.chips[0].domains[0]
        assert dom.l2_bandwidth_share(1) == dom.l2_bandwidth_share(20)

    def test_shared_l2_single_core_cap(self, parts):
        dom, _ = parts
        # one core cannot monopolize the shared L2 (per-port limit ~1/3)
        assert dom.l2_bandwidth_share(1) == pytest.approx(
            dom.l2.bytes_per_cycle * dom.core.freq_hz / 3.0)


class TestChipValidation:
    def test_rejects_empty_chip(self, parts):
        dom, chip = parts
        with pytest.raises(ConfigurationError):
            dataclasses.replace(chip, domains=())

    def test_rejects_multi_domain_without_ring(self, parts):
        dom, chip = parts
        with pytest.raises(ConfigurationError):
            dataclasses.replace(chip, inter_domain_bandwidth=0.0)

    def test_rejects_bad_remote_fraction(self, parts):
        _, chip = parts
        with pytest.raises(ConfigurationError):
            dataclasses.replace(chip, remote_access_fraction=0.0)

    def test_single_domain_chip_needs_no_ring(self, parts):
        dom, _ = parts
        chip = Chip(name="solo", domains=(dom,), inter_domain_bandwidth=0.0,
                    inter_domain_latency_s=0.0)
        assert chip.n_cores == 12

    def test_domain_of_core_bounds(self, parts):
        _, chip = parts
        with pytest.raises(ConfigurationError):
            chip.domain_of_core(-1)


class TestNodeValidation:
    def test_rejects_empty_node(self, parts):
        _, chip = parts
        with pytest.raises(ConfigurationError):
            Node(name="empty", chips=())

    def test_rejects_multi_chip_without_link(self, parts):
        _, chip = parts
        with pytest.raises(ConfigurationError):
            Node(name="dual", chips=(chip, chip), inter_chip_bandwidth=0.0)

    def test_flat_domains_order(self):
        node = catalog.xeon_skylake().node
        doms = node.flat_domains()
        assert len(doms) == 2
        assert node.cores_of_domain(1) == range(20, 40)

    def test_cores_of_domain_bounds(self, parts):
        node = catalog.a64fx().node
        with pytest.raises(ConfigurationError):
            node.cores_of_domain(4)
