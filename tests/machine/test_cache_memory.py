"""Tests for the cache and memory models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.machine.cache import CacheSpec
from repro.machine.memory import MemorySpec
from repro.units import GB_S, GIB, KIB, MIB, NS


def l2(capacity=8 * MIB, line=256) -> CacheSpec:
    return CacheSpec(level=2, capacity_bytes=capacity, line_bytes=line,
                     latency_cycles=40, bytes_per_cycle=512.0, shared=True)


def hbm(**over) -> MemorySpec:
    base = dict(kind="HBM2", capacity_bytes=8 * GIB, peak_bandwidth=256 * GB_S,
                sustained_fraction=0.82, single_stream_bandwidth=50 * GB_S,
                latency_s=120 * NS)
    base.update(over)
    return MemorySpec(**base)


class TestCacheHitFraction:
    def test_zero_working_set_always_hits(self):
        assert l2().hit_fraction(0) == 1.0

    def test_tiny_working_set_hits(self):
        assert l2().hit_fraction(64 * KIB) > 0.99

    def test_at_capacity_half_hits(self):
        assert l2().hit_fraction(8 * MIB) == pytest.approx(0.5, abs=0.01)

    def test_huge_working_set_misses(self):
        assert l2().hit_fraction(256 * MIB) < 0.01

    def test_monotone_decreasing(self):
        c = l2()
        sizes = [2 ** k * KIB for k in range(2, 16)]
        hits = [c.hit_fraction(s) for s in sizes]
        assert hits == sorted(hits, reverse=True)

    def test_rejects_negative_working_set(self):
        with pytest.raises(ConfigurationError):
            l2().hit_fraction(-1)

    @given(ws=st.floats(0, 1e12))
    def test_hit_fraction_in_unit_interval(self, ws):
        assert 0.0 <= l2().hit_fraction(ws) <= 1.0


class TestLineUtilization:
    def test_contiguous_uses_full_line(self):
        assert l2().effective_line_utilization(1.0) == pytest.approx(1.0)

    def test_pure_gather_uses_one_element(self):
        # 8-byte element of a 256-byte line
        assert l2().effective_line_utilization(0.0) == pytest.approx(8 / 256)

    def test_small_lines_hurt_less(self):
        wide = l2(line=256)
        narrow = l2(line=64)
        assert narrow.effective_line_utilization(0.0) > wide.effective_line_utilization(0.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            l2().effective_line_utilization(1.5)


class TestCacheValidation:
    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(level=1, capacity_bytes=64 * KIB, line_bytes=100,
                      latency_cycles=5, bytes_per_cycle=128.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(level=1, capacity_bytes=0, line_bytes=64,
                      latency_cycles=5, bytes_per_cycle=128.0)

    def test_rejects_level_zero(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(level=0, capacity_bytes=64 * KIB, line_bytes=64,
                      latency_cycles=5, bytes_per_cycle=128.0)


class TestMemoryBandwidth:
    def test_single_stream(self):
        assert hbm().achievable_bandwidth(1) == pytest.approx(50 * GB_S)

    def test_saturates_at_sustained(self):
        m = hbm()
        assert m.achievable_bandwidth(12) == pytest.approx(0.82 * 256 * GB_S)
        assert m.achievable_bandwidth(48) == m.achievable_bandwidth(12)

    def test_knee_position(self):
        # 0.82*256/50 = 4.2 streams saturate an A64FX CMG
        m = hbm()
        assert m.achievable_bandwidth(4) < m.sustained_bandwidth
        assert m.achievable_bandwidth(5) == m.sustained_bandwidth

    def test_zero_streams(self):
        assert hbm().achievable_bandwidth(0) == 0.0

    def test_per_stream_share_decreases(self):
        m = hbm()
        shares = [m.per_stream_bandwidth(k) for k in range(1, 13)]
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    @given(k=st.integers(1, 128))
    def test_aggregate_monotone_in_streams(self, k):
        m = hbm()
        assert m.achievable_bandwidth(k + 1) >= m.achievable_bandwidth(k)

    def test_rejects_single_stream_above_peak(self):
        with pytest.raises(ConfigurationError):
            hbm(single_stream_bandwidth=300 * GB_S)

    def test_rejects_bad_sustained_fraction(self):
        with pytest.raises(ConfigurationError):
            hbm(sustained_fraction=1.5)
