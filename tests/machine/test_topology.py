"""Tests for NUMA aggregation, cluster addressing, and transfer costs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.machine import catalog
from repro.machine.topology import CoreAddress


@pytest.fixture(scope="module")
def a64fx4():
    return catalog.a64fx(n_nodes=4)


class TestNodeStructure:
    def test_a64fx_core_count(self, a64fx4):
        assert a64fx4.node.n_cores == 48
        assert a64fx4.node.n_domains == 4

    def test_xeon_is_dual_socket(self):
        node = catalog.xeon_skylake().node
        assert len(node.chips) == 2
        assert node.n_cores == 40

    def test_peak_flops_a64fx(self, a64fx4):
        # 48 cores x 70.4 GF at 2.2 GHz
        assert a64fx4.node.peak_flops_fp64 == pytest.approx(3.3792e12)

    def test_a64fx_memory_bandwidth(self, a64fx4):
        assert a64fx4.node.peak_memory_bandwidth == pytest.approx(1024e9)

    def test_boost_raises_frequency_only(self):
        normal = catalog.a64fx()
        boost = catalog.a64fx(boost=True)
        assert boost.node.peak_flops_fp64 > normal.node.peak_flops_fp64
        assert boost.node.peak_memory_bandwidth == normal.node.peak_memory_bandwidth

    def test_domain_of_core(self, a64fx4):
        node = a64fx4.node
        assert node.domain_of_core(0) == 0
        assert node.domain_of_core(11) == 0
        assert node.domain_of_core(12) == 1
        assert node.domain_of_core(47) == 3

    def test_cores_of_domain_roundtrip(self, a64fx4):
        node = a64fx4.node
        for dom in range(4):
            for c in node.cores_of_domain(dom):
                assert node.domain_of_core(c) == dom

    def test_domain_of_core_out_of_range(self, a64fx4):
        with pytest.raises(ConfigurationError):
            a64fx4.node.domain_of_core(48)


class TestAddressing:
    @given(core=st.integers(0, 4 * 48 - 1))
    def test_roundtrip(self, core):
        cluster = catalog.a64fx(n_nodes=4)
        addr = cluster.address_of(core)
        assert cluster.global_core(addr) == core

    def test_structured_fields(self, a64fx4):
        addr = a64fx4.address_of(48 + 13)   # node 1, CMG 1, core 1
        assert addr == CoreAddress(node=1, chip=0, domain=1, core=1)

    def test_xeon_addressing_crosses_chips(self):
        cluster = catalog.xeon_skylake(n_nodes=2)
        addr = cluster.address_of(25)  # second socket, core 5
        assert addr.chip == 1 and addr.domain == 0 and addr.core == 5

    def test_out_of_range(self, a64fx4):
        with pytest.raises(ConfigurationError):
            a64fx4.address_of(4 * 48)

    def test_node_global_domain(self, a64fx4):
        addr = a64fx4.address_of(30)
        assert a64fx4.node_global_domain(addr) == 2

    def test_node_global_domain_dual_socket(self):
        cluster = catalog.xeon_skylake()
        addr = cluster.address_of(25)
        assert cluster.node_global_domain(addr) == 1


class TestTransferCosts:
    def test_locality_ordering(self, a64fx4):
        """intra-CMG < inter-CMG < inter-node for the same payload."""
        src = CoreAddress(0, 0, 0, 0)
        same_cmg = a64fx4.transfer_time(src, CoreAddress(0, 0, 0, 5), 1 << 20)
        cross_cmg = a64fx4.transfer_time(src, CoreAddress(0, 0, 2, 3), 1 << 20)
        cross_node = a64fx4.transfer_time(src, CoreAddress(1, 0, 0, 0), 1 << 20)
        assert same_cmg < cross_cmg < cross_node

    def test_zero_bytes_is_latency_only(self, a64fx4):
        src, dst = CoreAddress(0, 0, 0, 0), CoreAddress(0, 0, 0, 1)
        assert a64fx4.transfer_time(src, dst, 0) == pytest.approx(
            a64fx4.shm_latency_s
        )

    @given(size=st.floats(0, 1e9))
    def test_monotone_in_size(self, size):
        cluster = catalog.a64fx(n_nodes=2)
        src, dst = CoreAddress(0, 0, 0, 0), CoreAddress(1, 0, 0, 0)
        assert cluster.transfer_time(src, dst, size + 1024) >= \
            cluster.transfer_time(src, dst, size)

    def test_negative_size_rejected(self, a64fx4):
        with pytest.raises(ConfigurationError):
            a64fx4.transfer_time(CoreAddress(0, 0, 0, 0),
                                 CoreAddress(0, 0, 0, 1), -1)


class TestInterconnect:
    def test_tofu_hops_symmetric(self):
        net = catalog.a64fx(n_nodes=27).network
        assert net.hops(0, 13, 27) == net.hops(13, 0, 27)

    def test_zero_hops_same_node(self):
        net = catalog.a64fx(n_nodes=8).network
        assert net.hops(3, 3, 8) == 0

    def test_fat_tree_hops_grow_with_system(self):
        net = catalog.xeon_skylake().network
        small = net.hops(0, 1, 16)
        large = net.hops(0, 1, 10_000)
        assert large >= small

    def test_rendezvous_surcharge(self):
        net = catalog.a64fx().network
        below = net.message_time(net.rendezvous_threshold_bytes - 1, 1)
        above = net.message_time(net.rendezvous_threshold_bytes, 1)
        assert above - below > net.rendezvous_latency_s * 0.9

    def test_message_time_monotone_in_hops(self):
        net = catalog.a64fx().network
        assert net.message_time(1024, 5) > net.message_time(1024, 1)


class TestCatalogRegistry:
    def test_all_registered_processors_build(self):
        for name in catalog.PROCESSORS:
            cluster = catalog.by_name(name)
            assert cluster.total_cores > 0
            assert cluster.peak_flops_fp64 > 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            catalog.by_name("Itanium")

    def test_fx700_variant(self):
        """The commercial part: lower clock, same memory, IB network."""
        fugaku = catalog.a64fx()
        fx700 = catalog.by_name("A64FX-FX700")
        assert fx700.node.peak_flops_fp64 == pytest.approx(
            fugaku.node.peak_flops_fp64 * 1.8 / 2.2)
        assert fx700.node.peak_memory_bandwidth == \
            fugaku.node.peak_memory_bandwidth
        assert fx700.network.name == "InfiniBand-EDR"
        assert fx700.cores_per_node == 48

    def test_a64fx_beats_xeon_on_bandwidth_not_flops(self):
        a = catalog.a64fx().node
        x = catalog.xeon_skylake().node
        assert a.peak_memory_bandwidth > 3 * x.peak_memory_bandwidth
        assert a.peak_flops_fp64 == pytest.approx(x.peak_flops_fp64, rel=0.25)
