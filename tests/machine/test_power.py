"""Tests for the power model and power-control modes."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.machine import catalog
from repro.machine.power import MODES, POWER_SPECS, PowerSpec, power_spec


@pytest.fixture(scope="module")
def a64fx_power():
    return power_spec("A64FX")


class TestPowerSpec:
    def test_all_catalog_processors_have_specs(self):
        assert set(POWER_SPECS) == set(catalog.PROCESSORS)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            power_spec("Pentium")

    def test_core_power_interpolates(self, a64fx_power):
        p = a64fx_power
        assert p.core_power(0.0) == p.core_active_idle_watts
        assert p.core_power(1.0) == p.core_max_watts
        assert p.core_power(0.0) < p.core_power(0.5) < p.core_power(1.0)

    def test_core_power_rejects_bad_utilization(self, a64fx_power):
        with pytest.raises(ConfigurationError):
            a64fx_power.core_power(1.5)

    def test_a64fx_loaded_node_power_plausible(self, a64fx_power):
        """Published A64FX figures: ~110-160 W under load."""
        watts = a64fx_power.node_power(48, 48, 0.9,
                                       dram_bytes_per_s=800e9)
        assert 100 < watts < 170

    def test_idle_node_power_much_lower(self, a64fx_power):
        idle = a64fx_power.node_power(0, 48, 0.0)
        loaded = a64fx_power.node_power(48, 48, 1.0, 800e9)
        assert idle < 0.5 * loaded

    def test_core_retention_saves_power(self, a64fx_power):
        half = a64fx_power.node_power(24, 48, 1.0)
        full = a64fx_power.node_power(48, 48, 1.0)
        assert half < full

    def test_node_power_validation(self, a64fx_power):
        with pytest.raises(ConfigurationError):
            a64fx_power.node_power(49, 48, 0.5)
        with pytest.raises(ConfigurationError):
            a64fx_power.node_power(4, 48, 0.5, dram_bytes_per_s=-1)

    @given(active=st.integers(0, 48), util=st.floats(0, 1),
           bw=st.floats(0, 1e12))
    def test_power_non_negative_and_monotone_in_activity(self, active, util, bw):
        p = power_spec("A64FX")
        w = p.node_power(active, 48, util, bw)
        assert w >= 0
        if active < 48:
            assert p.node_power(active + 1, 48, util, bw) >= w


class TestModes:
    def test_mode_names(self):
        assert MODES == ("normal", "eco", "boost")

    def test_normal_is_identity(self, a64fx_power):
        assert a64fx_power.with_mode("normal") is a64fx_power

    def test_eco_lowers_core_power(self, a64fx_power):
        eco = a64fx_power.with_mode("eco")
        assert eco.core_max_watts < a64fx_power.core_max_watts
        assert eco.uncore_watts == a64fx_power.uncore_watts

    def test_boost_raises_core_power(self, a64fx_power):
        boost = a64fx_power.with_mode("boost")
        assert boost.core_max_watts == pytest.approx(
            1.17 * a64fx_power.core_max_watts)

    def test_unknown_mode_rejected(self, a64fx_power):
        with pytest.raises(ConfigurationError):
            a64fx_power.with_mode("turbo")

    def test_validation_of_spec_fields(self):
        with pytest.raises(ConfigurationError):
            PowerSpec(name="bad", uncore_watts=-1, mem_static_watts=0,
                      core_max_watts=1, core_active_idle_watts=0.5,
                      core_retention_watts=0.1, dram_pj_per_byte=30)
        with pytest.raises(ConfigurationError):
            PowerSpec(name="bad", uncore_watts=10, mem_static_watts=0,
                      core_max_watts=1, core_active_idle_watts=2,
                      core_retention_watts=0.1, dram_pj_per_byte=30)


class TestCatalogModes:
    def test_eco_halves_fma_pipes(self):
        normal = catalog.a64fx()
        eco = catalog.a64fx(eco=True)
        assert eco.node.peak_flops_fp64 == pytest.approx(
            0.5 * normal.node.peak_flops_fp64)
        assert eco.node.peak_memory_bandwidth == \
            normal.node.peak_memory_bandwidth

    def test_boost_and_eco_exclusive(self):
        with pytest.raises(ConfigurationError):
            catalog.a64fx(boost=True, eco=True)
