"""Tests for the per-core execution model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.machine.core import CoreSpec
from repro.units import GHZ


def make_core(**over) -> CoreSpec:
    base = dict(
        name="test-core",
        freq_hz=2.0 * GHZ,
        simd_bits=512,
        fma_pipes=2,
        fp_latency_cycles=9.0,
        ooo_window=64,
        issue_width=4,
        scalar_ipc=1.5,
    )
    base.update(over)
    return CoreSpec(**base)


class TestDerivedQuantities:
    def test_simd_lanes(self):
        assert make_core(simd_bits=512).simd_lanes_fp64 == 8
        assert make_core(simd_bits=128).simd_lanes_fp64 == 2

    def test_peak_flops_a64fx_like(self):
        # 2 pipes x 2 flops x 8 lanes x 2.0 GHz = 64 GFLOP/s
        assert make_core().peak_flops_fp64 == pytest.approx(64e9)

    def test_flops_per_cycle_all_fma_vector(self):
        core = make_core()
        assert core.flops_per_cycle(1.0, vector=True) == pytest.approx(32.0)

    def test_flops_per_cycle_no_fma_halves(self):
        core = make_core()
        assert core.flops_per_cycle(0.0, vector=True) == pytest.approx(16.0)

    def test_flops_per_cycle_scalar(self):
        core = make_core()
        assert core.flops_per_cycle(1.0, vector=False) == pytest.approx(4.0)

    def test_lanes_override_caps_throughput(self):
        core = make_core()
        half = core.flops_per_cycle(1.0, vector=True, lanes=4)
        assert half == pytest.approx(16.0)

    def test_lanes_override_out_of_range(self):
        # fp32 allows up to simd_bits/32 lanes (16 here); beyond is invalid
        make_core().flops_per_cycle(1.0, vector=True, lanes=16)
        with pytest.raises(ConfigurationError):
            make_core().flops_per_cycle(1.0, vector=True, lanes=32)


class TestPipelineFill:
    def test_fill_saturates_with_huge_ilp(self):
        assert make_core().pipeline_fill(1000.0) == 1.0

    def test_fill_floor(self):
        assert make_core().pipeline_fill(0.01) >= 0.05

    def test_scheduling_boost_helps(self):
        core = make_core()
        assert core.pipeline_fill(4.0, 2.0) > core.pipeline_fill(4.0, 1.0)

    def test_large_window_beats_small_window(self):
        small = make_core(ooo_window=48)
        large = make_core(ooo_window=224)
        assert large.pipeline_fill(4.0) > small.pipeline_fill(4.0)

    def test_short_latency_beats_long_latency(self):
        fast = make_core(fp_latency_cycles=4.0, ooo_window=224)
        slow = make_core(fp_latency_cycles=9.0, ooo_window=224)
        assert fast.pipeline_fill(4.0) > slow.pipeline_fill(4.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            make_core().pipeline_fill(0.0)
        with pytest.raises(ConfigurationError):
            make_core().pipeline_fill(4.0, 0.5)

    @given(ilp=st.floats(0.5, 64.0), boost=st.floats(1.0, 3.0))
    def test_fill_always_in_range(self, ilp, boost):
        fill = make_core().pipeline_fill(ilp, boost)
        assert 0.05 <= fill <= 1.0

    @given(ilp=st.floats(0.5, 64.0))
    def test_fill_monotone_in_ilp(self, ilp):
        core = make_core()
        assert core.pipeline_fill(ilp * 1.5) >= core.pipeline_fill(ilp)


class TestValidation:
    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            make_core(freq_hz=0)

    def test_rejects_bad_simd_width(self):
        with pytest.raises(ConfigurationError):
            make_core(simd_bits=100)

    def test_rejects_zero_pipes(self):
        with pytest.raises(ConfigurationError):
            make_core(fma_pipes=0)

    def test_rejects_bad_fma_fraction(self):
        with pytest.raises(ConfigurationError):
            make_core().flops_per_cycle(1.5, vector=True)

    def test_describe_mentions_name_and_simd(self):
        d = make_core().describe()
        assert "test-core" in d and "512-bit" in d
