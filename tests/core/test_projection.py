"""Tests for the SSSP performance-projection methodology."""

import numpy as np
import pytest

from repro.core import projection
from repro.errors import ConfigurationError
from repro.machine import catalog


@pytest.fixture(scope="module")
def pool():
    return projection.machine_pool()


class TestMicrobenchmarks:
    def test_basis_covers_resource_axes(self):
        assert set(projection.MICROBENCHMARKS) == {
            "stream", "dgemm", "gather", "scalar-int"}

    def test_times_positive(self):
        times = projection.microbenchmark_times(catalog.a64fx())
        assert all(t > 0 for t in times.values())

    def test_a64fx_faster_stream_than_xeon(self):
        a = projection.microbenchmark_times(catalog.a64fx())
        x = projection.microbenchmark_times(catalog.xeon_skylake())
        assert a["stream"] < x["stream"]
        assert a["scalar-int"] > x["scalar-int"]   # weak scalar side

    def test_eco_slows_dgemm_not_stream(self, pool):
        normal = projection.microbenchmark_times(pool["A64FX"])
        eco = projection.microbenchmark_times(pool["A64FX-eco"])
        assert eco["dgemm"] > 1.5 * normal["dgemm"]
        assert eco["stream"] < 1.1 * normal["stream"]


class TestFit:
    def test_weights_nonnegative_and_fit_reasonable(self, pool):
        model = projection.fit("ffvc", pool)
        assert np.all(model.weights >= 0)
        assert model.training_residual < 0.5

    def test_memory_bound_app_is_stream_dominated(self, pool):
        model = projection.fit("ffvc", pool)
        assert model.dominant_benchmark() == "stream"

    def test_too_few_machines_rejected(self):
        small = {"A64FX": catalog.a64fx()}
        with pytest.raises(ConfigurationError):
            projection.fit("ffvc", small)

    def test_predict_uses_weights(self, pool):
        model = projection.fit("ffvc", pool)
        micro = projection.microbenchmark_times(pool["A64FX"])
        manual = float(model.weights @ np.array(
            [micro[b] for b in model.benchmark_names]))
        assert model.predict(micro) == pytest.approx(manual)


class TestLeaveOneOut:
    def test_projection_within_factor_two(self):
        predicted, actual, model = projection.leave_one_out(
            "ffvc", "ThunderX2")
        assert 0.5 < predicted / actual < 2.0
        assert "ThunderX2" not in model.training_machines

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigurationError):
            projection.leave_one_out("ffvc", "Cray-1")

    def test_a4_table(self):
        table, data = projection.a4_sssp_projection(apps=["ffvc", "ngsa"])
        assert len(table.rows) == 2
        for app, (pred, actual, model) in data.items():
            assert abs(pred - actual) / actual < 1.0, app
