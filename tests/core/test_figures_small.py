"""Reduced-scope structural tests for the figure entry points (the full
paper-scale sweeps run in benchmarks/)."""

import pytest

from repro.core import figures


class TestF9WeakScalingSmall:
    def test_two_point_weak_scaling(self):
        table, data = figures.f9_weak_scaling(apps=["ffvc"],
                                              node_counts=[1, 2])
        times = data["ffvc"]
        assert len(times) == 2
        # near-flat
        assert times[1] < 1.3 * times[0]

    def test_weak_dataset_registration(self):
        from repro.miniapps import by_name

        app = by_name("ccs-qcd")
        ds = app.weak_dataset(4)
        assert ds.name == "weak-x4"
        assert app.dataset("weak-x4")["lattice"][0] == \
            4 * app.dataset("large")["lattice"][0]

    def test_weak_dataset_unsupported_app(self):
        from repro.errors import DatasetError
        from repro.miniapps import by_name

        with pytest.raises(DatasetError):
            by_name("ngsa").weak_dataset(2)

    def test_weak_dataset_bad_factor(self):
        from repro.miniapps import by_name

        with pytest.raises(ValueError):
            by_name("ffvc").weak_dataset(0)


class TestF10BreakdownSmall:
    @pytest.fixture(scope="class")
    def breakdown(self):
        return figures.f10_time_breakdown(apps=["ffvc", "ntchem"])

    def test_structure(self, breakdown):
        table, data = breakdown
        assert len(table.rows) == 2
        assert set(data) == {"ffvc", "ntchem"}

    def test_shares_bounded(self, breakdown):
        _, data = breakdown
        for app, shares in data.items():
            for label, pct in shares.items():
                assert 0.0 <= pct <= 100.0, (app, label)

    def test_compute_shares_dominate(self, breakdown):
        _, data = breakdown
        # the two compute kernels together exceed communication categories
        ffvc = data["ffvc"]
        compute = sum(v for k, v in ffvc.items()
                      if k.startswith("ffvc-"))
        comm = ffvc["p2p"] + ffvc["collective"]
        assert compute > comm


class TestCacheSharing:
    def test_shared_cache_avoids_recomputation(self):
        cache = {}
        t1, _ = figures.f1_mpi_omp_sweep(apps=["mvmc"],
                                         configs=[(4, 12)], _cache=cache)
        n_after_first = len(cache)
        t2, _ = figures.f2_thread_stride(apps=["mvmc"], _cache=cache)
        # the stride-1 compact point is NOT shared (different data policy),
        # but repeating f1 itself is fully cached
        figures.f1_mpi_omp_sweep(apps=["mvmc"], configs=[(4, 12)],
                                 _cache=cache)
        assert len(cache) >= n_after_first
        assert t1.rows == t1.rows
