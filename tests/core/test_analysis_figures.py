"""Tests for roofline analysis, cross-processor comparison, and the
figure entry points (shape assertions = the paper's findings)."""

import pytest

from repro.core import analysis, figures
from repro.core.compare import candidate_configs, compare_processors
from repro.kernels import presets
from repro.machine import catalog


@pytest.fixture(scope="module")
def a64fx():
    return catalog.a64fx()


class TestRoofline:
    def test_machine_roofline_values(self, a64fx):
        roof = analysis.machine_roofline(a64fx)
        assert roof.peak_gflops == pytest.approx(70.4, rel=0.01)
        # 12 active streams share ~210 GB/s per CMG -> ~17.5 GB/s each
        assert 15 < roof.mem_bandwidth_gbytes < 20
        assert roof.ridge_intensity > 1.0

    def test_attainable_is_min_of_ceilings(self, a64fx):
        roof = analysis.machine_roofline(a64fx)
        low_ai = roof.attainable(0.1)
        assert low_ai == pytest.approx(0.1 * roof.mem_bandwidth_gbytes)
        assert roof.attainable(1000.0) == roof.peak_gflops

    def test_triad_is_memory_bound(self, a64fx):
        p = analysis.kernel_roofline_point(presets.stream_triad(), a64fx)
        assert p.memory_bound
        assert p.arithmetic_intensity < 0.1

    def test_dgemm_is_compute_bound(self, a64fx):
        p = analysis.kernel_roofline_point(presets.dgemm_blocked(), a64fx)
        assert not p.memory_bound
        assert p.achieved_gflops > 0.5 * 70.4

    def test_achieved_never_exceeds_peak(self, a64fx):
        for k in (presets.stream_triad(), presets.dgemm_blocked(),
                  presets.complex_matvec_su3(), presets.spmv_csr(30, 1e6)):
            p = analysis.kernel_roofline_point(k, a64fx)
            assert p.achieved_gflops <= 70.4 * 1.001

    def test_app_roofline_and_summary(self, a64fx):
        from repro.miniapps import by_name
        pts = analysis.app_roofline(by_name("ffvc"), a64fx)
        assert len(pts) == 3
        assert analysis.bottleneck_summary(pts) in (
            "memory-bound", "compute-bound", "mixed")

    def test_ffvc_memory_bound_ntchem_compute_bound(self, a64fx):
        from repro.miniapps import by_name
        ffvc = analysis.app_roofline(by_name("ffvc"), a64fx)
        ntchem = analysis.app_roofline(by_name("ntchem"), a64fx)
        sor = next(p for p in ffvc if "sor" in p.kernel)
        assert sor.memory_bound          # the dominant SOR sweeps
        gemm = next(p for p in ntchem if "gemm" in p.kernel)
        assert not gemm.memory_bound


class TestComparison:
    def test_candidate_configs_valid(self):
        for proc in catalog.PROCESSORS:
            cores = catalog.by_name(proc).cores_per_node
            for r, t in candidate_configs(proc):
                assert r * t == cores

    def test_a64fx_wins_memory_bound_app(self):
        comp = compare_processors("ffvc", processors=["A64FX", "Xeon-Skylake"])
        rel = comp.relative_to("A64FX")
        assert rel["A64FX"] == 1.0
        assert rel["Xeon-Skylake"] < 0.8   # Xeon clearly slower

    def test_xeon_wins_integer_app_as_is(self):
        comp = compare_processors("ngsa", processors=["A64FX", "Xeon-Skylake"])
        rel = comp.relative_to("A64FX")
        assert rel["Xeon-Skylake"] > 1.0   # the paper's "poor performance"

    def test_compute_bound_app_comparable(self):
        comp = compare_processors("ntchem",
                                  processors=["A64FX", "Xeon-Skylake"])
        rel = comp.relative_to("A64FX")
        assert 0.5 < rel["Xeon-Skylake"] < 1.2


class TestFigureEntryPoints:
    def test_t1_lists_all_processors(self):
        t = figures.t1_processor_specs()
        assert t.column("processor") == list(catalog.PROCESSORS)

    def test_t2_lists_all_apps(self):
        t = figures.t2_miniapp_table()
        assert len(t.rows) == 8

    def test_f1_and_t3_structure(self):
        t, sweeps = figures.f1_mpi_omp_sweep(
            apps=["ffvc"], configs=[(1, 48), (4, 12), (48, 1)])
        assert len(t.rows) == 1
        t3 = figures.t3_best_config(sweeps)
        assert t3.column("miniapp") == ["ffvc"]

    def test_f2_short_strides_win_for_memory_apps(self):
        t, sweeps = figures.f2_thread_stride(apps=["ffvc", "nicam-dc"])
        assert all(flag == "yes" for flag in t.column("stride-1 wins?"))

    def test_f4_tuning_gains(self):
        t, _ = figures.f4_compiler_tuning(apps=["ngsa"])
        gain = float(t.column("gain x")[0])
        assert gain > 1.5

    def test_f7_stream_scaling_shapes(self):
        t, data = figures.f7_stream_scaling(
            thread_counts=[1, 12, 48])
        compact, scatter = data["compact"], data["scatter"]
        # scatter >= compact everywhere; equal at 1 and 48 threads
        for n in compact:
            assert scatter[n] >= compact[n] * 0.99
        assert scatter[12] > 2 * compact[12]
        assert compact[48] == pytest.approx(scatter[48], rel=0.01)
        # full-chip bandwidth ~ 790 GB/s (0.82 x 1024 derated by prefetch)
        assert 700 < compact[48] < 850

    def test_f8_scaling_reports_efficiency(self):
        t, sweeps = figures.f8_multinode_scaling(
            apps=["ffvc"], node_counts=[1, 2])
        eff = float(t.column("efficiency %")[0])
        assert 20 < eff <= 110
