"""Tests for experiment configs, the sweep runner, and metrics."""

import pytest

from repro.core.experiment import (
    ALLOCATION_SWEEP,
    COMPILER_SWEEP,
    MPI_OMP_CONFIGS,
    STRIDE_SWEEP,
    ExperimentConfig,
    single_node_configs,
)
from repro.core.metrics import (
    best_config,
    parallel_efficiency,
    relative_performance,
    speedup,
    spread,
)
from repro.core.runner import run_config, run_sweep
from repro.errors import ConfigurationError


class TestConfigSpaces:
    def test_single_node_configs_cover_divisors(self):
        cfgs = single_node_configs(48)
        assert (1, 48) in cfgs and (48, 1) in cfgs and (4, 12) in cfgs
        for r, t in cfgs:
            assert r * t == 48

    def test_paper_grid_is_valid(self):
        for r, t in MPI_OMP_CONFIGS:
            assert r * t == 48

    def test_sweep_constants_nonempty(self):
        assert STRIDE_SWEEP[0] == 1
        assert "block" in ALLOCATION_SWEEP
        assert COMPILER_SWEEP[0] == "as-is"

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(app="ffvc", options_preset="O9")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(app="ffvc", n_ranks=0)

    def test_label_contents(self):
        c = ExperimentConfig(app="ffvc", n_ranks=8, n_threads=6,
                             options_preset="as-is")
        lab = c.label()
        assert "ffvc" in lab and "8x6" in lab and "as-is" in lab

    def test_config_hashable_for_cache(self):
        a = ExperimentConfig(app="ffvc")
        b = ExperimentConfig(app="ffvc")
        assert a == b and hash(a) == hash(b)


class TestRunner:
    def test_run_config_produces_row(self):
        row = run_config(ExperimentConfig(app="ffvc", n_ranks=4, n_threads=4))
        assert row.elapsed > 0
        assert row.gflops > 0
        assert 0 <= row.comm_fraction <= 1

    def test_cache_hits(self):
        cache = {}
        c = ExperimentConfig(app="ffvc", n_ranks=2, n_threads=4)
        r1 = run_config(c, cache)
        r2 = run_config(c, cache)
        assert r1 is r2
        assert len(cache) == 1

    def test_run_sweep_preserves_order(self):
        cfgs = [ExperimentConfig(app="ffvc", n_ranks=r, n_threads=t)
                for r, t in [(1, 8), (2, 4), (4, 2)]]
        sweep = run_sweep("s", cfgs)
        assert [r.config.n_ranks for r in sweep.rows] == [1, 2, 4]

    def test_sweep_by_filter(self):
        cfgs = [ExperimentConfig(app="ffvc", n_ranks=r, n_threads=48 // r)
                for r in (1, 2, 4)]
        sweep = run_sweep("s", cfgs)
        assert len(sweep.by(n_ranks=2)) == 1
        assert sweep.by(n_ranks=99) == []

    def test_sweep_by_multiple_attrs_and_no_attrs(self):
        cfgs = [ExperimentConfig(app=a, n_ranks=r, n_threads=8 // r)
                for a in ("ffvc", "mvmc") for r in (2, 4)]
        sweep = run_sweep("s", cfgs)
        assert sweep.by() == sweep.rows
        assert len(sweep.by(app="ffvc")) == 2
        got = sweep.by(app="mvmc", n_ranks=4)
        assert len(got) == 1
        assert got[0].config.app == "mvmc" and got[0].config.n_ranks == 4

    def test_sweep_index_tracks_added_rows(self):
        cfgs = [ExperimentConfig(app="ffvc", n_ranks=2, n_threads=4)]
        sweep = run_sweep("s", cfgs)
        assert len(sweep.by(n_ranks=2)) == 1  # builds the index
        sweep.add(sweep.rows[0])              # direct append afterwards
        assert len(sweep.by(n_ranks=2)) == 2  # index rebuilt, not stale

    def test_best_per_attr(self):
        cfgs = [ExperimentConfig(app=a, n_ranks=r, n_threads=8 // r)
                for a in ("ffvc", "mvmc") for r in (1, 2, 4)]
        sweep = run_sweep("s", cfgs)
        best = sweep.best_per("app")
        assert list(best) == ["ffvc", "mvmc"]  # first-seen order
        for app, row in best.items():
            candidates = [r.elapsed for r in sweep.by(app=app)]
            assert row.elapsed == min(candidates)

    def test_empty_sweep_fastest_raises(self):
        sweep = run_sweep("empty", [])
        with pytest.raises(ValueError):
            sweep.fastest()


class TestMetrics:
    @pytest.fixture(scope="class")
    def rows(self):
        cfgs = [ExperimentConfig(app="ffvc", n_ranks=r, n_threads=48 // r)
                for r in (1, 4, 8)]
        return run_sweep("m", cfgs).rows

    def test_speedup_identity(self, rows):
        assert speedup(rows[0], rows[0]) == 1.0

    def test_parallel_efficiency_bounds(self, rows):
        eff = parallel_efficiency(rows[0], rows[1], 4)
        assert eff > 0

    def test_best_config_filtered(self):
        cfgs = [ExperimentConfig(app="ffvc", n_ranks=r, n_threads=48 // r)
                for r in (1, 4)]
        sweep = run_sweep("b", cfgs)
        assert best_config(sweep, n_ranks=4).config.n_ranks == 4
        with pytest.raises(ConfigurationError):
            best_config(sweep, n_ranks=3)

    def test_spread_zero_for_identical(self, rows):
        assert spread([rows[0], rows[0]]) == 0.0

    def test_spread_positive(self, rows):
        assert spread(rows) >= 0.0

    def test_relative_performance_reference_is_one(self):
        cfgs = [ExperimentConfig(app="ffvc", processor=p, n_ranks=4,
                                 n_threads=4)
                for p in ("A64FX", "Xeon-Skylake")]
        rows = run_sweep("rp", cfgs).rows
        rel = relative_performance(rows, "A64FX")
        assert rel["A64FX"] == 1.0
        assert rel["Xeon-Skylake"] > 0

    def test_relative_performance_missing_reference(self, rows):
        with pytest.raises(ConfigurationError):
            relative_performance(rows, "PDP-11")
