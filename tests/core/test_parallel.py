"""Tests for process-pool sweep execution.

The load-bearing property: ``run_sweep(..., workers=N)`` must be
indistinguishable from the serial run — same rows, same order, same
bytes — for any config list, including duplicates and shuffles.
"""

import json
import random

import pytest

from repro.core.cache import ResultCache
from repro.core.experiment import ExperimentConfig
from repro.core.parallel import SweepError, default_workers, run_configs
from repro.core.runner import Row, run_sweep
from repro.errors import LintError
from repro.runtime.affinity import ThreadBinding


def mixed_configs() -> list[ExperimentConfig]:
    """A small mixed F1 + F2 config list (MPI x OpenMP grid points plus
    thread-stride variants), as the paper's experiments combine them."""
    f1 = [
        ExperimentConfig(app=app, n_ranks=nr, n_threads=nt)
        for app in ("ffvc", "mvmc")
        for nr, nt in [(1, 8), (2, 4), (4, 2)]
    ]
    f2 = [
        ExperimentConfig(app="ffvc", n_ranks=4, n_threads=4,
                         binding=(ThreadBinding("compact") if s == 1
                                  else ThreadBinding("stride", stride=s)),
                         data_policy="serial-init")
        for s in (1, 4)
    ]
    return f1 + f2


#: A config whose placement cannot fit one node (2 x 48 > 48 cores).
BAD_CONFIG = ExperimentConfig(app="ffvc", n_ranks=2, n_threads=48)


def _canon(row) -> bytes:
    """Byte-exact canonical serialization of a Row (floats via repr,
    which round-trips every bit)."""
    from repro.core.persistence import row_to_dict

    return json.dumps(row_to_dict(row), sort_keys=True).encode()


class TestParallelIdentity:
    def test_parallel_rows_byte_identical_to_serial(self):
        """Property: for seeded shuffles/duplications of a mixed F1+F2
        list, workers=4 reproduces the serial rows byte-for-byte."""
        rng = random.Random(20210907)
        base = mixed_configs()
        for trial in range(2):
            configs = list(base)
            rng.shuffle(configs)
            # duplicate a few points — dedup must fan results back out
            configs += rng.sample(configs, k=3)
            serial = run_sweep("s", configs)
            parallel = run_sweep("s", configs, workers=4)
            assert serial.rows == parallel.rows
            # canonical-serialization bytes: identical config, order, and
            # every float bit (pickle bytes would differ on string
            # interning alone for configs that crossed the pool boundary)
            assert [_canon(r) for r in serial.rows] == \
                [_canon(r) for r in parallel.rows]

    def test_parallel_respects_cache(self, tmp_path):
        configs = mixed_configs()
        cache = ResultCache(tmp_path)
        first = run_sweep("warmup", configs, cache, workers=4)
        warm = ResultCache(tmp_path)
        second = run_sweep("warm", configs, warm, workers=4)
        assert [r.elapsed for r in first.rows] == \
            [r.elapsed for r in second.rows]
        assert warm.hits == len(configs)

    def test_workers_one_is_serial(self):
        configs = mixed_configs()[:2]
        assert run_sweep("a", configs, workers=1).rows == \
            run_sweep("b", configs, workers=0).rows

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import concurrent.futures

        class Unavailable:
            def __init__(self, *a, **kw):
                raise OSError("no semaphores here")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            Unavailable)
        configs = mixed_configs()[:3]
        sweep = run_sweep("fallback", configs, workers=4)
        assert len(sweep.rows) == 3

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestErrorCapture:
    def test_raise_is_default(self):
        # the pre-flight lint catches the infeasible placement before
        # any simulation time is spent
        with pytest.raises(LintError):
            run_sweep("boom", [BAD_CONFIG])

    def test_capture_keeps_surviving_rows_serial(self):
        good = mixed_configs()[:2]
        sweep = run_sweep("cap", [good[0], BAD_CONFIG, good[1]],
                          errors="capture")
        assert [r.config for r in sweep.rows] == [c for c in good]
        assert len(sweep.errors) == 1
        err = sweep.errors[0]
        assert isinstance(err, SweepError)
        assert err.config == BAD_CONFIG
        assert err.error == "LintError"
        assert "placement-infeasible" in str(err)

    def test_capture_keeps_surviving_rows_parallel(self):
        good = mixed_configs()[:3]
        sweep = run_sweep("cap", good + [BAD_CONFIG], workers=4,
                          errors="capture")
        assert len(sweep.rows) == 3
        assert len(sweep.errors) == 1

    def test_parallel_raise_propagates(self):
        with pytest.raises(LintError):
            run_sweep("boom", mixed_configs()[:2] + [BAD_CONFIG], workers=4)

    def test_bad_errors_mode_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("x", [], errors="ignore")


class TestRunConfigs:
    def test_outcomes_align_with_inputs(self):
        cfg = mixed_configs()[0]
        outcomes = run_configs([cfg, BAD_CONFIG, cfg])
        assert isinstance(outcomes[0], Row)
        assert isinstance(outcomes[1], LintError)
        assert outcomes[2] is outcomes[0]  # dedup shares the row

    def test_cache_hits_skip_dispatch(self):
        cfg = mixed_configs()[0]
        memo = {}
        run_configs([cfg], cache=memo)
        sentinel = memo[cfg]
        outcomes = run_configs([cfg], cache=memo, workers=4)
        assert outcomes[0] is sentinel
