"""Tests for the full-report generator."""

from repro.core.reportgen import generate_report, write_report


class TestReport:
    def test_quick_report_contains_fast_artifacts(self):
        text = generate_report(include_sweeps=False, include_ablations=False)
        for aid in ("T1", "T2", "F6", "F7", "P1"):
            assert f"## {aid}" in text
        assert "## F1" not in text
        assert "A64FX" in text

    def test_progress_callback_invoked(self):
        seen = []
        generate_report(include_sweeps=False, include_ablations=False,
                        progress=seen.append)
        assert sorted(seen) == ["F6", "F7", "P1", "T1", "T2"]

    def test_profile_artifact_last_and_fapp_shaped(self):
        text = generate_report(include_sweeps=False, include_ablations=False)
        assert text.index("## P1") > text.index("## F7")
        profile_section = text.split("## P1")[1]
        assert "cycle" in profile_section or "GF/s" in profile_section

    def test_write_report_roundtrip(self, tmp_path):
        out = write_report(tmp_path / "r.md", include_sweeps=False,
                           include_ablations=False)
        assert out.exists()
        assert out.read_text().startswith("# Reproduction report")

    def test_tables_are_fenced(self):
        text = generate_report(include_sweeps=False, include_ablations=False)
        assert text.count("```") % 2 == 0
        assert text.count("```") >= 8
