"""Tests for the Monte-Carlo statistics utilities."""

import numpy as np
import pytest

from repro.core.stats import ar1_series, binning_analysis, jackknife
from repro.errors import ConfigurationError


class TestBinning:
    def test_iid_series_plateau_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4096)
        res = binning_analysis(x)
        assert res.error == pytest.approx(res.naive_error, rel=0.35)
        assert res.tau_int < 1.2
        assert not res.correlated or res.tau_int < 1.5

    def test_correlated_series_detected(self):
        rng = np.random.default_rng(1)
        x = ar1_series(16384, rho=0.9, rng=rng)
        res = binning_analysis(x)
        # exact tau_int for rho = 0.9 is 9.5
        assert res.correlated
        assert 4.0 < res.tau_int < 20.0
        assert res.error > 2.5 * res.naive_error

    def test_mean_unbiased(self):
        rng = np.random.default_rng(2)
        x = ar1_series(8192, rho=0.5, rng=rng, mean=3.0)
        res = binning_analysis(x)
        assert res.mean == pytest.approx(3.0, abs=5 * res.error)

    def test_error_covers_truth_for_ar1(self):
        """The binning error bar should cover the true mean most of the
        time; check a handful of independent chains."""
        covered = 0
        for seed in range(10):
            rng = np.random.default_rng(100 + seed)
            x = ar1_series(8192, rho=0.8, rng=rng, mean=1.0)
            res = binning_analysis(x)
            if abs(res.mean - 1.0) < 3 * res.error:
                covered += 1
        assert covered >= 8

    def test_too_short_series_rejected(self):
        with pytest.raises(ConfigurationError):
            binning_analysis(np.ones(10))

    def test_levels_reported(self):
        rng = np.random.default_rng(3)
        res = binning_analysis(rng.standard_normal(1024))
        assert len(res.errors_per_level) >= 4


class TestJackknife:
    def test_linear_estimator_matches_mean(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(2000) + 5.0
        est, err = jackknife(x, np.mean)
        assert est == pytest.approx(float(x[:2000 - 2000 % 20].mean()),
                                    abs=1e-10)
        assert err > 0

    def test_nonlinear_estimator_bias_corrected(self):
        """E[x]^2 from finite samples is biased; jackknife removes most."""
        rng = np.random.default_rng(5)
        true = 4.0
        estimates = []
        for _ in range(200):
            x = rng.standard_normal(400) + 2.0
            est, _ = jackknife(x, lambda s: float(np.mean(s)) ** 2)
            estimates.append(est)
        # statistical check: within ~3 standard errors of the truth
        sem = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - true) < 3 * sem + 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jackknife(np.ones(100), np.mean, n_blocks=1)
        with pytest.raises(ConfigurationError):
            jackknife(np.ones(5), np.mean, n_blocks=10)


class TestAr1:
    def test_autocorrelation_structure(self):
        rng = np.random.default_rng(6)
        x = ar1_series(50_000, rho=0.7, rng=rng)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1 == pytest.approx(0.7, abs=0.03)

    def test_variance_normalized(self):
        rng = np.random.default_rng(7)
        x = ar1_series(50_000, rho=0.6, rng=rng, sigma=2.0)
        assert x.std() == pytest.approx(2.0, rel=0.05)

    def test_rho_validation(self):
        with pytest.raises(ConfigurationError):
            ar1_series(100, rho=1.0, rng=np.random.default_rng(0))


class TestIntegrationWithVmc:
    def test_hubbard_energy_with_binning(self):
        """End-to-end: VMC chain + binning gives an error bar that covers
        the variational energy estimate."""
        from repro.miniapps.mvmc import hubbard as hb

        adj = hb.ring_adjacency(6)
        vmc = hb.HubbardVmc(adj, 3, 3, u=2.0)
        rng = np.random.default_rng(8)
        moves = len(vmc.up.occupied) + len(vmc.dn.occupied)
        for _ in range(50 * moves):
            vmc.step(rng)
        samples = []
        for _ in range(1024):
            for _ in range(moves):
                vmc.step(rng)
            samples.append(vmc.local_energy())
        res = binning_analysis(samples)
        assert res.error >= res.naive_error * 0.9
        # the variational energy sits above the exact ground state
        e_exact = hb.exact_ground_energy(adj, 3, 3, u=2.0)
        assert res.mean + 4 * res.error > e_exact
