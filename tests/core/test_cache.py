"""Tests for the persistent content-addressed result cache."""

import dataclasses
import json

import pytest

import repro.core.cache as cache_mod
from repro.core.cache import (
    ResultCache,
    config_digest,
    default_cache_dir,
    model_fingerprint,
)
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_config
from repro.errors import ConfigurationError
from repro.runtime.affinity import ThreadBinding


CFG = ExperimentConfig(app="ffvc", n_ranks=2, n_threads=4)


class TestKeys:
    def test_equal_configs_same_digest(self):
        a = ExperimentConfig(app="ffvc", n_ranks=2, n_threads=4)
        b = ExperimentConfig(app="ffvc", n_ranks=2, n_threads=4)
        assert config_digest(a) == config_digest(b)

    def test_every_axis_changes_digest(self):
        base = config_digest(CFG)
        for other in [
            dataclasses.replace(CFG, app="mvmc"),
            dataclasses.replace(CFG, dataset="large"),
            dataclasses.replace(CFG, n_ranks=4, n_threads=2),
            dataclasses.replace(CFG, data_policy="serial-init"),
            dataclasses.replace(CFG,
                                binding=ThreadBinding("stride", stride=4)),
            dataclasses.replace(CFG, options_preset="as-is"),
        ]:
            assert config_digest(other) != base

    def test_tuple_keys_extend_the_digest(self):
        assert config_digest((CFG, 256)) != config_digest(CFG)
        assert config_digest((CFG, 256)) != config_digest((CFG, 512))
        assert config_digest((CFG, 256)) == config_digest((CFG, 256))

    def test_uncacheable_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            config_digest("not-a-config")
        with pytest.raises(ConfigurationError):
            config_digest((CFG, object()))

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path / "x"))
        assert default_cache_dir() == tmp_path / "x"


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(CFG) is None
        row = run_config(CFG, cache)
        assert cache.get(CFG) == row
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] >= 1
        assert CFG in cache and len(cache) == 1

    def test_dict_protocol(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = run_config(CFG)
        cache[CFG] = row
        assert cache[CFG] == row
        with pytest.raises(KeyError):
            cache[dataclasses.replace(CFG, app="mvmc")]

    def test_persists_across_instances(self, tmp_path):
        row = run_config(CFG, ResultCache(tmp_path))
        reopened = ResultCache(tmp_path)
        assert reopened.get(CFG) == row

    def test_run_config_serves_cached_row(self, tmp_path):
        cache = ResultCache(tmp_path)
        r1 = run_config(CFG, cache)
        r2 = run_config(CFG, ResultCache(tmp_path))
        assert r1 == r2

    def test_lru_bound(self, tmp_path):
        cache = ResultCache(tmp_path, max_memory_entries=2)
        rows = {}
        for app in ("ffvc", "mvmc", "ngsa"):
            cfg = dataclasses.replace(CFG, app=app)
            rows[app] = run_config(cfg, cache)
        assert len(cache) == 2  # oldest evicted from memory
        # ...but all three survive on disk
        assert len(ResultCache(tmp_path)) == 3

    def test_clear_wipes_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_config(CFG, cache)
        cache.clear()
        assert len(cache) == 0
        assert not cache.path.exists()
        assert ResultCache(tmp_path).get(CFG) is None


class TestCorruptionRecovery:
    def test_truncated_line_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = run_config(CFG, cache)
        with open(cache.path, "a") as fh:
            fh.write('{"format": 1, "fp": "deadbeef", "key": "tru')  # no \n
        reopened = ResultCache(tmp_path)
        assert reopened.get(CFG) == row
        assert reopened.torn_lines == 1

    def test_garbage_lines_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = run_config(CFG, cache)
        text = cache.path.read_text()
        cache.path.write_text("not json at all\n\n" + text
                              + '{"format": 1}\n')
        reopened = ResultCache(tmp_path)
        assert reopened.get(CFG) == row
        assert len(reopened) == 1
        # "not json at all" is torn; '{"format": 1}' has no fingerprint,
        # which reads as expected invalidation rather than corruption
        assert reopened.torn_lines == 1
        assert reopened.stats()["torn_lines"] == 1

    def test_unreadable_file_is_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.get(CFG) is None
        assert cache.torn_lines == 0

    def test_torn_write_counted_and_keeps_rest(self, tmp_path, recwarn):
        """Regression: a run killed mid-append leaves a truncated JSONL
        line; loading must keep every intact record and account for the
        torn line via the ``torn_lines`` counter / ``cache.torn_lines``
        telemetry metric — not a one-shot warning, and never raising."""
        cache = ResultCache(tmp_path)
        row = run_config(CFG, cache)
        with open(cache.path, "a") as fh:
            fh.write('{"format": 1, "fp": "')   # torn mid-record, no \n
        reopened = ResultCache(tmp_path)
        assert reopened.get(CFG) == row
        assert len(reopened) == 1
        assert reopened.torn_lines == 1
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]

    def test_clean_file_counts_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = run_config(CFG, cache)
        reopened = ResultCache(tmp_path)
        assert reopened.get(CFG) == row
        assert reopened.torn_lines == 0

    def test_stale_fingerprint_is_not_corruption(self, tmp_path):
        """Records under an older model fingerprint are expected
        invalidation — they must be skipped silently, not counted as
        torn lines."""
        cache = ResultCache(tmp_path)
        run_config(CFG, cache)
        text = cache.path.read_text()
        rec = json.loads(text.splitlines()[0])
        rec["fp"] = "0123456789abcdef"
        cache.path.write_text(text + json.dumps(rec) + "\n")
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.torn_lines == 0


class TestFingerprint:
    def test_stable_within_process(self):
        assert model_fingerprint() == model_fingerprint()

    def test_catalog_change_invalidates(self, tmp_path, monkeypatch):
        from repro.machine import catalog

        cache = ResultCache(tmp_path)
        row = run_config(CFG, cache)
        old_fp = cache.fingerprint

        # double one catalog parameter: the fingerprint must move and
        # previously cached rows must stop being served
        original = catalog.PROCESSORS["A64FX"]

        def tweaked(n_nodes=1, **kw):
            cluster = original(n_nodes=n_nodes, **kw)
            return dataclasses.replace(
                cluster, shm_bandwidth=cluster.shm_bandwidth * 2)

        monkeypatch.setitem(catalog.PROCESSORS, "A64FX", tweaked)
        monkeypatch.setattr(cache_mod, "_fingerprint_memo", None)

        stale = ResultCache(tmp_path)
        assert stale.fingerprint != old_fp
        assert stale.get(CFG) is None
        # a rerun under the new model repopulates under the new fingerprint
        fresh_row = run_config(CFG, stale)
        assert stale.get(CFG) == fresh_row
        assert row is not fresh_row

    def test_version_is_part_of_fingerprint(self, monkeypatch):
        import repro

        before = model_fingerprint(refresh=True)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        after = model_fingerprint(refresh=True)
        monkeypatch.undo()
        model_fingerprint(refresh=True)  # restore the memo
        assert before != after

    def test_disk_record_carries_fingerprint(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_config(CFG, cache)
        rec = json.loads(cache.path.read_text().splitlines()[0])
        assert rec["fp"] == cache.fingerprint
        assert rec["key"] == config_digest(CFG)


class TestCompact:
    def _rows(self, cache, n=3):
        configs = [ExperimentConfig(app="ffvc", n_ranks=r, n_threads=2)
                   for r in (1, 2, 4)[:n]]
        return {c: run_config(c, cache) for c in configs}

    def test_compact_empty_cache_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = cache.compact()
        assert stats["kept"] == 0 and stats["bytes_before"] == 0
        assert not cache.path.exists()

    def test_compact_drops_torn_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        rows = self._rows(cache)
        with open(cache.path, "a") as fh:
            fh.write('{"format": 1, "fp": "x", "key": "y", "row"\n')
            fh.write("utter garbage\n")
        stats = ResultCache(tmp_path).compact()
        assert stats["dropped_torn"] == 2
        assert stats["kept"] == len(rows)
        fresh = ResultCache(tmp_path)
        for config, row in rows.items():
            assert fresh.get(config) == row
        assert fresh.torn_lines == 0

    def test_compact_keeps_the_last_duplicate(self, tmp_path):
        cache = ResultCache(tmp_path)
        rows = self._rows(cache, n=2)
        config = next(iter(rows))
        # re-append the same key twice more (the append-only path never
        # rewrites): three records, one key
        cache._append(config_digest(config), rows[config])
        cache._append(config_digest(config), rows[config])
        stats = ResultCache(tmp_path).compact()
        assert stats["dropped_duplicates"] == 2
        assert stats["kept"] == len(rows)
        assert stats["bytes_after"] < stats["bytes_before"]
        assert ResultCache(tmp_path).get(config) == rows[config]

    def test_compact_replace_is_atomic(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._rows(cache)
        cache.compact()
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name != cache.path.name]
        assert leftovers == []  # no temp files left behind

    def test_compact_stale_fingerprints(self, tmp_path):
        cache = ResultCache(tmp_path)
        rows = self._rows(cache, n=2)
        config = next(iter(rows))
        stale = {"format": cache_mod.CACHE_FORMAT, "fp": "0" * 16,
                 "key": config_digest(config),
                 "row": json.loads(cache.path.read_text()
                                   .splitlines()[0])["row"]}
        with open(cache.path, "a") as fh:
            fh.write(json.dumps(stale) + "\n")
        # default: stale rows survive (another build may still use them)
        stats = ResultCache(tmp_path).compact()
        assert stats["dropped_stale"] == 0 and stats["kept"] == 3
        # opt-in: drop them
        stats = ResultCache(tmp_path).compact(keep_stale=False)
        assert stats["dropped_stale"] == 1 and stats["kept"] == 2
        assert ResultCache(tmp_path).get(config) == rows[config]

    def test_compact_reloads_memory_layer(self, tmp_path):
        cache = ResultCache(tmp_path)
        rows = self._rows(cache, n=2)
        cache.compact()
        for config, row in rows.items():
            assert cache.get(config) == row
