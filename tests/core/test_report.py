"""Tests for the report tables."""

import pytest

from repro.core.report import Table
from repro.errors import ConfigurationError


class TestTable:
    def test_render_contains_everything(self):
        t = Table("demo", ["a", "b"], note="hello")
        t.add("x", 1.5)
        out = t.render()
        assert "demo" in out and "a" in out and "x" in out
        assert "1.500" in out and "note: hello" in out

    def test_float_formatting(self):
        t = Table("f", ["v"])
        t.add(12345.6)
        t.add(42.42)
        t.add(1.23456)
        t.add(0.0)
        assert t.column("v") == ["12,346", "42.4", "1.235", "0"]

    def test_row_width_mismatch_rejected(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ConfigurationError):
            t.add("only-one")

    def test_csv_roundtrip_structure(self):
        t = Table("t", ["name", "value"])
        t.add("with,comma", 1.0)
        csv = t.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "name,value"
        assert lines[1].startswith('"with,comma"')

    def test_csv_escapes_quotes(self):
        t = Table("t", ["q"])
        t.add('say "hi"')
        assert '"say ""hi"""' in t.to_csv()

    def test_column_lookup(self):
        t = Table("t", ["a", "b"])
        t.add(1, 2)
        t.add(3, 4)
        assert t.column("b") == ["2", "4"]
        with pytest.raises(ConfigurationError):
            t.column("c")

    def test_alignment_is_stable(self):
        t = Table("t", ["col"])
        t.add("short")
        t.add("a-much-longer-cell")
        lines = t.render().splitlines()
        # header separator matches the widest cell
        assert len(lines[2]) == len("a-much-longer-cell")
