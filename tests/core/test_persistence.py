"""Tests for JSON sweep persistence."""

import json

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.persistence import (
    SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
    load_sweep,
    save_sweep,
)
from repro.core.runner import run_sweep
from repro.errors import ConfigurationError
from repro.runtime.affinity import ThreadBinding


@pytest.fixture(scope="module")
def sweep():
    cfgs = [
        ExperimentConfig(app="ffvc", n_ranks=r, n_threads=48 // r)
        for r in (1, 4)
    ] + [
        ExperimentConfig(app="ffvc", n_ranks=4, n_threads=12,
                         binding=ThreadBinding("stride", stride=4),
                         options_preset="as-is", data_policy="serial-init"),
    ]
    return run_sweep("persist-me", cfgs)


class TestRoundTrip:
    def test_sweep_round_trips_exactly(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "sweep.json")
        loaded = load_sweep(path)
        assert loaded.name == sweep.name
        assert len(loaded.rows) == len(sweep.rows)
        for a, b in zip(loaded.rows, sweep.rows):
            assert a.config == b.config
            assert a.elapsed == b.elapsed
            assert a.gflops == b.gflops

    def test_loaded_rows_usable_by_metrics(self, sweep, tmp_path):
        from repro.core.metrics import best_config

        loaded = load_sweep(save_sweep(sweep, tmp_path / "s.json"))
        assert best_config(loaded).elapsed == sweep.fastest().elapsed

    def test_config_dict_round_trip_covers_all_fields(self):
        cfg = ExperimentConfig(app="ngsa", dataset="large",
                               processor="ThunderX2", n_nodes=2,
                               n_ranks=8, n_threads=6,
                               binding=ThreadBinding("scatter"),
                               options_preset="tuned",
                               data_policy="serial-init")
        assert config_from_dict(config_to_dict(cfg)) == cfg


class TestExactRoundTrip:
    def test_data_policy_and_stride_survive(self, tmp_path):
        cfg = ExperimentConfig(app="ffb", n_ranks=4, n_threads=12,
                               binding=ThreadBinding("stride", stride=12),
                               data_policy="serial-init")
        loaded = config_from_dict(config_to_dict(cfg))
        assert loaded.data_policy == "serial-init"
        assert loaded.binding.policy == "stride"
        assert loaded.binding.stride == 12
        assert loaded == cfg

    def test_save_is_atomic(self, sweep, tmp_path):
        save_sweep(sweep, tmp_path / "s.json")
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestErrorHandling:
    def test_newer_schema_rejected_with_clear_message(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "new.json")
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="newer"):
            load_sweep(path)

    def test_prehistoric_schema_rejected(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "old.json")
        payload = json.loads(path.read_text())
        payload["schema"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_sweep(path)

    def test_non_integer_schema_rejected(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "bad.json")
        payload = json.loads(path.read_text())
        for bad in (None, "1", 1.5):
            payload["schema"] = bad
            path.write_text(json.dumps(payload))
            with pytest.raises(ConfigurationError):
                load_sweep(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_sweep(tmp_path / "nope.json")

    def test_corrupt_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_sweep(bad)

    def test_malformed_config_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"app": "ffvc"})
