"""Resilient sweep execution: retries, crash recovery, journal, resume.

The acceptance property for resume: a sweep killed mid-run and
restarted with ``resume=True`` produces a SweepResult row-for-row
identical to the uninterrupted run.
"""

import multiprocessing
import os

import pytest

import repro.core.parallel as par
from repro.core.cache import ResultCache
from repro.core.experiment import ExperimentConfig
from repro.core.journal import SweepJournal
from repro.core.parallel import RetryPolicy, SweepError, run_configs
from repro.core.runner import QUARANTINE_AFTER, Row, run_sweep
from repro.errors import ConfigurationError

CONFIGS = [ExperimentConfig(app="ffvc", n_ranks=1, n_threads=t)
           for t in (1, 2, 3, 4)]

#: Placement that cannot fit one node; with the lint gate off the error
#: fires at simulation time, exercising the per-row capture path.
BAD_CONFIG = ExperimentConfig(app="ffvc", n_ranks=2, n_threads=48)

FAST = RetryPolicy(max_attempts=3, backoff_s=0.01, timeout_s=60.0)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-patching tests rely on fork inheritance")


@pytest.fixture
def no_lint(monkeypatch):
    """Disable the pre-flight lint gate for this test.

    Patches both the environment (picked up by freshly spawned workers)
    and the analyzer's in-process flag, which is snapshotted at import
    time and therefore unaffected by setenv alone.
    """
    from repro.analysis import analyzer

    monkeypatch.setenv("REPRO_NO_LINT", "1")
    monkeypatch.setattr(analyzer, "_enabled", False)


class TestRetryPolicy:
    def test_defaults_sane(self):
        p = RetryPolicy()
        assert p.max_attempts >= 1 and p.timeout_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)


class TestErrorDiagnostics:
    def test_serial_capture_carries_traceback_and_pid(self, no_lint):
        sweep = run_sweep("diag", [CONFIGS[0], BAD_CONFIG], {},
                          errors="capture")
        assert len(sweep.rows) == 1
        err = sweep.errors[0]
        assert err.error == "PlacementError"
        assert "Traceback (most recent call last)" in err.traceback
        assert err.worker_pid == os.getpid()   # serial path = parent
        assert f"[pid {err.worker_pid}]" in str(err)
        assert err.traceback.rstrip().splitlines()[-1] in err.details()

    @fork_only
    def test_pool_capture_carries_worker_pid(self, no_lint):
        sweep = run_sweep("diag", CONFIGS[:2] + [BAD_CONFIG], {},
                          workers=2, errors="capture")
        err = sweep.errors[0]
        assert err.worker_pid is not None
        assert err.worker_pid != os.getpid()   # raised in a worker
        assert "PlacementError" in err.details()

    def test_details_without_traceback_is_header_only(self):
        err = SweepError(config=CONFIGS[0], error="X", message="boom")
        assert err.details() == str(err)


class TestOnResultCallback:
    def test_fresh_completions_reported_in_completion_order(self):
        seen = []
        run_configs(CONFIGS[:3], cache=None,
                    on_result=lambda c, ok, v: seen.append((c, ok)))
        assert [c for c, _ in seen] == CONFIGS[:3]
        assert all(ok for _, ok in seen)

    def test_cache_hits_not_reported(self):
        memo = {}
        run_configs(CONFIGS[:2], cache=memo)
        seen = []
        run_configs(CONFIGS[:2], cache=memo,
                    on_result=lambda c, ok, v: seen.append(c))
        assert seen == []

    def test_rows_checkpointed_into_cache_at_completion(self):
        memo = {}
        sizes = []
        run_configs(CONFIGS[:3], cache=memo,
                    on_result=lambda c, ok, v: sizes.append(len(memo)))
        # by the time each completion is observed, its row is cached
        assert sizes == [1, 2, 3]


class TestWorkerCrashRecovery:
    @fork_only
    def test_broken_pool_recovers_all_rows(self, tmp_path, monkeypatch):
        """A worker hard-killed mid-sweep (BrokenProcessPool) loses only
        its in-flight config; retries recover every row."""
        marker = tmp_path / "crashed-once"
        real = par.run_config

        def flaky(config):
            if config.n_threads == 3 and not marker.exists():
                marker.touch()
                os._exit(42)       # simulate an OOM-killed worker
            return real(config)

        monkeypatch.setattr(par, "run_config", flaky)
        out = par.run_configs(CONFIGS, workers=2, retry=FAST)
        assert all(isinstance(o, Row) for o in out)
        assert marker.exists()

    @fork_only
    def test_persistently_crashing_worker_exhausts_to_serial(
            self, monkeypatch):
        """A config that always kills its worker ends up re-dispatched
        serially in the parent — where its os._exit would kill the test
        process, so the serial fallback must be reached with the *real*
        function. We verify by counting pool passes."""
        real = par.run_config
        passes = []
        real_pass = par._one_pool_pass

        def counting_pass(configs, workers, note, policy):
            passes.append(len(configs))
            return real_pass(configs, workers, note, policy)

        def flaky(config):
            # crash only in workers (parent pid differs)
            if config.n_threads == 3 and os.getppid() == parent:
                os._exit(42)
            return real(config)

        parent = os.getpid()
        monkeypatch.setattr(par, "run_config", flaky)
        monkeypatch.setattr(par, "_one_pool_pass", counting_pass)
        out = par.run_configs(CONFIGS, workers=2, retry=FAST)
        assert all(isinstance(o, Row) for o in out)
        assert len(passes) >= 2          # pool retried before going serial
        assert passes[0] == len(CONFIGS)


class TestJournal:
    def test_round_trip(self, tmp_path):
        j = SweepJournal(tmp_path / "j.jsonl")
        j.record("s", CONFIGS[0], ok=True)
        j.record("s", CONFIGS[1], ok=False, exc=ValueError("boom"))
        j2 = SweepJournal(tmp_path / "j.jsonl")
        assert j2.status("s", CONFIGS[0])["done"]
        bad = j2.status("s", CONFIGS[1])
        assert bad["fails"] == 1
        assert bad["error"] == "ValueError" and bad["message"] == "boom"
        assert j2.failures("s", CONFIGS[1]) == 1
        assert j2.failures("s", CONFIGS[2]) == 0

    def test_success_clears_strikes(self, tmp_path):
        j = SweepJournal(tmp_path / "j.jsonl")
        j.record("s", CONFIGS[0], ok=False, exc=ValueError("x"))
        j.record("s", CONFIGS[0], ok=False, exc=ValueError("x"))
        j.record("s", CONFIGS[0], ok=True)
        assert SweepJournal(tmp_path / "j.jsonl") \
            .failures("s", CONFIGS[0]) == 0

    def test_torn_line_tolerated(self, tmp_path):
        j = SweepJournal(tmp_path / "j.jsonl")
        j.record("s", CONFIGS[0], ok=True)
        with open(j.path, "a") as fh:
            fh.write('{"format": 1, "sweep": "s"')   # torn
        j2 = SweepJournal(j.path)
        assert j2.status("s", CONFIGS[0])["done"]

    def test_sweeps_are_namespaced(self, tmp_path):
        j = SweepJournal(tmp_path / "j.jsonl")
        j.record("a", CONFIGS[0], ok=False, exc=ValueError("x"))
        assert j.failures("b", CONFIGS[0]) == 0

    def test_for_cache_needs_directory(self, tmp_path):
        assert SweepJournal.for_cache({}) is None
        assert SweepJournal.for_cache(None) is None
        j = SweepJournal.for_cache(ResultCache(tmp_path))
        assert j is not None and j.path.parent == tmp_path


class _InterruptNth:
    """Raise KeyboardInterrupt when the Nth fresh config starts."""

    def __init__(self, real, n):
        self.real, self.n, self.count = real, n, 0

    def __call__(self, config):
        self.count += 1
        if self.count == self.n:
            raise KeyboardInterrupt
        return self.real(config)


class TestResume:
    def test_resume_requires_persistent_cache(self):
        with pytest.raises(ConfigurationError):
            run_sweep("r", CONFIGS, {}, resume=True)
        with pytest.raises(ConfigurationError):
            run_sweep("r", CONFIGS, None, resume=True)

    def test_killed_sweep_resumes_row_identical(self, tmp_path,
                                                monkeypatch):
        """The acceptance criterion: interrupt after 2 of 4 configs,
        restart with resume=True, get the uninterrupted result."""
        reference = run_sweep("ref", list(CONFIGS), {})

        cache = ResultCache(tmp_path)
        monkeypatch.setattr(par, "run_config",
                            _InterruptNth(par.run_config, 3))
        with pytest.raises(KeyboardInterrupt):
            run_sweep("f1x", list(CONFIGS), cache)
        monkeypatch.undo()

        # the two finished rows were checkpointed before the kill
        survivors = ResultCache(tmp_path)
        assert sum(c in survivors for c in CONFIGS) == 2

        resumed = run_sweep("f1x", list(CONFIGS), ResultCache(tmp_path),
                            resume=True)
        assert [r.config for r in resumed.rows] \
            == [r.config for r in reference.rows]
        assert [r.elapsed for r in resumed.rows] \
            == [r.elapsed for r in reference.rows]
        assert resumed.errors == []

    def test_repeat_failures_quarantined_on_resume(self, tmp_path):
        cache = ResultCache(tmp_path)
        journal = SweepJournal.for_cache(cache)
        bad = CONFIGS[1]
        for _ in range(QUARANTINE_AFTER):
            journal.record("q", bad, ok=False,
                           exc=RuntimeError("kernel exploded"))

        sweep = run_sweep("q", list(CONFIGS), cache, resume=True)
        assert len(sweep.rows) == len(CONFIGS) - 1
        assert bad not in [r.config for r in sweep.rows]
        [err] = sweep.errors
        assert err.config == bad
        assert err.attempts == QUARANTINE_AFTER
        assert "quarantined" in err.message

    def test_below_threshold_failures_retry_on_resume(self, tmp_path):
        cache = ResultCache(tmp_path)
        journal = SweepJournal.for_cache(cache)
        journal.record("q", CONFIGS[1], ok=False, exc=RuntimeError("once"))

        sweep = run_sweep("q", list(CONFIGS), cache, resume=True)
        assert len(sweep.rows) == len(CONFIGS)
        assert sweep.errors == []

    def test_journal_written_alongside_persistent_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep("jz", CONFIGS[:2], cache)
        journal = SweepJournal.for_cache(ResultCache(tmp_path))
        assert journal.path.exists()
        for config in CONFIGS[:2]:
            assert journal.status("jz", config)["done"]

    def test_plain_dict_cache_writes_no_journal(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "unused"))
        run_sweep("nz", CONFIGS[:1], {})
        assert not (tmp_path / "unused").exists()


class TestFigurePassthrough:
    def test_f1_resume_quarantine_blanks_cell(self, tmp_path):
        """A quarantined grid point must blank its table cell, not shift
        the row."""
        from repro.core.figures import f1_mpi_omp_sweep

        cache = ResultCache(tmp_path)
        grid = [(1, 1), (1, 2)]
        bad = ExperimentConfig(app="ffvc", n_ranks=1, n_threads=2)
        journal = SweepJournal.for_cache(cache)
        for _ in range(QUARANTINE_AFTER):
            journal.record("f1-ffvc", bad, ok=False,
                           exc=RuntimeError("boom"))

        table, sweeps = f1_mpi_omp_sweep(
            apps=["ffvc"], configs=grid, cache=cache, resume=True)
        assert len(sweeps["ffvc"].rows) == 1
        assert len(sweeps["ffvc"].errors) == 1
        # the rendered row keeps both columns (nan cell, not a shift)
        assert len(table.rows[0]) == 1 + len(grid)
