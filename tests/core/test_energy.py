"""Tests for energy-to-solution estimation and the mode study."""

import pytest

from repro.core.energy import (
    EnergyReport,
    estimate_energy,
    mode_study,
    utilization_from_result,
)
from repro.errors import ConfigurationError
from repro.machine import catalog
from repro.miniapps import by_name
from repro.runtime import JobPlacement, run_job


@pytest.fixture(scope="module")
def run():
    cluster = catalog.a64fx()
    placement = JobPlacement(cluster, 4, 12)
    app = by_name("ffvc")
    result = run_job(app.build_job(cluster, placement, "as-is"))
    return cluster, placement, result


class TestEstimateEnergy:
    def test_basic_report(self, run):
        cluster, placement, result = run
        rep = estimate_energy(result, cluster, placement)
        assert rep.mode == "normal"
        assert rep.energy_joules == pytest.approx(
            rep.average_watts * rep.elapsed_s)
        assert rep.flops_per_joule > 0
        assert rep.gflops_per_watt == pytest.approx(
            rep.flops_per_joule / 1e9)

    def test_power_in_plausible_band(self, run):
        cluster, placement, result = run
        rep = estimate_energy(result, cluster, placement)
        assert 60 < rep.average_watts < 180

    def test_eco_pricing_lowers_power(self, run):
        cluster, placement, result = run
        normal = estimate_energy(result, cluster, placement, "normal")
        eco = estimate_energy(result, cluster, placement, "eco")
        assert eco.average_watts < normal.average_watts

    def test_fewer_active_cores_less_power(self):
        cluster = catalog.a64fx()
        app = by_name("ffvc")
        watts = []
        for nr, nt in [(1, 12), (4, 12)]:
            pl = JobPlacement(cluster, nr, nt)
            res = run_job(app.build_job(cluster, pl, "as-is"))
            watts.append(estimate_energy(res, cluster, pl).average_watts)
        assert watts[0] < watts[1]

    def test_utilization_bounds(self, run):
        _, _, result = run
        assert 0.0 <= utilization_from_result(result) <= 1.0


class TestModeStudy:
    @pytest.fixture(scope="class")
    def ffvc_modes(self):
        return mode_study("ffvc")

    def test_all_modes_present(self, ffvc_modes):
        assert set(ffvc_modes) == {"normal", "eco", "boost"}
        assert all(isinstance(r, EnergyReport) for r in ffvc_modes.values())

    def test_memory_bound_eco_is_nearly_free(self, ffvc_modes):
        assert ffvc_modes["eco"].elapsed_s < \
            1.1 * ffvc_modes["normal"].elapsed_s

    def test_memory_bound_eco_improves_efficiency(self, ffvc_modes):
        assert ffvc_modes["eco"].gflops_per_watt > \
            ffvc_modes["normal"].gflops_per_watt

    def test_boost_is_fastest_or_equal(self, ffvc_modes):
        assert ffvc_modes["boost"].elapsed_s <= \
            ffvc_modes["normal"].elapsed_s * 1.001
