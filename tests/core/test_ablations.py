"""Unit tests for the ablation-study helpers (reduced scopes; the full
sweeps run in benchmarks/)."""

import pytest

from repro.core import ablations


class TestVectorLength:
    def test_vl_monotone_for_compute_bound(self):
        _, data = ablations.a1_vector_length(apps=["ntchem"], _cache={})
        times = data["ntchem"]
        assert times[512] < times[256] < times[128]

    def test_table_has_unit_baseline(self):
        table, _ = ablations.a1_vector_length(apps=["ffvc"], _cache={})
        assert table.column("VL-128") == ["1.000"]


class TestPowerModes:
    def test_single_app_study(self):
        table, data = ablations.a2_power_modes(apps=["ffvc"])
        assert set(data["ffvc"]) == {"normal", "eco", "boost"}
        assert len(table.rows) == 1

    def test_boost_draws_more_power(self):
        _, data = ablations.a2_power_modes(apps=["ntchem"])
        reps = data["ntchem"]
        assert reps["boost"].average_watts > reps["normal"].average_watts \
            > reps["eco"].average_watts


class TestMicroarchitecture:
    @pytest.fixture(scope="class")
    def data(self):
        _, data = ablations.a3_microarchitecture(apps=["mvmc", "ffvc"])
        return data

    def test_knobs_present(self, data):
        assert set(data["mvmc"]) == {"ooo-224", "fp-lat-4", "line-64B"}

    def test_low_ilp_app_gains_from_window(self, data):
        assert data["mvmc"]["ooo-224"] > data["ffvc"]["ooo-224"]

    def test_variants_share_memory_system(self):
        """The variants must only change what they claim to change."""
        base = ablations.catalog.a64fx()
        var = ablations._a64fx_variant(ooo_window=224)
        assert var.node.peak_memory_bandwidth == \
            base.node.peak_memory_bandwidth
        assert var.node.peak_flops_fp64 == base.node.peak_flops_fp64
        line = ablations._a64fx_line_variant(64)
        assert line.node.chips[0].domains[0].l2.line_bytes == 64
        assert line.node.chips[0].domains[0].l2.capacity_bytes == \
            base.node.chips[0].domains[0].l2.capacity_bytes
