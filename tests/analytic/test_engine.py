"""Agreement, determinism, and guard-rail tests for the analytic engine.

The agreement sweep covers every catalog processor x every miniapp at a
small (2 ranks x 4 threads) placement: the batched closed-form scorer
must land within the calibrated tolerances of the discrete-event
executor on ``elapsed`` and ``gflops``.  (``comm_fraction`` is *not*
asserted — the analytic model books only algorithm-level communication
time, so its fraction legitimately diverges; see DESIGN.md.)
"""

import math

import pytest

from repro.analytic import (
    ELAPSED_RTOL,
    GFLOPS_RTOL,
    check_agreement,
    clear_memos,
    score_config,
    score_configs,
    validation_sample,
)
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_config
from repro.errors import ConfigurationError, EngineDisagreement
from repro.machine.catalog import PROCESSORS
from repro.miniapps import SUITE


def _cfg(app="ffvc", **kw):
    kw.setdefault("n_ranks", 2)
    kw.setdefault("n_threads", 4)
    kw.setdefault("options_preset", "as-is")
    return ExperimentConfig(app=app, **kw)


@pytest.mark.parametrize("processor", sorted(PROCESSORS))
@pytest.mark.parametrize("app_name", SUITE)
def test_agreement_every_machine_every_app(app_name, processor):
    config = _cfg(app_name, processor=processor)
    analytic = score_config(config)
    event = run_config(config, engine="event")
    assert analytic.engine == "analytic"
    assert event.engine == "event"
    assert math.isclose(analytic.elapsed, event.elapsed,
                        rel_tol=ELAPSED_RTOL), \
        f"elapsed {analytic.elapsed} vs {event.elapsed}"
    assert math.isclose(analytic.gflops, event.gflops,
                        rel_tol=GFLOPS_RTOL), \
        f"gflops {analytic.gflops} vs {event.gflops}"


@pytest.mark.parametrize("app_name", SUITE)
def test_bit_identical_across_runs(app_name):
    """Re-scoring after a full memo flush reproduces every field exactly."""
    config = _cfg(app_name)
    first = score_config(config)
    clear_memos()
    second = score_config(config)
    assert first == second  # dataclass equality: bit-identical floats


def test_batch_matches_single_scoring():
    configs = [_cfg("ffvc", n_ranks=nr, n_threads=nt)
               for nr, nt in ((1, 8), (2, 4), (4, 2))]
    batch = score_configs(configs)
    singles = [score_config(c) for c in configs]
    assert batch == singles


def test_score_configs_captures_per_config_errors():
    good = _cfg("ffvc")
    bad = _cfg("ffvc", n_ranks=48, n_threads=48)  # oversubscribes the node
    rows = score_configs([good, bad, good])
    assert rows[0] == rows[2]
    assert rows[0].engine == "analytic"
    assert isinstance(rows[1], ConfigurationError)


def test_check_agreement_raises_beyond_tolerance():
    config = _cfg("ffvc")
    row = score_config(config)
    check_agreement(config, row, row)  # identical rows always agree
    import dataclasses
    skewed = dataclasses.replace(row, elapsed=row.elapsed * 2.0)
    with pytest.raises(EngineDisagreement) as exc:
        check_agreement(config, row, skewed)
    assert "elapsed" in str(exc.value)


def test_validation_sample_deterministic():
    n = 30
    a = validation_sample("seeded", n, 5)
    b = validation_sample("seeded", n, 5)
    assert a == b
    assert len(a) == 5
    assert all(0 <= i < n for i in a)
    assert a == sorted(a)
    assert validation_sample("seeded", 3, 5) == [0, 1, 2]
    assert validation_sample("seeded", 0, 5) == []
