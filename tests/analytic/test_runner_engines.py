"""Engine wiring through run_config / run_sweep: cache tagging, the
auto cross-validation path, fault guard-rails, and Row persistence."""

import dataclasses

import pytest

from repro.core.cache import ResultCache, config_digest
from repro.core.experiment import ExperimentConfig
from repro.core.persistence import row_from_dict, row_to_dict
from repro.core.runner import Row, cache_key, run_config, run_sweep
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, Straggler

CFG = ExperimentConfig(app="ffvc", n_ranks=2, n_threads=4,
                       options_preset="as-is")


class TestCacheTagging:
    def test_event_key_is_bare_config(self):
        assert cache_key(CFG, "event") is CFG

    def test_analytic_key_never_aliases_event(self):
        assert config_digest(cache_key(CFG, "analytic")) != \
            config_digest(cache_key(CFG, "event"))

    def test_rows_cached_per_engine(self, tmp_path):
        cache = ResultCache(tmp_path)
        row_e = run_config(CFG, cache, engine="event")
        row_a = run_config(CFG, cache, engine="analytic")
        assert row_e.engine == "event"
        assert row_a.engine == "analytic"
        # warm hits come back under the right engine tag
        assert run_config(CFG, cache, engine="event").engine == "event"
        assert run_config(CFG, cache,
                          engine="analytic").engine == "analytic"

    def test_warm_analytic_hit_reports_engine(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_config(CFG, cache, engine="analytic")
        warm = run_config(CFG, cache, engine="analytic")
        assert warm == cold
        assert warm.engine == "analytic"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            run_config(CFG, engine="oracle")


class TestFaultGuard:
    PLAN = FaultPlan(seed=1, stragglers=(Straggler(0, 2.0),))

    def test_analytic_with_faults_is_an_error(self):
        with pytest.raises(ConfigurationError) as exc:
            run_config(CFG, engine="analytic", fault_plan=self.PLAN)
        assert "fault" in str(exc.value)

    def test_auto_with_faults_is_an_error(self):
        with pytest.raises(ConfigurationError):
            run_config(CFG, engine="auto", fault_plan=self.PLAN)

    def test_event_with_faults_still_runs(self):
        faulty = run_config(CFG, engine="event", fault_plan=self.PLAN)
        clean = run_config(CFG, engine="event")
        assert faulty.elapsed > clean.elapsed  # straggler slows rank 0

    def test_empty_plan_is_fine_everywhere(self):
        row = run_config(CFG, engine="analytic", fault_plan=FaultPlan())
        assert row.engine == "analytic"

    def test_chaos_campaign_rejects_analytic(self):
        from repro.faults.chaos import run_campaign
        with pytest.raises(ConfigurationError):
            run_campaign(CFG, engine="analytic")


class TestSweepEngines:
    CONFIGS = [dataclasses.replace(CFG, n_ranks=nr, n_threads=nt)
               for nr, nt in ((1, 8), (2, 4), (4, 2))]

    def test_analytic_sweep_rows_tagged(self, tmp_path):
        sweep = run_sweep("t", self.CONFIGS, ResultCache(tmp_path),
                          engine="analytic")
        assert [r.engine for r in sweep.rows] == ["analytic"] * 3

    def test_analytic_sweep_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep("t", self.CONFIGS, cache, engine="analytic")
        warm = run_sweep("t", self.CONFIGS, cache, engine="analytic")
        assert [r.elapsed for r in warm.rows] == \
            [r.elapsed for r in cold.rows]

    def test_auto_sweep_cross_validates(self, tmp_path):
        # must complete without EngineDisagreement on a healthy model
        sweep = run_sweep("t-auto", self.CONFIGS, ResultCache(tmp_path),
                          engine="auto")
        assert len(sweep.rows) == 3
        assert all(r.engine == "analytic" for r in sweep.rows)

    def test_analytic_sweep_captures_errors(self):
        bad = dataclasses.replace(CFG, n_ranks=48, n_threads=48)
        sweep = run_sweep("t-err", self.CONFIGS + [bad], None,
                          engine="analytic", errors="capture")
        assert len(sweep.rows) == 3
        assert len(sweep.errors) == 1


class TestPersistence:
    def test_engine_round_trips(self):
        row = Row(CFG, 1.5, 2.5, 3.5, 0.25, engine="analytic")
        assert row_from_dict(row_to_dict(row)) == row

    def test_legacy_rows_default_to_event(self):
        d = row_to_dict(Row(CFG, 1.5, 2.5, 3.5, 0.25))
        d.pop("engine")
        assert row_from_dict(d).engine == "event"
