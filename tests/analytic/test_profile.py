"""Closed-form rank summaries must match the replayed programs.

Every miniapp ships a ``rank_summary`` closed form *and* a
``make_program`` generator.  The analytic engine trusts the closed
form, so these tests replay the generator through the profile builder
and require the two AppProfiles to be structurally identical (floats
compared with a tight isclose — replay accumulates per-region sums the
closed forms express as products, which can differ in ulps).
"""

import math

import pytest

from repro.analytic.profile import (
    AppProfile,
    profile_from_replay,
    profile_from_summaries,
)
from repro.miniapps import SUITE, by_name

RANK_COUNTS = (1, 2, 4, 12, 48)


def _closed_form(app, dataset, n_ranks):
    return profile_from_summaries(
        app.name, dataset.name, n_ranks,
        lambda rank, b: app.rank_summary(dataset, n_ranks, rank, b))


def _replayed(app, dataset, n_ranks):
    return profile_from_replay(
        app.name, dataset.name, app.make_program(dataset, n_ranks), n_ranks)


def _tuple_close(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12), (x, y)
        elif isinstance(x, tuple):
            _tuple_close(x, y)
        else:
            assert x == y


def _assert_profiles_match(cf: AppProfile, rp: AppProfile):
    assert cf.app == rp.app
    assert cf.dataset == rp.dataset
    assert cf.n_ranks == rp.n_ranks
    assert len(cf.classes) == len(rp.classes)
    for c, r in zip(cf.classes, rp.classes):
        assert c.n_ranks == r.n_ranks
        assert len(c.compute) == len(r.compute)
        for gc, gr in zip(c.compute, r.compute):
            assert (gc.kernel, gc.schedule, gc.serial) == \
                   (gr.kernel, gr.schedule, gr.serial)
            assert gc.regions == gr.regions
            _tuple_close((gc.iters, gc.imbalance, gc.working_set_scale),
                         (gr.iters, gr.imbalance, gr.working_set_scale))
        assert len(c.collectives) == len(r.collectives)
        for gc, gr in zip(c.collectives, r.collectives):
            assert (gc.kind, gc.count, gc.comm) == (gr.kind, gr.count,
                                                    gr.comm)
            _tuple_close((gc.size_bytes,), (gr.size_bytes,))
        assert len(c.exchanges) == len(r.exchanges)
        for gc, gr in zip(c.exchanges, r.exchanges):
            assert gc.count == gr.count
            assert gc.overlapped == gr.overlapped
            _tuple_close(gc.partners, gr.partners)
        _tuple_close(
            (c.sleep_s, c.file_read_bytes, c.file_write_bytes),
            (r.sleep_s, r.file_read_bytes, r.file_write_bytes))
        assert (c.file_reads, c.file_writes) == (r.file_reads, r.file_writes)


@pytest.mark.parametrize("n_ranks", RANK_COUNTS)
@pytest.mark.parametrize("app_name", SUITE)
def test_closed_form_matches_replay(app_name, n_ranks):
    app = by_name(app_name)
    dataset = app.dataset("as-is")
    _assert_profiles_match(_closed_form(app, dataset, n_ranks),
                           _replayed(app, dataset, n_ranks))


@pytest.mark.parametrize("app_name", SUITE)
def test_closed_form_matches_replay_large(app_name):
    app = by_name(app_name)
    dataset = app.dataset("large")
    _assert_profiles_match(_closed_form(app, dataset, 4),
                           _replayed(app, dataset, 4))


@pytest.mark.parametrize("app_name", SUITE)
def test_analytic_profile_prefers_closed_form(app_name):
    """MiniApp.analytic_profile routes through rank_summary when present."""
    app = by_name(app_name)
    dataset = app.dataset("as-is")
    prof = app.analytic_profile(dataset, 4)
    _assert_profiles_match(prof, _closed_form(app, dataset, 4))


def test_rank_classes_cover_all_ranks():
    app = by_name("ffvc")
    prof = app.analytic_profile(app.dataset("as-is"), 12)
    assert sum(c.n_ranks for c in prof.classes) == 12
    reps = [c.rep_rank for c in prof.classes]
    assert len(set(reps)) == len(reps)
