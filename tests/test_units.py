"""Tests for repro.units formatting and constants."""

import pytest

from repro import units


class TestConstants:
    def test_binary_prefixes(self):
        assert units.KIB == 1024
        assert units.MIB == 1024 ** 2
        assert units.GIB == 1024 ** 3

    def test_decimal_prefixes(self):
        assert units.GHZ == 1_000_000_000
        assert units.GB_S == 1_000_000_000
        assert units.TERA == 1000 * units.GIGA

    def test_time_units(self):
        assert units.US == pytest.approx(1e-6)
        assert units.NS == pytest.approx(1e-9)

    def test_fp_sizes(self):
        assert units.FP64_BYTES == 8
        assert units.FP32_BYTES == 4


class TestFormatting:
    def test_fmt_bytes_scales(self):
        assert units.fmt_bytes(512) == "512 B"
        assert units.fmt_bytes(8 * units.MIB) == "8.0 MiB"
        assert units.fmt_bytes(32 * units.GIB) == "32.0 GiB"

    def test_fmt_rate(self):
        assert units.fmt_rate(3.072e12) == "3.07 TFLOP/s"
        assert units.fmt_rate(5e9) == "5.00 GFLOP/s"
        assert units.fmt_rate(1.0) == "1.00 FLOP/s"

    def test_fmt_bw(self):
        assert units.fmt_bw(1024e9) == "1024.0 GB/s"

    def test_fmt_time_adaptive(self):
        assert units.fmt_time(2.5) == "2.500 s"
        assert units.fmt_time(3.2e-3) == "3.200 ms"
        assert units.fmt_time(4.5e-6) == "4.500 us"
        assert units.fmt_time(120e-9) == "120.0 ns"
