"""Tests for `repro reproduce`: manifest replay and drift detection."""

import json

import pytest

from repro.cli import main
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_sweep
from repro.errors import ConfigurationError
from repro.telemetry.report import list_runs, run_directory
from repro.telemetry.reproduce import reproduce_run

CFGS = [ExperimentConfig(app="ccs-qcd", n_ranks=r, n_threads=48 // r)
        for r in (4, 8)]


@pytest.fixture
def recorded(results_dir):
    run_sweep("repro-me", CFGS, {}, engine="analytic")
    return list_runs(results_dir)[-1]


def _mutate_summary(results_dir, run_id, field="elapsed", factor=1.5):
    """Corrupt one recorded row, returning the drifted config's label."""
    path = run_directory(run_id, results_dir) / "summary.json"
    payload = json.loads(path.read_text())
    payload["rows"][0][field] *= factor
    path.write_text(json.dumps(payload))
    from repro.core.persistence import config_from_dict

    return config_from_dict(payload["rows"][0]["config"]).label()


class TestReproduce:
    def test_intact_run_reproduces_bit_for_bit(self, results_dir,
                                               recorded):
        report = reproduce_run(recorded.run_id, results_dir, rtol=0.0)
        assert report.ok
        assert report.checked == len(CFGS)
        assert report.fingerprint_match
        assert "REPRODUCED" in report.render()

    def test_mutated_summary_names_the_drifted_row(self, results_dir,
                                                   recorded):
        label = _mutate_summary(results_dir, recorded.run_id)
        report = reproduce_run(recorded.run_id, results_dir, rtol=0.0)
        assert not report.ok
        (drift,) = report.drifts
        assert drift.config == label
        assert drift.field == "elapsed"
        assert drift.recorded == pytest.approx(drift.replayed * 1.5)
        text = report.render()
        assert "DRIFT" in text and label in text and "elapsed" in text

    def test_tolerance_absorbs_small_drift(self, results_dir, recorded):
        _mutate_summary(results_dir, recorded.run_id, factor=1.0 + 1e-12)
        assert reproduce_run(recorded.run_id, results_dir,
                             rtol=1e-9).ok
        assert not reproduce_run(recorded.run_id, results_dir,
                                 rtol=1e-15).ok

    def test_replay_does_not_record_itself(self, results_dir, recorded):
        reproduce_run(recorded.run_id, results_dir, rtol=0.0)
        assert len(list((results_dir / "runs").iterdir())) == 1

    def test_run_without_summary_is_an_error(self, results_dir,
                                             recorded):
        (run_directory(recorded.run_id, results_dir)
         / "summary.json").unlink()
        with pytest.raises(ConfigurationError, match="no summary"):
            reproduce_run(recorded.run_id, results_dir)

    def test_fingerprint_mismatch_is_flagged(self, results_dir,
                                             recorded):
        path = run_directory(recorded.run_id, results_dir) \
            / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["model_fingerprint"] = "0123456789abcdef"
        path.write_text(json.dumps(manifest))
        report = reproduce_run(recorded.run_id, results_dir, rtol=0.0)
        assert not report.fingerprint_match
        assert "fingerprint changed" in report.render()


class TestCli:
    def test_exit_zero_then_nonzero_after_mutation(self, results_dir,
                                                   recorded, capsys,
                                                   tmp_path):
        argv = ["reproduce", recorded.run_id,
                "--results-dir", str(results_dir), "--rtol", "0"]
        assert main(argv) == 0
        assert "REPRODUCED" in capsys.readouterr().out

        label = _mutate_summary(results_dir, recorded.run_id)
        out_json = tmp_path / "drift.json"
        assert main(argv + ["--json", str(out_json)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and label in out
        payload = json.loads(out_json.read_text())
        assert payload["ok"] is False
        assert payload["drifts"][0]["config"] == label

    def test_unknown_run_exits_two(self, results_dir, recorded, capsys):
        assert main(["reproduce", "zzz-nope",
                     "--results-dir", str(results_dir)]) == 2
        assert "no recorded run" in capsys.readouterr().err


class TestFaultPlanRoundTrip:
    def test_plan_digest_and_from_dict(self):
        from repro.faults.plan import (
            CrashRank,
            FaultPlan,
            MessageFault,
            Straggler,
        )

        plan = FaultPlan(
            seed=7,
            crashes=(CrashRank(rank=1, at=0.5),),
            stragglers=(Straggler(rank=2, factor=1.5, start=0.1),),
            message_faults=(MessageFault(kind="delay", src=0, dst=3,
                                         probability=0.5, delay_s=1e-3,
                                         max_events=4),),
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.digest() == plan.digest()
        assert FaultPlan().digest() != plan.digest()

    def test_malformed_record_raises(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(ConfigurationError, match="malformed"):
            FaultPlan.from_dict({"crashes": [{"rank": 0}]})  # no "at"
