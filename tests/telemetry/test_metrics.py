"""Tests for the metrics registry and its JSONL stream."""

import json

from repro.telemetry.metrics import MetricsRegistry, read_metrics


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.count("cache.hit")
        reg.count("cache.hit", 3)
        agg = reg.aggregates()["cache.hit"]
        assert agg.kind == "counter"
        assert agg.total == 4
        assert agg.count == 2
        assert reg.value("cache.hit") == 4

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        reg.gauge("sweep.rows", 3)
        reg.gauge("sweep.rows", 9)
        agg = reg.aggregates()["sweep.rows"]
        assert agg.kind == "gauge"
        assert agg.last == 9
        assert reg.value("sweep.rows") == 9

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("gate.lint.seconds", float(v))
        agg = reg.aggregates()["gate.lint.seconds"]
        assert agg.kind == "histogram"
        assert agg.min == 1 and agg.max == 100
        assert agg.percentile(50) == 50
        assert agg.percentile(95) == 95
        d = agg.to_dict()
        assert d["p50"] == 50 and d["p95"] == 95

    def test_unknown_name_default(self):
        reg = MetricsRegistry()
        assert reg.value("nope") == 0.0


class TestStream:
    def test_lines_are_json_records(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = MetricsRegistry(path)
        reg.count("cache.hit")
        reg.observe("gate.lint.seconds", 0.25, config="x")
        recs = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert [r["name"] for r in recs] == ["cache.hit",
                                             "gate.lint.seconds"]
        assert recs[1]["labels"] == {"config": "x"}
        assert all(r["format"] == 1 for r in recs)

    def test_read_metrics_rebuilds_aggregates(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = MetricsRegistry(path)
        reg.count("cache.hit", 2)
        reg.count("cache.hit")
        reg.gauge("run.wall_seconds", 1.5)
        aggs = read_metrics(path)
        assert aggs["cache.hit"].total == 3
        assert aggs["run.wall_seconds"].last == 1.5

    def test_read_metrics_skips_torn_lines(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = MetricsRegistry(path)
        reg.count("cache.hit")
        reg.count("cache.miss")
        with open(path, "a") as fh:
            fh.write('{"format": 1, "name": "tr')  # torn, no newline
        aggs = read_metrics(path)
        assert aggs["cache.hit"].total == 1
        assert aggs["cache.miss"].total == 1
        assert "tr" not in aggs

    def test_read_metrics_missing_file(self, tmp_path):
        assert read_metrics(tmp_path / "absent.jsonl") == {}
