"""Tests for RunContext / run_scope: recording, nesting, resume."""

import json

import pytest

from repro import telemetry
from repro.core.cache import ResultCache
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_config, run_sweep
from repro.telemetry import run as run_mod
from repro.telemetry.metrics import read_metrics

CFGS = [ExperimentConfig(app="ccs-qcd", n_ranks=r, n_threads=48 // r)
        for r in (4, 8)]


def _only_run_dir(results_dir):
    (entry,) = list((results_dir / "runs").iterdir())
    return entry


class TestRecording:
    def test_sweep_records_all_four_files(self, results_dir):
        sweep = run_sweep("rec", CFGS, {}, engine="analytic")
        assert len(sweep.rows) == 2
        run_dir = _only_run_dir(results_dir)
        for name in ("manifest.json", "metrics.jsonl", "spans.jsonl",
                     "summary.json"):
            assert (run_dir / name).exists(), name
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["kind"] == "sweep"
        assert manifest["status"] == "completed"
        assert manifest["n_rows"] == 2
        assert manifest["resumed_from"] is None
        aggs = read_metrics(run_dir / "metrics.jsonl")
        assert aggs["run.opened"].total == 1
        assert aggs["sweep.rows"].last == 2

    def test_summary_reloads_with_stock_loader(self, results_dir):
        from repro.core.persistence import load_sweep

        run_sweep("roundtrip", CFGS, {}, engine="analytic")
        run_dir = _only_run_dir(results_dir)
        loaded = load_sweep(run_dir / "summary.json")
        assert [r.label for r in loaded.rows] == \
            [c.label() for c in CFGS]

    def test_single_config_records_too(self, results_dir):
        row = run_config(CFGS[0], None, engine="analytic")
        run_dir = _only_run_dir(results_dir)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["kind"] == "config"
        assert manifest["n_rows"] == 1
        assert row.elapsed > 0

    def test_nested_sweep_becomes_span_not_second_run(self, results_dir):
        from repro.telemetry.spans import read_spans

        with telemetry.run_scope(kind="sweep", name="outer", configs=CFGS,
                                 engine="analytic") as outer:
            assert outer is not None
            inner = run_sweep("inner", CFGS, {}, engine="analytic")
            outer.attach_sweep(inner)
        run_dir = _only_run_dir(results_dir)  # exactly one directory
        names = [s["name"] for s in
                 read_spans(run_dir / "spans.jsonl")]
        assert names.count("sweep") == 2  # outer root + nested-as-span

    def test_failed_sweep_leaves_failed_manifest(self, results_dir):
        with pytest.raises(RuntimeError):
            with telemetry.run_scope(kind="sweep", name="boom",
                                     configs=CFGS, engine="event"):
                raise RuntimeError("mid-sweep crash")
        run_dir = _only_run_dir(results_dir)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "failed"
        assert "RuntimeError" in manifest["error"]

    def test_off_switch_records_nothing(self, results_dir, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        run_sweep("dark", CFGS, {}, engine="analytic")
        assert not (results_dir / "runs").exists()

    def test_suppressed_scope_records_nothing(self, results_dir):
        from repro.telemetry import state

        with state.suppressed():
            run_sweep("dark", CFGS, {}, engine="analytic")
        assert not (results_dir / "runs").exists()


class TestResume:
    def test_resume_reenters_original_run(self, results_dir, tmp_path):
        """The resume satellite: same run_id, appended (not truncated)
        metrics.jsonl, and an explicit ``resumed_from`` lineage mark."""
        cache = ResultCache(tmp_path / "cache")
        run_sweep("res", CFGS, cache, engine="analytic")
        run_dir = _only_run_dir(results_dir)
        first = json.loads((run_dir / "manifest.json").read_text())
        lines_before = len(
            (run_dir / "metrics.jsonl").read_text().splitlines())

        resumed = run_sweep("res", CFGS, cache, engine="analytic",
                            resume=True)
        assert len(resumed.rows) == 2
        # still exactly one run directory, under the original id
        assert _only_run_dir(results_dir) == run_dir
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["run_id"] == first["run_id"]
        assert manifest["resumed_from"] == first["run_id"]
        assert manifest["created"] == first["created"]
        lines_after = len(
            (run_dir / "metrics.jsonl").read_text().splitlines())
        assert lines_after > lines_before  # appended, not truncated
        aggs = read_metrics(run_dir / "metrics.jsonl")
        assert aggs["run.opened"].total == 2
        assert aggs["run.resumed"].total == 1
        # the second pass was served from the cache
        assert aggs["cache.hit"].total >= 2

    def test_different_sweep_gets_fresh_run(self, results_dir, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep("a", CFGS, cache, engine="analytic")
        run_sweep("b", CFGS, cache, engine="analytic", resume=True)
        assert len(list((results_dir / "runs").iterdir())) == 2

    def test_find_resumable_skips_corrupt_dirs(self, results_dir,
                                               tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep("res", CFGS, cache, engine="analytic")
        root = results_dir / "runs"
        (root / "junk").mkdir()
        (root / "junk" / "manifest.json").write_text("{not json")
        run_dir = _only_run_dir_excluding(root, "junk")
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert run_mod.find_resumable(root, manifest["sweep_key"]) == \
            run_dir.name


def _only_run_dir_excluding(root, exclude):
    (entry,) = [p for p in root.iterdir() if p.name != exclude]
    return entry
