"""Fixtures for telemetry tests: opt back into recording.

The suite-wide conftest forces ``REPRO_TELEMETRY=off``; these tests
re-enable it against a per-test results root so nothing leaks into the
working directory (or between tests).
"""

import pytest


@pytest.fixture
def results_dir(monkeypatch, tmp_path):
    """Telemetry on, recording under a throwaway results root."""
    root = tmp_path / "results"
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(root))
    return root
