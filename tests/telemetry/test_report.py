"""Tests for `repro runs` / `repro report <run_id>` over recorded runs."""

import json

import pytest

from repro.cli import main
from repro.core.cache import ResultCache
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_sweep
from repro.errors import ConfigurationError
from repro.telemetry.report import (
    RunReport,
    list_runs,
    render_runs,
    run_directory,
)

CFGS = [ExperimentConfig(app="ccs-qcd", n_ranks=r, n_threads=48 // r)
        for r in (4, 8)]


@pytest.fixture
def warm_run(results_dir, tmp_path):
    """A sweep recorded twice: a cold pass, then a warm cache-served
    pass with the advise gate on — so the second run carries non-zero
    cache-hit *and* gate-timing metrics."""
    cache = ResultCache(tmp_path / "cache")
    run_sweep("warm", CFGS, cache, engine="analytic")
    run_sweep("warm-again", CFGS, cache, engine="analytic",
              advise="warn")
    return list_runs(results_dir, name="warm-again")[0]


class TestListRuns:
    def test_lists_and_filters(self, results_dir, warm_run):
        entries = list_runs(results_dir)
        assert [e.name for e in entries] == ["warm", "warm-again"]
        assert all(e.status == "completed" for e in entries)
        assert list_runs(results_dir, name="again") == [entries[-1]]
        assert list_runs(results_dir, status="failed") == []
        assert list_runs(results_dir, kind="sweep") == entries

    def test_render_runs_table(self, results_dir, warm_run):
        text = render_runs(list_runs(results_dir))
        assert "warm-again" in text
        assert "completed" in text
        assert "analytic" in text

    def test_empty_root(self, tmp_path):
        assert list_runs(tmp_path / "nothing") == []
        assert render_runs([]) == "no recorded runs"

    def test_run_directory_prefix_resolution(self, results_dir,
                                             warm_run):
        exact = run_directory(warm_run.run_id, results_dir)
        assert exact.name == warm_run.run_id
        # a unique prefix resolves; a shared one is an explicit error
        unique = run_directory(warm_run.run_id[:-1], results_dir)
        assert unique == exact
        shared = warm_run.run_id[:9]  # the YYYYmmdd- timestamp prefix
        with pytest.raises(ConfigurationError, match="ambiguous"):
            run_directory(shared, results_dir)
        with pytest.raises(ConfigurationError, match="no recorded run"):
            run_directory("zzz-nope", results_dir)


class TestRunReport:
    def test_warm_run_has_cache_and_gate_metrics(self, results_dir,
                                                 warm_run):
        rep = RunReport.load(warm_run.run_id, results_dir)
        assert rep.metric("cache.hit") >= 2
        assert rep.cache_hit_rate() == 1.0
        gate = rep.aggregates["gate.advise.seconds"]
        assert gate.count == len(CFGS)
        assert gate.total > 0
        text = rep.render()
        assert "hit rate" in text
        assert "gate advise" in text

    def test_slowest_table_and_dict(self, results_dir, warm_run):
        rep = RunReport.load(warm_run.run_id, results_dir)
        slow = rep.slowest(1)
        assert len(slow) == 1
        assert slow[0].elapsed == max(r.elapsed for r in rep.rows)
        d = rep.to_dict()
        json.dumps(d)  # JSON-safe end to end
        assert d["cache_hit_rate"] == 1.0
        assert d["metrics"]["cache.hit"]["total"] >= 2

    def test_torn_cache_lines_surface_in_report(self, results_dir,
                                                tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep("torn", CFGS, cache, engine="analytic")
        with open(cache.path, "a") as fh:
            fh.write('{"format": 1, "fp": "')  # torn record
        # a fresh cache instance re-reads the file inside a new run
        cache2 = ResultCache(tmp_path / "cache")
        run_sweep("torn-again", CFGS, cache2, engine="analytic")
        entry = list_runs(results_dir, name="torn-again")[0]
        rep = RunReport.load(entry.run_id, results_dir)
        assert rep.metric("cache.torn_lines") == 1
        assert "1 torn line(s) skipped on load" in rep.render()


class TestCli:
    def test_runs_and_report_verbs(self, results_dir, warm_run, capsys,
                                   tmp_path):
        assert main(["runs", "--results-dir", str(results_dir)]) == 0
        table = capsys.readouterr().out
        assert warm_run.run_id in table

        assert main(["runs", "--results-dir", str(results_dir),
                     "--latest"]) == 0
        assert capsys.readouterr().out.strip() == warm_run.run_id

        trace = tmp_path / "trace.json"
        out_json = tmp_path / "report.json"
        assert main(["report", warm_run.run_id,
                     "--results-dir", str(results_dir),
                     "--trace", str(trace),
                     "--json", str(out_json)]) == 0
        text = capsys.readouterr().out
        assert "hit rate" in text
        assert json.loads(trace.read_text())["traceEvents"]
        assert json.loads(out_json.read_text())["cache_hit_rate"] == 1.0

    def test_runs_json_and_filters(self, results_dir, warm_run, capsys):
        assert main(["runs", "--results-dir", str(results_dir),
                     "--name", "again", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in payload] == ["warm-again"]

    def test_report_unknown_run_fails(self, results_dir, warm_run,
                                      capsys):
        assert main(["report", "zzz-nope",
                     "--results-dir", str(results_dir)]) == 2
        assert "no recorded run" in capsys.readouterr().err

    def test_runs_latest_empty_fails(self, tmp_path, capsys):
        assert main(["runs", "--results-dir", str(tmp_path / "none"),
                     "--latest"]) == 1
        assert "no recorded runs" in capsys.readouterr().err
