"""Tests for the span recorder and Chrome trace export."""

import json

from repro.telemetry.spans import (
    SpanRecorder,
    read_spans,
    spans_to_chrome_trace,
)


class TestRecorder:
    def test_nesting_links_parents(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder(path)
        with rec.span("sweep", label="f1") as outer:
            with rec.span("dispatch") as inner:
                assert inner.parent_id == outer.span_id
        spans = read_spans(path)
        # children close (and are written) before their parents
        assert [s["name"] for s in spans] == ["dispatch", "sweep"]
        assert spans[0]["parent"] == spans[1]["id"]
        assert spans[1]["parent"] is None

    def test_durations_are_nonnegative_and_nested(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder(path)
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        inner, outer = read_spans(path)
        assert inner["dur_s"] >= 0
        assert outer["dur_s"] >= inner["dur_s"]
        assert outer["start_s"] <= inner["start_s"]

    def test_exception_marks_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder(path)
        try:
            with rec.span("gate.lint"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = read_spans(path)
        assert span["attrs"]["error"] == "ValueError"

    def test_attrs_are_json_safe(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder(path)
        with rec.span("x", count=3, obj=object()):
            pass
        (span,) = read_spans(path)
        assert span["attrs"]["count"] == 3
        assert isinstance(span["attrs"]["obj"], str)

    def test_memory_only_recorder_writes_nothing(self, tmp_path):
        rec = SpanRecorder(None)
        with rec.span("x"):
            pass
        assert list(tmp_path.iterdir()) == []


class TestReaders:
    def test_read_spans_skips_torn_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder(path)
        with rec.span("keep"):
            pass
        with open(path, "a") as fh:
            fh.write('{"format": 1, "name": "to')  # torn, no newline
        assert [s["name"] for s in read_spans(path)] == ["keep"]

    def test_read_spans_missing_file(self, tmp_path):
        assert read_spans(tmp_path / "absent.jsonl") == []

    def test_chrome_trace_shape(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder(path)
        with rec.span("sweep"):
            with rec.span("dispatch"):
                pass
        trace = spans_to_chrome_trace(read_spans(path), "run-1")
        # serializable, complete slices, on one named orchestrator track
        json.dumps(trace)
        meta, *slices = trace["traceEvents"]
        assert meta["args"]["name"] == "orchestrator"
        assert {e["ph"] for e in slices} == {"X"}
        assert {e["name"] for e in slices} == {"sweep", "dispatch"}
        dispatch = next(e for e in slices if e["name"] == "dispatch")
        assert "parent" in dispatch["args"]
        assert trace["otherData"]["run"] == "run-1"
