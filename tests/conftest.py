"""Suite-wide defaults.

Telemetry is off for the test suite: hundreds of tests call
``run_config``/``run_sweep`` and must not litter the working directory
with ``results/runs/`` directories.  Telemetry tests opt back in with
``monkeypatch.delenv``/``setenv`` on ``REPRO_TELEMETRY`` (plus a tmp
``REPRO_RESULTS_DIR``) — see ``tests/telemetry/``.
"""

import os

os.environ.setdefault("REPRO_TELEMETRY", "off")
