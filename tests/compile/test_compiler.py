"""Tests for the compiler model (options, vectorizer, scheduler)."""

import pytest

from repro.compile import Compiler, CompilerOptions, PRESETS
from repro.compile.scheduler import effective_ilp, prefetch_quality, scheduling_boost
from repro.compile.vectorizer import (
    effective_simd_bits,
    has_gather_support,
    int_vectorized,
    vectorized_fraction,
)
from repro.errors import ConfigurationError
from repro.kernels import presets
from repro.machine import catalog


@pytest.fixture(scope="module")
def cores():
    return {
        "a64fx": catalog.a64fx().node.chips[0].domains[0].core,
        "skx": catalog.xeon_skylake().node.chips[0].domains[0].core,
        "tx2": catalog.thunderx2().node.chips[0].domains[0].core,
    }


class TestOptions:
    def test_presets_exist(self):
        for name in ("as-is", "+simd", "+simd+sched", "tuned", "kfast"):
            assert name in PRESETS

    def test_asis_is_conservative(self):
        o = PRESETS["as-is"]
        assert not o.simd and o.scheduling == "none"

    def test_with_updates_functionally(self):
        o = PRESETS["kfast"]
        o2 = o.with_(loop_fission=True)
        assert o2.loop_fission and not o.loop_fission

    def test_rejects_bad_scheduling(self):
        with pytest.raises(ConfigurationError):
            CompilerOptions(scheduling="yolo")

    def test_rejects_bad_vl(self):
        with pytest.raises(ConfigurationError):
            CompilerOptions(simd_width_bits=200)

    def test_label_roundtrips_content(self):
        o = CompilerOptions(simd=True, scheduling="aggressive", unroll=4,
                            loop_fission=True, prefetch="aggressive")
        lab = o.label()
        assert "sched-aggressive" in lab and "fission" in lab and "u4" in lab


class TestVectorizer:
    def test_gather_support_by_isa(self, cores):
        assert has_gather_support(cores["a64fx"])
        assert has_gather_support(cores["skx"])
        assert not has_gather_support(cores["tx2"])

    def test_no_simd_means_zero(self, cores):
        f = vectorized_fraction(presets.stream_triad(), PRESETS["as-is"],
                                cores["a64fx"])
        assert f == 0.0

    def test_contiguous_vectorizes_well(self, cores):
        f = vectorized_fraction(presets.stream_triad(), PRESETS["kfast"],
                                cores["a64fx"])
        assert f > 0.9

    def test_gather_kernel_on_neon_stays_mostly_scalar(self, cores):
        k = presets.spmv_csr(30, 1e6)
        f_sve = vectorized_fraction(k, PRESETS["kfast"], cores["a64fx"])
        f_neon = vectorized_fraction(k, PRESETS["kfast"], cores["tx2"])
        assert f_neon < f_sve

    def test_vl_cap(self, cores):
        assert effective_simd_bits(cores["a64fx"], PRESETS["kfast"]) == 512
        capped = PRESETS["kfast"].with_(simd_width_bits=256)
        assert effective_simd_bits(cores["a64fx"], capped) == 256
        # cap above native clamps to native
        wide = PRESETS["kfast"].with_(simd_width_bits=1024)
        assert effective_simd_bits(cores["tx2"], wide) == 128

    def test_int_vectorization_requires_aggressive_sched(self, cores):
        k = presets.integer_compare_scan(1e4)
        assert not int_vectorized(k, PRESETS["+simd"], cores["a64fx"])
        assert int_vectorized(k, PRESETS["+simd+sched"], cores["a64fx"])

    def test_int_vectorization_requires_amenable_kernel(self, cores):
        k = presets.stream_triad()
        assert not int_vectorized(k, PRESETS["tuned"], cores["a64fx"])


class TestScheduler:
    def test_boost_ordering(self):
        k = presets.stencil_star(7, 1e6)
        b_none = scheduling_boost(k, PRESETS["as-is"])
        b_aggr = scheduling_boost(k, PRESETS["+simd+sched"])
        assert b_none == 1.0 < b_aggr

    def test_fission_adds_boost(self):
        k = presets.stencil_star(7, 1e6)
        plain = scheduling_boost(k, PRESETS["+simd+sched"])
        fission = scheduling_boost(k, PRESETS["+simd+sched"].with_(loop_fission=True))
        assert fission > plain

    def test_recurrence_limits_boost(self):
        dependent = presets.dense_update_pfaffian(32)  # ilp = 3
        parallel = presets.dgemm_blocked()             # ilp = 24
        opts = PRESETS["+simd+sched"]
        assert scheduling_boost(dependent, opts) <= scheduling_boost(parallel, opts)

    def test_unroll_raises_ilp_sublinearly(self):
        k = presets.stencil_star(7, 1e6)
        u1 = effective_ilp(k, CompilerOptions(unroll=1))
        u4 = effective_ilp(k, CompilerOptions(unroll=4))
        assert u1 < u4 < 4 * u1

    def test_prefetch_quality_range(self):
        for name, opts in PRESETS.items():
            for k in (presets.stream_triad(), presets.spmv_csr(30, 1e6)):
                q = prefetch_quality(k, opts)
                assert 0.0 <= q <= 1.0

    def test_prefetch_useless_for_gathers(self):
        opts = PRESETS["tuned"]
        q_stream = prefetch_quality(presets.stream_triad(), opts)
        q_gather = prefetch_quality(presets.spmv_csr(30, 1e6), opts)
        assert q_gather < q_stream


class TestCompilerFrontDoor:
    def test_compile_produces_consistent_fields(self, cores):
        ck = Compiler(PRESETS["kfast"]).compile(presets.stream_triad(),
                                                cores["a64fx"])
        assert 0 <= ck.vec_fraction_achieved <= 1
        assert ck.scheduling_boost >= 1
        assert ck.simd_bits_used == 512
        assert ck.simd_lanes_used == 8

    def test_compile_many_keys(self, cores):
        kernels = {"a": presets.stream_triad(), "b": presets.dgemm_blocked()}
        out = Compiler().compile_many(kernels, cores["a64fx"])
        assert set(out) == {"a", "b"}
        assert out["a"].kernel.name == "stream-triad"

    def test_default_options(self):
        c = Compiler()
        assert c.options.simd
