"""CLI surface of the profiling subsystem: `repro profile`,
`repro validate --counters`, and the shared placement flag wiring."""

import json

import pytest

from repro.cli import main


class TestProfileCommand:
    def test_default_report_sections(self, capsys):
        assert main(["profile", "--app", "ccs-qcd"]) == 0
        out = capsys.readouterr().out
        assert "profile: ccs-qcd/as-is on A64FX" in out
        assert "cycle accounting" in out
        assert "roofline cross-check" in out
        assert "qcd-dirac" in out

    def test_normalizes_underscore_app_and_lowercase_processor(self, capsys):
        """The acceptance spelling: `repro profile --app ccs_qcd
        --processor a64fx` must resolve to ccs-qcd / A64FX."""
        assert main(["profile", "--app", "ccs_qcd",
                     "--processor", "a64fx"]) == 0
        out = capsys.readouterr().out
        assert "ccs-qcd/as-is on A64FX" in out

    def test_cycle_percentages_sum_to_total(self, capsys):
        assert main(["profile", "--app", "ccs_qcd",
                     "--processor", "a64fx"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        start = next(i for i, line in enumerate(lines)
                     if "cycle accounting" in line)
        header = lines[start + 1].split("  ")
        rows = [line for line in lines[start + 3:]
                if line and not line.startswith(("note", "=="))]
        assert any(r.startswith("TOTAL") for r in rows)
        del header  # column parsing is covered in test_accounting

    def test_json_and_trace_exports(self, tmp_path, capsys):
        json_path = tmp_path / "prof.json"
        trace_path = tmp_path / "trace.json"
        assert main(["profile", "--app", "ffvc",
                     "--json", str(json_path),
                     "--trace", str(trace_path)]) == 0
        prof = json.loads(json_path.read_text())
        assert prof["meta"]["processor"] == "A64FX"
        assert prof["regions"]
        trace = json.loads(trace_path.read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "C" in phases  # counter tracks present

    def test_top_flag(self, capsys):
        assert main(["profile", "--app", "ccs-qcd", "--top", "1"]) == 0
        out = capsys.readouterr().out
        profile_section = out.split("cycle accounting")[0]
        assert "qcd-dirac" in profile_section
        assert "qcd-dot" not in profile_section

    def test_rejects_unknown_app(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "--app", "no-such-app"])


class TestSharedPlacementFlags:
    def test_run_accepts_normalized_spellings(self, capsys):
        assert main(["run", "--app", "ccs_qcd", "--processor", "a64fx",
                     "--ranks", "1", "--threads", "4", "--no-cache"]) == 0
        assert "ccs-qcd" in capsys.readouterr().out

    def test_run_and_profile_share_placement_flags(self):
        """Both parsers expose the same placement/machine options."""
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        sub = next(a for a in parser._actions
                   if isinstance(a, argparse._SubParsersAction))
        flags = {}
        for name in ("run", "profile"):
            p = sub.choices[name]
            flags[name] = {o for a in p._actions for o in a.option_strings}
        shared = {"--app", "--dataset", "--processor", "--nodes", "--ranks",
                  "--threads", "--stride", "--allocation", "--options",
                  "--data-policy"}
        assert shared <= flags["run"]
        assert shared <= flags["profile"]


class TestValidateCounters:
    def test_exit_zero_and_mentions_counters(self, capsys):
        assert main(["validate", "--counters"]) == 0
        out = capsys.readouterr().out
        assert "counter" in out

    def test_plain_validate_still_works(self, capsys):
        assert main(["validate"]) == 0
        assert "consistency checks passed" in capsys.readouterr().out
