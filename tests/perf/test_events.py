"""Unit tests of the simulated PMU event model (repro.perf.events)."""

import pytest

from repro.compile.compiler import Compiler
from repro.compile.options import PRESETS
from repro.errors import ConfigurationError
from repro.kernels.timing import phase_time
from repro.machine import catalog
from repro.perf.events import (
    STALL_CATEGORIES,
    KernelCounters,
    derive_counters,
)


@pytest.fixture(scope="module")
def a64fx_domain():
    return catalog.a64fx().node.chips[0].domains[0]


def _phase(dom, kernel_name="qcd-dirac", iters=1e5, preset="kfast"):
    """(compiled kernel, PhaseTiming) for one suite kernel on one core."""
    from repro.miniapps import by_name

    for app_name in ("ccs-qcd", "ffvc", "ngsa", "ntchem"):
        app = by_name(app_name)
        kernels = app.kernels(app.dataset("as-is"))
        if kernel_name in kernels:
            kernel = kernels[kernel_name]
            break
    else:
        raise KeyError(kernel_name)
    ck = Compiler(PRESETS[preset]).compile(kernel, dom.core)
    pt = phase_time(
        ck, iters, dom.core, dom.l1d, dom.l2,
        mem_bandwidth_share=dom.memory.per_stream_bandwidth(dom.n_cores),
        l2_bandwidth_share=dom.l2_bandwidth_share(dom.n_cores),
        mem_latency_s=dom.memory.latency_s,
    )
    return ck, pt


class TestKernelCounters:
    def test_default_is_all_zero(self):
        c = KernelCounters()
        assert c.cycles == 0 and c.flops == 0 and c.mem_bytes == 0
        assert c.sve_lane_utilization == 0.0

    def test_addition_is_fieldwise(self):
        a = KernelCounters(cycles=1.0, fp64_flops=2.0, mem_read_bytes=3.0)
        b = KernelCounters(cycles=10.0, fp64_flops=20.0, mem_write_bytes=5.0)
        c = a + b
        assert c.cycles == 11.0
        assert c.fp64_flops == 22.0
        assert c.mem_bytes == 8.0

    def test_stall_cycles_keys_match_categories(self):
        stalls = KernelCounters().stall_cycles()
        assert tuple(stalls) == STALL_CATEGORIES

    def test_to_dict_carries_derived_metrics(self):
        d = KernelCounters(fp32_flops=4.0, mem_read_bytes=2.0).to_dict()
        assert d["flops"] == 4.0
        assert d["mem_bytes"] == 2.0
        assert "sve_lane_utilization" in d


class TestDeriveCounters:
    def test_cycle_categories_sum_to_total(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)
        c = derive_counters(ck, a64fx_domain.core, pt)
        assert sum(c.stall_cycles().values()) == pytest.approx(
            c.cycles, rel=1e-12)

    def test_cycles_equal_time_times_frequency(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)
        c = derive_counters(ck, a64fx_domain.core, pt)
        assert c.cycles == pytest.approx(
            pt.seconds * a64fx_domain.core.freq_hz, rel=1e-12)

    def test_flops_and_bytes_match_phase(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)
        c = derive_counters(ck, a64fx_domain.core, pt)
        assert c.flops == pytest.approx(pt.flops, rel=1e-12)
        assert c.mem_bytes == pytest.approx(pt.dram_bytes, rel=1e-12)
        assert c.l1d_miss_bytes == pytest.approx(pt.l2_bytes, rel=1e-12)
        assert c.l2_miss_bytes == pytest.approx(pt.dram_bytes, rel=1e-12)

    def test_precision_split_follows_element_bytes(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)  # qcd-dirac is fp64
        c = derive_counters(ck, a64fx_domain.core, pt)
        assert c.fp64_flops > 0 and c.fp32_flops == 0

    def test_work_scales_with_total_iters(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain, iters=1e4)
        c1 = derive_counters(ck, a64fx_domain.core, pt)
        c4 = derive_counters(ck, a64fx_domain.core, pt, total_iters=4e4)
        assert c4.flops == pytest.approx(4 * c1.flops, rel=1e-12)
        assert c4.mem_bytes == pytest.approx(4 * c1.mem_bytes, rel=1e-12)
        # cycles stay critical-thread cycles, not scaled by work
        assert c4.cycles == pytest.approx(c1.cycles, rel=1e-12)

    def test_wall_seconds_rescales_all_cycle_categories(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)
        base = derive_counters(ck, a64fx_domain.core, pt)
        slow = derive_counters(ck, a64fx_domain.core, pt,
                               wall_seconds=pt.seconds * 1.5)
        assert slow.cycles == pytest.approx(base.cycles * 1.5, rel=1e-12)
        for cat, v in base.stall_cycles().items():
            assert slow.stall_cycles()[cat] == pytest.approx(
                v * 1.5, rel=1e-12), cat
        # wall-time rescaling must not touch the work counters
        assert slow.flops == base.flops

    def test_overhead_books_its_own_category(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)
        ovh = pt.seconds * 0.1
        c = derive_counters(ck, a64fx_domain.core, pt, overhead_seconds=ovh)
        assert c.cycles_overhead == pytest.approx(
            ovh * a64fx_domain.core.freq_hz, rel=1e-12)
        assert sum(c.stall_cycles().values()) == pytest.approx(
            c.cycles, rel=1e-12)

    def test_sve_lane_utilization_in_unit_interval(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)
        c = derive_counters(ck, a64fx_domain.core, pt)
        assert 0.0 < c.sve_lane_utilization <= 1.0
        assert c.instructions > 0

    def test_half_vector_length_halves_lane_utilization(self, a64fx_domain):
        import dataclasses

        ck, pt = _phase(a64fx_domain)
        half = dataclasses.replace(ck, simd_bits_used=ck.simd_bits_used // 2)
        c_full = derive_counters(ck, a64fx_domain.core, pt)
        c_half = derive_counters(half, a64fx_domain.core, pt)
        assert c_half.sve_lane_utilization == pytest.approx(
            c_full.sve_lane_utilization / 2, rel=1e-12)

    def test_zero_length_phase_yields_zero_counters(self, a64fx_domain):
        from repro.kernels.timing import PhaseTiming

        ck, _ = _phase(a64fx_domain)
        c = derive_counters(ck, a64fx_domain.core,
                            PhaseTiming(0.0, "compute", {}, 0.0, 0.0))
        assert c == KernelCounters()

    def test_negative_overhead_rejected(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)
        with pytest.raises(ConfigurationError):
            derive_counters(ck, a64fx_domain.core, pt, overhead_seconds=-1.0)

    def test_negative_wall_rejected(self, a64fx_domain):
        ck, pt = _phase(a64fx_domain)
        with pytest.raises(ConfigurationError):
            derive_counters(ck, a64fx_domain.core, pt, wall_seconds=-1.0)
