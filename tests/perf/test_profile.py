"""Tests of the collection layer (repro.perf.profile)."""

import json

import pytest

from repro.errors import SimulationError
from repro.machine import catalog
from repro.miniapps import by_name
from repro.perf import NullSink, ProfileSink, profile_job, region_table
from repro.runtime.executor import run_job
from repro.runtime.placement import JobPlacement


@pytest.fixture(scope="module")
def profiled():
    cluster = catalog.a64fx()
    app = by_name("ccs-qcd")
    placement = JobPlacement(cluster, 4, 12)
    job = app.build_job(cluster, placement, "as-is")
    result, profile = profile_job(job)
    return job, result, profile


class TestNullSink:
    def test_every_hook_is_a_noop(self):
        sink = NullSink()
        sink.begin_run(None)
        sink.on_compute(0, None, None, None, 0.0)
        sink.on_wait(0, "p2p", "send->1", 0.0, 1.0)
        sink.on_message(0, 1, 1024.0)
        sink.on_collective("world", "Allreduce", 8.0, 4, 1e-6)
        sink.end_run(None)

    def test_jobs_default_to_no_sink(self, profiled):
        job, _, _ = profiled
        import dataclasses

        bare = dataclasses.replace(job, perf_sink=None)
        assert bare.perf_sink is None
        assert run_job(bare).elapsed > 0


class TestProfileSink:
    def test_profile_before_end_run_raises(self):
        with pytest.raises(SimulationError):
            ProfileSink().profile()

    def test_profiled_run_matches_unprofiled(self, profiled):
        job, result, _ = profiled
        import dataclasses

        bare = run_job(dataclasses.replace(job, perf_sink=None))
        assert result.elapsed == bare.elapsed
        assert result.total_flops == bare.total_flops


class TestProfile:
    def test_regions_cover_every_kernel(self, profiled):
        job, _, profile = profiled
        assert set(profile.regions()) == set(job.kernels)

    def test_counter_flops_match_executor(self, profiled):
        _, result, profile = profiled
        total = profile.total_counters()
        assert total.flops == pytest.approx(result.total_flops, rel=1e-9)
        assert total.mem_bytes == pytest.approx(
            result.total_dram_bytes, rel=1e-9)

    def test_every_rank_second_is_attributed(self, profiled):
        _, result, profile = profiled
        for rank, finish in result.rank_finish.items():
            assert profile.attributed_seconds(rank) == pytest.approx(
                finish, rel=1e-9), rank

    def test_attributed_cycles_equal_time_times_frequency(self, profiled):
        _, result, profile = profiled
        for rank, finish in result.rank_finish.items():
            expected = finish * profile.rank_freq[rank]
            assert profile.attributed_cycles(rank) == pytest.approx(
                expected, rel=1e-9), rank

    def test_region_aggregation_sums_ranks(self, profiled):
        _, _, profile = profiled
        agg = profile.regions()
        for name, rp in agg.items():
            per_rank = [r for (rank, n), r in profile.rank_regions.items()
                        if n == name]
            assert rp.ranks == len(per_rank) == 4
            assert rp.seconds_total == pytest.approx(
                sum(r.seconds_total for r in per_rank))
            assert rp.seconds_max == pytest.approx(
                max(r.seconds_total for r in per_rank))

    def test_collective_wait_recorded(self, profiled):
        _, _, profile = profiled
        assert profile.wait_seconds("collective") > 0
        assert profile.collectives  # at least one op type counted

    def test_cmg_bytes_sum_to_total_memory_traffic(self, profiled):
        _, _, profile = profiled
        total = profile.total_counters()
        by_cmg = sum(r + w for r, w in profile.cmg_memory_bytes.values())
        assert by_cmg == pytest.approx(total.mem_bytes, rel=1e-9)
        # 4 ranks x 12 threads on A64FX = one rank per CMG
        assert len(profile.cmg_memory_bytes) == 4

    def test_to_json_round_trips(self, profiled):
        _, _, profile = profiled
        blob = json.dumps(profile.to_json())
        back = json.loads(blob)
        assert back == profile.to_json()
        assert set(back["regions"]) == set(profile.regions())
        for reg in back["regions"].values():
            stalls = reg["counters"]
            total = sum(stalls[f"cycles_{c}"] for c in
                        ("compute", "l1d", "l2", "memory", "dependence",
                         "overhead"))
            assert total == pytest.approx(stalls["cycles"], rel=1e-9)


class TestRegionTable:
    def test_lists_regions_and_wait_rows(self, profiled):
        job, _, profile = profiled
        out = region_table(profile).render()
        for name in job.kernels:
            assert name in out
        assert "[collective]" in out

    def test_top_truncates(self, profiled):
        _, _, profile = profiled
        out = region_table(profile, top=1).render()
        body = [line for line in out.splitlines()
                if line and not line.startswith(("==", "-", "region", "note"))]
        region_rows = [line for line in body if not line.startswith("[")]
        assert len(region_rows) == 1
