"""Tests of cycle accounting and the counter/analytic cross-validation."""

import pytest

from repro.core.analysis import app_roofline
from repro.machine import catalog
from repro.miniapps import by_name
from repro.perf import (
    CYCLE_CATEGORIES,
    counter_roofline,
    cross_validate_counters,
    cycle_accounting_table,
    profile_job,
    roofline_crosscheck_table,
    validate_counters,
)
from repro.perf.accounting import RUN_TOL, TIGHT_TOL
from repro.runtime.placement import JobPlacement


@pytest.fixture(scope="module")
def cluster():
    return catalog.a64fx()


@pytest.fixture(scope="module")
def profiled(cluster):
    app = by_name("ccs-qcd")
    placement = JobPlacement(cluster, 4, 12)
    result, profile = profile_job(app.build_job(cluster, placement, "as-is"))
    return app, result, profile


class TestCycleAccounting:
    def test_table_has_one_percent_column_per_category(self, profiled):
        _, _, profile = profiled
        table = cycle_accounting_table(profile)
        for cat in CYCLE_CATEGORIES:
            assert f"{cat} %" in table.headers

    def test_percentages_sum_to_hundred(self, profiled):
        _, _, profile = profiled
        table = cycle_accounting_table(profile)
        idx = [table.headers.index(f"{cat} %") for cat in CYCLE_CATEGORIES]
        for row in table.rows:
            got = sum(float(row[i].replace(",", "")) for i in idx)
            assert got == pytest.approx(100.0, abs=0.5), row[0]

    def test_total_row_present(self, profiled):
        _, _, profile = profiled
        assert any(r[0] == "TOTAL" for r in cycle_accounting_table(
            profile).rows)


class TestCounterRoofline:
    def test_one_point_per_compute_region(self, profiled):
        app, _, profile = profiled
        points = counter_roofline(profile, catalog.a64fx())
        assert {p.kernel for p in points} == set(
            app.kernels(app.dataset("as-is")))

    def test_points_sit_under_the_roof(self, profiled):
        _, _, profile = profiled
        for p in counter_roofline(profile, catalog.a64fx()):
            assert p.achieved_gflops <= p.attainable_gflops * 1.001, p.kernel

    def test_intensity_matches_analytic_model(self, profiled, cluster):
        """Counter AI equals the analytic roofline AI: both divide the
        same flop count by the same DRAM traffic model."""
        app, _, profile = profiled
        analytic = {p.kernel: p for p in app_roofline(app, cluster)}
        for p in counter_roofline(profile, cluster):
            assert p.arithmetic_intensity == pytest.approx(
                analytic[p.kernel].arithmetic_intensity, rel=0.05), p.kernel

    def test_achieved_within_run_tolerance_of_analytic(self, profiled,
                                                       cluster):
        app, _, profile = profiled
        analytic = {p.kernel: p for p in app_roofline(app, cluster)}
        for p in counter_roofline(profile, cluster):
            ref = analytic[p.kernel].achieved_gflops
            assert p.achieved_gflops == pytest.approx(
                ref, rel=RUN_TOL), p.kernel


class TestCrosscheckTable:
    def test_every_region_within_tolerance(self, profiled, cluster):
        app, _, profile = profiled
        table = roofline_crosscheck_table(profile, cluster, app)
        ok_col = table.headers.index(f"within {RUN_TOL:.0%}")
        assert table.rows
        for row in table.rows:
            assert row[ok_col] == "yes", row


class TestCrossValidation:
    def test_tight_pass_is_clean_on_a64fx(self, cluster):
        report = cross_validate_counters(cluster, apps=["ccs-qcd", "ffvc"])
        assert report.ok, report.render()

    def test_tight_tolerance_is_actually_tight(self):
        assert TIGHT_TOL <= 0.05

    def test_validate_counters_clean_for_representative_apps(self):
        report = validate_counters(apps=["ccs-qcd", "mvmc"])
        assert report.ok, report.render()

    def test_diagnostics_use_counter_namespace(self, cluster):
        # force a failure by shrinking the tolerance to zero-ish
        report = cross_validate_counters(cluster, apps=["ccs-qcd"],
                                         tol=1e-15)
        # AI/GF/s comparisons are float-identical by construction, so a
        # zero tolerance may still pass; whatever appears must be namespaced
        for d in report.diagnostics:
            assert d.check.startswith("counter-")
