"""Conservation laws of the simulated PMU, across the whole catalog.

For every miniapp skeleton x cataloged processor:

* counter-summed flops and memory bytes equal the executor's work
  totals (both sum the same region timings — any drift means a hook
  double-counted or missed a region);
* total attributed cycles equal simulated time x frequency per rank
  (every interval of a rank's timeline is accounted exactly once);
* for the miniapps with closed-form work accounting
  (:mod:`repro.validate`), the counter-summed flop total matches the
  closed form within its stated tolerance.
"""

import pytest

from repro.machine import catalog
from repro.miniapps import SUITE, by_name
from repro.perf import profile_job
from repro.runtime.placement import JobPlacement
from repro.validate import _expected_flops_as_is

#: Apps repro.validate can count in closed form.
_CLOSED_FORM = ("ccs-qcd", "ffvc", "ntchem", "nicam-dc")


def _placement(cluster) -> JobPlacement:
    """4 ranks, threads scaled to the processor's core count."""
    threads = max(1, cluster.cores_per_node // 8)
    return JobPlacement(cluster, 4, threads)


@pytest.fixture(scope="module")
def grid():
    """(app, processor) -> (RunResult, Profile) over the full catalog."""
    out = {}
    for proc in sorted(catalog.PROCESSORS):
        cluster = catalog.by_name(proc)
        placement = _placement(cluster)
        for app_name in sorted(SUITE):
            app = by_name(app_name)
            out[(app_name, proc)] = profile_job(
                app.build_job(cluster, placement, "as-is"))
    return out


class TestCatalogWideConservation:
    def test_counter_flops_equal_executor_totals(self, grid):
        for (app, proc), (result, profile) in grid.items():
            total = profile.total_counters()
            assert total.flops == pytest.approx(
                result.total_flops, rel=1e-9), (app, proc)

    def test_counter_bytes_equal_executor_totals(self, grid):
        for (app, proc), (result, profile) in grid.items():
            total = profile.total_counters()
            assert total.mem_bytes == pytest.approx(
                result.total_dram_bytes, rel=1e-9), (app, proc)

    def test_attributed_cycles_equal_time_times_frequency(self, grid):
        for (app, proc), (result, profile) in grid.items():
            for rank, finish in result.rank_finish.items():
                expected = finish * profile.rank_freq[rank]
                assert profile.attributed_cycles(rank) == pytest.approx(
                    expected, rel=1e-9), (app, proc, rank)

    def test_stall_categories_sum_per_region(self, grid):
        for (app, proc), (_, profile) in grid.items():
            for rp in profile.regions().values():
                assert sum(rp.counters.stall_cycles().values()) == \
                    pytest.approx(rp.counters.cycles, rel=1e-9), \
                    (app, proc, rp.name)

    def test_lane_utilization_bounded(self, grid):
        for (app, proc), (_, profile) in grid.items():
            total = profile.total_counters()
            assert 0.0 <= total.sve_lane_utilization <= 1.0, (app, proc)


class TestClosedFormAccounting:
    @pytest.mark.parametrize("app_name", _CLOSED_FORM)
    def test_counter_flops_match_closed_form(self, grid, app_name):
        """Counter totals agree with the hand-derived dataset formulas
        — on every processor, since the work is machine-independent."""
        expected, tol = _expected_flops_as_is(app_name)
        for proc in sorted(catalog.PROCESSORS):
            _, profile = grid[(app_name, proc)]
            got = profile.total_counters().flops
            assert got == pytest.approx(expected, rel=tol), proc
