"""Tests for cache-level traffic estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.kernels.kernel import LoopKernel
from repro.kernels.workingset import level_traffic
from repro.machine import catalog
from repro.units import KIB, MIB


@pytest.fixture(scope="module")
def caches():
    dom = catalog.a64fx().node.chips[0].domains[0]
    return dom.l1d, dom.l2


def kernel(ws=0.0, streaming=1.0, contiguous=1.0):
    return LoopKernel(name="k", flops=2, bytes_load=24, bytes_store=8,
                      working_set_bytes=ws, streaming_fraction=streaming,
                      contiguous_fraction=contiguous)


class TestLevelTraffic:
    def test_pure_streaming_reaches_dram(self, caches):
        l1, l2 = caches
        t = level_traffic(kernel(streaming=1.0), l1, l2)
        assert t.dram_bytes == pytest.approx(t.l1_bytes, rel=0.01)

    def test_l1_carries_all_touched_bytes(self, caches):
        l1, l2 = caches
        k = kernel(ws=1 * MIB, streaming=0.2)
        assert level_traffic(k, l1, l2).l1_bytes == pytest.approx(k.bytes_total)

    def test_tiny_working_set_filters_reuse(self, caches):
        l1, l2 = caches
        t = level_traffic(kernel(ws=4 * KIB, streaming=0.2), l1, l2)
        # 20% streaming passes; ~80% reuse absorbed by L1
        assert t.dram_bytes == pytest.approx(0.2 * 32, rel=0.1)

    def test_l2_sized_working_set_absorbed_by_l2(self, caches):
        l1, l2 = caches
        t = level_traffic(kernel(ws=1 * MIB, streaming=0.2), l1, l2)
        assert t.l2_bytes > t.dram_bytes
        assert t.dram_bytes < 0.35 * 32

    def test_huge_working_set_misses_everything(self, caches):
        l1, l2 = caches
        t = level_traffic(kernel(ws=512 * MIB, streaming=0.0), l1, l2)
        assert t.dram_bytes == pytest.approx(32, rel=0.05)

    def test_gather_inflates_lower_levels(self, caches):
        l1, l2 = caches
        contig = level_traffic(kernel(contiguous=1.0), l1, l2)
        gather = level_traffic(kernel(contiguous=0.0), l1, l2)
        assert gather.dram_bytes > 5 * contig.dram_bytes
        assert gather.l1_bytes == contig.l1_bytes

    def test_working_set_scale_shrinks_traffic(self, caches):
        l1, l2 = caches
        k = kernel(ws=12 * MIB, streaming=0.0)
        solo = level_traffic(k, l1, l2, working_set_scale=1.0)
        shared = level_traffic(k, l1, l2, working_set_scale=0.3)
        assert shared.dram_bytes < solo.dram_bytes

    def test_zero_traffic_kernel(self, caches):
        l1, l2 = caches
        k = LoopKernel(name="fp-only", flops=10)
        t = level_traffic(k, l1, l2)
        assert t.l1_bytes == t.l2_bytes == t.dram_bytes == 0.0

    def test_rejects_bad_scale(self, caches):
        l1, l2 = caches
        with pytest.raises(ConfigurationError):
            level_traffic(kernel(), l1, l2, working_set_scale=0.0)

    def test_miss_fractions_bounded(self, caches):
        l1, l2 = caches
        t = level_traffic(kernel(ws=1 * MIB, streaming=0.3), l1, l2)
        assert 0.0 <= t.l1_miss_fraction <= 1.0
        assert 0.0 <= t.l2_miss_fraction <= 1.0

    @given(ws=st.floats(0, 1e9), streaming=st.floats(0, 1))
    def test_traffic_hierarchy_invariant(self, ws, streaming):
        """DRAM traffic never exceeds L2 traffic; both bounded sensibly."""
        dom = catalog.a64fx().node.chips[0].domains[0]
        k = kernel(ws=ws, streaming=streaming)
        t = level_traffic(k, dom.l1d, dom.l2)
        assert t.dram_bytes <= t.l2_bytes * (1 + 1e-9)
        assert t.dram_bytes >= streaming * k.bytes_total * 0.99

    @given(ws=st.floats(1, 1e9))
    def test_dram_monotone_in_working_set(self, ws):
        dom = catalog.a64fx().node.chips[0].domains[0]
        bigger = level_traffic(kernel(ws=ws * 2, streaming=0.0), dom.l1d, dom.l2)
        smaller = level_traffic(kernel(ws=ws, streaming=0.0), dom.l1d, dom.l2)
        assert bigger.dram_bytes >= smaller.dram_bytes - 1e-12
