"""Tests for the LoopKernel descriptor and presets."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.kernels import presets
from repro.kernels.kernel import LoopKernel


class TestLoopKernel:
    def test_bytes_total(self):
        k = LoopKernel(name="k", flops=2, bytes_load=24, bytes_store=8)
        assert k.bytes_total == 32

    def test_arithmetic_intensity(self):
        k = LoopKernel(name="k", flops=8, bytes_load=24, bytes_store=8)
        assert k.arithmetic_intensity == pytest.approx(0.25)

    def test_ai_infinite_for_compute_only(self):
        k = LoopKernel(name="k", flops=8)
        assert math.isinf(k.arithmetic_intensity)

    def test_dram_ai(self):
        k = LoopKernel(name="k", flops=10, bytes_load=8)
        assert k.dram_arithmetic_intensity(5.0) == pytest.approx(2.0)
        assert math.isinf(k.dram_arithmetic_intensity(0.0))

    def test_scaled_preserves_ratios(self):
        k = presets.stream_triad()
        s = k.scaled(10.0, name="triad-x10")
        assert s.flops == pytest.approx(10 * k.flops)
        assert s.bytes_load == pytest.approx(10 * k.bytes_load)
        assert s.arithmetic_intensity == pytest.approx(k.arithmetic_intensity)
        assert s.name == "triad-x10"
        assert s.vec_fraction == k.vec_fraction

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            presets.stream_triad().scaled(0.0)

    def test_rejects_workless_kernel(self):
        with pytest.raises(ConfigurationError):
            LoopKernel(name="empty", flops=0)

    def test_int_only_kernel_is_valid(self):
        k = LoopKernel(name="int", flops=0, int_ops=10, bytes_load=8)
        assert k.int_ops == 10

    def test_rejects_fraction_out_of_range(self):
        with pytest.raises(ConfigurationError):
            LoopKernel(name="k", flops=1, vec_fraction=1.2)

    def test_rejects_nonpositive_ilp(self):
        with pytest.raises(ConfigurationError):
            LoopKernel(name="k", flops=1, ilp=0)

    @given(factor=st.floats(0.1, 100.0))
    def test_scaling_conserves_intensity(self, factor):
        k = presets.complex_matvec_su3()
        s = k.scaled(factor)
        assert s.arithmetic_intensity == pytest.approx(k.arithmetic_intensity)


class TestPresets:
    def test_triad_intensity(self):
        k = presets.stream_triad()
        # 2 flops / 32 bytes
        assert k.arithmetic_intensity == pytest.approx(1 / 16)
        assert k.streaming_fraction == 1.0

    def test_dgemm_is_compute_dense(self):
        k = presets.dgemm_blocked(block=96)
        assert k.arithmetic_intensity > 5.0
        assert k.streaming_fraction < 0.1

    def test_dgemm_block_controls_working_set(self):
        small = presets.dgemm_blocked(block=32)
        large = presets.dgemm_blocked(block=128)
        assert large.working_set_bytes > small.working_set_bytes
        assert large.arithmetic_intensity > small.arithmetic_intensity

    def test_stencil_point_count_scales_flops(self):
        s7 = presets.stencil_star(7, 1e6)
        s19 = presets.stencil_star(19, 1e6)
        assert s19.flops > s7.flops

    def test_stencil_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            presets.stencil_star(2, 1e6)

    def test_spmv_is_gather_heavy(self):
        k = presets.spmv_csr(30, 1e6)
        assert k.contiguous_fraction < 0.8

    def test_integer_scan_has_no_real_fp(self):
        k = presets.integer_compare_scan(64e3)
        assert k.int_ops > 10 * k.flops
        assert k.int_vectorizable

    def test_qcd_kernel_flops(self):
        k = presets.complex_matvec_su3()
        assert k.flops == pytest.approx(264.0)
        assert k.vec_fraction >= 0.9

    def test_pfaffian_update_low_ilp(self):
        k = presets.dense_update_pfaffian(64)
        assert k.ilp < presets.dgemm_blocked().ilp

    def test_fem_assembly_is_irregular(self):
        k = presets.fem_element_assembly()
        assert k.contiguous_fraction < 0.7
