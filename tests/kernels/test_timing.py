"""Tests for the per-core phase timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compile import Compiler, PRESETS
from repro.errors import ConfigurationError
from repro.kernels import phase_time, presets
from repro.machine import catalog
from repro.units import GB_S


@pytest.fixture(scope="module")
def a64fx_domain():
    return catalog.a64fx().node.chips[0].domains[0]


def time_kernel(kern, dom, opts="kfast", streams=1, iters=1e6):
    ck = Compiler(PRESETS[opts]).compile(kern, dom.core)
    return phase_time(
        ck, iters, dom.core, dom.l1d, dom.l2,
        mem_bandwidth_share=dom.memory.per_stream_bandwidth(streams),
        l2_bandwidth_share=dom.l2_bandwidth_share(streams),
        mem_latency_s=dom.memory.latency_s,
    )


class TestBounds:
    def test_triad_is_dram_bound(self, a64fx_domain):
        assert time_kernel(presets.stream_triad(), a64fx_domain).bound == "dram"

    def test_dgemm_is_compute_bound(self, a64fx_domain):
        assert time_kernel(presets.dgemm_blocked(), a64fx_domain).bound == "compute"

    def test_zero_iters_is_free(self, a64fx_domain):
        pt = time_kernel(presets.stream_triad(), a64fx_domain, iters=0)
        assert pt.seconds == 0.0

    def test_negative_iters_rejected(self, a64fx_domain):
        with pytest.raises(ConfigurationError):
            time_kernel(presets.stream_triad(), a64fx_domain, iters=-1)

    def test_bad_bandwidth_rejected(self, a64fx_domain):
        dom = a64fx_domain
        ck = Compiler(PRESETS["kfast"]).compile(presets.stream_triad(), dom.core)
        with pytest.raises(ConfigurationError):
            phase_time(ck, 1, dom.core, dom.l1d, dom.l2,
                       mem_bandwidth_share=0, l2_bandwidth_share=1,
                       mem_latency_s=1e-7)


class TestAbsoluteCalibration:
    def test_single_core_triad_bandwidth(self, a64fx_domain):
        """One A64FX core should stream ~45-50 GB/s."""
        pt = time_kernel(presets.stream_triad(), a64fx_domain, streams=1)
        assert 40 * GB_S < pt.dram_bandwidth < 52 * GB_S

    def test_cmg_saturated_triad(self, a64fx_domain):
        """12 cores on one CMG: ~17 GB/s each, ~200 GB/s aggregate."""
        pt = time_kernel(presets.stream_triad(), a64fx_domain, streams=12)
        aggregate = pt.dram_bandwidth * 12
        assert 180 * GB_S < aggregate < 212 * GB_S

    def test_dgemm_efficiency(self, a64fx_domain):
        """Tuned DGEMM reaches >60% of the 70.4 GF/s core peak."""
        pt = time_kernel(presets.dgemm_blocked(), a64fx_domain)
        peak = a64fx_domain.core.peak_flops_fp64
        assert pt.achieved_flops_per_s > 0.6 * peak

    def test_dgemm_no_simd_is_an_order_slower(self, a64fx_domain):
        tuned = time_kernel(presets.dgemm_blocked(), a64fx_domain, opts="kfast")
        asis = time_kernel(presets.dgemm_blocked(), a64fx_domain, opts="as-is")
        assert asis.seconds > 4 * tuned.seconds


class TestCompilerSensitivity:
    def test_scheduling_helps_low_ilp_on_a64fx(self, a64fx_domain):
        k = presets.dense_update_pfaffian(64)
        base = time_kernel(k, a64fx_domain, opts="+simd")
        sched = time_kernel(k, a64fx_domain, opts="+simd+sched")
        assert sched.seconds < base.seconds

    def test_scheduling_matters_less_on_skylake(self):
        """Skylake's big OoO window already fills the pipes."""
        a_dom = catalog.a64fx().node.chips[0].domains[0]
        x_dom = catalog.xeon_skylake().node.chips[0].domains[0]
        k = presets.dense_update_pfaffian(64)
        gain_a = (time_kernel(k, a_dom, opts="+simd").seconds
                  / time_kernel(k, a_dom, opts="+simd+sched").seconds)
        gain_x = (time_kernel(k, x_dom, opts="+simd").seconds
                  / time_kernel(k, x_dom, opts="+simd+sched").seconds)
        assert gain_a > gain_x

    def test_int_simd_speeds_up_ngsa_kernel(self, a64fx_domain):
        k = presets.integer_compare_scan(64e3)
        asis = time_kernel(k, a64fx_domain, opts="as-is")
        tuned = time_kernel(k, a64fx_domain, opts="+simd+sched")
        assert 1.5 < asis.seconds / tuned.seconds < 6.0

    def test_vl_cap_slows_vector_kernels(self, a64fx_domain):
        dom = a64fx_domain
        full = Compiler(PRESETS["kfast"]).compile(presets.dgemm_blocked(), dom.core)
        capped = Compiler(
            PRESETS["kfast"].with_(simd_width_bits=128)
        ).compile(presets.dgemm_blocked(), dom.core)
        t_full = phase_time(full, 1e6, dom.core, dom.l1d, dom.l2,
                            mem_bandwidth_share=50 * GB_S,
                            l2_bandwidth_share=100 * GB_S, mem_latency_s=1e-7)
        t_cap = phase_time(capped, 1e6, dom.core, dom.l1d, dom.l2,
                           mem_bandwidth_share=50 * GB_S,
                           l2_bandwidth_share=100 * GB_S, mem_latency_s=1e-7)
        assert t_cap.seconds > 2 * t_full.seconds


class TestProperties:
    @settings(max_examples=30)
    @given(streams=st.integers(1, 12))
    def test_more_contention_never_speeds_up(self, streams):
        dom = catalog.a64fx().node.chips[0].domains[0]
        t1 = time_kernel(presets.stream_triad(), dom, streams=streams)
        t2 = time_kernel(presets.stream_triad(), dom, streams=streams + 1)
        assert t2.seconds >= t1.seconds - 1e-12

    @settings(max_examples=30)
    @given(iters=st.floats(1, 1e8))
    def test_time_linear_in_iters(self, iters):
        dom = catalog.a64fx().node.chips[0].domains[0]
        t1 = time_kernel(presets.stream_triad(), dom, iters=iters)
        t2 = time_kernel(presets.stream_triad(), dom, iters=2 * iters)
        assert t2.seconds == pytest.approx(2 * t1.seconds, rel=1e-9)

    def test_components_cover_bound(self, a64fx_domain):
        pt = time_kernel(presets.complex_matvec_su3(), a64fx_domain)
        assert pt.bound in ("compute", "l1", "l2", "dram", "latency")
        assert set(pt.components) == {"compute", "l1", "l2", "dram", "latency"}
        assert all(v >= 0 for v in pt.components.values())
