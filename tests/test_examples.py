"""Smoke tests: the shipped examples must run end to end.

Each example is executed in a subprocess (fresh interpreter, like a user
would run it); only the cheap ones run here — the full set is exercised
manually and in the benchmark harness.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_all_examples_exist(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py", "placement_study.py", "compiler_tuning.py",
            "qcd_solver_demo.py", "custom_processor.py",
            "energy_and_traces.py", "sssp_projection.py",
        } <= present

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "best configuration" in out
        assert "GFLOP/s" in out or "TFLOP/s" in out

    def test_custom_processor(self):
        out = run_example("custom_processor.py")
        assert "A64FX (baseline)" in out
        assert "DDR4" in out

    def test_energy_and_traces(self):
        out = run_example("energy_and_traces.py")
        assert "eco" in out and "timeline" in out
        assert "trace written" in out
