"""Tests for the internal consistency validation suite."""

import dataclasses

import pytest

from repro import validate
from repro.machine import catalog
from repro.machine.power import POWER_SPECS


class TestChecksPass:
    def test_catalog_sanity_clean(self):
        assert validate.check_catalog_sanity() == []

    def test_bandwidth_curve_clean(self):
        assert validate.check_bandwidth_curve() == []

    def test_work_accounting_clean(self):
        assert validate.check_work_accounting() == []

    def test_decomposition_conservation_clean(self):
        assert validate.check_decomposition_conservation() == []


class TestChecksDetectBreakage:
    def test_catalog_check_catches_drift(self, monkeypatch):
        broken = dict(validate._PUBLISHED)
        broken["A64FX"] = (9.9e12, 1024e9)
        monkeypatch.setattr(validate, "_PUBLISHED", broken)
        issues = validate.check_catalog_sanity()
        assert any("A64FX" in i.detail for i in issues)

    def test_expected_flops_unknown_app(self):
        with pytest.raises(KeyError):
            validate._expected_flops_as_is("linpack")

    def test_issue_formatting(self):
        issue = validate.ValidationIssue("check", "something broke")
        assert "check" in str(issue) and "something broke" in str(issue)

    def test_issue_to_diagnostic(self):
        diag = validate.ValidationIssue("catalog", "drift").to_diagnostic()
        assert diag.check == "model-catalog"
        assert diag.severity == "error"
        assert diag.message == "drift"

    def test_validate_diagnostics_clean(self):
        report = validate.validate_diagnostics()
        assert report.ok, report.render()
        assert report.subject == "model consistency"


class TestCliIntegration:
    def test_cli_validate_passes(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        assert "passed" in capsys.readouterr().out


class TestCoverageOfCatalog:
    def test_every_processor_has_published_reference(self):
        assert set(validate._PUBLISHED) == set(catalog.PROCESSORS)

    def test_every_processor_has_power_spec(self):
        assert set(POWER_SPECS) == set(catalog.PROCESSORS)
