"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--app", "ffvc"])
        assert args.processor == "A64FX"
        assert args.ranks == 4 and args.threads == 12

    def test_invalid_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "hpl"])

    def test_invalid_processor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--app", "ffvc", "--processor", "EPYC"])


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "ccs-qcd" in out and "ntchem" in out

    def test_list_processors(self, capsys):
        assert main(["list-processors"]) == 0
        out = capsys.readouterr().out
        assert "A64FX" in out and "Tofu-D" in out

    def test_run_prints_report(self, capsys):
        rc = main(["run", "--app", "ffvc", "--ranks", "2",
                   "--threads", "4", "--breakdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "elapsed" in out and "compute" in out

    def test_run_with_stride_and_policy(self, capsys):
        rc = main(["run", "--app", "ffvc", "--ranks", "1", "--threads", "8",
                   "--stride", "12", "--data-policy", "serial-init"])
        assert rc == 0
        assert "stride-12" in capsys.readouterr().out

    def test_figure_t1(self, capsys):
        assert main(["figure", "t1"]) == 0
        assert "A64FX" in capsys.readouterr().out

    def test_figure_csv(self, capsys):
        assert main(["figure", "t2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "miniapp,full name" in out

    def test_figure_unknown_id(self, capsys):
        assert main(["figure", "zz"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_roofline(self, capsys):
        assert main(["roofline", "--app", "ntchem"]) == 0
        out = capsys.readouterr().out
        assert "dgemm" in out

    def test_energy(self, capsys):
        assert main(["energy", "--app", "ffvc", "--ranks", "2",
                     "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "eco" in out and "GF/W" in out


class TestLintCommand:
    def test_lint_single_placement_clean(self, capsys):
        rc = main(["lint", "ffvc", "--ranks", "4", "--threads", "12",
                   "--no-cache"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_grid_covers_corners(self, capsys):
        rc = main(["lint", "mvmc", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1x48" in out and "4x12" in out and "48x1" in out

    def test_lint_reports_infeasible_placement(self, capsys):
        rc = main(["lint", "ffvc", "--ranks", "48", "--threads", "12",
                   "--no-cache"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "placement-infeasible" in captured.out
        assert "error" in captured.err

    def test_lint_uses_cache_dir(self, tmp_path, capsys):
        rc = main(["lint", "mvmc", "--ranks", "4", "--threads", "12",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "lint.jsonl").exists()

    def test_no_lint_flag_disables_preflight(self):
        from repro.analysis import preflight_enabled, set_preflight

        try:
            assert main(["run", "--app", "mvmc", "--ranks", "2",
                         "--threads", "2", "--no-cache",
                         "--no-lint"]) == 0
            assert not preflight_enabled()
        finally:
            set_preflight(True)
