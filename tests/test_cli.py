"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--app", "ffvc"])
        assert args.processor == "A64FX"
        assert args.ranks == 4 and args.threads == 12

    def test_invalid_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "hpl"])

    def test_invalid_processor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--app", "ffvc", "--processor", "EPYC"])


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "ccs-qcd" in out and "ntchem" in out

    def test_list_processors(self, capsys):
        assert main(["list-processors"]) == 0
        out = capsys.readouterr().out
        assert "A64FX" in out and "Tofu-D" in out

    def test_run_prints_report(self, capsys):
        rc = main(["run", "--app", "ffvc", "--ranks", "2",
                   "--threads", "4", "--breakdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "elapsed" in out and "compute" in out

    def test_run_with_stride_and_policy(self, capsys):
        rc = main(["run", "--app", "ffvc", "--ranks", "1", "--threads", "8",
                   "--stride", "12", "--data-policy", "serial-init"])
        assert rc == 0
        assert "stride-12" in capsys.readouterr().out

    def test_figure_t1(self, capsys):
        assert main(["figure", "t1"]) == 0
        assert "A64FX" in capsys.readouterr().out

    def test_figure_csv(self, capsys):
        assert main(["figure", "t2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "miniapp,full name" in out

    def test_figure_unknown_id(self, capsys):
        assert main(["figure", "zz"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_roofline(self, capsys):
        assert main(["roofline", "--app", "ntchem"]) == 0
        out = capsys.readouterr().out
        assert "dgemm" in out

    def test_energy(self, capsys):
        assert main(["energy", "--app", "ffvc", "--ranks", "2",
                     "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "eco" in out and "GF/W" in out
