"""Physics validation for the FFB miniature: FEM assembly vs SciPy, CG vs
direct solves, and O(h^2) convergence."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ConfigurationError
from repro.miniapps.ffb import physics as fem


class TestMesh:
    def test_counts(self):
        nodes, tris = fem.unit_square_mesh(5)
        assert len(nodes) == 25
        assert len(tris) == 2 * 4 * 4

    def test_total_area_is_one(self):
        nodes, tris = fem.unit_square_mesh(6)
        area = sum(fem.element_stiffness(nodes[t])[1] for t in tris)
        assert area == pytest.approx(1.0, rel=1e-12)

    def test_rejects_degenerate_mesh(self):
        with pytest.raises(ConfigurationError):
            fem.unit_square_mesh(1)


class TestElementStiffness:
    def test_rows_sum_to_zero(self):
        """Stiffness annihilates constants."""
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.3, 0.8]])
        ke, _ = fem.element_stiffness(coords)
        assert np.allclose(ke.sum(axis=1), 0.0, atol=1e-12)

    def test_symmetric_positive_semidefinite(self):
        coords = np.array([[0.0, 0.0], [2.0, 0.1], [0.5, 1.5]])
        ke, _ = fem.element_stiffness(coords)
        assert np.allclose(ke, ke.T)
        eigs = np.linalg.eigvalsh(ke)
        assert eigs.min() > -1e-12

    def test_reference_triangle(self):
        """Unit right triangle has the known P1 stiffness matrix."""
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        ke, area = fem.element_stiffness(coords)
        expected = 0.5 * np.array([[2.0, -1.0, -1.0],
                                   [-1.0, 1.0, 0.0],
                                   [-1.0, 0.0, 1.0]])
        assert area == pytest.approx(0.5)
        assert np.allclose(ke, expected)

    def test_degenerate_element_rejected(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        with pytest.raises(ConfigurationError):
            fem.element_stiffness(coords)


class TestAssembly:
    def test_global_matrix_symmetric(self):
        nodes, tris = fem.unit_square_mesh(7)
        k, _ = fem.assemble(nodes, tris, np.ones(len(nodes)))
        assert abs(k - k.T).max() < 1e-12

    def test_constant_in_null_space(self):
        nodes, tris = fem.unit_square_mesh(6)
        k, _ = fem.assemble(nodes, tris, np.ones(len(nodes)))
        ones = np.ones(k.shape[0])
        assert np.abs(k @ ones).max() < 1e-10


class TestCg:
    def test_matches_direct_solve(self):
        nodes, tris = fem.unit_square_mesh(9)
        x, y = nodes[:, 0], nodes[:, 1]
        f = np.sin(np.pi * x) * np.sin(np.pi * y)
        k, rhs = fem.assemble(nodes, tris, f)
        boundary = np.nonzero((x == 0) | (x == 1) | (y == 0) | (y == 1))[0]
        k, rhs = fem.apply_dirichlet(k, rhs, boundary)
        u_cg, iters, rel = fem.conjugate_gradient(k, rhs, tol=1e-12)
        u_direct = spla.spsolve(sp.csc_matrix(k), rhs)
        assert rel < 1e-12
        assert np.allclose(u_cg, u_direct, atol=1e-8)
        assert iters < k.shape[0]

    def test_identity_system_converges_in_one_iteration(self):
        n = 20
        a = sp.identity(n, format="csr")
        b = np.arange(1.0, n + 1.0)
        x, iters, _ = fem.conjugate_gradient(a, b)
        assert iters == 1
        assert np.allclose(x, b)


class TestUnstructuredMesh:
    def test_mesh_covers_unit_square(self):
        nodes, tris = fem.unstructured_mesh(100, seed=3)
        area = sum(fem.element_stiffness(nodes[t])[1] for t in tris)
        assert area == pytest.approx(1.0, abs=1e-9)

    def test_mesh_is_irregular(self):
        """Node valences vary — the gather/scatter signature of FFB."""
        nodes, tris = fem.unstructured_mesh(150, seed=1)
        valence = np.zeros(len(nodes), dtype=int)
        for t in tris:
            valence[t] += 1
        interior = np.setdiff1d(np.arange(len(nodes)),
                                fem.boundary_nodes(nodes))
        assert valence[interior].max() - valence[interior].min() >= 3

    def test_boundary_detection(self):
        nodes, _ = fem.unstructured_mesh(50)
        b = fem.boundary_nodes(nodes)
        assert len(b) >= 4
        x, y = nodes[b, 0], nodes[b, 1]
        on_edge = (x < 1e-9) | (x > 1 - 1e-9) | (y < 1e-9) | (y > 1 - 1e-9)
        assert on_edge.all()

    def test_solution_accuracy(self):
        _, _, err = fem.solve_poisson_unstructured(200, seed=1)
        assert err < 0.05

    def test_refinement_reduces_error(self):
        _, _, coarse = fem.solve_poisson_unstructured(50, seed=2)
        _, _, fine = fem.solve_poisson_unstructured(800, seed=2)
        assert fine < 0.3 * coarse

    def test_assembled_matrix_spd_on_unstructured(self):
        nodes, tris = fem.unstructured_mesh(60, seed=4)
        k, rhs = fem.assemble(nodes, tris, np.ones(len(nodes)))
        k, rhs = fem.apply_dirichlet(k, rhs, fem.boundary_nodes(nodes))
        dense = k.toarray()
        assert np.allclose(dense, dense.T, atol=1e-12)
        assert np.linalg.eigvalsh(dense).min() > 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            fem.unstructured_mesh(0)


class TestPoissonSolution:
    def test_solution_matches_analytic(self):
        _, _, err = fem.solve_poisson_fem(17)
        assert err < 0.02

    def test_h2_convergence(self):
        """Halving h quarters the max error (P1 elements)."""
        _, _, err_coarse = fem.solve_poisson_fem(9)
        _, _, err_fine = fem.solve_poisson_fem(17)
        rate = err_coarse / err_fine
        assert 3.0 < rate < 5.5

    def test_dirichlet_rows_are_identities(self):
        nodes, tris = fem.unit_square_mesh(5)
        k, rhs = fem.assemble(nodes, tris, np.ones(len(nodes)))
        x, y = nodes[:, 0], nodes[:, 1]
        boundary = np.nonzero((x == 0) | (x == 1) | (y == 0) | (y == 1))[0]
        k, rhs = fem.apply_dirichlet(k, rhs, boundary)
        for node in boundary:
            row = k.getrow(node).toarray().ravel()
            assert row[node] == pytest.approx(1.0)
            assert np.abs(np.delete(row, node)).max() == 0.0
            assert rhs[node] == 0.0
