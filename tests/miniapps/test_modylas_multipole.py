"""Tests for the Barnes-Hut multipole tree against direct summation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.modylas import multipole as mp


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(42)
    n = 200
    pos = rng.uniform(0.0, 10.0, (n, 3))
    q = rng.uniform(0.5, 1.5, n)
    return pos, q


class TestDirectOracles:
    def test_two_charge_energy(self):
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        q = np.array([3.0, 4.0])
        assert mp.direct_potential_energy(pos, q) == pytest.approx(6.0)

    def test_two_charge_force(self):
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        q = np.array([1.0, 1.0])
        f = mp.direct_forces(pos, q)
        assert f[0, 0] == pytest.approx(-0.25)     # pushed apart
        assert f[1, 0] == pytest.approx(+0.25)

    def test_forces_sum_to_zero(self, system):
        pos, q = system
        f = mp.direct_forces(pos, q)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)


class TestOctree:
    def test_tree_partitions_particles(self, system):
        pos, q = system
        tree = mp.Octree(pos, q, leaf_size=8)
        collected = sorted(tree._collect(tree.root).tolist())
        assert collected == list(range(len(pos)))

    def test_root_moments(self, system):
        pos, q = system
        tree = mp.Octree(pos, q)
        root = tree.root
        assert root.charge == pytest.approx(float(q.sum()))
        # dipole about the charge centroid vanishes for same-sign charges
        assert np.allclose(root.dipole, 0.0, atol=1e-9)
        # quadrupole is traceless
        assert np.trace(root.quadrupole) == pytest.approx(0.0, abs=1e-9)

    def test_leaf_size_controls_depth(self, system):
        pos, q = system
        small = mp.Octree(pos, q, leaf_size=4).n_cells()
        large = mp.Octree(pos, q, leaf_size=32).n_cells()
        assert small > large

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            mp.Octree(np.zeros((4, 2)), np.zeros(4))
        with pytest.raises(ConfigurationError):
            mp.Octree(np.zeros((4, 3)), np.zeros(3))
        with pytest.raises(ConfigurationError):
            mp.Octree(np.zeros((4, 3)), np.zeros(4), leaf_size=0)


class TestBarnesHut:
    def test_theta_zero_recovers_direct(self, system):
        pos, q = system
        f_tree = mp.tree_forces(pos, q, theta=0.0)
        f_direct = mp.direct_forces(pos, q)
        assert np.allclose(f_tree, f_direct, atol=1e-10)

    def test_accuracy_improves_with_smaller_theta(self, system):
        pos, q = system
        f_direct = mp.direct_forces(pos, q)
        errs = []
        for theta in (0.8, 0.5, 0.3):
            f = mp.tree_forces(pos, q, theta=theta)
            errs.append(np.linalg.norm(f - f_direct)
                        / np.linalg.norm(f_direct))
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 1e-3

    def test_typical_theta_accuracy(self, system):
        """theta = 0.5 with quadrupole moments: < 0.1% force error."""
        pos, q = system
        f = mp.tree_forces(pos, q, theta=0.5)
        f_direct = mp.direct_forces(pos, q)
        rel = np.linalg.norm(f - f_direct) / np.linalg.norm(f_direct)
        assert rel < 1e-3

    def test_distant_probe_sees_aggregate(self):
        """A probe 30 box-lengths away must see the cluster's multipole to
        ~single-precision accuracy even at theta = 1."""
        rng = np.random.default_rng(1)
        pos = np.concatenate([rng.uniform(0, 1, (50, 3)),
                              [[30.0, 0.0, 0.0]]])
        q = np.concatenate([rng.uniform(0.5, 1.5, 50), [1.0]])
        f_tree = mp.tree_forces(pos, q, theta=1.0)
        f_direct = mp.direct_forces(pos, q)
        rel = np.abs(f_tree[-1] - f_direct[-1]).max() \
            / np.abs(f_direct[-1]).max()
        assert rel < 1e-5

    def test_mixed_charges_still_converge(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 10, (150, 3))
        q = rng.choice([-1.0, 1.0], 150)
        f_tree = mp.tree_forces(pos, q, theta=0.3)
        f_direct = mp.direct_forces(pos, q)
        # near-neutral cells make *relative* errors look large even when
        # the absolute error is tiny; check both at realistic tolerances
        rel = np.linalg.norm(f_tree - f_direct) / np.linalg.norm(f_direct)
        assert rel < 5e-2
        assert np.abs(f_tree - f_direct).max() < 0.05 * np.abs(f_direct).max()

    def test_invalid_theta_rejected(self, system):
        pos, q = system
        tree = mp.Octree(pos, q)
        with pytest.raises(ConfigurationError):
            tree.force_at(0, theta=2.5)
