"""Hubbard-VMC validation: exact diagonalization oracle, zero-variance
property, and the variational principle."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.mvmc import hubbard as hb


@pytest.fixture(scope="module")
def ring6():
    return hb.ring_adjacency(6)


class TestAdjacency:
    def test_ring_structure(self, ring6):
        assert ring6.sum() == 12                  # 6 sites x 2 neighbours
        assert np.array_equal(ring6, ring6.T)
        assert not ring6.diagonal().any()

    def test_rejects_tiny_ring(self):
        with pytest.raises(ConfigurationError):
            hb.ring_adjacency(2)


class TestOrbitals:
    def test_orbitals_diagonalize_hopping(self, ring6):
        phi = hb.hopping_orbitals(ring6, 3)
        h = np.where(ring6, -1.0, 0.0)
        # each column is an eigenvector
        for k in range(3):
            v = phi[:, k]
            hv = h @ v
            lam = float(v @ hv)
            assert np.allclose(hv, lam * v, atol=1e-10)

    def test_band_energies_of_ring(self, ring6):
        """6-ring levels: -2, -1, -1 for the lowest three."""
        phi = hb.hopping_orbitals(ring6, 3)
        h = np.where(ring6, -1.0, 0.0)
        energies = sorted(np.diag(phi.T @ h @ phi))
        assert energies[0] == pytest.approx(-2.0)
        assert energies[1] == pytest.approx(-1.0)
        assert energies[2] == pytest.approx(-1.0)


class TestExactDiagonalization:
    def test_free_fermion_ground_state(self, ring6):
        """U = 0: filled lowest levels, 2 x (-2 - 1 - 1) = -8."""
        assert hb.exact_ground_energy(ring6, 3, 3, u=0.0) == \
            pytest.approx(-8.0, abs=1e-10)

    def test_interaction_raises_energy(self, ring6):
        e0 = hb.exact_ground_energy(ring6, 3, 3, u=0.0)
        e4 = hb.exact_ground_energy(ring6, 3, 3, u=4.0)
        assert e4 > e0

    def test_atomic_limit_bound(self, ring6):
        """Large U at half filling: energy stays above -8 and below U."""
        e = hb.exact_ground_energy(ring6, 3, 3, u=50.0)
        assert -8.0 < e < 3 * 50.0

    def test_single_electron_sector(self, ring6):
        """One electron: ground energy = lowest band level = -2t."""
        assert hb.exact_ground_energy(ring6, 1, 0, t=1.0, u=7.0) == \
            pytest.approx(-2.0, abs=1e-10)

    def test_dimension_guard(self):
        adj = hb.ring_adjacency(12)
        with pytest.raises(ConfigurationError):
            hb.exact_ground_energy(adj, 6, 6)

    def test_hop_sign_antisymmetry(self):
        """Fermionic signs: hopping through an occupied region flips sign."""
        state = (0, 2, 4)
        new, sign = hb._hop_sign(state, 0, 3)   # passes site 2
        assert new == (2, 3, 4)
        assert sign == -1
        new2, sign2 = hb._hop_sign(state, 0, 1)  # passes nothing
        assert new2 == (1, 2, 4)
        assert sign2 == 1
        _, zero = hb._hop_sign(state, 0, 2)      # target occupied
        assert zero == 0


class TestVmc:
    def test_zero_variance_at_exact_eigenstate(self, ring6):
        """U = 0 with hopping orbitals: every local energy is exactly the
        ground energy — the canonical VMC correctness check."""
        vmc = hb.HubbardVmc(ring6, 3, 3, u=0.0)
        mean, err = vmc.run(np.random.default_rng(0), n_sweeps=40)
        assert mean == pytest.approx(-8.0, abs=1e-9)
        assert err < 1e-12

    def test_variational_principle(self, ring6):
        """U > 0 with the free-fermion trial state: E_vmc >= E_exact."""
        e_exact = hb.exact_ground_energy(ring6, 3, 3, u=4.0)
        vmc = hb.HubbardVmc(ring6, 3, 3, u=4.0)
        mean, err = vmc.run(np.random.default_rng(1), n_sweeps=300)
        assert mean + 3 * err > e_exact

    def test_interaction_energy_counted(self, ring6):
        vmc = hb.HubbardVmc(ring6, 3, 3, u=10.0)
        # force full double occupancy
        vmc.up.occupied = list(vmc.dn.occupied)
        vmc.up.refresh()
        e = vmc.local_energy()
        # 3 doubles at U=10 dominate the (bounded) kinetic part
        assert e >= 3 * 10.0 - 8.0 - 1e-9

    def test_sampling_moves_accept(self, ring6):
        vmc = hb.HubbardVmc(ring6, 3, 3, u=1.0)
        rng = np.random.default_rng(2)
        accepted = sum(vmc.step(rng) for _ in range(200))
        assert accepted > 10

    def test_parameter_validation(self, ring6):
        with pytest.raises(ConfigurationError):
            hb.HubbardVmc(ring6, 3, 3, t=0.0)
        with pytest.raises(ConfigurationError):
            hb.HubbardVmc(ring6, 3, 3, u=-1.0)
        vmc = hb.HubbardVmc(ring6, 3, 3)
        with pytest.raises(ConfigurationError):
            vmc.run(np.random.default_rng(0), n_sweeps=0)
