"""Physics validation for the FFVC miniature: Poisson solver and
divergence-free projection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.ffvc import physics as cfd


class TestOperators:
    def test_laplacian_of_constant_is_zero(self):
        f = np.full((8, 8, 8), 3.7)
        assert np.allclose(cfd.laplacian(f, 0.1), 0.0)

    def test_laplacian_matches_fourier_eigenvalue(self):
        """lap of a plane wave = -k_h^2 * wave (discrete eigenvalue)."""
        n, h = 16, 1.0
        x = np.arange(n) * h
        X = np.meshgrid(x, x, x, indexing="ij")[0]
        k = 2 * np.pi / (n * h)
        f = np.sin(k * X)
        eig = -(2.0 - 2.0 * np.cos(k * h)) / (h * h)
        assert np.allclose(cfd.laplacian(f, h), eig * f, atol=1e-12)

    def test_div_grad_equals_laplacian(self):
        """The projection identity the scheme relies on."""
        rng = np.random.default_rng(0)
        p = rng.standard_normal((8, 8, 8))
        gx, gy, gz = cfd.gradient(p, 0.5)
        div = cfd.divergence(gx, gy, gz, 0.5)
        assert np.allclose(div, cfd.laplacian(p, 0.5), atol=1e-12)

    def test_divergence_free_field(self):
        n = 32
        u, v, w = cfd.taylor_green(n, 2 * np.pi / n)
        div = cfd.divergence(u, v, w, 2 * np.pi / n)
        # one-sided differences leave an O(h) residual on the analytic field
        assert np.max(np.abs(div)) < 0.25


class TestPoissonSolver:
    def test_matches_spectral_solution(self):
        """SOR solution equals the exact (FFT) solution of the discrete
        periodic Poisson problem."""
        n, h = 12, 0.3
        rng = np.random.default_rng(7)
        rhs = rng.standard_normal((n, n, n))
        rhs -= rhs.mean()
        p, sweeps, res = cfd.solve_poisson_sor(rhs, h, tol=1e-10)
        assert res < 1e-10
        # spectral reference
        k = np.fft.fftfreq(n) * n
        eig = np.zeros((n, n, n))
        for axis, kk in enumerate(np.meshgrid(k, k, k, indexing="ij")):
            eig += (2.0 - 2.0 * np.cos(2 * np.pi * kk / n)) / (h * h)
        eig[0, 0, 0] = 1.0
        ref = np.fft.ifftn(np.fft.fftn(rhs) / (-eig)).real
        ref[0, 0, 0] = ref[0, 0, 0]
        ref -= ref.mean()
        assert np.allclose(p, ref, atol=1e-6)

    def test_residual_decreases_monotonically_enough(self):
        n, h = 8, 0.5
        rng = np.random.default_rng(3)
        rhs = rng.standard_normal((n, n, n))
        _, s_loose, r_loose = cfd.solve_poisson_sor(rhs, h, tol=1e-3)
        _, s_tight, r_tight = cfd.solve_poisson_sor(rhs, h, tol=1e-8)
        assert s_tight >= s_loose
        assert r_tight < r_loose

    def test_rejects_bad_omega(self):
        with pytest.raises(ConfigurationError):
            cfd.solve_poisson_sor(np.zeros((4, 4, 4)), 0.1, omega=2.5)

    def test_rejects_non_3d(self):
        with pytest.raises(ConfigurationError):
            cfd.solve_poisson_sor(np.zeros((4, 4)), 0.1)


class TestFractionalStep:
    def test_projection_reduces_divergence(self):
        n = 12
        h = 2 * np.pi / n
        u, v, w = cfd.taylor_green(n, h)
        # perturb to create divergence
        rng = np.random.default_rng(1)
        u = u + 0.1 * rng.standard_normal(u.shape)
        u2, v2, w2, p, sweeps = cfd.step(u, v, w, dt=1e-3, h=h, nu=1e-2)
        div_before = np.max(np.abs(cfd.divergence(u, v, w, h)))
        div_after = np.max(np.abs(cfd.divergence(u2, v2, w2, h)))
        assert div_after < 0.01 * div_before
        assert sweeps > 0

    def test_momentum_preserved_without_forcing(self):
        n = 8
        h = 2 * np.pi / n
        u, v, w = cfd.taylor_green(n, h)
        u2, v2, w2, _, _ = cfd.step(u, v, w, dt=1e-3, h=h, nu=0.0)
        # periodic box: total momentum is conserved by the projection
        assert u2.sum() == pytest.approx(u.sum(), abs=1e-8)
        assert v2.sum() == pytest.approx(v.sum(), abs=1e-8)

    def test_rejects_bad_dt(self):
        u, v, w = cfd.taylor_green(8, 0.5)
        with pytest.raises(ConfigurationError):
            cfd.step(u, v, w, dt=-1.0, h=0.5, nu=0.0)


class TestThermalStep:
    @staticmethod
    def hot_blob(n):
        h = 2 * np.pi / n
        u, v, w = cfd.taylor_green(n, h)
        u *= 0.0
        v *= 0.0
        x = (np.arange(n) - n / 2) * h
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        temp = np.exp(-(X ** 2 + Y ** 2 + Z ** 2))
        return u, v, w, temp, h

    def test_heat_conserved_without_diffusion_sources(self):
        """Periodic advection conserves total heat (upwind flux form does
        to first order; diffusion conserves exactly)."""
        u, v, w, temp, h = self.hot_blob(12)
        total0 = float(temp.sum())
        for _ in range(5):
            u, v, w, temp, _, _ = cfd.step_thermal(
                u, v, w, temp, dt=5e-4, h=h, nu=1e-2, kappa_t=1e-2)
        assert float(temp.sum()) == pytest.approx(total0, rel=1e-6)

    def test_diffusion_smooths_temperature(self):
        u, v, w, temp, h = self.hot_blob(12)
        var0 = float(temp.var())
        for _ in range(10):
            u, v, w, temp, _, _ = cfd.step_thermal(
                u, v, w, temp, dt=5e-4, h=h, nu=0.0, kappa_t=0.05)
        assert float(temp.var()) < var0

    def test_buoyancy_induces_vertical_motion(self):
        u, v, w, temp, h = self.hot_blob(12)
        assert np.allclose(w, 0.0)
        u, v, w, temp, _, _ = cfd.step_thermal(
            u, v, w, temp, dt=1e-3, h=h, nu=1e-2, kappa_t=1e-2,
            buoyancy=9.8, t_ref=float(temp.mean()))
        assert np.abs(w).max() > 1e-4

    def test_projection_still_divergence_free(self):
        u, v, w, temp, h = self.hot_blob(12)
        u2, v2, w2, _, _, _ = cfd.step_thermal(
            u, v, w, temp, dt=1e-3, h=h, nu=1e-2, kappa_t=1e-2,
            buoyancy=9.8)
        assert np.max(np.abs(cfd.divergence(u2, v2, w2, h))) < 1e-5

    def test_rejects_negative_diffusivity(self):
        u, v, w, temp, h = self.hot_blob(8)
        with pytest.raises(ConfigurationError):
            cfd.step_thermal(u, v, w, temp, dt=1e-3, h=h, nu=0.0,
                             kappa_t=-1.0)
