"""Physics validation for the clover term and even-odd preconditioning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.ccs_qcd import clover as cl
from repro.miniapps.ccs_qcd import physics as qcd


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(31415)
    shape = (4, 4, 4, 4)
    return shape, qcd.random_su3_field(shape, rng), rng


KAPPA, CSW = 0.12, 1.0


class TestSigmaAlgebra:
    def test_sigma_hermitian(self):
        for mu in range(4):
            for nu in range(4):
                s = cl.SIGMA[mu, nu]
                assert np.allclose(s, s.conj().T)

    def test_sigma_antisymmetric(self):
        for mu in range(4):
            assert np.allclose(cl.SIGMA[mu, mu], 0.0)
            for nu in range(4):
                assert np.allclose(cl.SIGMA[mu, nu], -cl.SIGMA[nu, mu])

    def test_sigma_commutes_with_gamma5(self):
        for mu in range(4):
            for nu in range(4):
                s = cl.SIGMA[mu, nu]
                assert np.allclose(qcd.GAMMA5 @ s, s @ qcd.GAMMA5)


class TestFieldStrength:
    def test_hermitian_and_traceless(self, system):
        _, gauge, _ = system
        f = cl.field_strength(gauge, 0, 2)
        assert np.allclose(f, np.conj(np.swapaxes(f, -1, -2)))
        assert np.allclose(np.einsum("...aa->...", f), 0.0, atol=1e-12)

    def test_antisymmetric_in_indices(self, system):
        _, gauge, _ = system
        assert np.allclose(cl.field_strength(gauge, 1, 3),
                           -cl.field_strength(gauge, 3, 1))

    def test_vanishes_on_unit_gauge(self):
        shape = (4, 4, 4, 4)
        unit = np.broadcast_to(np.eye(3, dtype=complex),
                               (4, *shape, 3, 3)).copy()
        f = cl.field_strength(unit, 0, 1)
        assert np.allclose(f, 0.0, atol=1e-14)

    def test_rejects_equal_directions(self, system):
        _, gauge, _ = system
        with pytest.raises(ConfigurationError):
            cl.field_strength(gauge, 2, 2)


class TestCloverTerm:
    def test_hermitian(self, system):
        _, gauge, _ = system
        a = cl.clover_term(gauge, KAPPA, CSW)
        assert np.allclose(a, np.conj(np.swapaxes(a, -1, -2)))

    def test_identity_on_unit_gauge(self):
        shape = (4, 4, 4, 4)
        unit = np.broadcast_to(np.eye(3, dtype=complex),
                               (4, *shape, 3, 3)).copy()
        a = cl.clover_term(unit, KAPPA, CSW)
        assert np.allclose(a, np.eye(12), atol=1e-14)

    def test_csw_zero_is_identity(self, system):
        _, gauge, _ = system
        a = cl.clover_term(gauge, KAPPA, c_sw=0.0)
        assert np.allclose(a, np.eye(12))

    def test_invertible(self, system):
        _, gauge, _ = system
        a = cl.clover_term(gauge, KAPPA, CSW)
        inv = np.linalg.inv(a)
        assert np.allclose(np.einsum("...ij,...jk->...ik", a, inv),
                           np.eye(12), atol=1e-10)

    def test_rejects_negative_csw(self, system):
        _, gauge, _ = system
        with pytest.raises(ConfigurationError):
            cl.clover_term(gauge, KAPPA, c_sw=-1.0)


class TestCloverOperator:
    def test_gamma5_hermiticity(self, system):
        shape, gauge, rng = system
        a = cl.clover_term(gauge, KAPPA, CSW)
        psi = qcd.random_spinor(shape, rng)
        phi = qcd.random_spinor(shape, rng)
        lhs = np.vdot(phi, cl.wilson_clover_dirac(psi, gauge, KAPPA, a))
        rhs = np.vdot(
            qcd.apply_gamma5(cl.wilson_clover_dirac(
                qcd.apply_gamma5(phi), gauge, KAPPA, a)), psi)
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_reduces_to_wilson_at_csw_zero(self, system):
        shape, gauge, rng = system
        a0 = cl.clover_term(gauge, KAPPA, c_sw=0.0)
        psi = qcd.random_spinor(shape, rng)
        assert np.allclose(
            cl.wilson_clover_dirac(psi, gauge, KAPPA, a0),
            qcd.wilson_dirac(psi, gauge, KAPPA))


class TestEvenOddSolve:
    def test_parity_masks_partition(self):
        even, odd = cl.parity_masks((4, 4, 4, 4))
        assert even.sum() + odd.sum() == 256
        assert not np.any(even & odd)

    def test_solution_solves_the_full_system(self, system):
        shape, gauge, rng = system
        b = qcd.random_spinor(shape, rng)
        x, iters, res = cl.solve_eo_preconditioned(gauge, b, KAPPA, CSW,
                                                   tol=1e-10)
        assert res < 1e-8
        assert 0 < iters < 100

    def test_matches_unpreconditioned_wilson(self, system):
        """With c_sw = 0 both solvers target the same operator."""
        shape, gauge, rng = system
        b = qcd.random_spinor(shape, rng)
        x_eo, _, _ = cl.solve_eo_preconditioned(gauge, b, KAPPA, c_sw=0.0,
                                                tol=1e-11)
        x_full, _, _ = qcd.bicgstab(gauge, b, KAPPA, tol=1e-11)
        assert np.allclose(x_eo, x_full, atol=1e-7)

    def test_preconditioning_reduces_iterations(self, system):
        """The Schur system is better conditioned: fewer iterations than
        the unpreconditioned solve at the same kappa."""
        shape, gauge, rng = system
        b = qcd.random_spinor(shape, rng)
        _, it_eo, _ = cl.solve_eo_preconditioned(gauge, b, 0.14, c_sw=0.0,
                                                 tol=1e-9)
        _, it_full, _ = qcd.bicgstab(gauge, b, 0.14, tol=1e-9)
        assert it_eo <= it_full
