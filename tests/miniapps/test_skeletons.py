"""Skeleton-level tests: every miniapp builds and runs on the simulator at
multiple rank counts, with consistent work accounting."""

import pytest

from repro.compile import PRESETS
from repro.errors import DatasetError
from repro.machine import catalog
from repro.miniapps import SUITE, by_name
from repro.runtime import JobPlacement, run_job


@pytest.fixture(scope="module")
def a64fx():
    return catalog.a64fx()


class TestRegistry:
    def test_all_eight_apps_present(self):
        assert sorted(SUITE) == [
            "ccs-qcd", "ffb", "ffvc", "modylas", "mvmc", "ngsa",
            "nicam-dc", "ntchem",
        ]

    def test_by_name(self):
        assert by_name("ffvc").name == "ffvc"
        with pytest.raises(KeyError):
            by_name("linpack")

    def test_every_app_has_both_datasets(self):
        for app in SUITE.values():
            assert set(app.datasets) >= {"as-is", "large"}

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            by_name("ffvc").dataset("huge")

    def test_metadata_complete(self):
        for app in SUITE.values():
            assert app.full_name and app.description
            assert app.character in ("memory", "compute", "integer", "mixed")


class TestKernels:
    def test_every_app_exposes_kernels(self):
        for app in SUITE.values():
            ks = app.kernels(app.dataset("as-is"))
            assert len(ks) >= 1
            for name, k in ks.items():
                assert k.flops >= 0 and (k.flops > 0 or k.int_ops > 0), name

    def test_kernel_names_match_keys(self):
        # programs refer to kernels by dict key; keys must be stable strings
        for app in SUITE.values():
            ks = app.kernels(app.dataset("as-is"))
            assert all(isinstance(k, str) and k for k in ks)

    def test_large_dataset_grows_working_sets(self):
        for app_name in ("ffvc", "ntchem"):
            app = by_name(app_name)
            small = app.kernels(app.dataset("as-is"))
            big = app.kernels(app.dataset("large"))
            s_ws = max(k.working_set_bytes for k in small.values())
            b_ws = max(k.working_set_bytes for k in big.values())
            assert b_ws >= s_ws


@pytest.mark.parametrize("app_name", sorted(SUITE))
class TestExecution:
    @pytest.mark.parametrize("n_ranks,n_threads", [(1, 48), (4, 12), (48, 1)])
    def test_runs_to_completion(self, app_name, n_ranks, n_threads, a64fx):
        app = by_name(app_name)
        pl = JobPlacement(a64fx, n_ranks, n_threads)
        res = run_job(app.build_job(a64fx, pl, "as-is"))
        assert res.elapsed > 0
        assert res.total_flops > 0

    def test_flops_consistent_across_rank_counts(self, app_name, a64fx):
        """Decomposition must conserve total work (within the serial-region
        and surface-term variation, which legitimately grows with ranks)."""
        app = by_name(app_name)
        flops = []
        for nr, nt in [(1, 48), (4, 12), (16, 3)]:
            pl = JobPlacement(a64fx, nr, nt)
            res = run_job(app.build_job(a64fx, pl, "as-is"))
            flops.append(res.total_flops)
        lo, hi = min(flops), max(flops)
        assert hi <= lo * 1.25


class TestMultiNode:
    def test_qcd_scales_across_nodes(self):
        cluster = catalog.a64fx(n_nodes=4)
        app = by_name("ccs-qcd")
        times = []
        for nodes in (1, 4):
            pl = JobPlacement(cluster, 4 * nodes, 12)
            res = run_job(app.build_job(cluster, pl, "large"))
            times.append(res.elapsed)
        assert times[1] < times[0]  # strong scaling helps

    def test_comm_fraction_grows_with_ranks(self):
        cluster = catalog.a64fx()
        app = by_name("ccs-qcd")
        fracs = []
        for nr, nt in [(2, 24), (16, 3)]:
            pl = JobPlacement(cluster, nr, nt)
            res = run_job(app.build_job(cluster, pl, "as-is"))
            fracs.append(res.communication_fraction())
        assert fracs[1] > fracs[0]


class TestCompilerSensitivity:
    @pytest.mark.parametrize("app_name", ["ngsa", "mvmc"])
    def test_tuning_recovers_asis_deficit(self, app_name, a64fx):
        """The paper's F4 shape: as-is much slower, tuned within 3x."""
        app = by_name(app_name)
        pl = JobPlacement(a64fx, 4, 12)
        asis = run_job(app.build_job(a64fx, pl, "as-is",
                                     options=PRESETS["as-is"]))
        tuned = run_job(app.build_job(a64fx, pl, "as-is",
                                      options=PRESETS["tuned"]))
        assert 1.5 < asis.elapsed / tuned.elapsed < 6.0

    def test_memory_bound_app_insensitive_to_tuning(self, a64fx):
        app = by_name("ffvc")
        pl = JobPlacement(a64fx, 4, 12)
        asis = run_job(app.build_job(a64fx, pl, "as-is",
                                     options=PRESETS["+simd"]))
        tuned = run_job(app.build_job(a64fx, pl, "as-is",
                                      options=PRESETS["tuned"]))
        assert asis.elapsed / tuned.elapsed < 1.4
