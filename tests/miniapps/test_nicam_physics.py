"""Physics validation for the NICAM miniature (shallow-water dycore)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.nicam import physics as sw


def stepped(state, n, dt=1e-3, diff=0.0):
    for _ in range(n):
        state = sw.step_rk2(state, dt, diff)
    return state


class TestState:
    def test_mass_and_energy_positive(self):
        s = sw.gaussian_hill(16, 1.0)
        assert s.mass() > 0
        assert s.energy() > 0

    def test_rejects_negative_depth(self):
        bad = sw.gaussian_hill(8, 1.0)
        with pytest.raises(ConfigurationError):
            sw.SwState(depth=bad.depth - 100.0, mom_x=bad.mom_x,
                       mom_y=bad.mom_y, dx=1.0)

    def test_rejects_shape_mismatch(self):
        s = sw.gaussian_hill(8, 1.0)
        with pytest.raises(ConfigurationError):
            sw.SwState(depth=s.depth, mom_x=s.mom_x[:4], mom_y=s.mom_y,
                       dx=1.0)


class TestDynamics:
    def test_mass_conserved_exactly(self):
        """Flux form conserves total mass to round-off."""
        s0 = sw.gaussian_hill(24, 1.0)
        s1 = stepped(s0, 50, dt=2e-3, diff=1e-4)
        assert s1.mass() == pytest.approx(s0.mass(), rel=1e-12)

    def test_state_of_rest_stays_at_rest(self):
        n = 16
        flat = sw.SwState(
            depth=np.full((n, n), 5.0),
            mom_x=np.zeros((n, n)),
            mom_y=np.zeros((n, n)),
            dx=1.0,
        )
        s1 = stepped(flat, 20, dt=1e-2)
        assert np.allclose(s1.mom_x, 0.0, atol=1e-13)
        assert np.allclose(s1.mom_y, 0.0, atol=1e-13)
        assert np.allclose(s1.depth, 5.0, atol=1e-13)

    def test_momentum_conserved_without_diffusion(self):
        """Periodic flux form: total momentum is invariant."""
        s0 = sw.gaussian_hill(16, 1.0)
        s1 = stepped(s0, 30, dt=1e-3)
        assert float(s1.mom_x.sum()) == pytest.approx(
            float(s0.mom_x.sum()), abs=1e-9)

    def test_hill_spreads_into_waves(self):
        """The anomaly radiates: momentum appears, peak height drops."""
        s0 = sw.gaussian_hill(32, 1.0, bump=0.2)
        s1 = stepped(s0, 100, dt=2e-3, diff=1e-4)
        assert np.abs(s1.mom_x).max() > 1e-4
        assert s1.depth.max() < s0.depth.max()

    def test_energy_bounded_with_diffusion(self):
        s0 = sw.gaussian_hill(24, 1.0)
        s1 = stepped(s0, 100, dt=1e-3, diff=1e-3)
        assert s1.energy() <= s0.energy() * 1.001

    def test_hyperdiffusion_damps_noise(self):
        rng = np.random.default_rng(5)
        n = 16
        noisy = sw.SwState(
            depth=10.0 + 0.01 * rng.standard_normal((n, n)),
            mom_x=np.zeros((n, n)),
            mom_y=np.zeros((n, n)),
            dx=1.0,
        )
        var0 = float(noisy.depth.var())
        s1 = stepped(noisy, 50, dt=1e-3, diff=5e-3)
        assert float(s1.depth.var()) < var0

    def test_rejects_bad_dt(self):
        s = sw.gaussian_hill(8, 1.0)
        with pytest.raises(ConfigurationError):
            sw.step_rk2(s, -0.1)
