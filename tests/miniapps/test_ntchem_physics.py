"""Physics validation for the NTChem miniature: RI-MP2 against the dense
four-index contraction and MP2 sanity properties."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.ntchem import physics as mp2


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(777)
    return mp2.synthetic_system(n_occ=6, n_vir=10, n_aux=40, rng=rng)


class TestSyntheticSystem:
    def test_shapes(self, system):
        b, e_occ, e_vir = system
        assert b.shape == (40, 6, 10)
        assert len(e_occ) == 6 and len(e_vir) == 10

    def test_orbital_energy_gap(self, system):
        _, e_occ, e_vir = system
        assert e_occ.max() < 0 < e_vir.min()

    def test_rejects_empty_spaces(self):
        with pytest.raises(ConfigurationError):
            mp2.synthetic_system(0, 4, 10, np.random.default_rng(0))


class TestEnergies:
    def test_ri_matches_dense_reference(self, system):
        b, e_occ, e_vir = system
        iajb = mp2.four_index_from_ri(b)
        dense = mp2.mp2_energy_dense(iajb, e_occ, e_vir)
        ri = mp2.mp2_energy_ri(b, e_occ, e_vir)
        assert ri == pytest.approx(dense, rel=1e-12)

    def test_mp2_energy_is_negative(self, system):
        b, e_occ, e_vir = system
        assert mp2.mp2_energy_ri(b, e_occ, e_vir) < 0.0

    def test_pair_energies_sum_to_total(self, system):
        b, e_occ, e_vir = system
        pe = mp2.pair_energies(b, e_occ, e_vir)
        assert pe.sum() == pytest.approx(
            mp2.mp2_energy_ri(b, e_occ, e_vir), rel=1e-12)

    def test_pair_energy_matrix_symmetric(self, system):
        b, e_occ, e_vir = system
        pe = mp2.pair_energies(b, e_occ, e_vir)
        assert np.allclose(pe, pe.T, atol=1e-12)

    def test_size_consistency_of_decoupled_blocks(self):
        """Two non-interacting copies: E(AB) = E(A) + E(B)."""
        rng = np.random.default_rng(3)
        b1, eo1, ev1 = mp2.synthetic_system(3, 5, 20, rng)
        # build a block-diagonal super-system in the aux AND orbital spaces
        n_aux, n_occ, n_vir = b1.shape
        b2 = np.zeros((2 * n_aux, 2 * n_occ, 2 * n_vir))
        b2[:n_aux, :n_occ, :n_vir] = b1
        b2[n_aux:, n_occ:, n_vir:] = b1
        eo2 = np.concatenate([eo1, eo1])
        ev2 = np.concatenate([ev1, ev1])
        e_single = mp2.mp2_energy_ri(b1, eo1, ev1)
        e_double = mp2.mp2_energy_ri(b2, eo2, ev2)
        assert e_double == pytest.approx(2 * e_single, rel=1e-10)

    def test_denominator_guard(self):
        rng = np.random.default_rng(1)
        b, e_occ, e_vir = mp2.synthetic_system(2, 3, 8, rng)
        iajb = mp2.four_index_from_ri(b)
        with pytest.raises(ConfigurationError):
            mp2.mp2_energy_dense(iajb, e_occ + 10.0, e_vir)

    def test_scaling_of_b_scales_energy_quartically(self, system):
        b, e_occ, e_vir = system
        e1 = mp2.mp2_energy_ri(b, e_occ, e_vir)
        e2 = mp2.mp2_energy_ri(2.0 * b, e_occ, e_vir)
        assert e2 == pytest.approx(16.0 * e1, rel=1e-10)
