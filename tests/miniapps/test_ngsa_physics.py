"""Physics validation for the NGSA miniature: alignment scores against the
textbook DP, seed-and-extend behaviour, and SNP calling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.miniapps.ngsa import physics as ngs


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(1234)


class TestSmithWaterman:
    def test_identical_sequences_score_full_match(self):
        a = np.array([0, 1, 2, 3, 0, 1], dtype=np.int8)
        assert ngs.smith_waterman(a, a) == 2 * len(a)

    def test_disjoint_alphabet_scores_zero(self):
        a = np.zeros(5, dtype=np.int8)
        b = np.full(5, 3, dtype=np.int8)
        assert ngs.smith_waterman(a, b) == 0

    def test_matches_reference_implementation(self, rng):
        for _ in range(10):
            a = ngs.random_sequence(14, rng)
            b = ngs.random_sequence(18, rng)
            assert ngs.smith_waterman(a, b) == \
                ngs.smith_waterman_reference(a, b)

    @settings(max_examples=25, deadline=None)
    @given(na=st.integers(1, 12), nb=st.integers(1, 12),
           seed=st.integers(0, 2**31))
    def test_property_matches_reference(self, na, nb, seed):
        r = np.random.default_rng(seed)
        a, b = ngs.random_sequence(na, r), ngs.random_sequence(nb, r)
        assert ngs.smith_waterman(a, b) == ngs.smith_waterman_reference(a, b)

    def test_score_symmetric(self, rng):
        a = ngs.random_sequence(10, rng)
        b = ngs.random_sequence(12, rng)
        assert ngs.smith_waterman(a, b) == ngs.smith_waterman(b, a)

    def test_local_alignment_ignores_flanks(self, rng):
        core = ngs.random_sequence(8, rng)
        flanked = np.concatenate([ngs.random_sequence(6, rng) % 2,
                                  core,
                                  ngs.random_sequence(6, rng) % 2])
        assert ngs.smith_waterman(core, flanked) >= 2 * len(core) - 4

    def test_rejects_2d_input(self):
        with pytest.raises(ConfigurationError):
            ngs.smith_waterman(np.zeros((2, 2), dtype=np.int8),
                               np.zeros(4, dtype=np.int8))


class TestAlignment:
    def test_exact_reads_align_at_origin(self, rng):
        ref = ngs.random_sequence(500, rng)
        reads = [ref[i:i + 50].copy() for i in (0, 100, 333)]
        hits = ngs.align_reads(ref, reads)
        assert [pos for pos, _ in hits] == [0, 100, 333]
        for _, score in hits:
            assert score == 100  # 50 matches x 2

    def test_mutated_reads_still_align(self, rng):
        ref = ngs.random_sequence(400, rng)
        read = ngs.mutate(ref[60:110].copy(), 0.04, rng)
        read[:11] = ref[60:71]               # keep the seed exact
        (pos, score), = ngs.align_reads(ref, [read])
        assert pos == 60
        assert score > 70

    def test_garbage_read_does_not_align(self, rng):
        ref = ngs.random_sequence(300, rng)
        read = ngs.random_sequence(40, rng)
        (pos, _), = ngs.align_reads(ref, [read])
        # a random 11-mer seed almost surely misses a 300 bp reference
        assert pos in (-1, *range(300))

    def test_short_read_rejected_gracefully(self, rng):
        ref = ngs.random_sequence(100, rng)
        (pos, score), = ngs.align_reads(ref, [ngs.random_sequence(5, rng)])
        assert (pos, score) == (-1, 0)


class TestSnpCalling:
    def test_homozygous_snp_called(self, rng):
        ref = ngs.random_sequence(200, rng)
        site, alt = 80, int((ref[80] + 1) % 4)
        donor = ref.copy()
        donor[site] = alt
        reads = [donor[i:i + 60].copy() for i in (30, 40, 50, 60, 70)]
        positions = [30, 40, 50, 60, 70]
        snps = ngs.pileup_snps(ref, reads, positions)
        assert (site, alt) in snps

    def test_no_false_positives_on_clean_reads(self, rng):
        ref = ngs.random_sequence(200, rng)
        reads = [ref[i:i + 60].copy() for i in (0, 30, 60, 90, 120)]
        snps = ngs.pileup_snps(ref, reads, [0, 30, 60, 90, 120])
        assert snps == []

    def test_low_coverage_not_called(self, rng):
        ref = ngs.random_sequence(100, rng)
        donor = ref.copy()
        donor[50] = (donor[50] + 1) % 4
        snps = ngs.pileup_snps(ref, [donor[40:80].copy()], [40], min_depth=3)
        assert snps == []

    def test_unaligned_reads_skipped(self, rng):
        ref = ngs.random_sequence(100, rng)
        snps = ngs.pileup_snps(ref, [ngs.random_sequence(20, rng)], [-1])
        assert snps == []


class TestQualityAwareSnpCalling:
    def test_phred_conversion(self):
        p = ngs.phred_to_error_probability(np.array([0, 10, 20, 30]))
        assert np.allclose(p, [1.0, 0.1, 0.01, 0.001])

    def test_negative_phred_rejected(self):
        with pytest.raises(ConfigurationError):
            ngs.phred_to_error_probability(np.array([-1]))

    def test_high_quality_snp_called(self, rng):
        ref = ngs.random_sequence(200, rng)
        site, alt = 80, int((ref[80] + 1) % 4)
        donor = ref.copy()
        donor[site] = alt
        reads = [donor[i:i + 60].copy() for i in (30, 40, 50, 60, 70)]
        positions = [30, 40, 50, 60, 70]
        quals = [np.full(60, 35) for _ in reads]
        snps = ngs.pileup_snps_quality(ref, reads, quals, positions)
        assert (site, alt) in snps

    def test_low_quality_mismatches_ignored(self, rng):
        """The same pileup with Phred-2 bases must not produce a call."""
        ref = ngs.random_sequence(200, rng)
        site = 80
        donor = ref.copy()
        donor[site] = (donor[site] + 1) % 4
        reads = [donor[i:i + 60].copy() for i in (30, 40, 50, 60, 70)]
        positions = [30, 40, 50, 60, 70]
        quals = [np.full(60, 2) for _ in reads]     # ~37% error each
        snps = ngs.pileup_snps_quality(ref, reads, quals, positions)
        assert snps == []

    def test_quality_length_mismatch_rejected(self, rng):
        ref = ngs.random_sequence(100, rng)
        with pytest.raises(ConfigurationError):
            ngs.pileup_snps_quality(ref, [ref[:50].copy()],
                                    [np.full(10, 30)], [0])

    def test_matches_unweighted_at_high_quality(self, rng):
        """Phred-40 everywhere: the weighted caller agrees with the
        plain one."""
        ref = ngs.random_sequence(300, rng)
        donor = ref.copy()
        donor[120] = (donor[120] + 2) % 4
        starts = [90, 100, 110, 120]
        reads = [donor[s:s + 60].copy() for s in starts]
        quals = [np.full(60, 40) for _ in reads]
        plain = ngs.pileup_snps(ref, reads, starts)
        weighted = ngs.pileup_snps_quality(ref, reads, quals, starts)
        assert weighted == plain


class TestUtilities:
    def test_mutation_rate_zero_is_identity(self, rng):
        s = ngs.random_sequence(50, rng)
        assert np.array_equal(ngs.mutate(s, 0.0, rng), s)

    def test_mutation_changes_bases(self, rng):
        s = ngs.random_sequence(200, rng)
        m = ngs.mutate(s, 1.0, rng)
        assert np.all(m != s)          # rate 1 mutates every base
        assert np.all((0 <= m) & (m < 4))

    def test_bad_rate_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            ngs.mutate(ngs.random_sequence(10, rng), 1.5, rng)
