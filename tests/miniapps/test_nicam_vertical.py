"""Tests for the NICAM vertical-column implicit solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.linalg import solve_banded

from repro.errors import ConfigurationError
from repro.miniapps.nicam.vertical import implicit_diffusion_step, thomas_solve


def random_dd_system(rng, n, batch=()):
    """Random diagonally dominant tridiagonal system."""
    lower = rng.uniform(-1, 1, (*batch, n))
    upper = rng.uniform(-1, 1, (*batch, n))
    diag = 3.0 + rng.uniform(0, 1, (*batch, n))
    rhs = rng.standard_normal((*batch, n))
    lower[..., 0] = 0.0
    upper[..., -1] = 0.0
    return lower, diag, upper, rhs


class TestThomas:
    def test_matches_scipy_banded(self):
        rng = np.random.default_rng(0)
        lower, diag, upper, rhs = random_dd_system(rng, 12)
        x = thomas_solve(lower, diag, upper, rhs)
        ab = np.zeros((3, 12))
        ab[0, 1:] = upper[:-1]
        ab[1] = diag
        ab[2, :-1] = lower[1:]
        ref = solve_banded((1, 1), ab, rhs)
        assert np.allclose(x, ref, atol=1e-12)

    def test_batched_columns_independent(self):
        rng = np.random.default_rng(1)
        lower, diag, upper, rhs = random_dd_system(rng, 8, batch=(5, 3))
        x = thomas_solve(lower, diag, upper, rhs)
        # solving one column alone gives the same answer
        one = thomas_solve(lower[2, 1], diag[2, 1], upper[2, 1], rhs[2, 1])
        assert np.allclose(x[2, 1], one)

    def test_identity_system(self):
        n = 6
        rhs = np.arange(1.0, n + 1)
        x = thomas_solve(np.zeros(n), np.ones(n), np.zeros(n), rhs)
        assert np.allclose(x, rhs)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 40), seed=st.integers(0, 10_000))
    def test_property_residual_small(self, n, seed):
        rng = np.random.default_rng(seed)
        lower, diag, upper, rhs = random_dd_system(rng, n)
        x = thomas_solve(lower, diag, upper, rhs)
        # reconstruct A x
        ax = diag * x
        ax[1:] += lower[1:] * x[:-1]
        ax[:-1] += upper[:-1] * x[1:]
        assert np.allclose(ax, rhs, atol=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            thomas_solve(np.zeros(4), np.ones(5), np.zeros(4), np.ones(4))

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            thomas_solve(np.zeros(1), np.ones(1), np.zeros(1), np.ones(1))


class TestImplicitDiffusion:
    def test_column_mass_conserved(self):
        rng = np.random.default_rng(3)
        f = rng.random((6, 6, 20))
        f2 = implicit_diffusion_step(f, dt=10.0, dz=1.0, kappa=0.5)
        assert np.allclose(f2.sum(axis=-1), f.sum(axis=-1), rtol=1e-12)

    def test_stable_at_huge_dt(self):
        """Backward Euler is unconditionally stable: huge dt -> column mean."""
        rng = np.random.default_rng(4)
        f = rng.random((4, 30))
        f2 = implicit_diffusion_step(f, dt=1e9, dz=1.0, kappa=1.0)
        means = f.mean(axis=-1, keepdims=True)
        assert np.allclose(f2, means, atol=1e-5)

    def test_variance_decreases(self):
        rng = np.random.default_rng(5)
        f = rng.random((8, 16))
        f2 = implicit_diffusion_step(f, dt=0.1, dz=1.0, kappa=1.0)
        assert f2.var(axis=-1).max() < f.var(axis=-1).max()

    def test_uniform_column_is_fixed_point(self):
        f = np.full((3, 10), 7.5)
        f2 = implicit_diffusion_step(f, dt=5.0, dz=0.5, kappa=2.0)
        assert np.allclose(f2, 7.5)

    def test_zero_kappa_is_identity(self):
        rng = np.random.default_rng(6)
        f = rng.random((4, 8))
        assert np.allclose(implicit_diffusion_step(f, 1.0, 1.0, 0.0), f)

    def test_parameter_validation(self):
        f = np.zeros((4, 8))
        with pytest.raises(ConfigurationError):
            implicit_diffusion_step(f, dt=-1, dz=1, kappa=1)
        with pytest.raises(ConfigurationError):
            implicit_diffusion_step(np.zeros((4, 1)), 1, 1, 1)
