"""Physics validation for the mVMC miniature: determinant ratios and
Sherman-Morrison inverse updates against direct linear algebra."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.mvmc import physics as vmc


@pytest.fixture()
def walker():
    phi = vmc.plane_wave_orbitals(12, 5)
    return vmc.VmcWalker(phi, [0, 2, 4, 6, 8])


class TestOrbitals:
    def test_orthonormal_columns(self):
        phi = vmc.plane_wave_orbitals(16, 7)
        assert np.allclose(phi.T @ phi, np.eye(7), atol=1e-12)

    def test_rejects_too_many_electrons(self):
        with pytest.raises(ConfigurationError):
            vmc.plane_wave_orbitals(4, 5)


class TestWalker:
    def test_rejects_double_occupancy(self):
        phi = vmc.plane_wave_orbitals(8, 3)
        with pytest.raises(ConfigurationError):
            vmc.VmcWalker(phi, [1, 1, 2])

    def test_inverse_is_correct(self, walker):
        d = walker.slater_matrix()
        assert np.allclose(d @ walker.inv, np.eye(5), atol=1e-10)

    def test_ratio_matches_direct_determinant(self, walker):
        d_old = np.linalg.det(walker.slater_matrix())
        for electron, new_site in [(0, 1), (3, 11), (4, 9)]:
            r_fast = walker.ratio(electron, new_site)
            occ = list(walker.occupied)
            occ[electron] = new_site
            d_new = np.linalg.det(walker.phi[occ, :])
            assert r_fast == pytest.approx(d_new / d_old, rel=1e-10)

    def test_ratio_zero_for_occupied_target(self, walker):
        assert walker.ratio(0, walker.occupied[1]) == 0.0

    def test_accept_updates_inverse_exactly(self, walker):
        r = walker.ratio(2, 7)
        walker.accept(2, 7, r)
        d = walker.slater_matrix()
        assert np.allclose(d @ walker.inv, np.eye(5), atol=1e-8)

    def test_accept_tracks_logdet(self, walker):
        r = walker.ratio(1, 10)
        sign0, log0 = walker.sign_log
        walker.accept(1, 10, r)
        sign1, log1 = walker.sign_log
        s_direct, l_direct = np.linalg.slogdet(walker.slater_matrix())
        assert sign1 == pytest.approx(s_direct)
        assert log1 == pytest.approx(l_direct, abs=1e-9)

    def test_refresh_reports_small_drift(self, walker):
        for (e, s) in [(0, 1), (1, 3), (2, 7), (3, 9)]:
            r = walker.ratio(e, s)
            if r != 0.0:
                walker.accept(e, s, r)
        drift = walker.refresh()
        assert drift < 1e-8

    def test_cannot_accept_forbidden_move(self, walker):
        with pytest.raises(ConfigurationError):
            walker.accept(0, walker.occupied[1], 0.0)


class TestSampling:
    def test_sampling_runs_and_is_accurate(self):
        rng = np.random.default_rng(11)
        stats = vmc.run_sampling(12, 5, n_sweeps=60, rng=rng)
        assert 0.05 < stats["acceptance"] < 0.95
        assert stats["max_drift"] < 1e-6
        assert stats["proposed"] > 0

    def test_sampling_deterministic_given_seed(self):
        a = vmc.run_sampling(10, 4, 30, np.random.default_rng(3))
        b = vmc.run_sampling(10, 4, 30, np.random.default_rng(3))
        assert a == b
