"""Physics validation for the CCS-QCD miniature: gamma algebra, operator
identities, and solver convergence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.ccs_qcd import physics as qcd


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20210901)


@pytest.fixture(scope="module")
def small_system(rng):
    shape = (4, 4, 4, 4)
    gauge = qcd.random_su3_field(shape, rng)
    return shape, gauge


class TestGammaAlgebra:
    def test_gammas_are_hermitian(self):
        for mu in range(4):
            assert np.allclose(qcd.GAMMA[mu], qcd.GAMMA[mu].conj().T)

    def test_gammas_square_to_identity(self):
        for mu in range(4):
            assert np.allclose(qcd.GAMMA[mu] @ qcd.GAMMA[mu], np.eye(4))

    def test_gammas_anticommute(self):
        for mu in range(4):
            for nu in range(mu + 1, 4):
                anti = qcd.GAMMA[mu] @ qcd.GAMMA[nu] \
                    + qcd.GAMMA[nu] @ qcd.GAMMA[mu]
                assert np.allclose(anti, 0.0, atol=1e-14)

    def test_gamma5_properties(self):
        g5 = qcd.GAMMA5
        assert np.allclose(g5, g5.conj().T)
        assert np.allclose(g5 @ g5, np.eye(4))
        for mu in range(4):
            assert np.allclose(g5 @ qcd.GAMMA[mu] + qcd.GAMMA[mu] @ g5, 0.0,
                               atol=1e-14)


class TestGaugeField:
    def test_links_are_unitary(self, small_system):
        _, gauge = small_system
        uu = np.einsum("...ab,...cb->...ac", gauge, np.conj(gauge))
        assert np.allclose(uu, np.eye(3), atol=1e-12)

    def test_field_shape(self, small_system):
        shape, gauge = small_system
        assert gauge.shape == (4, *shape, 3, 3)


class TestWilsonOperator:
    def test_gamma5_hermiticity(self, small_system, rng):
        """D^dagger = gamma5 D gamma5 — the benchmark's own check."""
        shape, gauge = small_system
        psi = qcd.random_spinor(shape, rng)
        phi = qcd.random_spinor(shape, rng)
        kappa = 0.12
        lhs = np.vdot(phi, qcd.wilson_dirac(psi, gauge, kappa))
        rhs = np.vdot(
            qcd.apply_gamma5(
                qcd.wilson_dirac(qcd.apply_gamma5(phi), gauge, kappa)
            ),
            psi,
        )
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_linearity(self, small_system, rng):
        shape, gauge = small_system
        a, b = qcd.random_spinor(shape, rng), qcd.random_spinor(shape, rng)
        kappa = 0.1
        lhs = qcd.wilson_dirac(2.0 * a + 3.0j * b, gauge, kappa)
        rhs = 2.0 * qcd.wilson_dirac(a, gauge, kappa) \
            + 3.0j * qcd.wilson_dirac(b, gauge, kappa)
        assert np.allclose(lhs, rhs)

    def test_free_field_zero_mode(self, rng):
        """With unit links, a constant spinor is an eigenvector with
        eigenvalue 1 - 8 kappa (all gammas cancel pairwise)."""
        shape = (4, 4, 4, 4)
        gauge = np.broadcast_to(
            np.eye(3, dtype=complex), (4, *shape, 3, 3)
        ).copy()
        psi = np.ones((*shape, 4, 3), dtype=complex)
        kappa = 0.11
        out = qcd.wilson_dirac(psi, gauge, kappa)
        assert np.allclose(out, (1 - 8 * kappa) * psi)

    def test_kappa_validation(self, small_system, rng):
        shape, gauge = small_system
        psi = qcd.random_spinor(shape, rng)
        with pytest.raises(ConfigurationError):
            qcd.wilson_dirac(psi, gauge, 0.3)

    def test_shape_validation(self, small_system, rng):
        _, gauge = small_system
        with pytest.raises(ConfigurationError):
            qcd.wilson_dirac(np.zeros((4, 4, 4, 4, 2, 3)), gauge, 0.1)


class TestBiCGStab:
    def test_converges_and_true_residual(self, small_system, rng):
        shape, gauge = small_system
        b = qcd.random_spinor(shape, rng)
        kappa = 0.12
        x, iters, rel = qcd.bicgstab(gauge, b, kappa, tol=1e-9)
        assert rel < 1e-9
        assert iters < 100
        true_rel = np.linalg.norm(
            qcd.wilson_dirac(x, gauge, kappa) - b
        ) / np.linalg.norm(b)
        assert true_rel < 1e-8

    def test_zero_rhs_returns_zero(self, small_system):
        shape, gauge = small_system
        b = np.zeros((*shape, 4, 3), dtype=complex)
        x, iters, rel = qcd.bicgstab(gauge, b, 0.12)
        assert iters == 0 and np.all(x == 0)

    def test_harder_kappa_takes_more_iterations(self, small_system, rng):
        shape, gauge = small_system
        b = qcd.random_spinor(shape, rng)
        _, easy, _ = qcd.bicgstab(gauge, b, 0.05, tol=1e-9)
        _, hard, _ = qcd.bicgstab(gauge, b, 0.14, tol=1e-9)
        assert hard >= easy

    def test_flop_count_constant(self):
        assert qcd.flops_per_site_dirac() == 1344.0


class TestMixedPrecision:
    def test_reaches_fp64_tolerance(self, small_system, rng):
        shape, gauge = small_system
        b = qcd.random_spinor(shape, rng)
        x, outer, inner, rel = qcd.bicgstab_mixed(gauge, b, 0.12, tol=1e-10)
        assert rel < 1e-10
        true_rel = np.linalg.norm(
            qcd.wilson_dirac(x, gauge, 0.12) - b) / np.linalg.norm(b)
        assert true_rel < 1e-9

    def test_matches_fp64_solution(self, small_system, rng):
        shape, gauge = small_system
        b = qcd.random_spinor(shape, rng)
        x_mixed, _, _, _ = qcd.bicgstab_mixed(gauge, b, 0.12, tol=1e-10)
        x_full, _, _ = qcd.bicgstab(gauge, b, 0.12, tol=1e-10)
        assert np.max(np.abs(x_mixed - x_full)) < 1e-7

    def test_most_work_runs_in_fp32(self, small_system, rng):
        """The point of the strategy: only a couple of fp64 refinement
        steps wrap many cheap fp32 inner iterations."""
        shape, gauge = small_system
        b = qcd.random_spinor(shape, rng)
        _, outer, inner, _ = qcd.bicgstab_mixed(gauge, b, 0.12, tol=1e-10)
        assert outer <= 5
        assert inner >= 2 * outer

    def test_zero_rhs(self, small_system):
        shape, gauge = small_system
        b = np.zeros((*shape, 4, 3), dtype=complex)
        x, outer, inner, rel = qcd.bicgstab_mixed(gauge, b, 0.12)
        assert outer == inner == 0 and rel == 0.0

    def test_inner_tol_validation(self, small_system, rng):
        shape, gauge = small_system
        b = qcd.random_spinor(shape, rng)
        with pytest.raises(ConfigurationError):
            qcd.bicgstab_mixed(gauge, b, 0.12, inner_tol=2.0)
