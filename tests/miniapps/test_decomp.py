"""Tests for the domain-decomposition helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.miniapps import decomp


class TestSplit1d:
    def test_even_split(self):
        assert [decomp.split_1d(12, 4, i) for i in range(4)] == [3, 3, 3, 3]

    def test_remainder_goes_first(self):
        assert [decomp.split_1d(10, 4, i) for i in range(4)] == [3, 3, 2, 2]

    @given(total=st.integers(0, 10_000), parts=st.integers(1, 64))
    def test_partition_property(self, total, parts):
        chunks = [decomp.split_1d(total, parts, i) for i in range(parts)]
        assert sum(chunks) == total
        assert max(chunks) - min(chunks) <= 1

    def test_rejects_bad_index(self):
        with pytest.raises(ConfigurationError):
            decomp.split_1d(10, 4, 4)


class TestFactorization:
    @given(n=st.integers(1, 4096))
    def test_factor3_is_exact(self, n):
        px, py, pz = decomp.factor3(n)
        assert px * py * pz == n
        assert px >= py >= pz >= 1

    def test_factor3_near_cubic(self):
        assert decomp.factor3(64) == (4, 4, 4)
        assert decomp.factor3(48) in ((4, 4, 3), (6, 4, 2))

    @given(n=st.integers(1, 4096))
    def test_factor2_is_exact(self, n):
        px, py = decomp.factor2(n)
        assert px * py == n and px >= py

    def test_factor2_near_square(self):
        assert decomp.factor2(48) == (8, 6)
        assert decomp.factor2(49) == (7, 7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            decomp.factor3(0)


class TestShapeAwareFactorization:
    def test_long_axis_gets_the_ranks(self):
        # a 256 x 32 plane over 16 ranks: split only the long axis
        assert decomp.best_factor2(16, (256, 32)) == (16, 1)

    def test_square_domain_gets_square_grid(self):
        p0, p1 = decomp.best_factor2(16, (128, 128))
        assert {p0, p1} == {4}

    def test_respects_extent_bounds(self):
        # 8 ranks cannot all go on an axis of extent 4
        p = decomp.best_factor2(8, (4, 64))
        assert p[0] <= 4

    def test_single_rank_trivial(self):
        assert decomp.best_factor2(1, (10, 10)) == (1, 1)
        assert decomp.best_factor3(1, (4, 4, 4)) == (1, 1, 1)

    def test_3d_prefers_long_axis(self):
        px, py, pz = decomp.best_factor3(8, (1024, 32, 32))
        assert px == 8

    def test_3d_cubic_domain_balanced(self):
        assert decomp.best_factor3(64, (256, 256, 256)) == (4, 4, 4)

    @given(n=st.integers(1, 128))
    def test_best_factor3_exact(self, n):
        px, py, pz = decomp.best_factor3(n, (512, 512, 512))
        assert px * py * pz == n

    def test_impossible_decomposition_rejected(self):
        with pytest.raises(ConfigurationError):
            decomp.best_factor2(7, (2, 3))

    def test_surface_strictly_better_than_naive(self):
        """The motivating case: naive near-square beats shape-aware by a
        wide margin on an elongated lattice."""
        extents = (256, 32)
        naive = decomp.factor2(16)
        smart = decomp.best_factor2(16, extents)

        def cost(p):
            c = 0.0
            if p[0] > 1:
                c += 2 * extents[1] / p[1]
            if p[1] > 1:
                c += 2 * extents[0] / p[0]
            return c

        assert cost(smart) < 0.6 * cost(naive)


class TestRankGrids:
    @given(n=st.integers(1, 512))
    def test_coords_roundtrip(self, n):
        grid = decomp.factor3(n)
        for rank in range(0, n, max(1, n // 7)):
            coords = decomp.rank_to_coords3(rank, grid)
            assert decomp.coords_to_rank3(coords, grid) == rank

    def test_neighbors_symmetric(self):
        grid = (4, 3, 2)
        for rank in range(24):
            nbrs = decomp.neighbors3(rank, grid)
            assert decomp.neighbors3(nbrs["x+"], grid)["x-"] == rank
            assert decomp.neighbors3(nbrs["y+"], grid)["y-"] == rank

    def test_single_rank_axis_maps_to_self(self):
        nbrs = decomp.neighbors3(0, (1, 1, 1))
        assert all(v == 0 for v in nbrs.values())

    def test_rank_out_of_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            decomp.rank_to_coords3(24, (4, 3, 2))


class TestLocalBoxes:
    @given(n=st.integers(1, 64))
    def test_boxes_tile_the_domain(self, n):
        global_shape = (64, 48, 32)
        grid = decomp.factor3(n)
        total = 0
        for rank in range(n):
            coords = decomp.rank_to_coords3(rank, grid)
            box = decomp.local_box(global_shape, grid, coords)
            total += box[0] * box[1] * box[2]
        assert total == 64 * 48 * 32

    def test_halo_bytes_match_faces(self):
        halos = decomp.halo_bytes_3d((10, 20, 30), fields=2, elem_bytes=8)
        assert halos["x-"] == halos["x+"] == 20 * 30 * 2 * 8
        assert halos["z-"] == 10 * 20 * 2 * 8

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            decomp.local_box((8, 8), (2, 2, 2), (0, 0, 0))

    def test_bad_halo_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            decomp.halo_bytes_3d((0, 4, 4), fields=1)
