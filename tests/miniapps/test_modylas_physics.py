"""Physics validation for the MODYLAS miniature: cell-list forces against
brute force, Newton's third law, and NVE energy conservation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.miniapps.modylas import physics as md


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(99)
    pos, box = md.init_lattice(4, 1.2, rng, jitter=0.05)
    return pos, box


CUTOFF = 2.5


class TestSetup:
    def test_lattice_inside_box(self, system):
        pos, box = system
        assert np.all(pos >= 0) and np.all(pos < box)
        assert len(pos) == 64

    def test_rejects_tiny_lattice(self):
        with pytest.raises(ConfigurationError):
            md.init_lattice(1, 1.0)

    def test_minimum_image_bounds(self):
        rng = np.random.default_rng(1)
        dr = rng.uniform(-10, 10, (100, 3))
        wrapped = md.minimum_image(dr, 4.0)
        assert np.all(np.abs(wrapped) <= 2.0 + 1e-12)


class TestForces:
    def test_cells_match_bruteforce(self, system):
        pos, box = system
        f_cells, e_cells = md.lj_forces_cells(pos, box, CUTOFF)
        f_brute, e_brute = md.lj_forces_bruteforce(pos, box, CUTOFF)
        assert np.allclose(f_cells, f_brute, atol=1e-9)
        assert e_cells == pytest.approx(e_brute, rel=1e-12)

    def test_newtons_third_law(self, system):
        pos, box = system
        forces, _ = md.lj_forces_cells(pos, box, CUTOFF)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    def test_two_particles_at_minimum(self):
        """At r = 2^(1/6) sigma the LJ force vanishes."""
        r_min = 2.0 ** (1.0 / 6.0)
        pos = np.array([[1.0, 1.0, 1.0], [1.0 + r_min, 1.0, 1.0]])
        forces, energy = md.lj_forces_bruteforce(pos, 10.0, 3.0)
        assert np.allclose(forces, 0.0, atol=1e-10)
        assert energy == pytest.approx(-1.0, rel=1e-12)

    def test_repulsive_at_short_range(self):
        pos = np.array([[1.0, 1.0, 1.0], [1.9, 1.0, 1.0]])
        forces, _ = md.lj_forces_bruteforce(pos, 10.0, 3.0)
        assert forces[0, 0] < 0 < forces[1, 0]

    def test_cell_build_covers_all_particles(self, system):
        pos, box = system
        cells, n_cells = md.build_cells(pos, box, CUTOFF)
        total = sum(len(v) for v in cells.values())
        assert total == len(pos)
        assert n_cells >= 1

    def test_bad_cutoff_rejected(self, system):
        pos, box = system
        with pytest.raises(ConfigurationError):
            md.build_cells(pos, box, 0.0)


class TestIntegration:
    def test_energy_conservation(self, system):
        pos, box = system
        rng = np.random.default_rng(5)
        vel = 0.05 * rng.standard_normal(pos.shape)
        _, _, energies = md.velocity_verlet(pos, vel, box, CUTOFF,
                                            dt=2e-3, n_steps=50)
        drift = abs(energies[-1] - energies[0]) / abs(energies[0])
        assert drift < 5e-3

    def test_positions_stay_in_box(self, system):
        pos, box = system
        vel = np.full(pos.shape, 0.3)
        new_pos, _, _ = md.velocity_verlet(pos, vel, box, CUTOFF,
                                           dt=1e-2, n_steps=20)
        assert np.all(new_pos >= 0) and np.all(new_pos < box)

    def test_momentum_conserved(self, system):
        pos, box = system
        rng = np.random.default_rng(2)
        vel = 0.1 * rng.standard_normal(pos.shape)
        vel -= vel.mean(axis=0)
        _, new_vel, _ = md.velocity_verlet(pos, vel, box, CUTOFF,
                                           dt=2e-3, n_steps=30)
        assert np.allclose(new_vel.sum(axis=0), 0.0, atol=1e-10)

    def test_rejects_bad_steps(self, system):
        pos, box = system
        with pytest.raises(ConfigurationError):
            md.velocity_verlet(pos, np.zeros_like(pos), box, CUTOFF,
                               dt=1e-3, n_steps=0)
