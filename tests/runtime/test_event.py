"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.runtime.event import Engine


class TestEngine:
    def test_events_fire_in_time_order(self):
        e = Engine()
        log = []
        e.schedule(3.0, lambda: log.append("c"))
        e.schedule(1.0, lambda: log.append("a"))
        e.schedule(2.0, lambda: log.append("b"))
        e.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        e = Engine()
        log = []
        for name in "abcde":
            e.schedule(1.0, lambda n=name: log.append(n))
        e.run()
        assert log == list("abcde")

    def test_clock_advances(self):
        e = Engine()
        seen = []
        e.schedule(5.0, lambda: seen.append(e.now))
        final = e.run()
        assert seen == [5.0]
        assert final == 5.0

    def test_actions_can_schedule_more(self):
        e = Engine()
        log = []

        def chain(n):
            log.append(e.now)
            if n > 0:
                e.schedule(1.0, lambda: chain(n - 1))

        e.schedule(0.0, lambda: chain(3))
        e.run()
        assert log == [0.0, 1.0, 2.0, 3.0]

    def test_schedule_at_absolute(self):
        e = Engine()
        hit = []
        e.schedule_at(4.0, lambda: hit.append(e.now))
        e.run()
        assert hit == [4.0]

    def test_rejects_past_scheduling(self):
        e = Engine()
        with pytest.raises(SimulationError):
            e.schedule(-1.0, lambda: None)
        e.schedule(5.0, lambda: None)
        e.run()
        with pytest.raises(SimulationError):
            e.schedule_at(1.0, lambda: None)

    def test_run_until_bounds_clock(self):
        e = Engine()
        log = []
        e.schedule(1.0, lambda: log.append(1))
        e.schedule(10.0, lambda: log.append(10))
        e.run(until=5.0)
        assert log == [1]
        assert e.pending_events == 1
        e.run()
        assert log == [1, 10]

    def test_not_reentrant(self):
        e = Engine()
        errors = []

        def bad():
            try:
                e.run()
            except SimulationError as exc:
                errors.append(exc)

        e.schedule(1.0, bad)
        e.run()
        assert len(errors) == 1

    def test_determinism(self):
        def build_and_run():
            e = Engine()
            log = []
            e.schedule(2.0, lambda: log.append("x"))
            e.schedule(2.0, lambda: log.append("y"))
            e.schedule(1.0, lambda: e.schedule(1.0, lambda: log.append("z")))
            e.run()
            return log

        assert build_and_run() == build_and_run()
