"""Tests for torus routing and link-level contention."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.runtime.network import LinkTracker, TorusRouter, TorusShape


class TestTorusShape:
    def test_folding_roundtrip(self):
        shape = TorusShape.for_nodes(27)
        assert shape.side == 3
        for node in range(27):
            assert shape.node(*shape.coords(node)) == node

    def test_non_cubic_counts_get_enclosing_cube(self):
        assert TorusShape.for_nodes(10).side == 3
        assert TorusShape.for_nodes(28).side == 4

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            TorusShape.for_nodes(0)


class TestRouting:
    def test_self_route_empty(self):
        assert TorusRouter(27).route(5, 5) == []

    def test_neighbor_is_one_hop(self):
        r = TorusRouter(27)
        assert len(r.route(0, 1)) == 1

    def test_dimension_order(self):
        r = TorusRouter(27)
        links = r.route(0, 13)  # coords (1, 1, 1): one hop per dim
        dims = [d for _, d, _ in links]
        assert dims == sorted(dims)
        assert len(links) == 3

    def test_wraparound_takes_short_way(self):
        r = TorusRouter(64)  # side 4
        # node 0 -> node 3 along x: distance 3 forward, 1 backward
        links = r.route(0, 3)
        assert len(links) == 1
        assert links[0] == (0, 0, -1)

    @settings(max_examples=30)
    @given(n=st.integers(2, 64), a=st.integers(0, 63), b=st.integers(0, 63))
    def test_route_length_matches_manhattan(self, n, a, b):
        a, b = a % n, b % n
        r = TorusRouter(n)
        links = r.route(a, b)
        s = r.shape.side
        ca, cb = r.shape.coords(a), r.shape.coords(b)
        expect = sum(min((y - x) % s, (x - y) % s) for x, y in zip(ca, cb))
        assert len(links) == expect

    def test_route_ends_at_destination(self):
        r = TorusRouter(27)
        for src, dst in ((0, 26), (4, 9), (20, 2)):
            links = r.route(src, dst)
            cur = list(r.shape.coords(src))
            for node, dim, step in links:
                assert r.shape.node(*cur) == node
                cur[dim] = (cur[dim] + step) % r.shape.side
            assert r.shape.node(*cur) == dst


class TestContention:
    def test_shared_link_serializes(self):
        r = TorusRouter(8)
        tracker = LinkTracker(r, link_bandwidth=1e9)
        # both messages traverse link (0, x, +): 0->1 and 0->1 again
        t1 = tracker.reserve(0, 1, 1e6, earliest=0.0)
        t2 = tracker.reserve(0, 1, 1e6, earliest=0.0)
        assert t1 == 0.0
        assert t2 == pytest.approx(1e-3)   # waits for the first megabyte

    def test_disjoint_routes_parallel(self):
        r = TorusRouter(8)
        tracker = LinkTracker(r, link_bandwidth=1e9)
        t1 = tracker.reserve(0, 1, 1e6, earliest=0.0)
        t2 = tracker.reserve(2, 3, 1e6, earliest=0.0)
        assert t1 == t2 == 0.0

    def test_byte_hops_accounting(self):
        r = TorusRouter(27)
        tracker = LinkTracker(r, link_bandwidth=1e9)
        tracker.reserve(0, 13, 1000.0, earliest=0.0)   # 3 hops
        assert tracker.byte_hops == pytest.approx(3000.0)

    def test_utilization_snapshot(self):
        r = TorusRouter(8)
        tracker = LinkTracker(r, link_bandwidth=1e9)
        tracker.reserve(0, 1, 1e6, earliest=0.0)
        assert tracker.utilization_snapshot(0.0) == 1
        assert tracker.utilization_snapshot(1.0) == 0

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            LinkTracker(TorusRouter(8), link_bandwidth=0.0)


class TestEndToEndEffect:
    def test_many_to_one_contends_on_torus(self):
        """All ranks sending to rank 0's node: link contention stretches
        the completion time well beyond a single transfer."""
        from repro.compile import PRESETS
        from repro.kernels import presets
        from repro.machine import catalog
        from repro.runtime import (Irecv, Isend, Job, JobPlacement, WaitAll,
                                   run_job)
        from repro.runtime.affinity import ProcessAllocation

        cluster = catalog.a64fx(n_nodes=8)
        size_bytes = 4 << 20

        def program(rank, size):
            if rank == 0:
                reqs = []
                for src in range(1, size):
                    reqs.append((yield Irecv(src=src, tag=0)))
                yield WaitAll(reqs)
            else:
                yield Isend(dst=0, tag=0, size_bytes=size_bytes)

        pl = JobPlacement(cluster, 8, 1,
                         allocation=ProcessAllocation("cyclic"))
        job = Job(cluster=cluster, placement=pl,
                  kernels={"k": presets.stream_triad()}, program=program,
                  options=PRESETS["kfast"])
        res = run_job(job)
        one_transfer = cluster.network.message_time(size_bytes, 1)
        assert res.elapsed > 2 * one_transfer
