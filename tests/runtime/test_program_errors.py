"""Tests for op-construction error messages: every ConfigurationError
must name the op type, the offending field, and its value — and the
executor must prepend the failing rank."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.program import (
    Allreduce,
    Compute,
    Irecv,
    Send,
    Sendrecv,
    describe_op,
)


def raises_with(parts, fn):
    with pytest.raises(ConfigurationError) as err:
        fn()
    for part in parts:
        assert part in str(err.value), \
            f"{part!r} not in {str(err.value)!r}"


class TestMessages:
    def test_negative_size_names_field_and_value(self):
        raises_with(["Send", "size_bytes=-4", "non-negative", "dst=1"],
                    lambda: Send(dst=1, tag=0, size_bytes=-4))

    def test_nan_size_rejected_as_non_finite(self):
        raises_with(["Allreduce", "size_bytes", "finite"],
                    lambda: Allreduce(size_bytes=float("nan")))

    def test_negative_tag_names_op(self):
        raises_with(["Irecv", "tag=-1"],
                    lambda: Irecv(src=0, tag=-1))

    def test_sendrecv_distinguishes_tag_fields(self):
        raises_with(["Sendrecv", "recv_tag=-2"],
                    lambda: Sendrecv(dst=1, src=2, size_bytes=8,
                                     send_tag=0, recv_tag=-2))

    def test_compute_schedule_lists_choices(self):
        raises_with(["Compute", "schedule='monte-carlo'", "static"],
                    lambda: Compute(kernel="k", iters=1,
                                    schedule="monte-carlo"))

    def test_describe_op_renders_fields(self):
        text = describe_op(Send(dst=3, tag=7, size_bytes=64))
        assert text.startswith("Send(")
        assert "dst=3" in text and "tag=7" in text

    def test_describe_op_survives_non_ops(self):
        assert describe_op(42) == "42"


class TestExecutorRankContext:
    def test_rank_prefixed_on_mid_program_failure(self):
        from repro.compile import PRESETS
        from repro.kernels import presets
        from repro.machine import catalog
        from repro.runtime import Job, JobPlacement, run_job
        from repro.runtime.program import Sleep

        def program(rank, size):
            yield Sleep(1e-6)
            if rank == 1:
                yield Send(dst=0, tag=-9, size_bytes=8)

        cluster = catalog.a64fx()
        job = Job(cluster=cluster, placement=JobPlacement(cluster, 2, 1),
                  kernels={"triad": presets.stream_triad()},
                  program=program, options=PRESETS["kfast"])
        with pytest.raises(ConfigurationError) as err:
            run_job(job)
        assert "rank 1" in str(err.value)
        assert "tag=-9" in str(err.value)
