"""Tests for straggler/failure injection and fp32 kernel support."""

import dataclasses

import pytest

from repro.compile import Compiler, PRESETS
from repro.errors import ConfigurationError
from repro.kernels import phase_time, presets
from repro.machine import catalog
from repro.runtime import Allreduce, Compute, Job, JobPlacement, run_job
from repro.runtime.affinity import ProcessAllocation

KERNELS = {"triad": presets.stream_triad()}


def bsp_program(rank, size):
    for _ in range(5):
        yield Compute("triad", iters=2_000_000)
        yield Allreduce(size_bytes=8)


def make_job(n_nodes=4, slowdown=None):
    cluster = catalog.a64fx(n_nodes=n_nodes)
    pl = JobPlacement(cluster, n_nodes, 12,
                      allocation=ProcessAllocation("cyclic"))
    return Job(cluster=cluster, placement=pl, kernels=KERNELS,
               program=bsp_program, options=PRESETS["kfast"],
               node_slowdown=slowdown)


class TestStragglerInjection:
    def test_straggler_stretches_bsp_elapsed(self):
        clean = run_job(make_job())
        hurt = run_job(make_job(slowdown={2: 1.5}))
        # BSP with allreduce barriers: everyone waits for the straggler
        assert hurt.elapsed > 1.4 * clean.elapsed

    def test_straggler_visible_as_collective_wait(self):
        hurt = run_job(make_job(slowdown={2: 2.0}))
        waits = {r: t.total("collective") for r, t in hurt.traces.items()}
        # the slow node's rank waits the least; the others wait for it
        slow_rank = 2   # cyclic allocation: rank 2 -> node 2
        fast_waits = [w for r, w in waits.items() if r != slow_rank]
        assert min(fast_waits) > waits[slow_rank]

    def test_uniform_slowdown_equals_scaled_run(self):
        clean = run_job(make_job())
        slowed = run_job(make_job(slowdown={n: 2.0 for n in range(4)}))
        ratio = slowed.elapsed / clean.elapsed
        assert 1.8 < ratio <= 2.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_job(slowdown={9: 2.0})
        with pytest.raises(ConfigurationError):
            make_job(slowdown={0: 0.5})


class TestFp32Kernels:
    @pytest.fixture(scope="class")
    def domain(self):
        return catalog.a64fx().node.chips[0].domains[0]

    def time_kernel(self, kern, dom):
        ck = Compiler(PRESETS["kfast"]).compile(kern, dom.core)
        return phase_time(
            ck, 1e6, dom.core, dom.l1d, dom.l2,
            mem_bandwidth_share=dom.memory.per_stream_bandwidth(1),
            l2_bandwidth_share=dom.l2_bandwidth_share(1),
            mem_latency_s=dom.memory.latency_s,
        )

    def test_fp32_speeds_up_compute_bound(self, domain):
        """Twice the lanes; Amdahl on the ~5% unvectorized remainder keeps
        the end-to-end gain below the ideal 2x."""
        fp64 = presets.dgemm_blocked()
        fp32 = dataclasses.replace(fp64, element_bytes=4)
        t64 = self.time_kernel(fp64, domain)
        t32 = self.time_kernel(fp32, domain)
        assert 1.4 < t64.seconds / t32.seconds <= 2.0

    def test_fp32_does_not_help_bandwidth_bound(self, domain):
        """Same byte counts: a bandwidth-bound triad is unchanged."""
        fp64 = presets.stream_triad()
        fp32 = dataclasses.replace(fp64, element_bytes=4)
        t64 = self.time_kernel(fp64, domain)
        t32 = self.time_kernel(fp32, domain)
        assert t32.seconds == pytest.approx(t64.seconds, rel=0.02)

    def test_invalid_element_size_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(presets.stream_triad(), element_bytes=2)
