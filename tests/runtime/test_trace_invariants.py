"""Trace-level invariants: every run's timeline must be physically sane."""

import pytest

from repro.machine import catalog
from repro.miniapps import SUITE, by_name
from repro.runtime import JobPlacement, run_job


@pytest.fixture(scope="module", params=["ccs-qcd", "ffvc", "ngsa", "ntchem"])
def result(request):
    cluster = catalog.a64fx()
    app = by_name(request.param)
    return run_job(app.build_job(cluster, JobPlacement(cluster, 4, 12),
                                 "as-is"))


class TestTraceInvariants:
    def test_segments_ordered_and_non_overlapping(self, result):
        for rank, trace in result.traces.items():
            prev_end = 0.0
            for seg in trace.segments:
                assert seg.start >= prev_end - 1e-12, rank
                assert seg.end >= seg.start
                prev_end = seg.end

    def test_segments_within_run_bounds(self, result):
        for trace in result.traces.values():
            for seg in trace.segments:
                assert 0.0 <= seg.start
                assert seg.end <= result.elapsed + 1e-12

    def test_breakdown_sums_to_at_most_elapsed(self, result):
        for rank, trace in result.traces.items():
            busy = sum(trace.breakdown().values())
            assert busy <= result.elapsed + 1e-9, rank

    def test_breakdown_totals_equal_rank_wall_clock(self, result):
        """Segments tile each rank's timeline exactly: the phase
        breakdown sums to that rank's finish time (the invariant the
        PMU's cycle conservation builds on)."""
        for rank, trace in result.traces.items():
            busy = sum(trace.breakdown().values())
            assert busy == pytest.approx(
                result.rank_finish[rank], rel=1e-9), rank

    def test_rank_finish_covers_last_segment(self, result):
        for rank, trace in result.traces.items():
            if trace.segments:
                assert result.rank_finish[rank] >= trace.segments[-1].end - 1e-12

    def test_labels_reference_known_kernels_or_ops(self, result):
        app = by_name(result.job_name.split("/")[0])
        known = set(app.kernels(app.dataset("as-is")))
        extra = {"sleep", "read", "write", "waitall", "sendrecv"}
        for trace in result.traces.values():
            for seg in trace.segments:
                if seg.category in ("compute", "serial"):
                    assert seg.label in known, seg.label
                elif seg.category in ("sleep", "io"):
                    assert seg.label in extra


class TestCrossAppConservation:
    def test_all_apps_produce_consistent_flop_rates(self):
        """Achieved FLOP/s never exceeds the node peak."""
        cluster = catalog.a64fx()
        peak = cluster.node.peak_flops_fp64
        for name in SUITE:
            app = by_name(name)
            res = run_job(app.build_job(cluster,
                                        JobPlacement(cluster, 4, 12),
                                        "as-is"))
            assert res.achieved_flops_per_s <= peak * 1.001, name

    def test_dram_bandwidth_never_exceeds_chip(self):
        cluster = catalog.a64fx()
        chip_bw = cluster.node.peak_memory_bandwidth
        for name in ("ffvc", "nicam-dc", "ccs-qcd"):
            app = by_name(name)
            res = run_job(app.build_job(cluster,
                                        JobPlacement(cluster, 4, 12),
                                        "as-is"))
            assert res.dram_bandwidth <= chip_bw * 1.001, name
