"""Edge-path tests for Job validation and the MPI request machinery."""

import dataclasses

import pytest

from repro.compile import PRESETS
from repro.errors import CommunicatorError, ConfigurationError, SimulationError
from repro.kernels import presets
from repro.machine import catalog
from repro.runtime import Job, JobPlacement, WaitAll, run_job
from repro.runtime.mpi import Request

KERNELS = {"k": presets.stream_triad()}


def noop_program(rank, size):
    if False:  # pragma: no cover - makes this a generator
        yield None


class TestJobValidation:
    @pytest.fixture(scope="class")
    def cluster(self):
        return catalog.a64fx()

    def test_placement_cluster_mismatch(self, cluster):
        other = catalog.a64fx()
        pl = JobPlacement(other, 2, 2)
        with pytest.raises(ConfigurationError):
            Job(cluster=cluster, placement=pl, kernels=KERNELS,
                program=noop_program)

    def test_empty_kernels_rejected(self, cluster):
        pl = JobPlacement(cluster, 2, 2)
        with pytest.raises(ConfigurationError):
            Job(cluster=cluster, placement=pl, kernels={},
                program=noop_program)

    def test_unknown_data_policy_rejected(self, cluster):
        pl = JobPlacement(cluster, 2, 2)
        with pytest.raises(ConfigurationError):
            Job(cluster=cluster, placement=pl, kernels=KERNELS,
                program=noop_program, data_policy="psychic")

    def test_duplicate_communicator_ranks_rejected(self, cluster):
        pl = JobPlacement(cluster, 4, 2)
        job = Job(cluster=cluster, placement=pl, kernels=KERNELS,
                  program=noop_program, communicators={"dup": (0, 0, 1)})
        with pytest.raises(CommunicatorError):
            run_job(job)

    def test_empty_program_finishes_at_time_zero(self, cluster):
        pl = JobPlacement(cluster, 2, 2)
        res = run_job(Job(cluster=cluster, placement=pl, kernels=KERNELS,
                          program=noop_program))
        assert res.elapsed == 0.0
        assert res.total_flops == 0.0


class TestRequestMachinery:
    def test_double_complete_rejected(self):
        req = Request()
        req.complete()
        with pytest.raises(CommunicatorError):
            req.complete()

    def test_callback_after_completion_fires_immediately(self):
        req = Request()
        req.complete()
        fired = []
        req.on_complete(lambda: fired.append(1))
        assert fired == [1]

    def test_waitall_on_non_request_rejected(self):
        cluster = catalog.a64fx()

        def program(rank, size):
            yield WaitAll(["not-a-request"])

        job = Job(cluster=cluster, placement=JobPlacement(cluster, 1, 1),
                  kernels=KERNELS, program=program,
                  options=PRESETS["kfast"])
        with pytest.raises(SimulationError):
            run_job(job)

    def test_unknown_op_rejected(self):
        cluster = catalog.a64fx()

        def program(rank, size):
            yield "make it fast please"

        job = Job(cluster=cluster, placement=JobPlacement(cluster, 1, 1),
                  kernels=KERNELS, program=program)
        with pytest.raises(SimulationError):
            run_job(job)

    def test_unknown_communicator_in_op(self):
        from repro.runtime import Allreduce

        cluster = catalog.a64fx()

        def program(rank, size):
            yield Allreduce(size_bytes=8, comm="ghost")

        job = Job(cluster=cluster, placement=JobPlacement(cluster, 2, 1),
                  kernels=KERNELS, program=program)
        with pytest.raises(CommunicatorError):
            run_job(job)
