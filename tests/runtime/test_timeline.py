"""Tests for timeline rendering and trace export."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.machine import catalog
from repro.miniapps import by_name
from repro.runtime import JobPlacement, run_job
from repro.runtime.timeline import (
    ascii_timeline,
    to_chrome_trace,
    utilization_profile,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def result():
    cluster = catalog.a64fx()
    placement = JobPlacement(cluster, 4, 12)
    app = by_name("ccs-qcd")
    return run_job(app.build_job(cluster, placement, "as-is"))


class TestAsciiTimeline:
    def test_contains_all_ranks(self, result):
        out = ascii_timeline(result)
        for rank in range(4):
            assert f"rank {rank:>4}" in out

    def test_rows_have_requested_width(self, result):
        out = ascii_timeline(result, width=60)
        rows = [l for l in out.splitlines() if l.startswith("rank")]
        for row in rows:
            body = row.split("|")[1]
            assert len(body) == 60

    def test_compute_glyph_present(self, result):
        out = ascii_timeline(result)
        assert "#" in out

    def test_rank_cap(self, result):
        out = ascii_timeline(result, max_ranks=2)
        assert "2 more ranks" in out

    def test_rejects_tiny_width(self, result):
        with pytest.raises(ConfigurationError):
            ascii_timeline(result, width=5)


class TestChromeTrace:
    def test_structure(self, result):
        trace = to_chrome_trace(result)
        assert "traceEvents" in trace
        events = trace["traceEvents"]
        names = {e["name"] for e in events}
        assert "qcd-dirac" in names
        # one metadata event per rank
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == 4

    def test_durations_non_negative_and_ordered(self, result):
        for e in to_chrome_trace(result)["traceEvents"]:
            if e["ph"] == "X":
                assert e["dur"] >= 0 and e["ts"] >= 0

    def test_json_serializable_roundtrip(self, result, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(result, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["job"] == result.job_name
        assert loaded == to_chrome_trace(result)

    #: Required keys per Chrome trace-event phase type.
    _SCHEMA = {
        "M": {"name", "ph", "pid", "tid", "args"},
        "X": {"name", "cat", "ph", "pid", "tid", "ts", "dur"},
        "C": {"name", "ph", "pid", "tid", "ts", "args"},
    }

    def _assert_schema(self, trace):
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        for e in trace["traceEvents"]:
            assert e["ph"] in self._SCHEMA, e
            assert self._SCHEMA[e["ph"]] <= set(e), e
            if e["ph"] in ("X", "C"):
                assert e["ts"] >= 0
            if e["ph"] == "C":
                value = e["args"]["value"]
                assert isinstance(value, float) and value >= 0

    def test_events_are_schema_valid(self, result):
        self._assert_schema(to_chrome_trace(result))

    def test_counter_tracks_from_profile(self, result, tmp_path):
        import dataclasses

        from repro.perf import ProfileSink
        from repro.runtime.executor import run_job as _run

        # re-run the same job shape with the PMU attached
        cluster = catalog.a64fx()
        placement = JobPlacement(cluster, 4, 12)
        app = by_name("ccs-qcd")
        sink = ProfileSink()
        job = app.build_job(cluster, placement, "as-is")
        profiled_result = _run(dataclasses.replace(job, perf_sink=sink))
        profile = sink.profile()

        trace = to_chrome_trace(profiled_result, profile)
        self._assert_schema(trace)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters, "profile should add counter tracks"
        names = {e["name"] for e in counters}
        for rank in range(4):
            assert f"rank {rank} GFLOP/s" in names
            assert f"rank {rank} mem GB/s" in names
        assert any(e["args"]["value"] > 0 for e in counters)

        # and it still round-trips through JSON on disk
        path = tmp_path / "counters.json"
        write_chrome_trace(profiled_result, str(path), profile)
        assert json.loads(path.read_text()) == trace


class TestUtilizationProfile:
    def test_bounds_and_length(self, result):
        prof = utilization_profile(result, buckets=40)
        assert len(prof) == 40
        assert all(0.0 <= u <= 1.0 for u in prof)

    def test_some_buckets_busy(self, result):
        prof = utilization_profile(result)
        assert max(prof) > 0.5

    def test_rejects_zero_buckets(self, result):
        with pytest.raises(ConfigurationError):
            utilization_profile(result, buckets=0)
