"""Tests for thread binding, process allocation, and placement."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, PlacementError
from repro.machine import catalog
from repro.runtime.affinity import ProcessAllocation, ThreadBinding, strided_order
from repro.runtime.placement import JobPlacement


class TestStridedOrder:
    def test_stride_one_is_identity(self):
        assert strided_order(8, 1) == list(range(8))

    def test_stride_four_interleaves(self):
        assert strided_order(8, 4) == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_domain_scatter_on_a64fx(self):
        order = strided_order(48, 12)
        # first four threads land on four different CMGs
        assert [c // 12 for c in order[:4]] == [0, 1, 2, 3]

    @given(n=st.integers(1, 128), stride=st.integers(1, 64))
    def test_always_a_permutation(self, n, stride):
        order = strided_order(n, stride)
        assert sorted(order) == list(range(n))

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            strided_order(0, 1)
        with pytest.raises(ConfigurationError):
            strided_order(8, 0)


class TestThreadBinding:
    def test_policies_and_strides(self):
        assert ThreadBinding("compact").effective_stride(12) == 1
        assert ThreadBinding("scatter").effective_stride(12) == 12
        assert ThreadBinding("stride", stride=4).effective_stride(12) == 4

    def test_compact_requires_stride_one(self):
        with pytest.raises(ConfigurationError):
            ThreadBinding("compact", stride=2)

    def test_labels(self):
        assert ThreadBinding("stride", stride=4).label() == "stride-4"
        assert ThreadBinding("scatter").label() == "scatter"


class TestProcessAllocation:
    def test_block_fills_in_order(self):
        buckets = ProcessAllocation("block").ranks_per_node(6, 3, 4)
        assert buckets == [[0, 1, 2, 3], [4, 5], []]

    def test_cyclic_deals_round_robin(self):
        buckets = ProcessAllocation("cyclic").ranks_per_node(6, 3, 4)
        assert buckets == [[0, 3], [1, 4], [2, 5]]

    def test_spread_balances(self):
        buckets = ProcessAllocation("spread").ranks_per_node(6, 3, 4)
        assert [len(b) for b in buckets] == [2, 2, 2]

    def test_capacity_enforced(self):
        with pytest.raises(PlacementError):
            ProcessAllocation("block").ranks_per_node(10, 2, 4)

    def test_zero_capacity_rejected(self):
        with pytest.raises(PlacementError):
            ProcessAllocation("block").ranks_per_node(1, 2, 0)

    @given(
        method=st.sampled_from(ProcessAllocation.METHODS),
        n_ranks=st.integers(1, 64),
        n_nodes=st.integers(1, 8),
        cap=st.integers(1, 16),
    )
    def test_every_rank_placed_exactly_once(self, method, n_ranks, n_nodes, cap):
        alloc = ProcessAllocation(method)
        if n_ranks > n_nodes * cap:
            with pytest.raises(PlacementError):
                alloc.ranks_per_node(n_ranks, n_nodes, cap)
            return
        buckets = alloc.ranks_per_node(n_ranks, n_nodes, cap)
        flat = [r for b in buckets for r in b]
        assert sorted(flat) == list(range(n_ranks))
        assert all(len(b) <= cap for b in buckets)


class TestJobPlacement:
    @pytest.fixture(scope="class")
    def cluster(self):
        return catalog.a64fx(n_nodes=2)

    def test_mpi_omp_grid_fills_node(self, cluster):
        for nr, nt in [(1, 48), (2, 24), (4, 12), (8, 6), (12, 4), (48, 1)]:
            pl = JobPlacement(cluster, nr, nt)
            used = {a for addrs in pl.thread_map.values() for a in addrs}
            assert len(used) == 48  # exactly node 0 fully used
            assert all(a.node == 0 for a in used)

    def test_compact_4x12_one_rank_per_cmg(self, cluster):
        pl = JobPlacement(cluster, 4, 12)
        for rank in range(4):
            assert pl.domains_spanned(rank) == 1
            assert pl.home_domain(rank) == (0, 0, rank)

    def test_scatter_1x48_spans_all_cmgs(self, cluster):
        pl = JobPlacement(cluster, 1, 48, binding=ThreadBinding("scatter"))
        assert pl.domains_spanned(0) == 4

    def test_stride_binding_spreads_threads(self, cluster):
        compact = JobPlacement(cluster, 1, 12)
        strided = JobPlacement(cluster, 1, 12,
                               binding=ThreadBinding("stride", stride=12))
        assert compact.domains_spanned(0) == 1
        assert strided.domains_spanned(0) == 4

    def test_threads_per_domain_census(self, cluster):
        pl = JobPlacement(cluster, 4, 12)
        census = pl.threads_per_domain
        assert census == {(0, 0, d): 12 for d in range(4)}

    def test_cyclic_allocation_uses_both_nodes(self, cluster):
        pl = JobPlacement(cluster, 2, 12,
                          allocation=ProcessAllocation("cyclic"))
        assert pl.node_of(0) == 0 and pl.node_of(1) == 1

    def test_block_allocation_packs_node_zero(self, cluster):
        pl = JobPlacement(cluster, 2, 12,
                          allocation=ProcessAllocation("block"))
        assert pl.node_of(0) == pl.node_of(1) == 0

    def test_oversubscription_rejected(self, cluster):
        with pytest.raises(PlacementError):
            JobPlacement(cluster, 3, 48)

    def test_thread_count_exceeding_node_rejected(self, cluster):
        with pytest.raises(PlacementError):
            JobPlacement(cluster, 1, 49)

    def test_unknown_rank_rejected(self, cluster):
        pl = JobPlacement(cluster, 2, 4)
        with pytest.raises(PlacementError):
            pl.thread_cores(7)

    def test_domain_pack_avoids_straddle(self, cluster):
        # 5 threads per rank: block would straddle CMG boundaries for rank 2
        pl = JobPlacement(cluster, 4, 5,
                          allocation=ProcessAllocation("domain-pack"))
        for rank in range(4):
            assert pl.domains_spanned(rank) == 1

    @given(nr_nt=st.sampled_from([(1, 48), (2, 24), (4, 12), (6, 8),
                                  (8, 6), (16, 3), (24, 2), (48, 1)]),
           stride=st.sampled_from([1, 2, 4, 12]))
    def test_no_core_oversubscription_anywhere(self, nr_nt, stride):
        cluster = catalog.a64fx(n_nodes=2)
        nr, nt = nr_nt
        binding = (ThreadBinding("compact") if stride == 1
                   else ThreadBinding("stride", stride=stride))
        pl = JobPlacement(cluster, nr, nt, binding=binding)
        used = [a for addrs in pl.thread_map.values() for a in addrs]
        assert len(used) == len(set(used)) == nr * nt
