"""Tests for the simulated MPI layer: matching, collectives, deadlocks."""

import pytest

from repro.compile import PRESETS
from repro.errors import CommunicatorError, DeadlockError
from repro.kernels import presets
from repro.machine import catalog
from repro.runtime import (
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    Irecv,
    Isend,
    Job,
    JobPlacement,
    Recv,
    Send,
    Sendrecv,
    Sleep,
    WaitAll,
    run_job,
)
from repro.runtime.program import ANY_SOURCE

KERNELS = {"triad": presets.stream_triad()}


def make_job(program, n_ranks=2, threads=1, cluster=None, comms=None):
    cluster = cluster or catalog.a64fx()
    pl = JobPlacement(cluster, n_ranks, threads)
    return Job(cluster=cluster, placement=pl, kernels=KERNELS,
               program=program, options=PRESETS["kfast"],
               communicators=comms)


class TestPointToPoint:
    def test_blocking_pingpong(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dst=1, tag=7, size_bytes=1024)
                yield Recv(src=1, tag=8)
            else:
                yield Recv(src=0, tag=7)
                yield Send(dst=0, tag=8, size_bytes=1024)

        res = run_job(make_job(program))
        assert res.elapsed > 0
        assert res.messages_sent == 2
        assert res.bytes_sent == 2048

    def test_small_sends_are_eager(self):
        """Below the rendezvous threshold, reversed receives are fine —
        the eager buffer absorbs the sends (real MPI behaviour)."""
        def program(rank, size):
            if rank == 0:
                yield Send(dst=1, tag=1, size_bytes=100)
                yield Send(dst=1, tag=2, size_bytes=100)
            else:
                yield Recv(src=0, tag=2)
                yield Recv(src=0, tag=1)

        res = run_job(make_job(program))
        assert res.messages_sent == 2

    def test_large_sends_rendezvous_deadlock(self):
        """At or above the threshold, the same pattern deadlocks."""
        def program(rank, size):
            if rank == 0:
                yield Send(dst=1, tag=1, size_bytes=1 << 20)
                yield Send(dst=1, tag=2, size_bytes=1 << 20)
            else:
                yield Recv(src=0, tag=2)
                yield Recv(src=0, tag=1)

        with pytest.raises(DeadlockError):
            run_job(make_job(program))

    def test_nonblocking_resolves_reversed_tags(self):
        def program(rank, size):
            if rank == 0:
                r1 = yield Isend(dst=1, tag=1, size_bytes=100)
                r2 = yield Isend(dst=1, tag=2, size_bytes=100)
                yield WaitAll([r1, r2])
            else:
                r1 = yield Irecv(src=0, tag=2)
                r2 = yield Irecv(src=0, tag=1)
                yield WaitAll([r1, r2])

        res = run_job(make_job(program))
        assert res.messages_sent == 2

    def test_any_source(self):
        def program(rank, size):
            if rank == 2:
                yield Recv(src=ANY_SOURCE, tag=0)
                yield Recv(src=ANY_SOURCE, tag=0)
            else:
                yield Send(dst=2, tag=0, size_bytes=64)

        res = run_job(make_job(program, n_ranks=3))
        assert res.messages_sent == 2

    def test_specific_recv_posted_before_wildcard(self):
        """Specific-then-wildcard posting is deterministic regardless of
        send arrival order: the src=2 message can only land in the
        specific receive, the other one in the wildcard."""
        def program(rank, size):
            if rank == 0:
                r1 = yield Irecv(src=2, tag=0)
                r2 = yield Irecv(src=ANY_SOURCE, tag=0)
                yield WaitAll([r1, r2])
            else:
                yield Send(dst=0, tag=0, size_bytes=64)

        res = run_job(make_job(program, n_ranks=3))
        assert res.messages_sent == 2

    def test_any_source_respects_tags(self):
        """ANY_SOURCE is wild in the source only — a wildcard receive on
        tag 1 must not absorb the tag-2 message."""
        def program(rank, size):
            if rank == 0:
                r1 = yield Irecv(src=ANY_SOURCE, tag=1)
                r2 = yield Irecv(src=ANY_SOURCE, tag=2)
                yield WaitAll([r1, r2])
            elif rank == 1:
                yield Send(dst=0, tag=2, size_bytes=64)
            else:
                yield Send(dst=0, tag=1, size_bytes=64)

        res = run_job(make_job(program, n_ranks=3))
        assert res.messages_sent == 2

    def test_any_source_fifo_order_per_sender(self):
        """Two sends from the same rank on one tag match two wildcard
        receives in posting order (per-channel FIFO)."""
        def program(rank, size):
            if rank == 0:
                yield Recv(src=ANY_SOURCE, tag=5)
                yield Recv(src=ANY_SOURCE, tag=5)
            else:
                yield Send(dst=0, tag=5, size_bytes=128)
                yield Send(dst=0, tag=5, size_bytes=128)

        res = run_job(make_job(program))
        assert res.messages_sent == 2
        assert res.bytes_sent == 256

    def test_mixed_wildcard_and_specific_tags(self):
        """Rendezvous-sized sends with a wildcard on one tag and a
        specific receive on another: both pairs complete."""
        def program(rank, size):
            if rank == 0:
                r1 = yield Irecv(src=ANY_SOURCE, tag=1)
                r2 = yield Irecv(src=1, tag=2)
                yield WaitAll([r1, r2])
            else:
                yield Send(dst=0, tag=2, size_bytes=1 << 20)
                yield Send(dst=0, tag=1, size_bytes=1 << 20)

        res = run_job(make_job(program))
        assert res.messages_sent == 2

    def test_sendrecv_ring_does_not_deadlock(self):
        def program(rank, size):
            right = (rank + 1) % size
            left = (rank - 1) % size
            yield Sendrecv(dst=right, send_tag=0, size_bytes=4096,
                           src=left, recv_tag=0)

        res = run_job(make_job(program, n_ranks=8))
        assert res.messages_sent == 8

    def test_send_to_self_rejected(self):
        def program(rank, size):
            yield Send(dst=rank, tag=0, size_bytes=8)

        with pytest.raises(CommunicatorError):
            run_job(make_job(program, n_ranks=1))

    def test_send_to_invalid_rank_rejected(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dst=99, tag=0, size_bytes=8)
            else:
                yield Sleep(0.0)

        with pytest.raises(CommunicatorError):
            run_job(make_job(program))

    def test_intra_node_faster_than_inter_node(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dst=1, tag=0, size_bytes=1 << 20)
            else:
                yield Recv(src=0, tag=0)

        cluster = catalog.a64fx(n_nodes=2)
        intra = run_job(make_job(program, cluster=cluster))
        from repro.runtime.affinity import ProcessAllocation
        pl = JobPlacement(cluster, 2, 1,
                          allocation=ProcessAllocation("cyclic"))
        inter = run_job(Job(cluster=cluster, placement=pl, kernels=KERNELS,
                            program=program, options=PRESETS["kfast"]))
        assert intra.elapsed < inter.elapsed


class TestCollectives:
    def test_barrier_synchronizes(self):
        finish = {}

        def program(rank, size):
            # rank 1 computes first; both finish the barrier together
            if rank == 1:
                yield Sleep(1e-3)
            yield Barrier()
            finish[rank] = True

        res = run_job(make_job(program))
        assert res.elapsed >= 1e-3
        assert finish == {0: True, 1: True}

    def test_allreduce_all_arrive(self):
        def program(rank, size):
            yield Sleep(rank * 1e-4)
            yield Allreduce(size_bytes=8)

        res = run_job(make_job(program, n_ranks=4))
        # bounded below by the latest arrival
        assert res.elapsed >= 3e-4

    def test_collective_type_mismatch_detected(self):
        def program(rank, size):
            if rank == 0:
                yield Barrier()
            else:
                yield Allreduce(size_bytes=8)

        with pytest.raises(CommunicatorError):
            run_job(make_job(program))

    def test_subcommunicator(self):
        def program(rank, size):
            if rank < 2:
                yield Allreduce(size_bytes=8, comm="pair")
            else:
                yield Sleep(0.0)

        res = run_job(make_job(program, n_ranks=4,
                               comms={"pair": (0, 1)}))
        assert res.elapsed > 0

    def test_non_member_rejected(self):
        def program(rank, size):
            yield Barrier(comm="pair")

        with pytest.raises(CommunicatorError):
            run_job(make_job(program, n_ranks=4, comms={"pair": (0, 1)}))

    def test_missing_rank_deadlocks(self):
        def program(rank, size):
            if rank == 0:
                yield Barrier()
            else:
                yield Sleep(0.0)

        with pytest.raises(DeadlockError) as ei:
            run_job(make_job(program))
        assert "Barrier" in str(ei.value)

    def test_alltoall_scales_with_size(self):
        def mk(nbytes):
            def program(rank, size):
                yield Alltoall(size_bytes=nbytes)
            return program

        small = run_job(make_job(mk(1 << 10), n_ranks=4))
        large = run_job(make_job(mk(1 << 24), n_ranks=4))
        assert large.elapsed > small.elapsed

    def test_bcast_allgather_complete(self):
        def program(rank, size):
            yield Bcast(size_bytes=4096, root=0)
            yield Allgather(size_bytes=1024)

        res = run_job(make_job(program, n_ranks=8))
        assert res.elapsed > 0


class TestComputeIntegration:
    def test_compute_accumulates_flops(self):
        def program(rank, size):
            yield Compute("triad", iters=1000)

        res = run_job(make_job(program, threads=4))
        assert res.total_flops == pytest.approx(2 * 2000)  # 2 ranks x 2 flops x 1000

    def test_unknown_kernel_raises(self):
        def program(rank, size):
            yield Compute("nope", iters=10)

        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            run_job(make_job(program))

    def test_trace_categories_populated(self):
        def program(rank, size):
            yield Compute("triad", iters=1000)
            yield Barrier()

        res = run_job(make_job(program))
        b = res.breakdown()
        assert b["compute"] > 0
        assert b["collective"] >= 0
        assert res.communication_fraction() <= 1.0
