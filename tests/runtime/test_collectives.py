"""Tests for the collective cost models and communicator profiling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CommunicatorError
from repro.machine import catalog
from repro.runtime import program as ops
from repro.runtime.collectives import (
    CommProfile,
    collective_time,
    profile_communicator,
)

PROFILE = CommProfile(alpha_s=1e-6, bandwidth=10e9, span="network")


class TestProfiling:
    def test_span_classification(self):
        cluster = catalog.a64fx(n_nodes=2)
        same_domain = tuple(cluster.address_of(c) for c in (0, 3, 7))
        same_node = tuple(cluster.address_of(c) for c in (0, 13, 40))
        multi_node = tuple(cluster.address_of(c) for c in (0, 50))
        assert profile_communicator(cluster, same_domain).span == "domain"
        assert profile_communicator(cluster, same_node).span == "node"
        assert profile_communicator(cluster, multi_node).span == "network"

    def test_network_latency_exceeds_domain(self):
        cluster = catalog.a64fx(n_nodes=2)
        dom = profile_communicator(cluster,
                                   tuple(cluster.address_of(c) for c in (0, 1)))
        net = profile_communicator(cluster,
                                   tuple(cluster.address_of(c) for c in (0, 60)))
        assert net.alpha_s > dom.alpha_s

    def test_empty_communicator_rejected(self):
        cluster = catalog.a64fx()
        with pytest.raises(CommunicatorError):
            profile_communicator(cluster, ())


class TestCostModels:
    def test_single_rank_is_overhead_only(self):
        t = collective_time(ops.Allreduce(size_bytes=1 << 20), 1, PROFILE)
        assert t < 1e-6

    def test_barrier_scales_logarithmically(self):
        t4 = collective_time(ops.Barrier(), 4, PROFILE)
        t64 = collective_time(ops.Barrier(), 64, PROFILE)
        assert t64 == pytest.approx(3 * t4, rel=0.01)

    def test_allreduce_algorithm_switch(self):
        """Large payloads must use the Rabenseifner form (cheaper than
        recursive doubling by ~ log(p)/2 in the bandwidth term)."""
        p = 64
        small = collective_time(ops.Allreduce(size_bytes=64), p, PROFILE)
        large = collective_time(ops.Allreduce(size_bytes=1 << 26), p, PROFILE)
        recursive_large = 6 * (PROFILE.alpha_s + 2 * (1 << 26) / PROFILE.bandwidth)
        assert large < recursive_large * 0.7
        assert small < large

    def test_bcast_vdg_for_large(self):
        p = 32
        large = collective_time(ops.Bcast(size_bytes=1 << 26), p, PROFILE)
        binomial = 5 * (PROFILE.alpha_s + (1 << 26) / PROFILE.bandwidth)
        assert large < binomial

    def test_reduce_scatter_cheaper_than_allreduce(self):
        p = 16
        n = 1 << 22
        rs = collective_time(ops.ReduceScatter(size_bytes=n), p, PROFILE)
        ar = collective_time(ops.Allreduce(size_bytes=n), p, PROFILE)
        assert rs < ar

    def test_scan_completes(self):
        t = collective_time(ops.Scan(size_bytes=4096), 16, PROFILE)
        assert t > 0

    def test_alltoall_scales_with_volume(self):
        p = 8
        t1 = collective_time(ops.Alltoall(size_bytes=1 << 12), p, PROFILE)
        t2 = collective_time(ops.Alltoall(size_bytes=1 << 22), p, PROFILE)
        assert t2 > t1

    def test_non_collective_rejected(self):
        with pytest.raises(CommunicatorError):
            collective_time(ops.Send(dst=0, tag=0, size_bytes=8), 4, PROFILE)

    def test_invalid_size_rejected(self):
        with pytest.raises(CommunicatorError):
            collective_time(ops.Barrier(), 0, PROFILE)

    @settings(max_examples=30)
    @given(p=st.integers(2, 512), n=st.floats(0, 1e9))
    def test_all_costs_positive_and_monotone_in_size(self, p, n):
        for op_cls in (ops.Bcast, ops.Allreduce, ops.Allgather,
                       ops.ReduceScatter, ops.Scan):
            t_small = collective_time(op_cls(size_bytes=n), p, PROFILE)
            t_big = collective_time(op_cls(size_bytes=n + 1024), p, PROFILE)
            assert 0 < t_small <= t_big * (1 + 1e-12)


class TestNonBlockingCollectives:
    @staticmethod
    def run(program, n_ranks=4):
        from repro.compile import PRESETS
        from repro.kernels import presets
        from repro.runtime import Job, JobPlacement, run_job

        cluster = catalog.a64fx()
        job = Job(cluster=cluster,
                  placement=JobPlacement(cluster, n_ranks, 1),
                  kernels={"k": presets.stream_triad()}, program=program,
                  options=PRESETS["kfast"])
        return run_job(job)

    def test_iallreduce_overlaps_compute(self):
        """A pipelined reduction hides under the compute phase: the
        non-blocking version finishes faster than the blocking one."""
        from repro.runtime import Allreduce, Compute, WaitAll
        iters = 3_000_000
        nbytes = 8 << 20

        def blocking(rank, size):
            for _ in range(3):
                yield Allreduce(size_bytes=nbytes)
                yield Compute("k", iters=iters)

        def nonblocking(rank, size):
            for _ in range(3):
                req = yield ops.IAllreduce(size_bytes=nbytes)
                yield Compute("k", iters=iters)
                yield WaitAll([req])

        t_block = self.run(blocking).elapsed
        t_nonblock = self.run(nonblocking).elapsed
        assert t_nonblock < t_block * 0.95

    def test_ibarrier_completes(self):
        from repro.runtime import WaitAll

        def program(rank, size):
            req = yield ops.IBarrier()
            yield WaitAll([req])

        assert self.run(program).elapsed > 0

    def test_nonblocking_costs_the_same_algorithm(self):
        p = 16
        t_b = collective_time(ops.Allreduce(size_bytes=1 << 20), p, PROFILE)
        t_nb = collective_time(ops.IAllreduce(size_bytes=1 << 20), p, PROFILE)
        assert t_b == t_nb


class TestEndToEnd:
    def test_new_collectives_run_in_programs(self):
        from repro.compile import PRESETS
        from repro.kernels import presets
        from repro.runtime import Job, JobPlacement, run_job

        def program(rank, size):
            yield ops.ReduceScatter(size_bytes=1 << 16)
            yield ops.Scan(size_bytes=128)

        cluster = catalog.a64fx()
        job = Job(cluster=cluster, placement=JobPlacement(cluster, 6, 1),
                  kernels={"k": presets.stream_triad()}, program=program,
                  options=PRESETS["kfast"])
        res = run_job(job)
        assert res.elapsed > 0
