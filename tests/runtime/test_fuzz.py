"""Property/fuzz tests of the runtime: randomly generated communication
patterns must either complete deterministically or deadlock loudly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compile import PRESETS
from repro.errors import DeadlockError
from repro.kernels import presets
from repro.machine import catalog
from repro.runtime import (
    Allreduce,
    Barrier,
    Compute,
    Irecv,
    Isend,
    Job,
    JobPlacement,
    Sendrecv,
    WaitAll,
    run_job,
)

KERNELS = {"triad": presets.stream_triad()}


def make_job(program, n_ranks, cluster=None):
    cluster = cluster or catalog.a64fx(n_nodes=2)
    pl = JobPlacement(cluster, n_ranks, 1)
    return Job(cluster=cluster, placement=pl, kernels=KERNELS,
               program=program, options=PRESETS["kfast"])


class TestRandomRings:
    @settings(max_examples=15, deadline=None)
    @given(
        n_ranks=st.integers(2, 12),
        steps=st.integers(1, 5),
        msg=st.integers(1, 1 << 20),
        seed=st.integers(0, 1000),
    )
    def test_ring_patterns_always_complete(self, n_ranks, steps, msg, seed):
        """Non-blocking ring exchanges never deadlock, whatever the sizes."""
        def program(rank, size):
            left, right = (rank - 1) % size, (rank + 1) % size
            for step in range(steps):
                yield Compute("triad", iters=1000 * ((rank + seed) % 7 + 1))
                r1 = yield Irecv(src=left, tag=step)
                r2 = yield Irecv(src=right, tag=steps + step)
                yield Isend(dst=right, tag=step, size_bytes=msg)
                yield Isend(dst=left, tag=steps + step, size_bytes=msg)
                yield WaitAll([r1, r2])
                yield Allreduce(size_bytes=8)

        res = run_job(make_job(program, n_ranks))
        assert res.messages_sent == 2 * n_ranks * steps

    @settings(max_examples=10, deadline=None)
    @given(n_ranks=st.integers(2, 10), seed=st.integers(0, 100))
    def test_determinism_bitwise(self, n_ranks, seed):
        """Two identical runs produce identical timings."""
        def program(rank, size):
            yield Compute("triad", iters=500 * (rank + seed + 1))
            yield Sendrecv(dst=(rank + 1) % size, send_tag=0,
                           size_bytes=4096, src=(rank - 1) % size,
                           recv_tag=0)
            yield Barrier()

        r1 = run_job(make_job(program, n_ranks))
        r2 = run_job(make_job(program, n_ranks))
        assert r1.elapsed == r2.elapsed
        assert r1.rank_finish == r2.rank_finish


class TestDeadlockDetection:
    @settings(max_examples=10, deadline=None)
    @given(n_ranks=st.integers(2, 8))
    def test_blocking_send_cycle_deadlocks(self, n_ranks):
        """All ranks Send before any Recv: synchronous sends must deadlock
        and the error must name every rank."""
        from repro.runtime import Recv, Send

        def program(rank, size):
            yield Send(dst=(rank + 1) % size, tag=0, size_bytes=1 << 16)
            yield Recv(src=(rank - 1) % size, tag=0)

        with pytest.raises(DeadlockError) as ei:
            run_job(make_job(program, n_ranks))
        msg = str(ei.value)
        assert "unmatched" in msg

    def test_mismatched_collective_order_detected(self):
        def program(rank, size):
            if rank % 2 == 0:
                yield Barrier()
                yield Allreduce(size_bytes=8)
            else:
                yield Allreduce(size_bytes=8)
                yield Barrier()

        from repro.errors import CommunicatorError
        with pytest.raises(CommunicatorError):
            run_job(make_job(program, 4))


class TestCausality:
    @settings(max_examples=10, deadline=None)
    @given(n_ranks=st.integers(2, 8), compute=st.integers(100, 100_000))
    def test_receiver_never_finishes_before_sender_starts(self, n_ranks,
                                                          compute):
        """Message causality: rank 1 (receiver) must finish no earlier than
        rank 0's compute phase ends."""
        from repro.runtime import Recv, Send

        def program(rank, size):
            if rank == 0:
                yield Compute("triad", iters=compute)
                yield Send(dst=1, tag=0, size_bytes=1024)
            elif rank == 1:
                yield Recv(src=0, tag=0)

        res = run_job(make_job(program, n_ranks))
        assert res.rank_finish[1] >= res.rank_finish[0] - 1e-12

    def test_elapsed_is_max_rank_finish(self):
        def program(rank, size):
            yield Compute("triad", iters=(rank + 1) * 10_000)

        res = run_job(make_job(program, 6))
        assert res.elapsed == max(res.rank_finish.values())
