"""Tests for the OpenMP region model: schedules, NUMA, binding effects."""

import pytest

from repro.compile import Compiler, PRESETS
from repro.errors import ConfigurationError
from repro.kernels import presets
from repro.machine import catalog
from repro.runtime.affinity import ThreadBinding
from repro.runtime.openmp import fork_join_overhead, region_time
from repro.runtime.placement import JobPlacement
from repro.runtime.program import Compute


@pytest.fixture(scope="module")
def cluster():
    return catalog.a64fx()


def region(cluster, op, n_ranks=1, threads=12, binding=None, policy="first-touch",
           kernel=None):
    pl = JobPlacement(cluster, n_ranks, threads,
                      binding=binding or ThreadBinding("compact"))
    core = cluster.node.chips[0].domains[0].core
    ck = Compiler(PRESETS["kfast"]).compile(kernel or presets.stream_triad(), core)
    return region_time(ck, op, pl.thread_cores(0), cluster,
                       pl.threads_per_domain, pl.home_domain(0), policy)


class TestForkJoin:
    def test_single_thread_is_free(self):
        assert fork_join_overhead(1, 1) == 0.0

    def test_grows_with_threads_and_domains(self):
        assert fork_join_overhead(48, 4) > fork_join_overhead(12, 1) > 0

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            fork_join_overhead(0, 1)


class TestRegionTiming:
    def test_more_threads_faster_compute_bound(self, cluster):
        op = Compute("k", iters=1e6)
        t4 = region(cluster, op, threads=4, kernel=presets.dgemm_blocked())
        t12 = region(cluster, op, threads=12, kernel=presets.dgemm_blocked())
        assert t12.seconds < t4.seconds

    def test_bandwidth_bound_saturates_within_cmg(self, cluster):
        """Triad on one CMG: going 6 -> 12 threads barely helps."""
        op = Compute("k", iters=1e7)
        t1 = region(cluster, op, threads=1)
        t6 = region(cluster, op, threads=6)
        t12 = region(cluster, op, threads=12)
        assert t6.seconds < 0.5 * t1.seconds           # some scaling early on
        assert abs(t12.seconds - t6.seconds) < 0.02 * t6.seconds  # saturated

    def test_scatter_binding_wins_for_bandwidth(self, cluster):
        """12 triad threads over 4 CMGs get 4x the memory bandwidth."""
        op = Compute("k", iters=1e7)
        compact = region(cluster, op, threads=12)
        scatter = region(cluster, op, threads=12,
                         binding=ThreadBinding("scatter"))
        assert scatter.seconds < 0.5 * compact.seconds

    def test_serial_init_penalizes_scatter(self, cluster):
        """With serial first-touch, remote threads throttle on the home CMG."""
        op = Compute("k", iters=1e7)
        local = region(cluster, op, threads=48, policy="first-touch",
                       binding=ThreadBinding("compact"))
        remote = region(cluster, op, threads=48, policy="serial-init",
                        binding=ThreadBinding("compact"))
        assert remote.seconds > 2 * local.seconds

    def test_serial_region_uses_one_thread(self, cluster):
        par = region(cluster, Compute("k", iters=1e6))
        ser = region(cluster, Compute("k", iters=1e6, serial=True))
        assert ser.seconds > par.seconds
        assert ser.overhead_seconds == 0.0

    def test_imbalance_slows_static(self, cluster):
        flat = region(cluster, Compute("k", iters=1e6, imbalance=1.0))
        skew = region(cluster, Compute("k", iters=1e6, imbalance=1.5))
        assert skew.seconds == pytest.approx(
            1.5 * (flat.seconds - flat.overhead_seconds)
            + flat.overhead_seconds, rel=0.01)

    def test_dynamic_absorbs_imbalance_at_a_cost(self, cluster):
        static_skew = region(cluster, Compute("k", iters=1e7, imbalance=1.8))
        dynamic_skew = region(
            cluster, Compute("k", iters=1e7, imbalance=1.8, schedule="dynamic"))
        static_flat = region(cluster, Compute("k", iters=1e7))
        assert dynamic_skew.seconds < static_skew.seconds
        assert dynamic_skew.seconds > static_flat.seconds

    def test_flops_independent_of_schedule(self, cluster):
        a = region(cluster, Compute("k", iters=1e6))
        b = region(cluster, Compute("k", iters=1e6, schedule="dynamic"))
        assert a.flops == b.flops

    def test_rejects_unknown_policy(self, cluster):
        with pytest.raises(ConfigurationError):
            region(cluster, Compute("k", iters=10), policy="telepathy")

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ConfigurationError):
            Compute("k", iters=10, schedule="fractal")
