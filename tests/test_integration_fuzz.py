"""Whole-stack fuzz: random placement/option combinations on real miniapps
must simulate to completion with sane invariants."""

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.compile.options import PRESETS
from repro.errors import PlacementError
from repro.machine import catalog
from repro.miniapps import by_name
from repro.runtime import JobPlacement, run_job
from repro.runtime.affinity import ProcessAllocation, ThreadBinding

#: (ranks, threads) options on a 48-core node.
_SHAPES = [(1, 48), (2, 24), (4, 12), (6, 8), (8, 6), (12, 4), (48, 1)]


@st.composite
def job_configs(draw):
    app = draw(st.sampled_from(["ffvc", "mvmc", "nicam-dc"]))
    nr, nt = draw(st.sampled_from(_SHAPES))
    stride = draw(st.sampled_from([1, 2, 4, 12]))
    allocation = draw(st.sampled_from(list(ProcessAllocation.METHODS)))
    preset = draw(st.sampled_from(list(PRESETS)))
    policy = draw(st.sampled_from(["first-touch", "serial-init"]))
    n_nodes = draw(st.sampled_from([1, 2]))
    return app, nr, nt, stride, allocation, preset, policy, n_nodes


def placement_or_assume(cluster, n_ranks, n_threads, allocation, binding):
    """Build the placement, rejecting infeasible draws (e.g. domain-pack
    padding can overflow the node for rank shapes that do not divide the
    CMG) — PlacementError is correct behavior there, not a bug."""
    try:
        return JobPlacement(cluster, n_ranks, n_threads,
                            allocation=ProcessAllocation(allocation),
                            binding=binding)
    except PlacementError:
        assume(False)


class TestWholeStackFuzz:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(cfg=job_configs())
    def test_every_configuration_simulates_sanely(self, cfg):
        app_name, nr, nt, stride, allocation, preset, policy, n_nodes = cfg
        cluster = catalog.a64fx(n_nodes=n_nodes)
        binding = (ThreadBinding("compact") if stride == 1
                   else ThreadBinding("stride", stride=stride))
        placement = placement_or_assume(
            cluster, nr * n_nodes, nt, allocation, binding)
        app = by_name(app_name)
        result = run_job(app.build_job(
            cluster, placement, "as-is",
            options=PRESETS[preset], data_policy=policy))

        # invariants that must hold for any valid configuration
        assert result.elapsed > 0
        assert result.total_flops > 0
        assert result.achieved_flops_per_s <= \
            cluster.peak_flops_fp64 * 1.001
        assert 0.0 <= result.communication_fraction() <= 1.0
        assert set(result.rank_finish) == set(range(nr * n_nodes))
        assert result.elapsed == max(result.rank_finish.values())

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(cfg=job_configs())
    def test_determinism_across_repeats(self, cfg):
        app_name, nr, nt, stride, allocation, preset, policy, n_nodes = cfg
        cluster = catalog.a64fx(n_nodes=n_nodes)
        binding = (ThreadBinding("compact") if stride == 1
                   else ThreadBinding("stride", stride=stride))

        def once():
            placement = placement_or_assume(
                cluster, nr * n_nodes, nt, allocation, binding)
            app = by_name(app_name)
            return run_job(app.build_job(
                cluster, placement, "as-is",
                options=PRESETS[preset], data_policy=policy))

        a, b = once(), once()
        assert a.elapsed == b.elapsed
        assert a.total_flops == b.total_flops
        assert a.rank_finish == b.rank_finish
