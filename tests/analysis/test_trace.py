"""Tests for symbolic rank-program replay."""

from repro.analysis.trace import TracedRequest, trace_program, trace_rank
from repro.runtime.program import Compute, Irecv, Isend, Recv, Send, WaitAll


class TestReplay:
    def test_records_ops_in_order(self):
        def program(rank, size):
            yield Compute(kernel="k", iters=10)
            yield Send(dst=(rank + 1) % size, tag=0, size_bytes=8)

        traces = trace_program(program, 2)
        assert sorted(traces) == [0, 1]
        for rank, trace in traces.items():
            assert trace.failure is None and not trace.truncated
            assert [type(r.op).__name__ for r in trace.ops] == \
                ["Compute", "Send"]
            assert [r.index for r in trace.ops] == [0, 1]
            assert all(r.rank == rank for r in trace.ops)

    def test_requests_round_trip(self):
        """``r = yield Irecv(...)`` must receive a token the analyzer can
        later recognize inside WaitAll — same shape as the executor."""
        def program(rank, size):
            r = yield Irecv(src=(rank + 1) % size, tag=0)
            yield Isend(dst=(rank + 1) % size, tag=0, size_bytes=8)
            yield WaitAll([r])

        trace = trace_rank(program, 0, 2)
        assert isinstance(trace.ops[0].request, TracedRequest)
        assert trace.ops[1].request is not None     # Isend yields one too
        waited = list(trace.ops[2].op.requests)
        assert waited == [trace.ops[0].request]
        assert "Irecv" in trace.ops[0].request.describe()

    def test_blocking_ops_get_no_request(self):
        def program(rank, size):
            yield Send(dst=1, tag=0, size_bytes=8) if rank == 0 else \
                Recv(src=0, tag=0)

        trace = trace_rank(program, 0, 2)
        assert trace.ops[0].request is None


class TestFailures:
    def test_config_error_becomes_diagnostic(self):
        def program(rank, size):
            yield Compute(kernel="k", iters=10)
            yield Send(dst=1, tag=-5, size_bytes=8)     # invalid tag

        trace = trace_rank(program, 0, 2)
        assert trace.failure is not None
        assert trace.failure.check == "program-config"
        assert trace.failure.op_index == 1      # one op traced before
        assert len(trace.ops) == 1

    def test_python_crash_becomes_diagnostic(self):
        def program(rank, size):
            yield Compute(kernel="k", iters=10)
            raise IndexError("neighbour table overrun")

        trace = trace_rank(program, 0, 2)
        assert trace.failure.check == "program-crash"
        assert "IndexError" in trace.failure.message

    def test_one_broken_rank_does_not_hide_others(self):
        def program(rank, size):
            if rank == 1:
                raise RuntimeError("boom")
            yield Compute(kernel="k", iters=10)

        traces = trace_program(program, 3)
        assert traces[1].failure is not None
        assert traces[0].failure is None and traces[2].failure is None
        assert len(traces[0].ops) == 1

    def test_op_budget_truncates(self):
        def program(rank, size):
            while True:
                yield Compute(kernel="k", iters=1)

        trace = trace_rank(program, 0, 1, max_ops=25)
        assert trace.truncated
        assert len(trace.ops) == 25
