"""Tests for order-aware symbolic deadlock detection.

The scheduler must mirror the runtime's eager/rendezvous split: the same
cyclic send ring deadlocks above the threshold and completes below it
(the false-positive guard — real MPI eager buffering absorbs it).
"""

from repro.analysis import analyze_program
from repro.analysis.deadlock import find_deadlocks
from repro.analysis.trace import trace_program
from repro.runtime.program import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Irecv,
    Isend,
    Recv,
    Send,
    Sendrecv,
    WaitAll,
)

EAGER_32K = 32 * 1024


def world(n):
    return {"world": tuple(range(n))}


def deadlocks(program, n_ranks, eager=0.0):
    return find_deadlocks(trace_program(program, n_ranks),
                          eager_threshold=eager,
                          communicators=world(n_ranks))


def send_ring(size_bytes):
    def program(rank, size):
        yield Send(dst=(rank + 1) % size, tag=0, size_bytes=size_bytes)
        yield Recv(src=(rank - 1) % size, tag=0)

    return program


class TestSendRing:
    def test_rendezvous_ring_deadlocks(self):
        diags = deadlocks(send_ring(1 << 20), 4, eager=EAGER_32K)
        assert len(diags) == 4
        assert all(d.check == "deadlock" for d in diags)
        assert "never posts the matching receive" in diags[0].message

    def test_eager_ring_completes(self):
        """False-positive guard: below the threshold the eager buffer
        absorbs the cyclic sends, exactly like the runtime."""
        assert deadlocks(send_ring(100), 4, eager=EAGER_32K) == []

    def test_threshold_boundary_is_rendezvous(self):
        """At exactly the threshold the runtime switches to rendezvous."""
        assert deadlocks(send_ring(EAGER_32K), 2, eager=EAGER_32K) != []

    def test_analyze_program_defaults_to_strictest_model(self):
        """Without a cluster, every send is treated as rendezvous."""
        report = analyze_program(send_ring(100), 4)
        assert report.by_check("deadlock")

    def test_analyze_program_honors_cluster_threshold(self):
        report = analyze_program(send_ring(100), 4,
                                 eager_threshold=EAGER_32K)
        assert report.ok, report.render()


class TestOrderSensitivity:
    def test_nonblocking_halo_completes(self):
        def program(rank, size):
            r = yield Irecv(src=(rank - 1) % size, tag=0)
            yield Isend(dst=(rank + 1) % size, tag=0, size_bytes=1 << 20)
            yield WaitAll([r])

        assert deadlocks(program, 4) == []

    def test_sendrecv_ring_completes(self):
        def program(rank, size):
            yield Sendrecv(dst=(rank + 1) % size, src=(rank - 1) % size,
                           size_bytes=1 << 20)

        assert deadlocks(program, 4) == []

    def test_crossed_blocking_recvs_deadlock(self):
        """Counts match, order does not: both ranks Recv first."""
        def program(rank, size):
            yield Recv(src=1 - rank, tag=0)
            yield Send(dst=1 - rank, tag=0, size_bytes=1 << 20)

        diags = deadlocks(program, 2)
        assert len(diags) == 2
        assert {d.rank for d in diags} == {0, 1}

    def test_pingpong_order_is_fine(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dst=1, tag=0, size_bytes=1 << 20)
                yield Recv(src=1, tag=0)
            else:
                yield Recv(src=0, tag=0)
                yield Send(dst=0, tag=0, size_bytes=1 << 20)

        assert deadlocks(program, 2) == []

    def test_any_source_unblocks(self):
        def program(rank, size):
            if rank == 0:
                yield Recv(src=ANY_SOURCE, tag=0)
            else:
                yield Send(dst=0, tag=0, size_bytes=1 << 20)

        assert deadlocks(program, 2) == []


class TestCollectiveScheduling:
    def test_many_collective_rounds_release_cleanly(self):
        """Regression: completion tokens must be tracked by identity with
        the tokens kept alive — tracking freed ids spuriously marked new
        tokens done and reported phantom collective re-entry."""
        def program(rank, size):
            for _ in range(200):
                yield Allreduce(size_bytes=16)
                yield Barrier()

        assert deadlocks(program, 8) == []

    def test_interleaved_p2p_and_collectives(self):
        def program(rank, size):
            for step in range(50):
                r = yield Irecv(src=(rank - 1) % size, tag=step)
                yield Isend(dst=(rank + 1) % size, tag=step,
                            size_bytes=1 << 20)
                yield WaitAll([r])
                yield Allreduce(size_bytes=8)

        assert deadlocks(program, 6) == []

    def test_collective_blocks_forever_without_quorum(self):
        def program(rank, size):
            if rank != 0:
                yield Barrier()

        diags = deadlocks(program, 3)
        assert {d.rank for d in diags} == {1, 2}
        assert "waits for ranks" in diags[0].message

    def test_waitall_explains_unfinished_requests(self):
        def program(rank, size):
            if rank == 0:
                r = yield Irecv(src=1, tag=9)
                yield WaitAll([r])

        diags = deadlocks(program, 2)
        assert len(diags) == 1
        assert diags[0].check == "deadlock"
        assert "unfinished" in diags[0].message
