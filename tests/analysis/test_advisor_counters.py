"""Advisor boundedness claims vs the simulated PMU counters.

The advisor's ``perf-memory-bound`` / ``perf-l2-bound`` findings are
derived purely from the closed-form ECM breakdown
(:func:`repro.analytic.engine.config_breakdown`), never from execution.
These tests run the event executor *with* the counter profiler
(:func:`repro.perf.profile.profile_job`) and assert that the static
verdict per kernel — the dominant ECM phase and the memory-bound
classification — agrees with the counter-derived roofline placement
(:func:`repro.perf.accounting.counter_roofline`, whose ``bound`` comes
from the dominant stall category).  If these ever diverge, either the
advisor or the counter attribution drifted from the shared timing model.
"""

import pytest

from repro.analytic.engine import config_breakdown
from repro.core.experiment import ExperimentConfig
from repro.machine import catalog
from repro.miniapps import SUITE, by_name
from repro.perf.accounting import counter_roofline
from repro.perf.profile import profile_job
from repro.runtime.placement import JobPlacement

N_RANKS, N_THREADS = 4, 12      # the paper's per-CMG sweet spot


def _advisor_bounds(app_name: str) -> dict:
    """kernel -> costliest GroupCost, from the closed-form breakdown."""
    config = ExperimentConfig(app=app_name, dataset="as-is",
                              n_ranks=N_RANKS, n_threads=N_THREADS)
    best = {}
    for g in config_breakdown(config).groups:
        cur = best.get(g.kernel)
        if cur is None or g.seconds > cur.seconds:
            best[g.kernel] = g
    return best


def _counter_bounds(app_name: str) -> dict:
    """kernel -> CounterRooflinePoint, from a profiled event run."""
    cluster = catalog.a64fx()
    placement = JobPlacement(cluster, N_RANKS, N_THREADS)
    app = by_name(app_name)
    _, profile = profile_job(app.build_job(cluster, placement, "as-is"))
    return {p.kernel: p for p in counter_roofline(profile, cluster)}


@pytest.mark.parametrize("app_name", sorted(SUITE))
def test_static_bound_agrees_with_counters(app_name):
    static = _advisor_bounds(app_name)
    counted = _counter_bounds(app_name)
    shared = sorted(set(static) & set(counted))
    assert shared, f"{app_name}: no kernels shared between the views"
    for kernel in shared:
        g, p = static[kernel], counted[kernel]
        assert g.bound == p.bound, (
            f"{app_name}/{kernel}: advisor says {g.bound}-bound "
            f"(per-iter {g.per_iter}), counters say {p.bound}")
        assert g.memory_bound == p.memory_bound


@pytest.mark.parametrize("app_name", sorted(SUITE))
def test_every_profiled_kernel_is_modeled(app_name):
    """The advisor sees every kernel the profiler attributes work to."""
    static = _advisor_bounds(app_name)
    counted = _counter_bounds(app_name)
    assert set(counted) <= set(static), (
        f"{app_name}: counters profiled {sorted(set(counted) - set(static))} "
        f"which the breakdown never modeled")
