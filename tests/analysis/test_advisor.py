"""Tests for the static performance advisor (``repro advise``)."""

import dataclasses
import os

import pytest

from repro.analysis import advisor
from repro.analysis.advisor import (
    advise_config,
    advise_gate,
    advise_mode,
    is_feasible,
    set_advise_mode,
)
from repro.analysis.cache import LintCache
from repro.analysis.rules import PERF_RULES
from repro.core.experiment import ExperimentConfig, single_node_configs
from repro.core.runner import run_config, run_sweep
from repro.errors import AdviseError, ConfigurationError
from repro.machine import catalog
from repro.miniapps import SUITE
from repro.runtime.affinity import ProcessAllocation, ThreadBinding

CFG = ExperimentConfig(app="ccs-qcd", dataset="as-is",
                       n_ranks=4, n_threads=12)


@pytest.fixture(autouse=True)
def _clean_gate_mode():
    """Advise mode is env-global; every test starts and ends at 'off'."""
    os.environ.pop(advisor.ENV_ADVISE, None)
    yield
    os.environ.pop(advisor.ENV_ADVISE, None)


# ----------------------------------------------------------------------
# infeasible placements at CMG / node boundaries
# ----------------------------------------------------------------------
class TestInfeasiblePlacements:
    def infeasible(self, **kw):
        config = dataclasses.replace(CFG, **kw)
        diag = is_feasible(config)
        assert diag is not None, f"{config.label()} should be infeasible"
        assert diag.check == "perf-placement-infeasible"
        assert diag.severity == "error"
        return diag

    def test_one_rank_too_many(self):
        # 48 cores on the node: 48x1 fits exactly, 49x1 cannot place
        assert is_feasible(dataclasses.replace(CFG, n_ranks=48,
                                               n_threads=1)) is None
        diag = self.infeasible(n_ranks=49, n_threads=1)
        assert "49" in diag.message and "48" in diag.message

    def test_threads_exceed_node(self):
        self.infeasible(n_ranks=1, n_threads=49)

    def test_binding_stride_wraps_node(self):
        # stride 4 x 12 threads covers the node; stride 48 cannot
        assert is_feasible(dataclasses.replace(
            CFG, n_ranks=1, n_threads=12,
            binding=ThreadBinding("stride", stride=4))) is None
        self.infeasible(n_ranks=1, n_threads=2,
                        binding=ThreadBinding("stride", stride=48))

    def test_domain_pack_padding_exhaustion(self):
        # 5 ranks x 10 threads = 50 logical cores once each rank's
        # window is padded to the 12-core CMG boundary — but 4x12 packs
        pack = ProcessAllocation("domain-pack")
        assert is_feasible(dataclasses.replace(
            CFG, allocation=pack)) is None
        self.infeasible(n_ranks=5, n_threads=10, allocation=pack)

    def test_feasible_config_returns_none(self):
        assert is_feasible(CFG) is None

    def test_infeasible_message_cites_geometry(self):
        diag = self.infeasible(n_ranks=49, n_threads=1)
        assert "49 ranks x 1 threads" in diag.message
        assert "1x48 cores" in diag.message


# ----------------------------------------------------------------------
# rule coverage: >= 6 distinct perf-* ids fire across real configs
# ----------------------------------------------------------------------
class TestRuleCoverage:
    def test_six_distinct_perf_rules_fire(self):
        fired = set()
        # the catalog grid (the advise-clean surface, error-free) ...
        for proc in ("A64FX", "SPARC64-VIIIfx"):
            cores = catalog.by_name(proc).cores_per_node
            for app in sorted(SUITE):
                for nr, nt in single_node_configs(cores):
                    config = ExperimentConfig(
                        app=app, dataset="as-is", processor=proc,
                        n_ranks=nr, n_threads=nt)
                    fired |= {d.check
                              for d in advise_config(config).diagnostics}
        # ... plus deliberately bad placements
        for kw in (dict(n_ranks=49, n_threads=1),           # infeasible
                   dict(n_ranks=2, n_threads=12),           # idle cores
                   dict(n_ranks=1, n_threads=24,            # CMG span
                        data_policy="serial-init")):
            config = dataclasses.replace(CFG, **kw)
            fired |= {d.check for d in advise_config(config).diagnostics}
        perf_fired = {c for c in fired if c.startswith("perf-")}
        assert len(perf_fired) >= 6, sorted(perf_fired)
        assert perf_fired <= set(PERF_RULES)

    def test_every_finding_carries_model_numbers(self):
        report = advise_config(CFG)
        assert not report.ok     # memory-bound infos at minimum
        for diag in report.diagnostics:
            # quantitative claims cite model numbers (ns/it, GB/s, ...)
            assert any(ch.isdigit() for ch in diag.message), diag
            assert diag.hint, diag

    def test_cmg_span_cites_fork_join(self):
        config = dataclasses.replace(CFG, n_ranks=1, n_threads=12,
                                     binding=ThreadBinding("stride",
                                                           stride=4))
        found = advise_config(config).by_check("perf-cmg-span")
        assert found
        assert "us/region" in found[0].message

    def test_remote_traffic_under_serial_init(self):
        config = dataclasses.replace(CFG, n_ranks=1, n_threads=24,
                                     data_policy="serial-init")
        found = advise_config(config).by_check("perf-remote-traffic")
        assert found
        assert "GB/s" in found[0].message

    def test_memory_bound_cites_saturation_knee(self):
        found = advise_config(CFG).by_check("perf-memory-bound")
        assert found
        # A64FX: 209.9 GB/s sustained / 50 GB/s per stream => knee at 5
        assert "knee at 5" in found[0].message

    def test_undersubscribed_idle_fraction(self):
        config = dataclasses.replace(CFG, n_ranks=2, n_threads=12)
        found = advise_config(config).by_check("perf-undersubscribed")
        assert found
        assert found[0].severity == "warning"     # 50% idle
        assert "24 of 48" in found[0].message

    def test_gather_stride_on_latency_bound_kernel(self):
        # ccs-qcd's dirac kernel is gather-latency dominated
        found = advise_config(CFG).by_check("perf-gather-stride")
        assert found
        assert "qcd-dirac" in found[0].message

    def test_l2_bound_rule_synthetic(self):
        # Nowhere in the real model space does the L2 phase dominate —
        # A64FX's HBM2 saturates before its L2 does (see DESIGN.md) —
        # so the rule is exercised on a doctored breakdown.
        from repro.analysis.diagnostics import DiagnosticReport
        from repro.analytic import engine as analytic

        breakdown = analytic.config_breakdown(CFG)
        groups = tuple(dataclasses.replace(g, bound="l2")
                       for g in breakdown.groups)
        breakdown = dataclasses.replace(breakdown, groups=groups)
        cluster = analytic._cluster(CFG.processor, CFG.n_nodes)
        placement = analytic._placement(
            CFG.processor, CFG.n_nodes, CFG.n_ranks, CFG.n_threads,
            CFG.allocation, CFG.binding)
        profile = analytic._profile(CFG.app, CFG.dataset, CFG.n_ranks)
        report = DiagnosticReport(CFG.label())
        advisor._check_boundedness(report, cluster, placement,
                                   breakdown, profile)
        found = report.by_check("perf-l2-bound")
        assert found
        assert found[0].severity == "info"
        assert "shared L2" in found[0].message
        assert "MiB" in found[0].message


# ----------------------------------------------------------------------
# gate modes
# ----------------------------------------------------------------------
class TestGate:
    BAD = dataclasses.replace(CFG, n_ranks=49, n_threads=1)
    WARN_ONLY = dataclasses.replace(CFG, n_ranks=2, n_threads=12)

    def test_off_is_default_and_noop(self):
        assert advise_mode() == "off"
        advise_gate(self.BAD)                     # no raise

    def test_warn_blocks_errors_only(self):
        with pytest.raises(AdviseError) as exc:
            advise_gate(self.BAD, mode="warn")
        assert exc.value.diagnostics
        assert exc.value.diagnostics[0].check == "perf-placement-infeasible"
        advise_gate(self.WARN_ONLY, mode="warn")  # warnings pass

    def test_error_blocks_warnings_too(self):
        with pytest.raises(AdviseError):
            advise_gate(self.WARN_ONLY, mode="error")

    def test_env_mode_round_trip(self):
        set_advise_mode("warn")
        assert advise_mode() == "warn"
        assert os.environ[advisor.ENV_ADVISE] == "warn"
        set_advise_mode("off")
        assert advisor.ENV_ADVISE not in os.environ
        assert advise_mode() == "off"

    def test_env_mode_drives_default_gate(self):
        set_advise_mode("warn")
        with pytest.raises(AdviseError):
            advise_gate(self.BAD)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            set_advise_mode("loud")
        with pytest.raises(ConfigurationError):
            advise_gate(CFG, mode="loud")

    def test_run_config_gates(self, tmp_path):
        with pytest.raises(AdviseError):
            run_config(self.BAD, None, engine="analytic", advise="warn")
        row = run_config(CFG, None, engine="analytic", advise="warn")
        assert row.elapsed > 0

    def test_run_sweep_captures_gated_configs(self):
        sweep = run_sweep("t-advise", [CFG, self.BAD], None,
                          engine="analytic", errors="capture",
                          advise="warn")
        assert len(sweep.rows) == 1
        assert len(sweep.errors) == 1

    def test_run_sweep_raises_when_asked(self):
        with pytest.raises(AdviseError):
            run_sweep("t-advise-raise", [self.BAD], None,
                      engine="analytic", errors="raise", advise="warn")


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------
class TestAdviseCache:
    def test_memoized_per_process(self):
        advisor.clear_memos()
        one = advise_config(CFG)
        assert advise_config(CFG) is one

    def test_persists_and_reloads(self, tmp_path):
        advisor.clear_memos()
        cache = LintCache(tmp_path)
        fresh = advise_config(CFG, cache=cache)
        advisor.clear_memos()
        again = advise_config(CFG, cache=LintCache(tmp_path))
        assert again is not fresh
        # serialization canonicalizes the order (sort_key), not the set
        key = lambda d: d.sort_key()                          # noqa: E731
        assert sorted(again.diagnostics, key=key) \
            == sorted(fresh.diagnostics, key=key)

    def test_distinct_digest_from_lint(self):
        from repro.core.cache import config_digest

        # lint keys by config_digest(config); a shared LintCache file
        # must never alias the two report kinds
        assert advisor._advise_digest(CFG) != config_digest(CFG)

    def test_analyzer_fingerprint_invalidates(self, tmp_path, monkeypatch):
        from repro.analysis import cache as cache_mod
        from repro.analysis import rules

        advisor.clear_memos()
        advise_config(CFG, cache=LintCache(tmp_path))
        advisor.clear_memos()
        monkeypatch.setattr(rules, "ANALYZER_VERSION", 9999)
        rules.analyzer_fingerprint(refresh=True)
        try:
            stale = LintCache(tmp_path)
            assert stale.get(advisor._advise_digest(CFG)) is None
        finally:
            monkeypatch.undo()
            rules.analyzer_fingerprint(refresh=True)
        # sanity: the record is served again once the version matches
        warm = LintCache(tmp_path)
        assert warm.get(advisor._advise_digest(CFG)) is not None


# ----------------------------------------------------------------------
# the breakdown the advisor reasons from
# ----------------------------------------------------------------------
class TestBreakdownConsistency:
    def test_breakdown_matches_score_config(self):
        from repro.analytic.engine import config_breakdown, score_config

        bd = config_breakdown(CFG)
        assert bd.elapsed == score_config(CFG).elapsed

    def test_group_seconds_sum_to_class_compute(self):
        from repro.analytic.engine import config_breakdown

        bd = config_breakdown(CFG)
        for cls in bd.classes:
            groups = bd.class_groups(cls.class_idx)
            total = sum(g.seconds for g in groups)
            assert total == pytest.approx(cls.compute_s, rel=1e-12)
