"""Tests for analysis orchestration: jobs, configs, cache, pre-flight."""

import pytest

from repro.analysis import (
    LintCache,
    analyze_config,
    analyze_job,
    lint_cache_for,
    preflight,
    preflight_enabled,
    set_preflight,
)
from repro.analysis.analyzer import ENV_NO_LINT
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.compile import PRESETS
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_config
from repro.errors import LintError, PlacementError
from repro.kernels import presets
from repro.machine import catalog
from repro.runtime import Job, JobPlacement
from repro.runtime.program import Allreduce, Compute, Recv

KERNELS = {"triad": presets.stream_triad()}


def make_job(program, n_ranks=2):
    cluster = catalog.a64fx()
    return Job(cluster=cluster,
               placement=JobPlacement(cluster, n_ranks, 1),
               kernels=KERNELS, program=program,
               options=PRESETS["kfast"])


def config(**kw):
    base = dict(app="mvmc", dataset="as-is", processor="A64FX",
                n_nodes=1, n_ranks=4, n_threads=12)
    base.update(kw)
    return ExperimentConfig(**base)


class TestAnalyzeJob:
    def test_clean_job(self):
        def program(rank, size):
            yield Compute(kernel="triad", iters=1000)
            yield Allreduce(size_bytes=8)

        report = analyze_job(make_job(program))
        assert report.ok, report.render()

    def test_unknown_kernel_flagged(self):
        def program(rank, size):
            yield Compute(kernel="dgemm", iters=1000)

        report = analyze_job(make_job(program))
        assert report.by_check("unknown-kernel")
        assert "triad" in report.by_check("unknown-kernel")[0].hint

    def test_eager_threshold_comes_from_cluster(self):
        """A sub-threshold cyclic Send ring must not be a deadlock when
        the job's own network would buffer it eagerly."""
        from repro.runtime.program import Send

        def program(rank, size):
            yield Send(dst=(rank + 1) % size, tag=0, size_bytes=64)
            yield Recv(src=(rank - 1) % size, tag=0)

        report = analyze_job(make_job(program, n_ranks=4))
        assert report.ok, report.render()


class TestAnalyzeConfig:
    def test_shipped_config_is_clean(self):
        report = analyze_config(config())
        assert report.ok, report.render()

    def test_unknown_processor(self):
        report = analyze_config(config(processor="EPYC"))
        assert report.by_check("config-processor")

    def test_unknown_app(self):
        report = analyze_config(config(app="hpl"))
        assert report.by_check("config-app")

    def test_infeasible_placement(self):
        report = analyze_config(config(n_ranks=48, n_threads=12))
        diags = report.by_check("placement-infeasible")
        assert diags and diags[0].severity == "error"
        assert diags[0].hint        # actionable

    def test_cache_round_trip(self, tmp_path):
        cache = LintCache(tmp_path)
        report = analyze_config(config(), cache=cache)
        assert report.ok
        assert len(cache) == 1
        # a fresh instance must serve the verdict from disk
        again = LintCache(tmp_path)
        hit = analyze_config(config(), cache=again)
        assert hit.subject == report.subject
        assert hit.diagnostics == report.diagnostics


class TestLintCache:
    def report(self):
        return DiagnosticReport("subj", [Diagnostic(
            check="deadlock", severity="error", message="m",
            rank=1, op_index=2, op="Send(...)", hint="h")])

    def test_put_get_persists(self, tmp_path):
        cache = LintCache(tmp_path)
        cache.put("digest-a", self.report())
        again = LintCache(tmp_path).get("digest-a")
        assert again is not None
        assert again.diagnostics == self.report().diagnostics

    def test_miss_returns_none(self, tmp_path):
        assert LintCache(tmp_path).get("nope") is None

    def test_fingerprint_mismatch_invalidates(self, tmp_path, monkeypatch):
        cache = LintCache(tmp_path)
        cache.put("digest-a", self.report())
        stale = LintCache(tmp_path)
        monkeypatch.setattr(stale, "_fingerprint", "different")
        assert stale.get("digest-a") is None

    def test_corrupt_lines_skipped(self, tmp_path):
        cache = LintCache(tmp_path)
        cache.put("digest-a", self.report())
        with open(cache.path, "a") as fh:
            fh.write("{truncated\n")
        assert LintCache(tmp_path).get("digest-a") is not None

    def test_clear(self, tmp_path):
        cache = LintCache(tmp_path)
        cache.put("digest-a", self.report())
        cache.clear()
        assert cache.get("digest-a") is None
        assert not cache.path.exists()

    def test_shared_instance_per_directory(self, tmp_path):
        assert lint_cache_for(tmp_path) is lint_cache_for(tmp_path)


class TestPreflight:
    def test_clean_config_passes(self):
        preflight(config())        # must not raise

    def test_bad_config_raises_lint_error(self):
        bad = config(n_ranks=48, n_threads=12)
        with pytest.raises(LintError) as err:
            preflight(bad)
        assert err.value.diagnostics
        assert err.value.diagnostics[0].check == "placement-infeasible"
        assert "--no-lint" in str(err.value)

    def test_verdict_memoized(self):
        bad = config(n_ranks=48, n_threads=12)
        with pytest.raises(LintError):
            preflight(bad)
        with pytest.raises(LintError):    # second hit: cached verdict
            preflight(bad)

    def test_run_config_gates_on_lint(self):
        with pytest.raises(LintError):
            run_config(config(n_ranks=48, n_threads=12))

    def test_no_lint_falls_through_to_runtime_error(self):
        assert preflight_enabled()
        set_preflight(False)
        try:
            assert not preflight_enabled()
            import os
            assert os.environ.get(ENV_NO_LINT)     # travels to workers
            with pytest.raises(PlacementError):
                run_config(config(n_ranks=48, n_threads=12))
        finally:
            set_preflight(True)
        assert preflight_enabled()
