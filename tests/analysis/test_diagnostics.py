"""Tests for the Diagnostic/DiagnosticReport vocabulary."""

import pytest

from repro.analysis import Diagnostic, DiagnosticReport
from repro.errors import ConfigurationError


def diag(**kw):
    base = dict(check="p2p-unmatched-recv", severity="error",
                message="rank 1 receives from rank 0, no matching send")
    base.update(kw)
    return Diagnostic(**base)


class TestDiagnostic:
    def test_severity_validated(self):
        with pytest.raises(ConfigurationError):
            diag(severity="fatal")

    def test_check_id_required(self):
        with pytest.raises(ConfigurationError):
            diag(check="")

    def test_location_parts(self):
        assert diag().location() == ""
        assert diag(rank=3).location() == "rank 3"
        assert diag(rank=3, op_index=42).location() == "rank 3, op #42"

    def test_render_carries_all_context(self):
        text = diag(rank=2, op_index=7, op="Recv(src=0, tag=1)",
                    hint="drop the receive").render()
        assert "ERROR" in text
        assert "[p2p-unmatched-recv]" in text
        assert "rank 2, op #7" in text
        assert "Recv(src=0, tag=1)" in text
        assert "drop the receive" in text

    def test_dict_round_trip(self):
        d = diag(rank=5, op_index=1, op="Send(dst=0)", hint="h")
        assert Diagnostic.from_dict(d.to_dict()) == d

    def test_dict_round_trip_minimal(self):
        d = diag()
        assert Diagnostic.from_dict(d.to_dict()) == d


class TestDiagnosticReport:
    def test_empty_is_ok(self):
        report = DiagnosticReport("x")
        assert report.ok
        assert "clean" in report.summary()

    def test_partition_by_severity(self):
        report = DiagnosticReport("x")
        report.add(diag())
        report.add(diag(check="request-unwaited", severity="warning"))
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok
        assert "1 error(s), 1 warning(s)" in report.summary()

    def test_by_check(self):
        report = DiagnosticReport("x", [diag(), diag(check="deadlock")])
        assert len(report.by_check("deadlock")) == 1

    def test_render_lists_every_finding(self):
        report = DiagnosticReport("subj", [diag(rank=0), diag(rank=1)])
        text = report.render()
        assert text.startswith("subj:")
        assert text.count("[p2p-unmatched-recv]") == 2

    def test_dict_round_trip(self):
        report = DiagnosticReport("subj", [diag(rank=0, hint="h")])
        again = DiagnosticReport.from_dict(report.to_dict())
        assert again.subject == "subj"
        assert again.diagnostics == report.diagnostics

    def test_info_severity(self):
        report = DiagnosticReport("x", [
            diag(check="perf-memory-bound", severity="info"),
            diag(check="perf-cmg-span", severity="warning"),
        ])
        assert len(report.infos) == 1
        assert "1 info(s)" in report.summary()

    def test_at_least_cuts(self):
        report = DiagnosticReport("x", [
            diag(),                                            # error
            diag(check="perf-cmg-span", severity="warning"),
            diag(check="perf-memory-bound", severity="info"),
        ])
        assert len(report.at_least("error")) == 1
        assert len(report.at_least("warning")) == 2
        assert len(report.at_least("info")) == 3
        with pytest.raises(ConfigurationError):
            report.at_least("fatal")

    def test_render_honors_min_severity(self):
        report = DiagnosticReport("x", [
            diag(check="perf-memory-bound", severity="info"),
            diag(check="perf-cmg-span", severity="warning"),
        ])
        text = report.render("warning")
        assert "perf-cmg-span" in text
        assert "perf-memory-bound" not in text

    def test_to_dict_order_independent(self):
        a = diag(check="perf-cmg-span", severity="warning", rank=1)
        b = diag(check="perf-memory-bound", severity="info")
        c = diag(rank=0)
        one = DiagnosticReport("s", [a, b, c]).to_dict()
        two = DiagnosticReport("s", [c, a, b]).to_dict()
        assert one == two

    def test_sort_key_whole_job_first(self):
        anchored = diag(rank=3)
        whole = diag()
        assert whole.sort_key() < anchored.sort_key()
