"""Seeded-bug tests: each analyzer check must flag its bug category and
stay silent on the legal variants."""

from repro.analysis import analyze_program
from repro.analysis.checks import (
    check_collectives,
    check_domains,
    check_p2p_matching,
    check_programs,
    check_requests,
)
from repro.analysis.trace import trace_program
from repro.runtime.program import (
    ANY_SOURCE,
    MAX_PORTABLE_TAG,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Irecv,
    Isend,
    Recv,
    Send,
    WaitAll,
)

WORLD2 = {"world": (0, 1)}
WORLD3 = {"world": (0, 1, 2)}


def checks_fired(diags):
    return {d.check for d in diags}


class TestProgramChecks:
    def test_unknown_yield_flagged(self):
        def program(rank, size):
            yield Compute(kernel="k", iters=1)
            yield "flush caches"

        diags = check_programs(trace_program(program, 1))
        assert checks_fired(diags) == {"unknown-op"}

    def test_budget_truncation_is_warning(self):
        def program(rank, size):
            while True:
                yield Compute(kernel="k", iters=1)

        diags = check_programs(trace_program(program, 1, max_ops=10))
        assert [d.check for d in diags] == ["program-budget"]
        assert diags[0].severity == "warning"


class TestDomainChecks:
    def test_send_to_self(self):
        def program(rank, size):
            yield Isend(dst=rank, tag=0, size_bytes=8)

        diags = check_domains(trace_program(program, 2), 2, WORLD2)
        assert all(d.check == "p2p-invalid-send" for d in diags)
        assert "itself" in diags[0].message

    def test_recv_out_of_range(self):
        def program(rank, size):
            yield Recv(src=size, tag=0)     # off-by-one neighbour bug

        diags = check_domains(trace_program(program, 2), 2, WORLD2)
        assert checks_fired(diags) == {"p2p-invalid-recv"}

    def test_any_source_is_a_valid_src(self):
        def program(rank, size):
            yield Irecv(src=ANY_SOURCE, tag=0)

        assert check_domains(trace_program(program, 2), 2, WORLD2) == []

    def test_nonportable_tag_warns(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dst=1, tag=MAX_PORTABLE_TAG + 1, size_bytes=8)
            else:
                yield Recv(src=0, tag=MAX_PORTABLE_TAG + 1)

        diags = check_domains(trace_program(program, 2), 2, WORLD2)
        assert checks_fired(diags) == {"p2p-tag-range"}
        assert all(d.severity == "warning" for d in diags)

    def test_collective_on_unknown_comm(self):
        def program(rank, size):
            yield Barrier(comm="cmg")

        diags = check_domains(trace_program(program, 2), 2, WORLD2)
        assert checks_fired(diags) == {"collective-unknown-comm"}

    def test_collective_nonmember(self):
        def program(rank, size):
            yield Barrier(comm="pair")

        comms = dict(WORLD3, pair=(0, 1))
        diags = check_domains(trace_program(program, 3), 3, comms)
        assert checks_fired(diags) == {"collective-nonmember"}
        assert all(d.rank == 2 for d in diags)

    def test_collective_bad_root(self):
        def program(rank, size):
            yield Bcast(size_bytes=8, root=9)

        diags = check_domains(trace_program(program, 2), 2, WORLD2)
        assert checks_fired(diags) == {"collective-bad-root"}


class TestRequestChecks:
    def test_waitall_on_non_request(self):
        def program(rank, size):
            yield WaitAll(["not a request"])

        diags = check_requests(trace_program(program, 1))
        assert checks_fired(diags) == {"waitall-non-request"}

    def test_double_wait_warns(self):
        def program(rank, size):
            r = yield Irecv(src=ANY_SOURCE, tag=0)
            yield WaitAll([r])
            yield WaitAll([r])

        diags = check_requests(trace_program(program, 2))
        assert checks_fired(diags) == {"request-double-wait"}
        assert all(d.severity == "warning" for d in diags)

    def test_unwaited_irecv_warns(self):
        def program(rank, size):
            yield Irecv(src=ANY_SOURCE, tag=0)

        diags = check_requests(trace_program(program, 2))
        assert checks_fired(diags) == {"request-unwaited"}

    def test_unwaited_isend_is_fine(self):
        """Fire-and-forget sends are the shipped skeleton idiom."""
        def program(rank, size):
            yield Isend(dst=(rank + 1) % size, tag=0, size_bytes=8)
            r = yield Irecv(src=(rank - 1) % size, tag=0)
            yield WaitAll([r])

        assert check_requests(trace_program(program, 2)) == []


class TestP2PMatching:
    def test_unmatched_recv(self):
        def program(rank, size):
            if rank == 1:
                yield Recv(src=0, tag=3)    # rank 0 never sends

        diags = check_p2p_matching(trace_program(program, 2), 2)
        assert checks_fired(diags) == {"p2p-unmatched-recv"}
        assert diags[0].rank == 1

    def test_unmatched_send(self):
        def program(rank, size):
            if rank == 0:
                yield Isend(dst=1, tag=3, size_bytes=8)

        diags = check_p2p_matching(trace_program(program, 2), 2)
        assert checks_fired(diags) == {"p2p-unmatched-send"}

    def test_tag_mismatch_is_two_findings(self):
        def program(rank, size):
            if rank == 0:
                yield Isend(dst=1, tag=1, size_bytes=8)
            else:
                r = yield Irecv(src=0, tag=2)
                yield WaitAll([r])

        diags = check_p2p_matching(trace_program(program, 2), 2)
        assert checks_fired(diags) == \
            {"p2p-unmatched-send", "p2p-unmatched-recv"}

    def test_wildcard_absorbs_leftover_sends(self):
        def program(rank, size):
            if rank == 2:
                for _ in range(size - 1):
                    yield Recv(src=ANY_SOURCE, tag=0)
            else:
                yield Send(dst=2, tag=0, size_bytes=8)

        assert check_p2p_matching(trace_program(program, 3), 3) == []

    def test_specific_recvs_matched_before_wildcards(self):
        """One send, one specific receive, one wildcard: the specific
        receive takes the send; only the wildcard is left unmatched."""
        def program(rank, size):
            if rank == 0:
                yield Send(dst=1, tag=0, size_bytes=8)
            else:
                yield Recv(src=0, tag=0)
                yield Recv(src=ANY_SOURCE, tag=0)

        diags = check_p2p_matching(trace_program(program, 2), 2)
        assert len(diags) == 1
        assert diags[0].check == "p2p-unmatched-recv"
        assert "ANY_SOURCE" in diags[0].message

    def test_balanced_exchange_is_clean(self):
        def program(rank, size):
            peer = (rank + 1) % size
            r = yield Irecv(src=(rank - 1) % size, tag=7)
            yield Isend(dst=peer, tag=7, size_bytes=64)
            yield WaitAll([r])

        assert check_p2p_matching(trace_program(program, 4), 4) == []


class TestCollectiveCongruence:
    def test_count_mismatch(self):
        def program(rank, size):
            yield Allreduce(size_bytes=8)
            if rank != 0:
                yield Allreduce(size_bytes=8)   # rank 0 skips the second

        diags = check_collectives(trace_program(program, 3), WORLD3)
        assert checks_fired(diags) == {"collective-count"}
        assert diags[0].rank == 0

    def test_type_divergence(self):
        def program(rank, size):
            if rank == 0:
                yield Allreduce(size_bytes=8)
            else:
                yield Barrier()

        diags = check_collectives(trace_program(program, 2), WORLD2)
        assert checks_fired(diags) == {"collective-divergence"}
        assert "Barrier" in diags[0].message
        assert "Allreduce" in diags[0].message

    def test_root_divergence(self):
        def program(rank, size):
            yield Bcast(size_bytes=8, root=rank % 2)

        diags = check_collectives(trace_program(program, 2), WORLD2)
        assert checks_fired(diags) == {"collective-root-divergence"}

    def test_per_rank_sizes_allowed(self):
        """modylas/ngsa contribute different byte counts per rank — the
        simulator costs the max, so sizes must NOT be congruence-checked."""
        def program(rank, size):
            yield Allreduce(size_bytes=8 * (rank + 1))

        assert check_collectives(trace_program(program, 4),
                                 {"world": (0, 1, 2, 3)}) == []

    def test_subcommunicator_checked_independently(self):
        def program(rank, size):
            yield Barrier()
            if rank < 2:
                yield Allreduce(size_bytes=8, comm="pair")

        comms = dict(WORLD3, pair=(0, 1))
        assert check_collectives(trace_program(program, 3), comms) == []


class TestAnalyzeProgramIntegration:
    def test_clean_program_end_to_end(self):
        def program(rank, size):
            peer = (rank + 1) % size
            r = yield Irecv(src=(rank - 1) % size, tag=0)
            yield Isend(dst=peer, tag=0, size_bytes=1 << 20)
            yield WaitAll([r])
            yield Allreduce(size_bytes=8)

        report = analyze_program(program, 4)
        assert report.ok, report.render()

    def test_seeded_bugs_all_reported(self):
        def program(rank, size):
            if rank == 0:
                yield Recv(src=1, tag=0)    # never sent
                yield Allreduce(size_bytes=8)
            else:
                yield Bcast(size_bytes=8, root=0)

        report = analyze_program(program, 2)
        fired = checks_fired(report.diagnostics)
        assert "p2p-unmatched-recv" in fired
        assert "collective-divergence" in fired
