"""Acceptance: the analyzer reports zero diagnostics for every shipped
miniapp skeleton, across the placement-grid corners and the paper's
sweet spot.  A false positive here means the analyzer's model of the
matching rules has drifted from the runtime's."""

import pytest

from repro.analysis import analyze_job
from repro.machine import catalog
from repro.miniapps import SUITE, by_name
from repro.runtime.placement import JobPlacement

PLACEMENTS = [(1, 48), (4, 12), (48, 1)]


@pytest.mark.parametrize("app_name", sorted(SUITE))
@pytest.mark.parametrize("n_ranks,n_threads", PLACEMENTS)
def test_shipped_skeleton_lints_clean(app_name, n_ranks, n_threads):
    cluster = catalog.a64fx()
    app = by_name(app_name)
    job = app.build_job(cluster, JobPlacement(cluster, n_ranks, n_threads),
                        "as-is")
    report = analyze_job(job)
    assert report.ok, report.render()
