"""Crash-consistency chaos campaign for the sweep service
(repro chaos --service / the chaos-service CI gate)."""

import json

import pytest

from repro.faults import SimulatedKill, run_service_campaign


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-chaos")
    return run_service_campaign(seed=0, workdir=root)


class TestServiceCampaign:
    def test_all_invariants_hold(self, campaign):
        assert campaign.ok, campaign.render()
        assert campaign.violations == []

    def test_scenario_ladder_covered(self, campaign):
        names = [s["scenario"] for s in campaign.scenarios]
        assert names == ["torn-submit", "kill-at-running",
                         "duplicate-terminal", "torn-frame",
                         "hung-worker", "expired-deadline"]

    def test_invariant_kinds_checked(self, campaign):
        kinds = {inv.id for inv in campaign.invariants}
        assert {"accepted-before-ack", "torn-line-tolerated",
                "accepted-jobs-survive", "unacked-not-resurrected",
                "killed-transition-resumes", "stale-socket-reclaimed",
                "duplicate-terminal-tolerated", "not-duplicated",
                "torn-frame-rejected", "connection-survives",
                "nothing-admitted", "watchdog-fires",
                "killed-and-requeued", "deadline-expires",
                "expiry-spares-others", "expired-stays-terminal",
                "exactly-one-terminal",
                "deterministic-replay"} <= kinds

    def test_no_accepted_job_lost_or_duplicated(self, campaign):
        checked = [inv for inv in campaign.invariants
                   if inv.id == "exactly-one-terminal"]
        assert checked, "campaign never audited the ledgers"
        assert all(inv.ok for inv in checked)

    def test_json_artifact_shape(self, campaign):
        doc = campaign.to_json()
        assert doc["version"] == 1
        assert doc["kind"] == "service-chaos"
        assert doc["seed"] == 0
        assert doc["ok"] is True
        # the artifact is diffable across machines and runs: it must
        # carry no wall-clock times, pids, or absolute paths
        blob = json.dumps(doc)
        assert "/tmp" not in blob and "job_id" not in blob

    def test_artifact_is_bit_reproducible(self, campaign,
                                          tmp_path_factory):
        replay = run_service_campaign(
            seed=0, workdir=tmp_path_factory.mktemp("replay"))
        assert json.dumps(campaign.to_json(), sort_keys=True) \
            == json.dumps(replay.to_json(), sort_keys=True)

    def test_render_mentions_verdict(self, campaign):
        text = campaign.render()
        assert "seed=0" in text
        assert "all invariants hold" in text


def test_simulated_kill_skips_except_exception():
    # the whole point: SimulatedKill must sail past "except Exception"
    # cleanup handlers, as a real SIGKILL would
    assert issubclass(SimulatedKill, BaseException)
    assert not issubclass(SimulatedKill, Exception)
    with pytest.raises(SimulatedKill):
        try:
            raise SimulatedKill("mid-append")
        except Exception:  # noqa: BLE001 - the assertion under test
            pytest.fail("SimulatedKill must not be catchable here")
