"""Runtime behaviour under injected faults (executor + SimMPI hooks).

The load-bearing properties:

* **zero-overhead off-switch** — ``fault_plan=None`` and an *empty*
  plan are byte-identical to a run predating fault injection;
* **determinism** — the same plan replays to bit-identical results;
* **conservation** — per-rank attributed time and PMU flop totals stay
  exact under every fault kind;
* **lossy degradation** — crashes and drops wedge ranks into
  ``failed_ranks``/``stalled_ranks`` instead of raising
  :class:`DeadlockError`.
"""

import dataclasses

import pytest

from repro.compile import PRESETS
from repro.errors import ConfigurationError
from repro.faults import CrashRank, FaultPlan, MessageFault, Straggler
from repro.kernels import presets
from repro.machine import catalog
from repro.runtime import (
    Allreduce,
    Compute,
    Job,
    JobPlacement,
    Recv,
    Send,
    run_job,
)

KERNELS = {"triad": presets.stream_triad()}
N_RANKS = 4


def ring_program(rank, size):
    """Compute + ring halo exchange + allreduce, a few iterations."""
    right = (rank + 1) % size
    left = (rank - 1) % size
    for _ in range(3):
        yield Compute("triad", iters=500_000)
        if rank % 2 == 0:
            yield Send(dst=right, tag=0, size_bytes=4096)
            yield Recv(src=left, tag=0)
        else:
            yield Recv(src=left, tag=0)
            yield Send(dst=right, tag=0, size_bytes=4096)
        yield Allreduce(size_bytes=8)


def make_job(plan=None, perf_sink=None):
    cluster = catalog.a64fx()
    pl = JobPlacement(cluster, N_RANKS, 2)
    return Job(cluster=cluster, placement=pl, kernels=KERNELS,
               program=ring_program, options=PRESETS["kfast"],
               fault_plan=plan, perf_sink=perf_sink)


def signature(result):
    return (result.elapsed, tuple(sorted(result.rank_finish.items())),
            result.messages_sent, result.bytes_sent, result.total_flops,
            result.failed_ranks, result.stalled_ranks)


@pytest.fixture(scope="module")
def baseline():
    return run_job(make_job())


class TestOffSwitch:
    def test_empty_plan_is_byte_identical(self, baseline):
        assert signature(run_job(make_job(FaultPlan()))) \
            == signature(baseline)

    def test_baseline_not_degraded(self, baseline):
        assert not baseline.degraded
        assert baseline.fault_stats is None

    def test_job_validates_fault_ranks(self):
        with pytest.raises(ConfigurationError):
            make_job(FaultPlan(crashes=(CrashRank(N_RANKS, 0.0),)))
        with pytest.raises(ConfigurationError):
            make_job(FaultPlan(stragglers=(Straggler(99, 2.0),)))


class TestDeterminism:
    @pytest.mark.parametrize("plan", [
        FaultPlan(seed=3, stragglers=(Straggler(1, 1.7),)),
        FaultPlan(seed=3, crashes=(CrashRank(2, 1e-4),)),
        FaultPlan(seed=3, message_faults=(
            MessageFault(kind="drop", probability=0.3),)),
        FaultPlan(seed=3, message_faults=(
            MessageFault(kind="duplicate", probability=0.5),
            MessageFault(kind="delay", delay_s=2e-6, probability=0.5),)),
    ], ids=["straggler", "crash", "drop", "dup+delay"])
    def test_replay_is_bit_identical(self, plan):
        a = run_job(make_job(plan))
        b = run_job(make_job(plan))
        assert signature(a) == signature(b)
        assert a.fault_stats.to_dict() == b.fault_stats.to_dict()


class TestStraggler:
    def test_straggler_stretches_elapsed(self, baseline):
        res = run_job(make_job(FaultPlan(stragglers=(Straggler(0, 2.0),))))
        assert res.elapsed > baseline.elapsed
        assert not res.degraded          # lossless: still completes
        assert res.fault_stats.straggled_regions > 0

    def test_monotone_in_severity(self, baseline):
        prev = baseline.elapsed
        for factor in (1.3, 1.8, 2.5):
            res = run_job(make_job(
                FaultPlan(stragglers=(Straggler(0, factor),))))
            assert res.elapsed >= prev * (1 - 1e-12)
            prev = res.elapsed

    def test_late_start_matches_partial_injection(self, baseline):
        """A straggler starting after the run ends changes nothing."""
        res = run_job(make_job(FaultPlan(stragglers=(
            Straggler(0, 3.0, start=baseline.elapsed * 10),))))
        assert signature(res)[:5] == signature(baseline)[:5]
        assert res.fault_stats.straggled_regions == 0


class TestCrash:
    def test_crash_degrades_instead_of_raising(self, baseline):
        plan = FaultPlan(crashes=(CrashRank(2, baseline.elapsed * 0.4),))
        res = run_job(make_job(plan))
        assert res.failed_ranks == (2,)
        assert res.degraded
        assert res.fault_stats.crashes == 1
        # the ring couples everyone: peers wedge waiting on the dead rank
        assert res.stalled_ranks
        assert set(res.stalled_ranks).isdisjoint(res.failed_ranks)

    def test_crash_at_time_zero_executes_nothing(self):
        res = run_job(make_job(FaultPlan(crashes=(CrashRank(1, 0.0),))))
        assert res.failed_ranks == (1,)
        assert res.rank_finish[1] == 0.0

    def test_dead_rank_finish_time_precedes_elapsed(self, baseline):
        plan = FaultPlan(crashes=(CrashRank(2, baseline.elapsed * 0.4),))
        res = run_job(make_job(plan))
        for rank in res.failed_ranks + res.stalled_ranks:
            assert res.rank_finish[rank] <= res.elapsed


class TestMessageFaults:
    def test_delay_adds_exactly(self, baseline):
        delay = 5e-6
        plan = FaultPlan(message_faults=(
            MessageFault(kind="delay", src=0, dst=1, delay_s=delay,
                         max_events=1),))
        res = run_job(make_job(plan))
        assert res.fault_stats.delays == 1
        assert res.fault_stats.delay_seconds == delay
        assert not res.degraded
        assert res.elapsed >= baseline.elapsed

    def test_duplicate_burns_messages_and_bytes(self, baseline):
        plan = FaultPlan(message_faults=(
            MessageFault(kind="duplicate", probability=0.5),))
        res = run_job(make_job(plan))
        dups = res.fault_stats.duplicates
        assert dups > 0
        assert res.messages_sent == baseline.messages_sent + dups
        assert res.bytes_sent > baseline.bytes_sent
        assert not res.degraded

    def test_drop_wedges_receiver_without_deadlock_error(self):
        plan = FaultPlan(message_faults=(
            MessageFault(kind="drop", src=0, dst=1, max_events=1),))
        res = run_job(make_job(plan))     # must NOT raise DeadlockError
        assert res.fault_stats.drops == 1
        assert res.degraded
        assert res.stalled_ranks


class TestConservationUnderFaults:
    @pytest.mark.parametrize("plan", [
        None,
        FaultPlan(stragglers=(Straggler(1, 2.0),)),
        FaultPlan(crashes=(CrashRank(2, 1e-4),)),
        FaultPlan(message_faults=(
            MessageFault(kind="drop", src=0, dst=1, max_events=1),)),
        FaultPlan(message_faults=(
            MessageFault(kind="duplicate", probability=0.5),)),
    ], ids=["clean", "straggler", "crash", "drop", "duplicate"])
    def test_time_and_flops_conserved(self, plan):
        from repro.perf.profile import ProfileSink

        sink = ProfileSink()
        res = run_job(make_job(plan, perf_sink=sink))
        profile = sink.profile()
        for rank, finish in res.rank_finish.items():
            attributed = profile.attributed_seconds(rank)
            assert attributed == pytest.approx(finish, rel=1e-9, abs=1e-15)
        assert profile.total_counters().flops \
            == pytest.approx(res.total_flops, rel=1e-9)


class TestScaledTimings:
    def test_phase_timing_scaled(self):
        from repro.compile import Compiler
        from repro.kernels import phase_time

        dom = catalog.a64fx().node.chips[0].domains[0]
        ck = Compiler(PRESETS["kfast"]).compile(presets.stream_triad(),
                                                dom.core)
        t = phase_time(
            ck, 1e6, dom.core, dom.l1d, dom.l2,
            mem_bandwidth_share=dom.memory.per_stream_bandwidth(1),
            l2_bandwidth_share=dom.l2_bandwidth_share(1),
            mem_latency_s=dom.memory.latency_s,
        )
        doubled = t.scaled(2.0)
        assert doubled.seconds == t.seconds * 2.0
        assert doubled.flops == t.flops           # work is unchanged
        assert doubled.dram_bytes == t.dram_bytes
        assert t.scaled(1.0) is t
        with pytest.raises(ConfigurationError):
            t.scaled(-1.0)
