"""Tests for the declarative fault-plan layer (repro.faults.plan)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CrashRank,
    FaultPlan,
    MessageFault,
    Straggler,
)


class TestValidation:
    def test_bad_message_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageFault(kind="corrupt")

    def test_probability_range(self):
        with pytest.raises(ConfigurationError):
            MessageFault(kind="drop", probability=1.5)
        with pytest.raises(ConfigurationError):
            MessageFault(kind="drop", probability=-0.1)

    def test_delay_needs_positive_delay(self):
        with pytest.raises(ConfigurationError):
            MessageFault(kind="delay")
        with pytest.raises(ConfigurationError):
            MessageFault(kind="delay", delay_s=-1.0)

    def test_straggler_factor_at_least_one(self):
        with pytest.raises(ConfigurationError):
            Straggler(rank=0, factor=0.5)

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashRank(rank=0, at=-1.0)

    def test_duplicate_rank_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=(CrashRank(0, 1.0), CrashRank(0, 2.0)))
        with pytest.raises(ConfigurationError):
            FaultPlan(stragglers=(Straggler(1, 2.0), Straggler(1, 3.0)))

    def test_max_events_positive(self):
        with pytest.raises(ConfigurationError):
            MessageFault(kind="drop", max_events=0)


class TestPlan:
    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(crashes=(CrashRank(0, 1.0),)).empty

    def test_to_dict_round_trips_specs(self):
        plan = FaultPlan(
            seed=7,
            crashes=(CrashRank(2, 0.5),),
            stragglers=(Straggler(1, 1.5, start=0.1),),
            message_faults=(MessageFault(kind="delay", delay_s=1e-6),),
        )
        d = plan.to_dict()
        assert d["seed"] == 7
        assert d["crashes"] == [{"rank": 2, "at": 0.5}]
        assert d["stragglers"] == [{"rank": 1, "factor": 1.5, "start": 0.1}]
        assert d["message_faults"][0]["kind"] == "delay"


class TestFaultState:
    def test_compute_factor_respects_start(self):
        state = FaultPlan(stragglers=(Straggler(0, 2.0, start=5.0),)).bind()
        assert state.compute_factor(0, 1.0) == 1.0
        assert state.compute_factor(0, 5.0) == 2.0
        assert state.compute_factor(1, 10.0) == 1.0
        assert state.stats.straggled_regions == 1

    def test_crash_time_lookup(self):
        state = FaultPlan(crashes=(CrashRank(3, 0.25),)).bind()
        assert state.crash_time(3) == 0.25
        assert state.crash_time(0) is None

    def test_message_filter_and_stats(self):
        state = FaultPlan(message_faults=(
            MessageFault(kind="drop", src=0, dst=1),)).bind()
        assert state.message_action(0, 1, 8.0) == ("drop", 0.0)
        assert state.message_action(1, 0, 8.0) is None
        assert state.message_action(0, 2, 8.0) is None
        assert state.stats.drops == 1

    def test_max_events_caps_firing(self):
        state = FaultPlan(message_faults=(
            MessageFault(kind="duplicate", max_events=2),)).bind()
        fired = [state.message_action(0, 1, 1.0) for _ in range(5)]
        assert sum(a is not None for a in fired) == 2
        assert state.stats.duplicates == 2

    def test_first_matching_spec_wins(self):
        state = FaultPlan(message_faults=(
            MessageFault(kind="delay", src=0, delay_s=1.0),
            MessageFault(kind="drop"),
        )).bind()
        assert state.message_action(0, 1, 1.0) == ("delay", 1.0)
        assert state.message_action(2, 1, 1.0) == ("drop", 0.0)

    def test_probabilistic_stream_is_seed_deterministic(self):
        def decisions(seed):
            state = FaultPlan(seed=seed, message_faults=(
                MessageFault(kind="drop", probability=0.5),)).bind()
            return [state.message_action(0, 1, 1.0) is not None
                    for _ in range(64)]

        assert decisions(1) == decisions(1)
        assert decisions(1) != decisions(2)  # astronomically unlikely tie

    def test_bind_is_fresh_state(self):
        plan = FaultPlan(message_faults=(MessageFault(kind="drop"),))
        a, b = plan.bind(), plan.bind()
        a.message_action(0, 1, 1.0)
        assert a.stats.drops == 1 and b.stats.drops == 0
