"""Tests for the chaos campaign runner (repro chaos / CI smoke gate)."""

import json

import pytest

from repro.faults import run_campaign
from repro.faults.chaos import QUICK_APPS


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(seed=0, apps=("ffvc",))


class TestCampaign:
    def test_all_invariants_hold(self, campaign):
        assert campaign.ok, campaign.render()
        assert campaign.violations == []

    def test_scenario_ladder_covered(self, campaign):
        names = {s["scenario"] for s in campaign.scenarios}
        assert {"baseline", "delay", "duplicate", "crash", "drop"} <= names
        assert any(n.startswith("straggler-") for n in names)

    def test_invariant_kinds_checked(self, campaign):
        kinds = {inv.id for inv in campaign.invariants}
        assert {"deterministic-replay", "time-conservation",
                "flop-conservation", "monotone-degradation",
                "lint-agreement", "degradation-accounting"} <= kinds

    def test_report_is_bit_reproducible(self, campaign):
        replay = run_campaign(seed=0, apps=("ffvc",))
        a = json.dumps(campaign.to_json(), sort_keys=True)
        b = json.dumps(replay.to_json(), sort_keys=True)
        assert a == b

    def test_render_mentions_verdict(self, campaign):
        text = campaign.render()
        assert "all invariants hold" in text
        assert "seed=0" in text

    def test_json_artifact_shape(self, campaign):
        doc = campaign.to_json()
        assert doc["version"] == 1
        assert doc["ok"] is True
        assert doc["apps"] == ["ffvc"]
        # every scenario record carries its plan and run signature
        for s in doc["scenarios"]:
            assert "plan" in s
            assert "elapsed" in s or "error" in s


class TestQuickSubset:
    def test_quick_apps_are_real_apps(self):
        from repro.miniapps import SUITE

        assert set(QUICK_APPS) <= set(SUITE)

    def test_seed_changes_victims_not_validity(self):
        a = run_campaign(seed=1, apps=("mvmc",))
        assert a.ok, a.render()
