"""Shim for legacy editable installs in offline environments.

``pip install -e .`` uses PEP 517 and needs the ``wheel`` package; where
that is unavailable (air-gapped machines), ``python setup.py develop``
or ``pip install -e . --no-use-pep517`` installs from this shim instead.
"""

from setuptools import setup

setup()
