"""A2 — A64FX power-control modes (normal / eco / boost).

Companion-study findings ("Evaluation of Power Management Control on the
Supercomputer Fugaku"): eco mode saves power without hurting memory-bound
codes; boost buys ~10% speed for ~10-17% more power.
"""

from repro.core import ablations


def test_a2_power_modes(benchmark, save_table):
    table, data = benchmark.pedantic(ablations.a2_power_modes,
                                     rounds=1, iterations=1)
    save_table(table, "a2_power_modes")

    # memory-bound: eco costs <5% performance and saves >10% power
    ffvc = data["ffvc"]
    assert ffvc["eco"].elapsed_s < 1.05 * ffvc["normal"].elapsed_s
    assert ffvc["eco"].average_watts < 0.9 * ffvc["normal"].average_watts
    assert ffvc["eco"].gflops_per_watt > ffvc["normal"].gflops_per_watt

    # compute-bound: eco roughly halves throughput -> worse energy
    ntchem = data["ntchem"]
    assert ntchem["eco"].elapsed_s > 1.6 * ntchem["normal"].elapsed_s
    assert ntchem["eco"].flops_per_joule < ntchem["normal"].flops_per_joule

    # boost: ~10% faster on compute-bound at higher power
    speedup = ntchem["normal"].elapsed_s / ntchem["boost"].elapsed_s
    assert 1.05 < speedup < 1.12
    assert ntchem["boost"].average_watts > ntchem["normal"].average_watts
