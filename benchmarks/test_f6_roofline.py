"""F6 — roofline placement / bottleneck attribution of the suite."""

from repro.core import figures


def test_f6_roofline(benchmark, save_table):
    table = benchmark.pedantic(figures.f6_roofline, rounds=1, iterations=1)
    save_table(table, "f6_roofline")

    bounds = table.column("bound")
    kernels = table.column("kernel")
    by_kernel = dict(zip(kernels, bounds))

    # anchors of the analysis: SOR is DRAM bound, the RI-MP2 GEMM is
    # compute bound, the alignment DP is scalar-compute bound
    assert by_kernel["ffvc-sor"] == "dram"
    assert by_kernel["dgemm-b96"] == "compute"
    assert by_kernel["ngsa-align"] == "compute"

    # both regimes are populated — the suite spans the roofline
    assert "dram" in bounds and "compute" in bounds
