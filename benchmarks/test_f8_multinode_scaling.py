"""F8 — multi-node strong scaling over Tofu-D."""

from repro.core import figures


def test_f8_multinode_scaling(benchmark, save_table, run_cache):
    table, sweeps = benchmark.pedantic(
        figures.f8_multinode_scaling, kwargs={"cache": run_cache},
        rounds=1, iterations=1)
    save_table(table, "f8_multinode_scaling")

    for app, sweep in sweeps.items():
        times = [row.elapsed for row in sweep.rows]
        # monotone improvement with nodes on the large data sets
        assert all(b < a for a, b in zip(times, times[1:])), app
        # but sub-linear (communication + surface effects are real)
        assert times[0] / times[-1] < 8.0
