"""A4 — SSSP projection of miniapp performance from microbenchmarks.

Methodology of the companion paper "A Performance Projection of
Mini-Applications onto Benchmarks" (Tsuji, Kramer & Sato): fit
non-negative weights over a machine pool, project onto a held-out
machine.  The companion paper reports this class of projection is useful
but approximate — the assertions below encode that calibrated expectation.
"""

from repro.core import projection


def test_a4_sssp_projection(benchmark, save_table):
    table, data = benchmark.pedantic(projection.a4_sssp_projection,
                                     rounds=1, iterations=1)
    save_table(table, "a4_sssp_projection")

    for app, (predicted, actual, model) in data.items():
        # projection is order-of-magnitude-and-better, not exact
        assert 0.4 < predicted / actual < 2.5, app
        # weights are a valid non-negative decomposition
        assert min(model.weights) >= 0

    # the memory-bound app must be attributed to the stream benchmark
    assert data["ffvc"][2].dominant_benchmark() == "stream"
