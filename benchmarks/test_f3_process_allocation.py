"""F3 — MPI process-allocation methods across nodes.

Paper finding: "MPI process allocation methods have not had a large impact
on the performance."
"""

from repro.core import figures
from repro.core.metrics import spread


def test_f3_process_allocation(benchmark, save_table, run_cache):
    table, sweeps = benchmark.pedantic(
        figures.f3_process_allocation,
        kwargs={"apps": ["ccs-qcd", "ffvc", "nicam-dc", "modylas"],
                "cache": run_cache},
        rounds=1, iterations=1)
    save_table(table, "f3_process_allocation")

    # Allocation spread stays modest for most apps (well under the
    # 2x-class effects of the MPI x OMP and compiler axes).  The exception
    # the model exposes: a deliberately locality-breaking cyclic map can
    # cost the largest-halo app (ccs-qcd) up to ~40% at multi-node scale.
    spreads = sorted(spread(s.rows) for s in sweeps.values())
    median = spreads[len(spreads) // 2]
    assert median < 0.2
    for app, sweep in sweeps.items():
        assert spread(sweep.rows) < 0.5, app
    # the topology-aware default (block) is never the bad map
    for app, sweep in sweeps.items():
        block = sweep.by(allocation=sweep.rows[0].config.allocation)[0]
        assert block.elapsed <= min(r.elapsed for r in sweep.rows) * 1.05, app
