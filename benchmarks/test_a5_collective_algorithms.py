"""A5 — collective-algorithm crossovers on the Tofu-D model.

The MPI layer selects between latency-optimal (binomial / recursive
doubling) and bandwidth-optimal (van de Geijn / Rabenseifner) collective
algorithms by message size.  This artifact tables the allreduce times
across sizes and rank counts and checks the crossover exists — the
behaviour every production MPI exhibits and the miniapps' collective
costs depend on.
"""

from repro.core.ablations import a5_collective_algorithms


def test_a5_collective_algorithms(benchmark, save_table):
    table, data = benchmark.pedantic(a5_collective_algorithms,
                                     rounds=1, iterations=1)
    save_table(table, "a5_collective_algorithms")

    # latency regime: time grows with rank count, not with small payloads
    assert data[(8, 64)] > data[(8, 4)]
    assert data[(1 << 10, 64)] < 2 * data[(8, 64)]
    # bandwidth regime: the selected algorithm beats forced recursive
    # doubling by a clear margin at 16 MiB
    speedups = [float(s.replace(",", "")) for s in table.column("speedup")]
    assert speedups[-1] > 2.0
    # and selection never loses
    assert all(s >= 0.999 for s in speedups)
