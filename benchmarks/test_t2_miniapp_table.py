"""T2 — the Fiber miniapp suite and its data sets."""

from repro.core import figures


def test_t2_miniapp_table(benchmark, save_table):
    table = benchmark.pedantic(figures.t2_miniapp_table,
                               rounds=1, iterations=1)
    save_table(table, "t2_miniapp_table")
    assert len(table.rows) == 8
    characters = set(table.column("character"))
    # the suite spans the performance spectrum by design
    assert {"memory", "compute", "integer"} <= characters
