"""Shared fixtures for the benchmark harness.

Each ``test_*`` file regenerates one paper table/figure (see the experiment
index in DESIGN.md).  The regenerated artifact is

* printed (visible with ``pytest benchmarks/ --benchmark-only -s``),
* written to ``benchmarks/results/<id>.txt`` and ``<id>.csv`` so
  EXPERIMENTS.md can reference stable outputs.

Simulations are deterministic, so a single benchmark round measures the
harness cost honestly without statistical noise from the model itself.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def run_cache(tmp_path_factory):
    """Shared persistent result cache for the whole benchmark session.

    A :class:`repro.core.cache.ResultCache` in a session-temporary
    directory: every benchmark file shares one store, so overlapping
    sweep points (the 4x12 baselines that F1/F2/F4/A1 all touch) are
    simulated exactly once per session.  The directory is session-scoped
    rather than global so CI runs never read stale results.
    """
    from repro.core.cache import ResultCache

    return ResultCache(tmp_path_factory.mktemp("run-cache"))


@pytest.fixture()
def save_table():
    """Writer: persists a Table under benchmarks/results and prints it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(table, artifact_id: str) -> None:
        text = table.render()
        (RESULTS_DIR / f"{artifact_id}.txt").write_text(text)
        (RESULTS_DIR / f"{artifact_id}.csv").write_text(table.to_csv())
        print()
        print(text)

    return _save
