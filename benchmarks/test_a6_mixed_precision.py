"""A6 — mixed-precision (fp32 inner + fp64 refinement) lattice solving.

Couples the executable solvers' iteration counts to the kernel model's
fp32/fp64 timing — the standard lattice-QCD production strategy whose
~2x kernel gain the A64FX's double-width fp32 SIMD delivers.
"""

from repro.core.ablations import a6_mixed_precision


def test_a6_mixed_precision(benchmark, save_table):
    table, data = benchmark.pedantic(a6_mixed_precision,
                                     rounds=1, iterations=1)
    save_table(table, "a6_mixed_precision")

    # the memory-bound Dirac kernel gains ~2x from halved bytes
    assert 1.7 < data["kernel_ratio"] < 2.2
    # refinement converges with a couple of fp64 sweeps
    assert data["outer"] <= 5
    # the mixed solver needs roughly as many inner iterations as fp64
    assert data["inner"] <= 2.0 * data["it64"]
    # net end-to-end projection: a clear win, below the kernel ratio
    assert 1.3 < data["speedup"] <= data["kernel_ratio"] + 0.01
