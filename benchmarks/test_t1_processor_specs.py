"""T1 — evaluated processor specifications."""

from repro.core import figures


def test_t1_processor_specs(benchmark, save_table):
    table = benchmark.pedantic(figures.t1_processor_specs,
                               rounds=1, iterations=1)
    save_table(table, "t1_processor_specs")
    # the A64FX row must lead the comparison with the bandwidth advantage
    assert table.column("processor")[0] == "A64FX"
    assert "1024" in table.column("mem BW")[0]
