"""F1 — performance vs MPI processes x OpenMP threads (single A64FX node).

The paper's central sweep: every factorization of the 48 cores, every
miniapp, on the as-is data sets.  T3 (the best configuration per app) is
derived from the same data and checked here too.
"""

import pytest

from repro.core import figures


@pytest.fixture(scope="module")
def f1_data(run_cache):
    return figures.f1_mpi_omp_sweep(cache=run_cache)


def test_f1_mpi_omp_sweep(benchmark, save_table, run_cache):
    table, sweeps = benchmark.pedantic(
        figures.f1_mpi_omp_sweep, kwargs={"cache": run_cache},
        rounds=1, iterations=1)
    save_table(table, "f1_mpi_omp_sweep")

    assert len(table.rows) == 8
    # Expected shape: flat MPI (48x1) never wins for the
    # communication-sensitive QCD (comm overlap narrows but does not
    # erase the gap), and the best configuration differs across apps.
    qcd = sweeps["ccs-qcd"]
    t_48x1 = qcd.by(n_ranks=48)[0].elapsed
    t_best = qcd.fastest().elapsed
    assert t_48x1 > 1.05 * t_best
    winners = {
        (s.fastest().config.n_ranks, s.fastest().config.n_threads)
        for s in sweeps.values()
    }
    assert len(winners) >= 2


def test_t3_best_config(benchmark, save_table, run_cache):
    _, sweeps = figures.f1_mpi_omp_sweep(cache=run_cache)
    table = benchmark.pedantic(figures.t3_best_config, args=(sweeps,),
                               rounds=1, iterations=1)
    save_table(table, "t3_best_config")
    # the abstract: the best configuration differs across miniapps
    assert len(set(table.column("best config"))) >= 2
