#!/usr/bin/env python
"""CI smoke test for the sweep service.

Starts a :class:`repro.service.SweepService` on a scratch unix socket,
submits the same F1 sweep from two concurrent clients, and asserts the
acceptance bar for the job-server subsystem:

* every client's rows are bit-identical to a direct ``run_sweep`` of
  the same configs (same floats, not approximately equal),
* the server simulated each unique config digest at most once — the
  second client's rows all came from fleet-wide dedup or the shared
  cache, so the dedup metric is strictly positive,
* a graceful drain leaves every job completed and the rows durable in
  the shared cache.

Exits non-zero (with a diagnostic on stderr) on any violation.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py [--app ffvc]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

N_CLIENTS = 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="ffvc")
    args = parser.parse_args(argv)

    os.environ.setdefault("REPRO_TELEMETRY", "off")

    from repro.core.cache import ResultCache
    from repro.core.experiment import MPI_OMP_CONFIGS, ExperimentConfig
    from repro.core.runner import run_sweep
    from repro.service import ServiceClient, SweepService, serve_in_thread

    configs = [
        ExperimentConfig(app=args.app, n_ranks=nr, n_threads=nt)
        for nr, nt in MPI_OMP_CONFIGS
    ]

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        direct = run_sweep("f1-smoke", configs,
                           ResultCache(Path(tmp) / "direct"))
        if direct.errors:
            failures.append(f"direct run_sweep failed: {direct.errors}")

        shared = ResultCache(Path(tmp) / "shared")
        socket_path = Path(tmp) / "smoke.sock"
        svc = SweepService(socket_path, cache=shared, workers=2,
                           max_jobs=N_CLIENTS)
        thread = serve_in_thread(svc)
        results: dict[int, object] = {}
        errors: list[BaseException] = []

        def one_client(tag: int) -> None:
            try:
                with ServiceClient(socket_path, timeout_s=600) as c:
                    results[tag] = c.run_sweep("f1-smoke", configs,
                                               engine="event")
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        try:
            clients = [threading.Thread(target=one_client, args=(i,))
                       for i in range(N_CLIENTS)]
            for t in clients:
                t.start()
            for t in clients:
                t.join(600)
            stats = svc.stats()
        finally:
            thread.stop()

        for exc in errors:
            failures.append(f"client raised: {exc!r}")
        if len(results) != N_CLIENTS:
            failures.append(
                f"expected {N_CLIENTS} client results, got {len(results)}")
        for tag, result in sorted(results.items()):
            if result.rows != direct.rows:
                failures.append(
                    f"client {tag}: rows differ from direct run_sweep")
            elif [r.elapsed for r in result.rows] \
                    != [r.elapsed for r in direct.rows]:
                failures.append(
                    f"client {tag}: row floats are not bit-identical")

        dedup = stats["dedup_hits"] + stats["cache_hits"]
        if stats["executed"] > len(configs):
            failures.append(
                f"{stats['executed']} simulations for {len(configs)} "
                "unique configs: fleet-wide dedup broke")
        if dedup <= 0:
            failures.append(
                "dedup metric is zero: the second client re-simulated")
        if stats["jobs_by_state"].get("completed") != N_CLIENTS:
            failures.append(
                f"jobs_by_state after drain: {stats['jobs_by_state']}")
        durable = ResultCache(shared.directory)
        missing = [c.label() for c in configs if durable.get(c) is None]
        if missing:
            failures.append(f"rows missing from shared cache: {missing}")

        print(json.dumps({
            "benchmark": "service-smoke",
            "app": args.app,
            "configs": len(configs),
            "clients": N_CLIENTS,
            "executed": stats["executed"],
            "dedup_hits": dedup,
            "jobs_by_state": stats["jobs_by_state"],
            "ok": not failures,
        }, indent=2))

    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
