"""F4 — compiler tuning on the "as-is" small data sets.

Paper finding: "For some applications of 'as-is' with small data set,
A64FX shows poor performance, but it can be improved by enhancing the SIMD
vectorization and changing instruction scheduling during the compilation."
"""

from repro.core import figures
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_config


def test_f4_compiler_tuning(benchmark, save_table, run_cache):
    table, sweeps = benchmark.pedantic(
        figures.f4_compiler_tuning, kwargs={"cache": run_cache},
        rounds=1, iterations=1)
    save_table(table, "f4_compiler_tuning")

    gains = [float(g) for g in table.column("gain x")]
    # the integer/low-ILP apps gain ~2-3x from SIMD + scheduling
    assert max(gains) > 2.0
    # every app at least does not regress
    assert min(gains) >= 0.999

    # scheduling specifically (not just SIMD) matters: +simd+sched beats
    # +simd for the low-ILP apps
    for app in ("ngsa", "mvmc"):
        sweep = sweeps[app]
        t_simd = sweep.rows[1].elapsed
        t_sched = sweep.rows[2].elapsed
        assert t_sched < t_simd * 1.0001, app


def test_f4_tuned_a64fx_closes_gap_to_xeon(run_cache, benchmark):
    """The point of the tuning: as-is the A64FX clearly loses to Xeon on
    NGSA; tuned, the gap shrinks substantially."""
    def measure():
        out = {}
        for preset in ("as-is", "+simd+sched"):
            a = run_config(ExperimentConfig(
                app="ngsa", n_ranks=4, n_threads=12,
                options_preset=preset), run_cache)
            x = run_config(ExperimentConfig(
                app="ngsa", processor="Xeon-Skylake", n_ranks=4,
                n_threads=10, options_preset=preset), run_cache)
            out[preset] = a.elapsed / x.elapsed   # >1 = A64FX slower
        return out

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert ratios["as-is"] > 1.3                 # poor as-is
    assert ratios["+simd+sched"] < ratios["as-is"] * 0.8
