#!/usr/bin/env python
"""Time a representative sweep three ways and record the trajectory.

Runs the F1 MPI x OpenMP grid for one app

* serially with a cold persistent cache,
* serially again against the now-warm cache,
* in parallel (fresh cache) with a process pool — skipped (reported as
  ``null``) on single-CPU machines, where a pool can only add overhead,

plus a profiling-overhead leg: the same job simulated with the PMU sink
off (the default) and on, so ``BENCH_sweep.json`` records what turning
:mod:`repro.perf` on costs — and that leaving it off costs nothing.

Writes ``BENCH_sweep.json`` at the repo root.  CI uploads the file as an
artifact, so every PR leaves a comparable perf datapoint.

Usage::

    PYTHONPATH=src python benchmarks/bench_timing.py [--app ffvc] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OUTPUT = REPO_ROOT / "BENCH_sweep.json"

#: Repetitions of the profiling-overhead job (keeps timer noise down
#: while staying a small fraction of the sweep legs).
_PROFILE_REPS = 3


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _profiling_overhead(app_name: str) -> tuple[float, float]:
    """(seconds with PMU off, seconds with PMU on) for one 4x12 job."""
    from repro.machine import catalog
    from repro.miniapps import by_name
    from repro.perf import profile_job
    from repro.runtime.executor import run_job
    from repro.runtime.placement import JobPlacement

    cluster = catalog.a64fx()
    app = by_name(app_name)
    placement = JobPlacement(cluster, 4, 12)
    job = app.build_job(cluster, placement, "as-is")

    run_job(job)  # warm compile/import paths outside the timed region
    t_off, _ = _timed(lambda: [run_job(job) for _ in range(_PROFILE_REPS)])
    t_on, _ = _timed(lambda: [profile_job(job) for _ in range(_PROFILE_REPS)])
    return t_off / _PROFILE_REPS, t_on / _PROFILE_REPS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="ffvc")
    parser.add_argument("--jobs", type=int, default=None,
                        help="workers for the parallel leg "
                             "(default: os.cpu_count())")
    parser.add_argument("-o", "--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    import repro
    from repro.core.cache import ResultCache
    from repro.core.experiment import MPI_OMP_CONFIGS, ExperimentConfig
    from repro.core.runner import run_sweep

    cpu_count = os.cpu_count() or 1
    workers = args.jobs if args.jobs is not None else cpu_count
    configs = [
        ExperimentConfig(app=args.app, n_ranks=nr, n_threads=nt)
        for nr, nt in MPI_OMP_CONFIGS
    ]

    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        cold_dir = Path(tmp) / "cold"
        t_cold, sweep_cold = _timed(
            lambda: run_sweep("f1", configs, ResultCache(cold_dir)))
        # a fresh ResultCache instance forces the disk round-trip
        t_warm, sweep_warm = _timed(
            lambda: run_sweep("f1", configs, ResultCache(cold_dir)))
        # a pool on a single CPU only measures pickling overhead, not
        # parallelism: report null rather than a meaningless ratio
        t_par = None
        if workers > 1:
            par_dir = Path(tmp) / "par"
            t_par, sweep_par = _timed(
                lambda: run_sweep("f1", configs, ResultCache(par_dir),
                                  workers=workers))

    rows = [(r.config.label(), r.elapsed) for r in sweep_cold.rows]
    assert rows == [(r.config.label(), r.elapsed) for r in sweep_warm.rows]
    if t_par is not None:
        assert rows == [(r.config.label(), r.elapsed) for r in sweep_par.rows]

    prof_off, prof_on = _profiling_overhead(args.app)

    payload = {
        "benchmark": "f1-sweep-timing",
        "app": args.app,
        "configs": len(configs),
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "workers": workers,
        "serial_cold_s": round(t_cold, 4),
        "serial_warm_cache_s": round(t_warm, 4),
        "parallel_s": None if t_par is None else round(t_par, 4),
        "warm_speedup_x": round(t_cold / max(t_warm, 1e-9), 1),
        "parallel_speedup_x":
            None if t_par is None else round(t_cold / max(t_par, 1e-9), 2),
        "profiling_off_s": round(prof_off, 4),
        "profiling_on_s": round(prof_on, 4),
        "profiling_overhead_x": round(prof_on / max(prof_off, 1e-9), 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    if payload["warm_speedup_x"] < 5:
        print("WARNING: warm-cache speedup below the 5x target",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
