#!/usr/bin/env python
"""Time a representative sweep three ways and record the trajectory.

Runs the F1 MPI x OpenMP grid for one app

* serially with a cold persistent cache,
* serially again against the now-warm cache,
* in parallel (fresh cache) with a process pool — on single-CPU
  machines the pool still runs (with two workers) so ``parallel_s`` is
  never ``null``; a ``parallel_note`` field flags that the figure
  measures pool overhead rather than speedup there,
* with the analytic engine, cold and warm (``--engine analytic``) —
  the batched closed-form scorer is expected to beat the cold event
  sweep by >= 100x, and the ratio is recorded as
  ``analytic_speedup_x``,

plus a profiling-overhead leg: the same job simulated with the PMU sink
off (the default) and on, so ``BENCH_sweep.json`` records what turning
:mod:`repro.perf` on costs — and that leaving it off costs nothing,

plus a telemetry-overhead leg: the same cold event sweep with run
recording off (``REPRO_TELEMETRY=off``) and on (the default, writing a
run directory into a scratch results root), asserting the manifest /
metrics / span machinery stays under 3% of sweep wall time
(``telemetry_overhead_pct``).  All other legs run with telemetry off so
their figures stay comparable with pre-telemetry datapoints,

plus a service-dedup leg: the same sweep submitted by N concurrent
clients to one in-thread :class:`repro.service.SweepService` (shared
cold cache, fleet-wide dedup) against the fleet-without-a-service
baseline of N serial ``run_sweep`` calls each with its own cold cache.
The server simulates each unique config once and fans the rows out, so
the ratio is recorded as ``service_dedup_speedup_x``,

plus a service-overload leg: a server capped at ``--max-queued``
admissions takes twice that many concurrent submissions, recording the
typed-rejection rate (``service_reject_rate``) and the p95 queue wait
of the jobs that were admitted (``service_overload_p95_wait_s``) —
the two numbers an operator tunes ``--max-queued`` against.

Writes ``BENCH_sweep.json`` at the repo root.  CI uploads the file as an
artifact, so every PR leaves a comparable perf datapoint.

Usage::

    PYTHONPATH=src python benchmarks/bench_timing.py [--app ffvc] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

OUTPUT = REPO_ROOT / "BENCH_sweep.json"

#: Repetitions of the profiling-overhead job (keeps timer noise down
#: while staying a small fraction of the sweep legs).
_PROFILE_REPS = 3

#: Interleaved (off, on) repetitions of the telemetry-overhead sweep;
#: the per-mode minimum filters scheduler noise out of a <3% signal.
_TELEMETRY_REPS = 2

#: Concurrent clients in the service-dedup leg — the "fleet" whose
#: duplicate submissions the server coalesces into one simulation each.
_SERVICE_CLIENTS = 3

#: Admission cap for the overload leg; the leg applies 2x this much
#: concurrent submission pressure to exercise backpressure.
_OVERLOAD_QUEUE = 4


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _service_leg(configs, tmp: Path) -> tuple[float, float, dict]:
    """(N serial cold sweeps s, N concurrent clients via service s,
    server stats) for the fleet-dedup comparison."""
    import threading

    from repro.core.cache import ResultCache
    from repro.core.runner import run_sweep
    from repro.service import ServiceClient, SweepService, serve_in_thread

    def serial():
        for i in range(_SERVICE_CLIENTS):
            run_sweep("f1-service", configs,
                      ResultCache(tmp / f"svc-serial-{i}"))

    t_serial, _ = _timed(serial)

    socket_path = tmp / "bench.sock"
    svc = SweepService(socket_path,
                       cache=ResultCache(tmp / "svc-shared"),
                       workers=2, max_jobs=_SERVICE_CLIENTS)
    thread = serve_in_thread(svc)
    try:
        def one_client():
            with ServiceClient(socket_path, timeout_s=600) as c:
                c.run_sweep("f1-service", configs, engine="event")

        def fleet():
            clients = [threading.Thread(target=one_client)
                       for _ in range(_SERVICE_CLIENTS)]
            for t in clients:
                t.start()
            for t in clients:
                t.join()

        t_fleet, _ = _timed(fleet)
        stats = svc.stats()
    finally:
        thread.stop()
    return t_serial, t_fleet, stats


def _overload_leg(configs, tmp: Path) -> tuple[float, float, int]:
    """(p95 queue wait s of admitted jobs, reject rate, rejections)
    with 2x ``--max-queued`` concurrent submission pressure.

    The server caps admission at ``_OVERLOAD_QUEUE``; twice that many
    clients submit at once, so the tail submissions meet a full queue
    and take the typed ``overloaded`` rejection.  The p95 wait of the
    jobs that *were* admitted is the latency cost of riding out
    saturation instead of being rejected.
    """
    import threading

    from repro.core.cache import ResultCache
    from repro.errors import ServiceOverloaded
    from repro.service import ServiceClient, SweepService, serve_in_thread

    socket_path = tmp / "overload.sock"
    svc = SweepService(socket_path,
                       cache=ResultCache(tmp / "overload-cache"),
                       workers=2, max_jobs=2, max_queued=_OVERLOAD_QUEUE)
    thread = serve_in_thread(svc)
    accepted: list[str] = []
    rejected = 0
    lock = threading.Lock()
    try:
        def one_submitter(i: int) -> None:
            nonlocal rejected
            with ServiceClient(socket_path, timeout_s=600,
                               client_name=f"bench-{i}") as c:
                try:
                    job = c.submit(f"overload-{i}", configs)
                except ServiceOverloaded:
                    with lock:
                        rejected += 1
                else:
                    with lock:
                        accepted.append(job["job_id"])

        pressure = [threading.Thread(target=one_submitter, args=(i,))
                    for i in range(2 * _OVERLOAD_QUEUE)]
        for t in pressure:
            t.start()
        for t in pressure:
            t.join()
        with ServiceClient(socket_path, timeout_s=600) as c:
            waits = sorted(
                (final["started_at"] or final["submitted_at"])
                - final["submitted_at"]
                for job_id in accepted
                for final in [c.wait(job_id)])
    finally:
        thread.stop()
    p95 = waits[min(len(waits) - 1, int(0.95 * len(waits)))] \
        if waits else 0.0
    return p95, rejected / (2 * _OVERLOAD_QUEUE), rejected


def _profiling_overhead(app_name: str) -> tuple[float, float]:
    """(seconds with PMU off, seconds with PMU on) for one 4x12 job."""
    from repro.machine import catalog
    from repro.miniapps import by_name
    from repro.perf import profile_job
    from repro.runtime.executor import run_job
    from repro.runtime.placement import JobPlacement

    cluster = catalog.a64fx()
    app = by_name(app_name)
    placement = JobPlacement(cluster, 4, 12)
    job = app.build_job(cluster, placement, "as-is")

    run_job(job)  # warm compile/import paths outside the timed region
    t_off, _ = _timed(lambda: [run_job(job) for _ in range(_PROFILE_REPS)])
    t_on, _ = _timed(lambda: [profile_job(job) for _ in range(_PROFILE_REPS)])
    return t_off / _PROFILE_REPS, t_on / _PROFILE_REPS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="ffvc")
    parser.add_argument("--jobs", type=int, default=None,
                        help="workers for the parallel leg "
                             "(default: os.cpu_count())")
    parser.add_argument("-o", "--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    # Baseline legs run unrecorded so their figures stay comparable
    # with pre-telemetry datapoints; the telemetry leg flips this.
    os.environ["REPRO_TELEMETRY"] = "off"

    import repro
    from repro.core.cache import ResultCache
    from repro.core.experiment import MPI_OMP_CONFIGS, ExperimentConfig
    from repro.core.runner import run_sweep

    cpu_count = os.cpu_count() or 1
    # Always exercise the pool: on a single-CPU box two workers measure
    # pool overhead, not speedup, but a recorded number beats a null.
    workers = args.jobs if args.jobs is not None else max(2, cpu_count)
    configs = [
        ExperimentConfig(app=args.app, n_ranks=nr, n_threads=nt)
        for nr, nt in MPI_OMP_CONFIGS
    ]

    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        cold_dir = Path(tmp) / "cold"
        t_cold, sweep_cold = _timed(
            lambda: run_sweep("f1", configs, ResultCache(cold_dir)))
        # a fresh ResultCache instance forces the disk round-trip
        t_warm, sweep_warm = _timed(
            lambda: run_sweep("f1", configs, ResultCache(cold_dir)))
        par_dir = Path(tmp) / "par"
        t_par, sweep_par = _timed(
            lambda: run_sweep("f1", configs, ResultCache(par_dir),
                              workers=workers))
        # analytic engine: cold batch scoring, then warm cache reads
        # (tagged keys, so it shares a store with event rows safely)
        ana_dir = Path(tmp) / "analytic"
        t_ana_cold, sweep_ana = _timed(
            lambda: run_sweep("f1", configs, ResultCache(ana_dir),
                              engine="analytic"))
        t_ana_warm, sweep_ana_warm = _timed(
            lambda: run_sweep("f1", configs, ResultCache(ana_dir),
                              engine="analytic"))
        # telemetry overhead: cold event sweeps with recording off vs on
        # (run directories land in a scratch results root).  The legs
        # are interleaved and the per-mode minimum taken, because on a
        # busy single-CPU runner back-to-back ~3 s sweeps drift by more
        # than the budget being measured.
        tel = {"off": [], "on": []}
        os.environ["REPRO_RESULTS_DIR"] = str(Path(tmp) / "tel-results")
        try:
            for rep in range(_TELEMETRY_REPS):
                for mode in ("off", "on"):
                    os.environ["REPRO_TELEMETRY"] = mode
                    t, _ = _timed(lambda: run_sweep(
                        "f1", configs,
                        ResultCache(Path(tmp) / f"tel-{mode}-{rep}")))
                    tel[mode].append(t)
        finally:
            os.environ["REPRO_TELEMETRY"] = "off"
            os.environ.pop("REPRO_RESULTS_DIR", None)
        t_tel_off, t_tel_on = min(tel["off"]), min(tel["on"])
        # service: N clients, one shared server, fleet-wide dedup
        t_svc_serial, t_svc_fleet, svc_stats = _service_leg(
            configs, Path(tmp))
        # service under 2x --max-queued pressure: admission control
        p95_wait, reject_rate, n_rejected = _overload_leg(
            configs, Path(tmp))

    rows = [(r.config.label(), r.elapsed) for r in sweep_cold.rows]
    assert rows == [(r.config.label(), r.elapsed) for r in sweep_warm.rows]
    assert rows == [(r.config.label(), r.elapsed) for r in sweep_par.rows]
    assert ([(r.config.label(), r.elapsed) for r in sweep_ana.rows]
            == [(r.config.label(), r.elapsed) for r in sweep_ana_warm.rows])
    assert all(r.engine == "analytic" for r in sweep_ana_warm.rows)

    prof_off, prof_on = _profiling_overhead(args.app)

    payload = {
        "benchmark": "f1-sweep-timing",
        "app": args.app,
        "configs": len(configs),
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "workers": workers,
        "serial_cold_s": round(t_cold, 4),
        "serial_warm_cache_s": round(t_warm, 4),
        "parallel_s": round(t_par, 4),
        "parallel_note": ("single-CPU host: parallel leg measures pool "
                          "overhead, not speedup"
                          if cpu_count == 1 else None),
        "warm_speedup_x": round(t_cold / max(t_warm, 1e-9), 1),
        "parallel_speedup_x": round(t_cold / max(t_par, 1e-9), 2),
        "analytic_cold_s": round(t_ana_cold, 4),
        "analytic_warm_cache_s": round(t_ana_warm, 4),
        "analytic_speedup_x": round(t_cold / max(t_ana_cold, 1e-9), 1),
        "profiling_off_s": round(prof_off, 4),
        "profiling_on_s": round(prof_on, 4),
        "profiling_overhead_x": round(prof_on / max(prof_off, 1e-9), 2),
        "telemetry_off_s": round(t_tel_off, 4),
        "telemetry_on_s": round(t_tel_on, 4),
        "telemetry_overhead_pct": round(
            100.0 * (t_tel_on - t_tel_off) / max(t_tel_off, 1e-9), 2),
        "service_clients": _SERVICE_CLIENTS,
        "service_serial_s": round(t_svc_serial, 4),
        "service_concurrent_s": round(t_svc_fleet, 4),
        "service_dedup_speedup_x": round(
            t_svc_serial / max(t_svc_fleet, 1e-9), 2),
        "service_executed": svc_stats["executed"],
        "service_dedup_hits": svc_stats["dedup_hits"]
        + svc_stats["cache_hits"],
        "service_overload_queue": _OVERLOAD_QUEUE,
        "service_overload_clients": 2 * _OVERLOAD_QUEUE,
        "service_overload_p95_wait_s": round(p95_wait, 4),
        "service_overload_rejected": n_rejected,
        "service_reject_rate": round(reject_rate, 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    status = 0
    if payload["warm_speedup_x"] < 5:
        print("WARNING: warm-cache speedup below the 5x target",
              file=sys.stderr)
        status = 1
    if payload["analytic_speedup_x"] < 100:
        print("WARNING: analytic-engine cold speedup below the 100x target",
              file=sys.stderr)
        status = 1
    if payload["telemetry_overhead_pct"] >= 3:
        print("WARNING: run-telemetry overhead at or above the 3% budget",
              file=sys.stderr)
        status = 1
    if payload["service_executed"] != len(configs):
        print("WARNING: service leg simulated a config more than once "
              "(fleet-wide dedup broke)", file=sys.stderr)
        status = 1
    if payload["service_dedup_speedup_x"] < 1.5:
        print("WARNING: service dedup speedup below the 1.5x target",
              file=sys.stderr)
        status = 1
    if payload["service_reject_rate"] <= 0:
        print("WARNING: overload leg never engaged backpressure "
              "(no submission met a full queue)", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
