"""A1 — SVE vector-length ablation (VL 128/256/512 on the same core).

Companion-study finding: VL scaling helps compute-bound kernels, not
memory-bound ones.
"""

from repro.core import ablations


def test_a1_vector_length(benchmark, save_table, run_cache):
    table, data = benchmark.pedantic(
        ablations.a1_vector_length, kwargs={"cache": run_cache},
        rounds=1, iterations=1)
    save_table(table, "a1_vector_length")

    # compute-bound: near-linear VL scaling
    ntchem = data["ntchem"]
    assert ntchem[128] / ntchem[512] > 2.2
    # memory-bound: VL barely matters
    ffvc = data["ffvc"]
    assert ffvc[128] / ffvc[512] < 1.4
    # monotone for everyone (wider vectors never hurt in this model)
    for app, times in data.items():
        assert times[512] <= times[256] <= times[128] * 1.001, app
