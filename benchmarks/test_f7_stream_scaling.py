"""F7 — STREAM-triad bandwidth scaling within and across CMGs."""

import pytest

from repro.core import figures


def test_f7_stream_scaling_a64fx(benchmark, save_table):
    table, data = benchmark.pedantic(figures.f7_stream_scaling,
                                     rounds=1, iterations=1)
    save_table(table, "f7_stream_scaling_a64fx")

    compact, scatter = data["compact"], data["scatter"]
    # one CMG saturates near 200 GB/s with compact binding
    assert compact[12] == pytest.approx(200, rel=0.1)
    # scatter over 4 CMGs at 12 threads: ~3x the compact figure
    assert scatter[12] > 2.5 * compact[12]
    # the full chip lands near the STREAM figure (~790-840 GB/s)
    assert 700 < compact[48] < 900
    # single-core demand stream ~ 45-50 GB/s (HBM2 + prefetcher)
    assert 40 < compact[1] < 55


def test_f7_stream_scaling_xeon(benchmark, save_table):
    table, data = benchmark.pedantic(
        figures.f7_stream_scaling,
        kwargs={"processor": "Xeon-Skylake",
                "thread_counts": [1, 2, 4, 8, 10, 20, 40]},
        rounds=1, iterations=1)
    save_table(table, "f7_stream_scaling_xeon")
    # dual-socket DDR4: full node well under a quarter of the A64FX
    assert data["compact"][40] < 250
