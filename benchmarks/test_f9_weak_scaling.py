"""F9 — weak scaling over Tofu-D (problem grows with the node count)."""

from repro.core import figures


def test_f9_weak_scaling(benchmark, save_table):
    table, data = benchmark.pedantic(figures.f9_weak_scaling,
                                     rounds=1, iterations=1)
    save_table(table, "f9_weak_scaling")

    for app, times in data.items():
        # near-flat rows: per-node work is constant, only halo/collective
        # costs grow — within 25% of ideal at 8 nodes
        assert times[-1] < 1.25 * times[0], app
        # and never *faster* than the single-node point by much
        assert times[-1] > 0.9 * times[0], app
