"""F10 — per-miniapp time-breakdown attribution (4x12, as-is)."""

from repro.core import figures


def test_f10_time_breakdown(benchmark, save_table):
    table, data = benchmark.pedantic(figures.f10_time_breakdown,
                                     rounds=1, iterations=1)
    save_table(table, "f10_time_breakdown")

    # the documented dominant kernel carries the plurality of each app
    assert data["ffvc"]["ffvc-sor"] > 25.0
    assert data["ntchem"]["ntchem-gemm"] > 60.0
    assert data["ccs-qcd"]["qcd-dirac"] > 30.0
    assert data["ngsa"]["ngsa-align"] > 40.0
    # MD: near-field pair forces dominate the FMM far field
    assert data["modylas"]["modylas-pair"] > data["modylas"]["modylas-m2l"]
    # the embarrassingly parallel sampler spends almost nothing on p2p
    assert data["mvmc"]["p2p"] < 5.0
    # NGSA is the only app with a visible I/O share
    assert data["ngsa"]["io"] > 2.0
    assert data["ffvc"]["io"] == 0.0
