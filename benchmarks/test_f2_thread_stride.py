"""F2 — OpenMP thread-stride comparison.

Paper finding: "shorter OpenMP thread strides perform better in most mini
applications."
"""

from repro.core import figures


def test_f2_thread_stride(benchmark, save_table, run_cache):
    table, sweeps = benchmark.pedantic(
        figures.f2_thread_stride, kwargs={"cache": run_cache},
        rounds=1, iterations=1)
    save_table(table, "f2_thread_stride")

    wins = table.column("stride-1 wins?")
    # "most" = a clear majority of the eight miniapps
    assert wins.count("yes") >= 6

    # and for the memory-bound apps the stride penalty is substantial
    ffvc = sweeps["ffvc"]
    stride1 = ffvc.rows[0].elapsed
    stride12 = ffvc.rows[-1].elapsed
    assert stride12 > 1.2 * stride1
