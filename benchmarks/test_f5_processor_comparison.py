"""F5 — node-vs-node comparison across processors.

Paper finding: "The performance of the A64FX is better or comparable with
other processors for other applications and data sets" (with NGSA-class
integer work the exception).
"""

from repro.core import figures


def test_f5_processor_comparison_as_is(benchmark, save_table, run_cache):
    table = benchmark.pedantic(
        figures.f5_processor_comparison, kwargs={"cache": run_cache},
        rounds=1, iterations=1)
    save_table(table, "f5_processor_comparison_as_is")

    apps = table.column("miniapp")
    xeon = [float(v) for v in table.column("Xeon-Skylake")]
    rel = dict(zip(apps, xeon))

    # memory-bound apps: A64FX clearly wins (Xeon at < 0.8x)
    for app in ("ffvc", "nicam-dc", "ffb"):
        assert rel[app] < 0.8, app
    # integer app: Xeon wins as-is (the paper's 'poor performance' case)
    assert rel["ngsa"] > 1.0
    # compute-bound: comparable (within ~35%)
    assert 0.65 < rel["ntchem"] < 1.35

    # the K-computer generation is an order of magnitude behind everywhere
    k = [float(v) for v in table.column("SPARC64-VIIIfx")]
    assert max(k) < 0.35


def test_f5_large_datasets(benchmark, save_table, run_cache):
    table = benchmark.pedantic(
        figures.f5_processor_comparison,
        kwargs={"dataset": "large",
                "apps": ["ccs-qcd", "ffvc", "nicam-dc", "ntchem"],
                "processors": ["A64FX", "Xeon-Skylake", "ThunderX2"],
                "cache": run_cache},
        rounds=1, iterations=1)
    save_table(table, "f5_processor_comparison_large")
    xeon = [float(v) for v in table.column("Xeon-Skylake")]
    # on production-size data the A64FX is better or comparable everywhere
    assert all(v < 1.1 for v in xeon)
