"""A3 — micro-architecture sensitivity of the A64FX's pain points.

The paper's analysis attributes the as-is deficits to the small effective
out-of-order window (with the 9-cycle FP latency) and, for gather-heavy
apps, the 256-byte L2 lines.  This ablation turns each knob to its
Skylake-like value and measures which apps recover.
"""

from repro.core import ablations


def test_a3_microarchitecture(benchmark, save_table):
    table, data = benchmark.pedantic(ablations.a3_microarchitecture,
                                     rounds=1, iterations=1)
    save_table(table, "a3_microarchitecture")

    # the low-ILP / latency-exposed apps gain clearly from a big window
    assert data["mvmc"]["ooo-224"] > 1.2
    assert data["ffb"]["ooo-224"] > 1.5
    # the bandwidth-bound app is insensitive to all three knobs
    for knob, gain in data["ffvc"].items():
        assert gain < 1.15, knob
    # no knob hurts anyone
    for app, row in data.items():
        for knob, gain in row.items():
            assert gain > 0.95, (app, knob)
