#!/usr/bin/env python3
"""What-if study: design-space exploration with a custom processor model.

The machine model is fully parameterized, so the same evaluation framework
answers design questions the paper's analysis raises: what if the A64FX
had a larger out-of-order window?  What if the HBM2 were replaced with
DDR4?  What about a hypothetical 1024-bit-SVE variant?

This is the downstream use case for adopting the library: plug a processor
description in, run the Fiber suite over it.

Run:  python examples/custom_processor.py
"""

import dataclasses

from repro.machine import catalog
from repro.machine.memory import MemorySpec
from repro.miniapps import by_name
from repro.runtime import JobPlacement, run_job
from repro.units import GB_S, GIB, NS, fmt_time


def variant(name: str, **core_changes) -> "catalog.Cluster":
    """An A64FX with modified core parameters."""
    base = catalog.a64fx()
    chip = base.node.chips[0]
    dom = chip.domains[0]
    core = dataclasses.replace(dom.core, name=f"{name}-core", **core_changes)
    dom = dataclasses.replace(dom, name=name, core=core)
    chip = dataclasses.replace(chip, name=name, domains=(dom,) * 4)
    node = dataclasses.replace(base.node, name=f"{name}-node", chips=(chip,))
    return dataclasses.replace(base, name=name, node=node)


def memory_variant(name: str, memory: MemorySpec) -> "catalog.Cluster":
    """An A64FX with a different memory system per CMG."""
    base = catalog.a64fx()
    chip = base.node.chips[0]
    dom = dataclasses.replace(chip.domains[0], name=name, memory=memory)
    chip = dataclasses.replace(chip, name=name, domains=(dom,) * 4)
    node = dataclasses.replace(base.node, name=f"{name}-node", chips=(chip,))
    return dataclasses.replace(base, name=name, node=node)


def evaluate(cluster, apps=("ccs-qcd", "ffvc", "mvmc", "ntchem")) -> dict:
    out = {}
    for app_name in apps:
        app = by_name(app_name)
        placement = JobPlacement(cluster, 4, 12)
        res = run_job(app.build_job(cluster, placement, "as-is"))
        out[app_name] = res.elapsed
    return out


def main() -> None:
    machines = {
        "A64FX (baseline)": catalog.a64fx(),
        "A64FX + big OoO window (224)": variant("a64fx-bigooo",
                                                ooo_window=224),
        "A64FX + short FP latency (4 cyc)": variant("a64fx-fastfp",
                                                    fp_latency_cycles=4.0),
        "A64FX with DDR4 instead of HBM2": memory_variant(
            "a64fx-ddr4",
            MemorySpec(kind="DDR4-2666x2", capacity_bytes=32 * GIB,
                       peak_bandwidth=42.6 * GB_S, sustained_fraction=0.8,
                       single_stream_bandwidth=13 * GB_S, latency_s=90 * NS),
        ),
    }

    baseline = evaluate(machines["A64FX (baseline)"])
    apps = list(baseline)
    width = max(len(n) for n in machines) + 2
    print(f"{'machine':<{width}}" + "".join(f"{a:>12}" for a in apps))
    for name, cluster in machines.items():
        times = evaluate(cluster)
        cells = "".join(
            f"{baseline[a] / times[a]:>11.2f}x" for a in apps
        )
        print(f"{name:<{width}}{cells}")
    print("\n(values = speedup over the baseline A64FX; <1 = slower)")
    print("The OoO/latency variants lift the low-ILP apps (mvmc), while "
          "the DDR4 variant collapses the memory-bound apps — the paper's "
          "bandwidth advantage quantified.")

    # Show one raw number for scale
    res_time = evaluate(machines["A64FX (baseline)"], apps=("ffvc",))["ffvc"]
    print(f"\nbaseline ffvc as-is 4x12: {fmt_time(res_time)}")


if __name__ == "__main__":
    main()
