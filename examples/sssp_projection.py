#!/usr/bin/env python3
"""SSSP-style performance projection from microbenchmarks.

The companion methodology ("A Performance Projection of Mini-Applications
onto Benchmarks", Tsuji, Kramer & Sato): instead of porting and running a
full application on a candidate machine, measure four cheap
microbenchmarks (stream, dgemm, gather, scalar-int), fit per-app
non-negative weights on machines you *do* have, and project.

This example fits the weights over the model's machine pool (catalog
processors + A64FX design variants), projects every miniapp onto a
held-out ThunderX2, and prints the projection error and the per-app
benchmark attribution.

Run:  python examples/sssp_projection.py
"""

from repro.core import projection


def main() -> None:
    print("microbenchmark vectors (full node, seconds):")
    pool = projection.machine_pool()
    names = list(projection.MICROBENCHMARKS)
    print(f"  {'machine':<16}" + "".join(f"{b:>12}" for b in names))
    for mname, cluster in pool.items():
        times = projection.microbenchmark_times(cluster)
        print(f"  {mname:<16}"
              + "".join(f"{times[b] * 1e3:>10.2f}ms" for b in names))

    print("\nleave-one-out projection onto ThunderX2 (as-is datasets):")
    print(f"  {'miniapp':<10} {'predicted':>11} {'actual':>11} "
          f"{'error':>7}  attribution")
    for app in ("ffvc", "ccs-qcd", "ntchem", "ngsa", "mvmc"):
        predicted, actual, model = projection.leave_one_out(app, "ThunderX2")
        err = abs(predicted - actual) / actual
        contrib = model.contributions()
        attribution = ", ".join(
            f"{b}:{share:.0%}" for b, share in
            sorted(contrib.items(), key=lambda kv: -kv[1]) if share > 0.05
        )
        print(f"  {app:<10} {predicted * 1e3:>9.2f}ms {actual * 1e3:>9.2f}ms "
              f"{err:>6.1%}  {attribution}")

    print("\n-> the projection attributes each app to the resource that "
          "bounds it\n   (stream for the CFD codes, dgemm for RI-MP2, "
          "scalar-int for NGSA),\n   with errors in the tens of percent — "
          "the fidelity the SSSP paper reports.")


if __name__ == "__main__":
    main()
