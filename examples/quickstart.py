#!/usr/bin/env python3
"""Quickstart: simulate one Fiber miniapp on an A64FX node.

Builds the A64FX machine model, places 4 MPI ranks x 12 OpenMP threads
(one rank per CMG), runs the FFVC pressure-solver miniapp on its "as-is"
data set, and prints the performance report — then sweeps the MPI x OpenMP
grid to find the best configuration, exactly like the paper's F1 sweep.

Run:  python examples/quickstart.py
"""

from repro.machine import catalog
from repro.miniapps import by_name
from repro.runtime import JobPlacement, run_job
from repro.units import fmt_bw, fmt_rate, fmt_time


def main() -> None:
    cluster = catalog.a64fx()
    print(cluster.describe())

    app = by_name("ffvc")
    print(f"\nminiapp: {app.full_name} — {app.description}")

    # --- one configuration -------------------------------------------
    placement = JobPlacement(cluster, n_ranks=4, threads_per_rank=12)
    job = app.build_job(cluster, placement, dataset="as-is")
    result = run_job(job)

    print(f"\n4x12 (one rank per CMG):")
    print(f"  elapsed            {fmt_time(result.elapsed)}")
    print(f"  achieved           {fmt_rate(result.achieved_flops_per_s)}")
    print(f"  DRAM bandwidth     {fmt_bw(result.dram_bandwidth)}")
    print(f"  communication      {result.communication_fraction():.1%}")
    print(f"  messages           {result.messages_sent}")

    breakdown = result.breakdown()
    print("  mean per-rank time by phase:")
    for cat in ("compute", "serial", "p2p", "collective"):
        print(f"    {cat:<12} {fmt_time(breakdown.get(cat, 0.0))}")

    # --- the F1-style sweep -------------------------------------------
    print("\nMPI x OpenMP sweep (48 cores):")
    best = None
    for n_ranks, n_threads in [(1, 48), (2, 24), (4, 12), (8, 6),
                               (12, 4), (24, 2), (48, 1)]:
        placement = JobPlacement(cluster, n_ranks, n_threads)
        res = run_job(app.build_job(cluster, placement, dataset="as-is"))
        marker = ""
        if best is None or res.elapsed < best[1]:
            best = ((n_ranks, n_threads), res.elapsed)
        print(f"  {n_ranks:2d} x {n_threads:2d}   {fmt_time(res.elapsed)}")
    (bn, bt), bel = best
    print(f"\nbest configuration: {bn}x{bt} at {fmt_time(bel)}")


if __name__ == "__main__":
    main()
