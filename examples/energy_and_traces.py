#!/usr/bin/env python3
"""Energy accounting and execution traces.

Two analysis tools on top of a simulated run:

1. the A64FX power-control study (normal / eco / boost) for a
   memory-bound and a compute-bound miniapp — reproducing the Fugaku
   power-management findings (eco is free for bandwidth-bound codes);
2. the per-rank execution timeline of a run, both as an ASCII Gantt chart
   and as a Chrome-tracing JSON file you can open in Perfetto.

Run:  python examples/energy_and_traces.py
"""

import tempfile
from pathlib import Path

from repro.core.energy import mode_study
from repro.machine import catalog
from repro.miniapps import by_name
from repro.runtime import JobPlacement, run_job
from repro.runtime.timeline import (
    ascii_timeline,
    utilization_profile,
    write_chrome_trace,
)


def power_study() -> None:
    print("=== A64FX power-control modes ===")
    for app in ("ffvc", "ntchem"):
        print(f"\n{app} (as-is, 4x12):")
        print(f"  {'mode':<8} {'time':>12} {'power':>9} {'energy':>11} "
              f"{'GF/W':>7}")
        for mode, rep in mode_study(app).items():
            print(f"  {mode:<8} {rep.elapsed_s * 1e3:>9.2f} ms "
                  f"{rep.average_watts:>7.1f} W {rep.energy_joules:>9.3f} J "
                  f"{rep.gflops_per_watt:>7.2f}")
    print("\n-> eco mode: free for the bandwidth-bound app, ruinous for "
          "the DGEMM-bound one.\n")


def traces() -> None:
    print("=== execution timeline (ccs-qcd, 8x6) ===")
    cluster = catalog.a64fx()
    placement = JobPlacement(cluster, 8, 6)
    result = run_job(by_name("ccs-qcd").build_job(cluster, placement,
                                                  "as-is"))
    print(ascii_timeline(result, width=72, max_ranks=8))

    profile = utilization_profile(result, buckets=24)
    bars = "".join("▁▂▃▄▅▆▇█"[min(7, int(u * 8))] for u in profile)
    print(f"\ncompute utilization over time: |{bars}|")

    out = Path(tempfile.gettempdir()) / "ccs_qcd_trace.json"
    write_chrome_trace(result, str(out))
    print(f"Chrome/Perfetto trace written to {out}")


if __name__ == "__main__":
    power_study()
    traces()
