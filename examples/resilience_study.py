#!/usr/bin/env python3
"""Straggler / failure-injection study.

Large BSP jobs move at the pace of their slowest node: one thermally
throttled or OS-jittered node drags every allreduce.  The executor's
``node_slowdown`` injection quantifies this on the machine model and shows
how the dynamic-schedule/imbalance machinery responds.

Run:  python examples/resilience_study.py
"""

from repro.compile import PRESETS
from repro.machine import catalog
from repro.miniapps import by_name
from repro.runtime import Job, JobPlacement, run_job
from repro.runtime.affinity import ProcessAllocation
from repro.units import fmt_time


def run_with_straggler(app_name: str, slow_node: int | None,
                       factor: float = 1.5):
    cluster = catalog.a64fx(n_nodes=4)
    app = by_name(app_name)
    placement = JobPlacement(cluster, 16, 12,
                             allocation=ProcessAllocation("block"))
    job = app.build_job(cluster, placement, dataset="large")
    if slow_node is not None:
        job = Job(
            cluster=job.cluster, placement=job.placement,
            kernels=job.kernels, program=job.program, options=job.options,
            data_policy=job.data_policy, communicators=job.communicators,
            name=job.name, node_slowdown={slow_node: factor},
        )
    return run_job(job)


def main() -> None:
    print("One 1.5x-slowed node in a 4-node, 16x12 run (large datasets):\n")
    print(f"  {'miniapp':<10} {'clean':>12} {'with straggler':>15} "
          f"{'slowdown':>9} {'extra wait':>11}")
    for app in ("ccs-qcd", "ffvc", "ntchem"):
        clean = run_with_straggler(app, None)
        hurt = run_with_straggler(app, 2)
        extra_wait = (hurt.breakdown().get("collective", 0.0)
                      + hurt.breakdown().get("p2p", 0.0)
                      - clean.breakdown().get("collective", 0.0)
                      - clean.breakdown().get("p2p", 0.0))
        print(f"  {app:<10} {fmt_time(clean.elapsed):>12} "
              f"{fmt_time(hurt.elapsed):>15} "
              f"{hurt.elapsed / clean.elapsed:>8.2f}x "
              f"{fmt_time(max(0.0, extra_wait)):>11}")
    print(
        "\n-> apps whose critical path is one long compute region (the\n"
        "   RI-MP2 pair loop, statically partitioned) inherit the full\n"
        "   1.5x; apps that synchronize every sweep (ffvc) already carry\n"
        "   link-contention jitter slack at their allreduces, so part of\n"
        "   the straggler hides in waits the other ranks were paying\n"
        "   anyway.  The healthy ranks' extra time shows up as collective\n"
        "   wait — exactly how stragglers look in real MPI profiles."
    )


if __name__ == "__main__":
    main()
