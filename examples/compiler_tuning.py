#!/usr/bin/env python3
"""Compiler-tuning walk-through: recovering the A64FX's "as-is" deficit.

The paper's headline tuning result: on small "as-is" data sets, some
miniapps run poorly on the A64FX out of the box, and enabling SIMD
vectorization plus instruction scheduling (software pipelining) at compile
time recovers most of the gap.  This example walks the option progression
for the two affected apps and shows the A64FX-vs-Xeon ratio closing.

Run:  python examples/compiler_tuning.py
"""

from repro.compile.options import PRESETS
from repro.core.experiment import COMPILER_SWEEP, ExperimentConfig
from repro.core.runner import run_config
from repro.units import fmt_time


def tune(app: str) -> None:
    print(f"--- {app} (as-is data set, 4x12) ---")
    print(f"  {'options':<14} {'A64FX':>12} {'Xeon':>12} {'A64FX/Xeon':>11}")
    baseline = None
    for preset in COMPILER_SWEEP:
        a64 = run_config(ExperimentConfig(
            app=app, n_ranks=4, n_threads=12, options_preset=preset))
        xeon = run_config(ExperimentConfig(
            app=app, processor="Xeon-Skylake", n_ranks=4, n_threads=10,
            options_preset=preset))
        if baseline is None:
            baseline = a64.elapsed
        ratio = a64.elapsed / xeon.elapsed
        print(f"  {preset:<14} {fmt_time(a64.elapsed):>12} "
              f"{fmt_time(xeon.elapsed):>12} {ratio:>10.2f}x")
    final = run_config(ExperimentConfig(
        app=app, n_ranks=4, n_threads=12, options_preset="tuned"))
    print(f"  total A64FX gain from tuning: {baseline / final.elapsed:.2f}x\n")


def explain_mechanism() -> None:
    """Show the mechanism at the kernel level: pipeline fill."""
    from repro.machine import catalog
    core = catalog.a64fx().node.chips[0].domains[0].core
    skx = catalog.xeon_skylake().node.chips[0].domains[0].core
    print("Pipeline fill for a low-ILP loop (ilp = 3):")
    print(f"  {'':<24} {'A64FX':>8} {'Skylake':>8}")
    for label, boost in (("no scheduling", 1.0), ("software pipelining", 1.9)):
        print(f"  {label:<24} {core.pipeline_fill(3.0, boost):>8.2f} "
              f"{skx.pipeline_fill(3.0, boost):>8.2f}")
    print("  -> the A64FX's 9-cycle FP latency + small OoO window leave its")
    print("     pipes idle until the compiler pipelines the loop; Skylake's")
    print("     big window hides the latency in hardware.\n")


if __name__ == "__main__":
    explain_mechanism()
    for app in ("ngsa", "mvmc"):
        tune(app)
    print("option presets:",
          {k: v.label() for k, v in PRESETS.items()})
