#!/usr/bin/env python3
"""Thread-placement study: strides, NUMA first-touch, and CMG bandwidth.

Reproduces the mechanics behind the paper's placement findings on the
machine model:

1. STREAM-triad bandwidth vs thread count for compact vs scatter binding
   (the CMG saturation curve, F7);
2. the thread-stride sweep on a memory-bound miniapp under both data
   policies (first-touch vs serial-init), showing why shorter strides win
   (F2);
3. the process-allocation comparison across 4 nodes (F3).

Run:  python examples/placement_study.py
"""

from repro.core import figures
from repro.core.experiment import ExperimentConfig
from repro.core.runner import run_config
from repro.runtime.affinity import ThreadBinding
from repro.units import fmt_time


def stream_curves() -> None:
    table, _ = figures.f7_stream_scaling(
        thread_counts=[1, 2, 4, 8, 12, 24, 48])
    print(table.render())


def stride_sweep() -> None:
    print("Thread stride on FFVC (4 ranks x 12 threads, A64FX):")
    print(f"  {'stride':>8} {'first-touch':>14} {'serial-init':>14}")
    for stride in (1, 2, 4, 12):
        binding = (ThreadBinding("compact") if stride == 1
                   else ThreadBinding("stride", stride=stride))
        times = []
        for policy in ("first-touch", "serial-init"):
            row = run_config(ExperimentConfig(
                app="ffvc", n_ranks=4, n_threads=12,
                binding=binding, data_policy=policy))
            times.append(row.elapsed)
        print(f"  {stride:>8} {fmt_time(times[0]):>14} {fmt_time(times[1]):>14}")
    print("  -> compact binding keeps each rank's threads on its data's CMG\n")


def allocation_sweep() -> None:
    table, _ = figures.f3_process_allocation(
        apps=["ccs-qcd", "ffvc"], n_nodes=4)
    print(table.render())


if __name__ == "__main__":
    stream_curves()
    stride_sweep()
    allocation_sweep()
