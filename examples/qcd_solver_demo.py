#!/usr/bin/env python3
"""CCS-QCD end to end: the real solver and its simulated counterpart.

Part 1 actually solves a Wilson-fermion system with the executable physics
(NumPy BiCGStab on a small lattice) and verifies the solution.  Part 2
simulates the same algorithm's cost signature at benchmark scale on the
A64FX model, across the MPI x OpenMP grid.

Run:  python examples/qcd_solver_demo.py
"""

import time

import numpy as np

from repro.machine import catalog
from repro.miniapps import by_name
from repro.miniapps.ccs_qcd import physics as qcd
from repro.runtime import JobPlacement, run_job
from repro.units import fmt_rate, fmt_time


def solve_for_real() -> None:
    print("=== Part 1: executable Wilson-fermion BiCGStab (NumPy) ===")
    rng = np.random.default_rng(2021)
    shape = (8, 4, 4, 4)
    kappa = 0.13
    gauge = qcd.random_su3_field(shape, rng)
    b = qcd.random_spinor(shape, rng)

    t0 = time.perf_counter()
    x, iters, rel = qcd.bicgstab(gauge, b, kappa, tol=1e-10)
    wall = time.perf_counter() - t0

    sites = int(np.prod(shape))
    # 2 Dirac applications per BiCGStab iteration dominate the FLOPs
    flops = 2 * iters * sites * qcd.flops_per_site_dirac()
    true_res = np.linalg.norm(qcd.wilson_dirac(x, gauge, kappa) - b) \
        / np.linalg.norm(b)
    print(f"  lattice {shape}, kappa={kappa}")
    print(f"  converged in {iters} iterations, residual {rel:.2e} "
          f"(true: {true_res:.2e})")
    print(f"  wall time {fmt_time(wall)} "
          f"(~{fmt_rate(flops / wall)} in NumPy)")

    # gamma5-hermiticity — the benchmark's own operator check
    phi, psi = qcd.random_spinor(shape, rng), qcd.random_spinor(shape, rng)
    lhs = np.vdot(phi, qcd.wilson_dirac(psi, gauge, kappa))
    rhs = np.vdot(qcd.apply_gamma5(
        qcd.wilson_dirac(qcd.apply_gamma5(phi), gauge, kappa)), psi)
    print(f"  gamma5-hermiticity error: {abs(lhs - rhs):.2e}\n")


def simulate_at_scale() -> None:
    print("=== Part 2: the same solver at benchmark scale on the A64FX "
          "model ===")
    cluster = catalog.a64fx()
    app = by_name("ccs-qcd")
    for dataset in ("as-is", "large"):
        print(f"  dataset {dataset!r}: {app.dataset(dataset).description}")
        for n_ranks, n_threads in [(1, 48), (4, 12), (16, 3), (48, 1)]:
            placement = JobPlacement(cluster, n_ranks, n_threads)
            res = run_job(app.build_job(cluster, placement, dataset))
            print(f"    {n_ranks:2d}x{n_threads:<2d}  "
                  f"{fmt_time(res.elapsed):>12}  "
                  f"{fmt_rate(res.achieved_flops_per_s):>16}  "
                  f"comm {res.communication_fraction():5.1%}")
        print()


if __name__ == "__main__":
    solve_for_real()
    simulate_at_scale()
