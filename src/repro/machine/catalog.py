"""Concrete processor parameterizations evaluated in the paper.

Each factory returns a :class:`~repro.machine.topology.Cluster` of ``n_nodes``
identical nodes.  Parameter values come from vendor documentation and the
companion evaluation papers (Kodama et al., Odajima et al.):

* **A64FX** — 48 compute cores in 4 CMGs of 12; 512-bit SVE, 2 FMA pipes
  (peak 70.4 GFLOP/s/core at 2.2 GHz, 3.38 TFLOP/s/chip); 64 KiB L1D/core;
  8 MiB shared L2 per CMG; 8 GiB HBM2 per CMG at 256 GB/s (1024 GB/s/chip,
  STREAM ~0.82 of peak); long FP latency (9 cycles) and a small effective
  out-of-order window — the documented cause of its poor performance on
  unvectorized, low-ILP "as-is" code; weak scalar side; Tofu-D network.
* **Xeon Skylake-SP (Gold 6148 x2)** — 2 x 20 cores at 2.4 GHz, AVX-512
  (2 FMA pipes), big OoO window (224), strong scalar engine, 6-channel
  DDR4-2666 per socket (128 GB/s peak/socket), InfiniBand EDR.
* **ThunderX2 (CN9975 x2)** — 2 x 28 Arm v8.1 cores at 2.0 GHz, 128-bit
  NEON (2 FMA pipes), 8-channel DDR4 per socket (171 GB/s peak/socket).
* **SPARC64 VIIIfx (K computer)** — 8 cores at 2.0 GHz, 128-bit HPC-ACE
  (2 FMA), 64 GB/s memory; included for historical context.
"""

from __future__ import annotations

from repro.machine.cache import CacheSpec
from repro.machine.core import CoreSpec
from repro.machine.interconnect import infiniband_edr, tofu_d
from repro.machine.memory import MemorySpec
from repro.machine.numa import Chip, Node, NumaDomain
from repro.machine.topology import Cluster
from repro.units import GB_S, GHZ, GIB, KIB, MIB, NS, US


def a64fx(n_nodes: int = 1, boost: bool = False, eco: bool = False) -> Cluster:
    """Fujitsu A64FX node(s) (FX1000-class, 2.2 GHz).

    The paper runs in normal mode.  ``boost`` raises the clock by ~10%
    without changing memory bandwidth; ``eco`` disables one of the two FLA
    (FMA) pipelines — the power-control modes studied in the companion
    Fugaku papers (see :mod:`repro.machine.power`).
    """
    if boost and eco:
        from repro.errors import ConfigurationError

        raise ConfigurationError("boost and eco modes are mutually exclusive")
    freq = 2.2 * GHZ * (1.1 if boost else 1.0)
    core = CoreSpec(
        name="a64fx-core",
        freq_hz=freq,
        simd_bits=512,
        fma_pipes=1 if eco else 2,
        fp_latency_cycles=9.0,
        ooo_window=64,          # effective: small reservation stations
        issue_width=4,
        scalar_ipc=1.2,         # weak scalar/OoO side
        load_units=2,
        store_units=1,
        l1d_bytes_per_cycle=128.0,
    )
    l1d = CacheSpec(level=1, capacity_bytes=64 * KIB, line_bytes=256,
                    latency_cycles=5, bytes_per_cycle=128.0, shared=False)
    l2 = CacheSpec(level=2, capacity_bytes=8 * MIB, line_bytes=256,
                   latency_cycles=40, bytes_per_cycle=512.0, shared=True)
    hbm2 = MemorySpec(
        kind="HBM2",
        capacity_bytes=8 * GIB,
        peak_bandwidth=256 * GB_S,
        sustained_fraction=0.82,
        single_stream_bandwidth=50 * GB_S,
        latency_s=120 * NS,
    )
    cmg = NumaDomain(name="cmg", core=core, n_cores=12, l1d=l1d, l2=l2, memory=hbm2)
    chip = Chip(
        name="a64fx",
        domains=(cmg,) * 4,
        inter_domain_bandwidth=100 * GB_S,  # on-chip ring
        inter_domain_latency_s=60 * NS,
        remote_access_fraction=0.45,
    )
    node = Node(name="a64fx-node", chips=(chip,), nic_injection_bandwidth=20 * GB_S)
    return Cluster(
        name="A64FX",
        node=node,
        n_nodes=n_nodes,
        network=tofu_d(),
        shm_bandwidth=12 * GB_S,
        shm_latency_s=0.25 * US,
    )


def a64fx_fx700(n_nodes: int = 1) -> Cluster:
    """Fujitsu PRIMEHPC FX700: the commercial A64FX at 1.8 GHz with
    InfiniBand EDR instead of Tofu-D (the configuration many early A64FX
    evaluations, including parts of this paper's, actually ran on)."""
    import dataclasses

    base = a64fx(n_nodes=n_nodes)
    chip = base.node.chips[0]
    dom = chip.domains[0]
    core = dataclasses.replace(dom.core, name="a64fx-fx700-core",
                               freq_hz=1.8 * GHZ)
    dom = dataclasses.replace(dom, core=core)
    chip = dataclasses.replace(chip, domains=(dom,) * 4)
    node = dataclasses.replace(base.node, chips=(chip,),
                               nic_injection_bandwidth=12.5 * GB_S)
    return dataclasses.replace(base, name="A64FX-FX700", node=node,
                               network=infiniband_edr())


def xeon_skylake(n_nodes: int = 1) -> Cluster:
    """Dual-socket Intel Xeon Gold 6148 (Skylake-SP) node(s)."""
    core = CoreSpec(
        name="skylake-core",
        freq_hz=2.4 * GHZ,
        simd_bits=512,
        fma_pipes=2,
        fp_latency_cycles=4.0,
        ooo_window=224,
        issue_width=4,
        scalar_ipc=2.5,
        load_units=2,
        store_units=1,
        l1d_bytes_per_cycle=128.0,
    )
    l1d = CacheSpec(level=1, capacity_bytes=32 * KIB, line_bytes=64,
                    latency_cycles=4, bytes_per_cycle=128.0, shared=False)
    # Private 1 MiB L2; the shared L3's traffic filtering is folded into the
    # relatively high single-stream DRAM figure below.
    l2 = CacheSpec(level=2, capacity_bytes=1 * MIB, line_bytes=64,
                   latency_cycles=14, bytes_per_cycle=64.0, shared=False)
    ddr4 = MemorySpec(
        kind="DDR4-2666x6",
        capacity_bytes=96 * GIB,
        peak_bandwidth=128 * GB_S,
        sustained_fraction=0.80,
        single_stream_bandwidth=14 * GB_S,
        latency_s=90 * NS,
    )
    socket_dom = NumaDomain(name="skx-socket", core=core, n_cores=20,
                            l1d=l1d, l2=l2, memory=ddr4)
    chip = Chip(name="skylake-8168", domains=(socket_dom,),
                inter_domain_bandwidth=0.0, inter_domain_latency_s=0.0,
                remote_access_fraction=0.6)
    node = Node(
        name="skylake-node",
        chips=(chip, chip),
        inter_chip_bandwidth=41.6 * GB_S,   # 2x UPI
        inter_chip_latency_s=130 * NS,
        nic_injection_bandwidth=12.5 * GB_S,
    )
    return Cluster(
        name="Xeon-Skylake",
        node=node,
        n_nodes=n_nodes,
        network=infiniband_edr(),
        shm_bandwidth=8 * GB_S,
        shm_latency_s=0.3 * US,
    )


def thunderx2(n_nodes: int = 1) -> Cluster:
    """Dual-socket Marvell ThunderX2 CN9975 node(s)."""
    core = CoreSpec(
        name="thunderx2-core",
        freq_hz=2.0 * GHZ,
        simd_bits=128,
        fma_pipes=2,
        fp_latency_cycles=6.0,
        ooo_window=180,
        issue_width=4,
        scalar_ipc=2.0,
        load_units=2,
        store_units=1,
        l1d_bytes_per_cycle=64.0,
    )
    l1d = CacheSpec(level=1, capacity_bytes=32 * KIB, line_bytes=64,
                    latency_cycles=4, bytes_per_cycle=64.0, shared=False)
    l2 = CacheSpec(level=2, capacity_bytes=256 * KIB, line_bytes=64,
                   latency_cycles=12, bytes_per_cycle=48.0, shared=False)
    ddr4 = MemorySpec(
        kind="DDR4-2666x8",
        capacity_bytes=128 * GIB,
        peak_bandwidth=171 * GB_S,
        sustained_fraction=0.75,
        single_stream_bandwidth=12 * GB_S,
        latency_s=100 * NS,
    )
    socket_dom = NumaDomain(name="tx2-socket", core=core, n_cores=28,
                            l1d=l1d, l2=l2, memory=ddr4)
    chip = Chip(name="thunderx2-cn9975", domains=(socket_dom,),
                inter_domain_bandwidth=0.0, inter_domain_latency_s=0.0,
                remote_access_fraction=0.55)
    node = Node(
        name="thunderx2-node",
        chips=(chip, chip),
        inter_chip_bandwidth=38 * GB_S,     # CCPI2
        inter_chip_latency_s=150 * NS,
        nic_injection_bandwidth=12.5 * GB_S,
    )
    return Cluster(
        name="ThunderX2",
        node=node,
        n_nodes=n_nodes,
        network=infiniband_edr(),
        shm_bandwidth=7 * GB_S,
        shm_latency_s=0.35 * US,
    )


def sparc64_viiifx(n_nodes: int = 1) -> Cluster:
    """Fujitsu SPARC64 VIIIfx (K computer) node(s), for historical context."""
    core = CoreSpec(
        name="sparc64viiifx-core",
        freq_hz=2.0 * GHZ,
        simd_bits=128,
        fma_pipes=2,
        fp_latency_cycles=6.0,
        ooo_window=48,
        issue_width=4,
        scalar_ipc=1.5,
        load_units=2,
        store_units=1,
        l1d_bytes_per_cycle=64.0,
    )
    l1d = CacheSpec(level=1, capacity_bytes=32 * KIB, line_bytes=128,
                    latency_cycles=3, bytes_per_cycle=64.0, shared=False)
    l2 = CacheSpec(level=2, capacity_bytes=6 * MIB, line_bytes=128,
                   latency_cycles=30, bytes_per_cycle=256.0, shared=True)
    mem = MemorySpec(
        kind="DDR3-embedded",
        capacity_bytes=16 * GIB,
        peak_bandwidth=64 * GB_S,
        sustained_fraction=0.72,
        single_stream_bandwidth=10 * GB_S,
        latency_s=110 * NS,
    )
    dom = NumaDomain(name="k-chip", core=core, n_cores=8, l1d=l1d, l2=l2, memory=mem)
    chip = Chip(name="sparc64viiifx", domains=(dom,),
                inter_domain_bandwidth=0.0, inter_domain_latency_s=0.0)
    node = Node(name="k-node", chips=(chip,), nic_injection_bandwidth=5 * GB_S)
    return Cluster(
        name="SPARC64-VIIIfx",
        node=node,
        n_nodes=n_nodes,
        network=tofu_d(),
        shm_bandwidth=5 * GB_S,
        shm_latency_s=0.4 * US,
    )


#: Registry used by the cross-processor comparison experiment (F5/T1).
PROCESSORS = {
    "A64FX": a64fx,
    "A64FX-FX700": a64fx_fx700,
    "Xeon-Skylake": xeon_skylake,
    "ThunderX2": thunderx2,
    "SPARC64-VIIIfx": sparc64_viiifx,
}


def by_name(name: str, n_nodes: int = 1) -> Cluster:
    """Look a processor up by its registry name."""
    try:
        factory = PROCESSORS[name]
    except KeyError:
        raise KeyError(
            f"unknown processor {name!r}; available: {sorted(PROCESSORS)}"
        ) from None
    return factory(n_nodes=n_nodes)
