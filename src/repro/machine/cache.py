"""Cache-level model.

Caches enter the performance model in two ways:

1. **Traffic filtering** — a kernel whose per-thread working set fits in a
   level absorbs (most of) its traffic there instead of the level below
   (:func:`hit_fraction` provides a smooth capacity transition, avoiding the
   unphysical cliff of an exact step function).
2. **Bandwidth ceilings** — each level sustains a finite number of bytes per
   cycle; the ECM-style per-core timing in :mod:`repro.kernels.timing` takes
   the max over levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheSpec:
    """One level of the cache hierarchy.

    Parameters
    ----------
    level:
        1 for L1, 2 for L2, ...
    capacity_bytes:
        Total capacity of this cache instance.
    line_bytes:
        Cache-line size (64 B on Xeon, 256 B on A64FX L2 — the large line
        matters for gather-heavy kernels, which waste most of each line).
    latency_cycles:
        Load-to-use latency.
    bytes_per_cycle:
        Sustained bandwidth between this level and the cores it serves,
        in bytes per core-cycle *per consuming core* for private caches, or
        aggregate for shared caches (see ``shared``).
    shared:
        True if the cache is shared by all cores of its NUMA domain (the
        A64FX L2); False for private caches (L1D).
    """

    level: int
    capacity_bytes: int
    line_bytes: int
    latency_cycles: float
    bytes_per_cycle: float
    shared: bool = False

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ConfigurationError("cache level must be >= 1")
        if self.capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("line_bytes must be a positive power of two")
        if self.latency_cycles < 0 or self.bytes_per_cycle <= 0:
            raise ConfigurationError("cache latency/bandwidth out of range")

    def hit_fraction(self, working_set_bytes: float) -> float:
        """Fraction of accesses served by this level for a streaming-reuse
        working set of the given size.

        Uses a smooth logistic roll-off around the capacity point: a working
        set at half capacity hits essentially always, at 1x capacity ~50%
        (conflict + shared-occupancy effects), at 4x capacity essentially
        never.  The 8-way-associative LRU behaviour of real caches on
        looped-streaming access motivates the steepness chosen here.
        """
        if working_set_bytes < 0:
            raise ConfigurationError("working set must be non-negative")
        if working_set_bytes == 0:
            return 1.0
        ratio = working_set_bytes / self.capacity_bytes
        # logistic in log-space centred at ratio == 1
        return 1.0 / (1.0 + math.exp(3.2 * math.log(max(ratio, 1e-12))))

    def effective_line_utilization(self, contiguous_fraction: float) -> float:
        """Fraction of each fetched line actually consumed.

        Contiguous (unit-stride) access consumes full lines; indirect
        (gather) access consumes one element (8 B) of each line.  Large
        lines — the A64FX's 256 B L2 line — are penalized heavily by
        gathers, which is one of the mechanisms behind its poor "as-is"
        performance on irregular miniapps.
        """
        if not 0.0 <= contiguous_fraction <= 1.0:
            raise ConfigurationError("contiguous_fraction must be in [0, 1]")
        gather_util = 8.0 / self.line_bytes
        return contiguous_fraction + (1.0 - contiguous_fraction) * gather_util
