"""Inter-node interconnect models: Tofu-D and InfiniBand EDR.

The message-time model is the standard postal model with a rendezvous
surcharge and per-hop latency::

    T(msg) = base_latency + hops * hop_latency + size / effective_bandwidth

Contention is handled at two places: the per-node NIC injection limit is a
serialized resource inside the event engine (see
:mod:`repro.runtime.executor`), and ``effective_bandwidth`` here already
discounts protocol overheads.  This reproduces the phenomena the paper's
process-allocation experiment probes — whether packing communicating ranks
onto the same node (shared-memory transfers) or spreading them matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB_S, US


@dataclass(frozen=True)
class InterconnectSpec:
    """Network joining the nodes of a cluster.

    Parameters
    ----------
    name:
        ``"Tofu-D"`` or ``"InfiniBand-EDR"`` ...
    link_bandwidth:
        Bandwidth of one link / rail, bytes/s.
    base_latency_s:
        Zero-hop software+NIC latency of a small message.
    hop_latency_s:
        Additional latency per switch/router hop.
    rendezvous_threshold_bytes:
        Messages at or above this size pay ``rendezvous_latency_s`` extra
        (the eager→rendezvous protocol switch).
    rendezvous_latency_s:
        The rendezvous handshake cost.
    topology:
        ``"torus"`` (Tofu-D 6D torus, modeled as a 3D torus for hop counts)
        or ``"fat-tree"`` (hop count ~ log of node count).
    radix:
        For ``fat-tree``: switch radix used for the hop-count estimate.
    """

    name: str
    link_bandwidth: float
    base_latency_s: float
    hop_latency_s: float
    rendezvous_threshold_bytes: int = 32 * 1024
    rendezvous_latency_s: float = 1.0 * US
    topology: str = "torus"
    radix: int = 36

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: link bandwidth must be positive")
        if self.base_latency_s < 0 or self.hop_latency_s < 0:
            raise ConfigurationError(f"{self.name}: latencies must be non-negative")
        if self.topology not in ("torus", "fat-tree"):
            raise ConfigurationError(f"{self.name}: unknown topology {self.topology!r}")
        if self.radix < 2:
            raise ConfigurationError(f"{self.name}: radix must be >= 2")

    # ------------------------------------------------------------------
    def hops(self, src_node: int, dst_node: int, n_nodes: int) -> int:
        """Estimated router hops between two nodes of an ``n_nodes`` system."""
        if src_node == dst_node:
            return 0
        if n_nodes < 2:
            raise ConfigurationError("hop query needs at least two nodes")
        if self.topology == "torus":
            # Model a near-cubic 3D torus: Manhattan distance with
            # wrap-around on a side of length ceil(n^(1/3)).
            side = max(2, round(n_nodes ** (1.0 / 3.0)))
            coords = []
            for node in (src_node, dst_node):
                x = node % side
                y = (node // side) % side
                z = node // (side * side)
                coords.append((x, y, z))
            total = 0
            for a, b in zip(*coords):
                d = abs(a - b)
                total += min(d, side - d)
            return max(1, total)
        # fat-tree: up to the common ancestor and back down
        depth = max(1, math.ceil(math.log(max(n_nodes, 2), self.radix)))
        return 2 * depth

    def message_time(self, size_bytes: float, hops: int) -> float:
        """Time to move one message across ``hops`` router hops, seconds."""
        if size_bytes < 0:
            raise ConfigurationError("message size must be non-negative")
        if hops < 0:
            raise ConfigurationError("hops must be non-negative")
        t = self.base_latency_s + hops * self.hop_latency_s
        if size_bytes >= self.rendezvous_threshold_bytes:
            t += self.rendezvous_latency_s
        return t + size_bytes / self.link_bandwidth


def tofu_d() -> InterconnectSpec:
    """Fujitsu Tofu interconnect D (A64FX / Fugaku): 6.8 GB/s per link,
    10 links per node, ~0.5 us put latency."""
    return InterconnectSpec(
        name="Tofu-D",
        link_bandwidth=6.8 * GB_S,
        base_latency_s=0.9 * US,
        hop_latency_s=0.1 * US,
        rendezvous_threshold_bytes=32 * 1024,
        rendezvous_latency_s=0.7 * US,
        topology="torus",
    )


def infiniband_edr() -> InterconnectSpec:
    """Mellanox InfiniBand EDR (100 Gb/s): 12.5 GB/s, fat-tree."""
    return InterconnectSpec(
        name="InfiniBand-EDR",
        link_bandwidth=12.5 * GB_S,
        base_latency_s=1.2 * US,
        hop_latency_s=0.15 * US,
        rendezvous_threshold_bytes=16 * 1024,
        rendezvous_latency_s=1.0 * US,
        topology="fat-tree",
    )
