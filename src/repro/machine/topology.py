"""Cluster topology and global core addressing.

A :class:`Cluster` is ``n_nodes`` identical :class:`~repro.machine.numa.Node`
objects joined by an :class:`~repro.machine.interconnect.InterconnectSpec`.
The placement machinery (:mod:`repro.runtime.placement`) speaks in
:class:`CoreAddress` — (node, chip, domain, core) — and this module provides
the conversions between flat global core ids and structured addresses, plus
the intra-node transfer-cost parameters used by the simulated MPI layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from dataclasses import field

from repro.errors import ConfigurationError
from repro.machine.interconnect import InterconnectSpec
from repro.machine.numa import Node, NumaDomain
from repro.machine.storage import StorageSpec, fefs
from repro.units import GB_S, US


@dataclass(frozen=True, order=True)
class CoreAddress:
    """Structured location of one hardware core in the cluster."""

    node: int
    chip: int
    domain: int   # chip-local domain index
    core: int     # domain-local core index

    def same_domain(self, other: "CoreAddress") -> bool:
        return (
            self.node == other.node
            and self.chip == other.chip
            and self.domain == other.domain
        )

    def same_chip(self, other: "CoreAddress") -> bool:
        return self.node == other.node and self.chip == other.chip

    def same_node(self, other: "CoreAddress") -> bool:
        return self.node == other.node


@dataclass(frozen=True)
class Cluster:
    """Homogeneous cluster: ``n_nodes`` copies of ``node`` on ``network``.

    ``shm_bandwidth`` / ``shm_latency_s`` parameterize intra-node MPI
    transfers (shared-memory copies through the memory system); inter-domain
    transfers additionally honour the chip's ring parameters.
    """

    name: str
    node: Node
    n_nodes: int
    network: InterconnectSpec
    shm_bandwidth: float = 8.0 * GB_S
    shm_latency_s: float = 0.3 * US
    storage: StorageSpec = field(default_factory=fefs)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"{self.name}: need at least one node")
        if self.shm_bandwidth <= 0 or self.shm_latency_s < 0:
            raise ConfigurationError(f"{self.name}: bad shared-memory parameters")

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def cores_per_node(self) -> int:
        return self.node.n_cores

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.node.n_cores

    @property
    def domains_per_node(self) -> int:
        return self.node.n_domains

    @property
    def peak_flops_fp64(self) -> float:
        return self.n_nodes * self.node.peak_flops_fp64

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def address_of(self, global_core: int) -> CoreAddress:
        """Convert a flat global core id to a structured address."""
        if not 0 <= global_core < self.total_cores:
            raise ConfigurationError(
                f"core {global_core} out of range 0..{self.total_cores - 1}"
            )
        node_idx, local = divmod(global_core, self.node.n_cores)
        base = 0
        for chip_idx, chip in enumerate(self.node.chips):
            if local < base + chip.n_cores:
                chip_local = local - base
                dom_idx = chip.domain_of_core(chip_local)
                dom_base = sum(d.n_cores for d in chip.domains[:dom_idx])
                return CoreAddress(node_idx, chip_idx, dom_idx, chip_local - dom_base)
            base += chip.n_cores
        raise AssertionError("unreachable")

    def global_core(self, addr: CoreAddress) -> int:
        """Convert a structured address back to a flat global core id."""
        if not 0 <= addr.node < self.n_nodes:
            raise ConfigurationError(f"node {addr.node} out of range")
        if not 0 <= addr.chip < len(self.node.chips):
            raise ConfigurationError(f"chip {addr.chip} out of range")
        chip = self.node.chips[addr.chip]
        if not 0 <= addr.domain < len(chip.domains):
            raise ConfigurationError(f"domain {addr.domain} out of range")
        dom = chip.domains[addr.domain]
        if not 0 <= addr.core < dom.n_cores:
            raise ConfigurationError(f"core {addr.core} out of range")
        local = (
            sum(c.n_cores for c in self.node.chips[: addr.chip])
            + sum(d.n_cores for d in chip.domains[: addr.domain])
            + addr.core
        )
        return addr.node * self.node.n_cores + local

    def domain_spec(self, addr: CoreAddress) -> NumaDomain:
        """The NUMA domain object a core address belongs to."""
        return self.node.chips[addr.chip].domains[addr.domain]

    def node_global_domain(self, addr: CoreAddress) -> int:
        """Node-global domain index (0 .. domains_per_node-1) for an address."""
        chip = self.node.chips[addr.chip]
        if not 0 <= addr.domain < len(chip.domains):
            raise ConfigurationError(f"domain {addr.domain} out of range")
        return sum(len(c.domains) for c in self.node.chips[: addr.chip]) + addr.domain

    # ------------------------------------------------------------------
    # transfer costs (used by the simulated MPI point-to-point layer)
    # ------------------------------------------------------------------
    def transfer_time(self, src: CoreAddress, dst: CoreAddress, size_bytes: float) -> float:
        """Time for one message between two cores, seconds.

        Three regimes: same node via shared memory (with a ring surcharge
        when crossing domains/chips), different node via the interconnect.
        """
        if size_bytes < 0:
            raise ConfigurationError("message size must be non-negative")
        if src.node == dst.node:
            t = self.shm_latency_s + size_bytes / self.shm_bandwidth
            if not src.same_chip(dst):
                t += self.node.inter_chip_latency_s
                if self.node.inter_chip_bandwidth > 0:
                    t += size_bytes / self.node.inter_chip_bandwidth
            elif not src.same_domain(dst):
                chip = self.node.chips[src.chip]
                t += chip.inter_domain_latency_s
                if chip.inter_domain_bandwidth > 0:
                    t += size_bytes / chip.inter_domain_bandwidth
            return t
        hops = self.network.hops(src.node, dst.node, self.n_nodes)
        return self.network.message_time(size_bytes, hops)

    def describe(self) -> str:
        from repro.units import fmt_bw, fmt_rate

        return (
            f"{self.name}: {self.n_nodes} node(s) x {self.node.n_cores} cores, "
            f"peak {fmt_rate(self.peak_flops_fp64)}, "
            f"node memory BW {fmt_bw(self.node.peak_memory_bandwidth)}, "
            f"network {self.network.name}"
        )
