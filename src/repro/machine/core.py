"""Per-core execution-resource model.

The model captures exactly the resources the paper's analysis section turns
on: SIMD width (SVE 512-bit vs AVX-512 vs NEON 128-bit), the number of FMA
pipelines, floating-point instruction latency, the out-of-order window (the
A64FX's is small relative to Xeon — the root cause of its poor "as-is"
performance on low-ILP code), and scalar issue width (the A64FX's scalar
side is weak, which dominates non-vectorized codes such as NGS Analyzer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import FP64_BYTES


@dataclass(frozen=True)
class CoreSpec:
    """Static description of one compute core.

    Parameters
    ----------
    name:
        Human-readable micro-architecture name (``"a64fx-core"``).
    freq_hz:
        Sustained clock frequency in Hz (normal mode; boost handled by the
        catalog producing a separate spec).
    simd_bits:
        Width of one SIMD register in bits (512 for SVE on A64FX and for
        AVX-512; 128 for NEON / HPC-ACE).
    fma_pipes:
        Number of SIMD floating-point pipelines capable of fused
        multiply-add, each retiring one vector instruction per cycle.
    fp_latency_cycles:
        Latency of a dependent floating-point operation.  A64FX FLA latency
        is 9 cycles; Skylake FMA is 4.  Together with ``ooo_window`` this
        determines how much independent work is needed to fill the pipes.
    ooo_window:
        Effective number of in-flight instructions the out-of-order engine
        can extract independent work from (commit/ROB-limited).
    issue_width:
        Total instructions issued per cycle (front-end bound).
    scalar_ipc:
        Sustained scalar (non-SIMD) instructions per cycle on typical
        integer/address-heavy code.  This is deliberately a *sustained*
        figure, not the theoretical issue width.
    load_units / store_units:
        Number of L1 load / store ports (each moves one SIMD register per
        cycle).
    l1d_bytes_per_cycle:
        Sustained L1D bandwidth per cycle (bytes), already accounting for
        port conflicts.
    """

    name: str
    freq_hz: float
    simd_bits: int
    fma_pipes: int
    fp_latency_cycles: float
    ooo_window: int
    issue_width: int
    scalar_ipc: float
    load_units: int = 2
    store_units: int = 1
    l1d_bytes_per_cycle: float = 128.0

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ConfigurationError(f"{self.name}: freq_hz must be positive")
        if self.simd_bits % 64 != 0 or self.simd_bits < 64:
            raise ConfigurationError(
                f"{self.name}: simd_bits must be a positive multiple of 64"
            )
        if self.fma_pipes < 1:
            raise ConfigurationError(f"{self.name}: need at least one FP pipe")
        if self.ooo_window < 1 or self.issue_width < 1:
            raise ConfigurationError(f"{self.name}: ooo_window/issue_width >= 1")
        if self.scalar_ipc <= 0:
            raise ConfigurationError(f"{self.name}: scalar_ipc must be positive")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def simd_lanes_fp64(self) -> int:
        """Number of fp64 elements per SIMD register."""
        return self.simd_bits // (FP64_BYTES * 8)

    @property
    def peak_flops_per_cycle_fp64(self) -> float:
        """Peak fp64 FLOPs per cycle (all pipes doing FMAs)."""
        return 2.0 * self.fma_pipes * self.simd_lanes_fp64

    @property
    def peak_flops_fp64(self) -> float:
        """Peak fp64 FLOP/s of one core."""
        return self.peak_flops_per_cycle_fp64 * self.freq_hz

    def flops_per_cycle(self, fma_fraction: float, vector: bool,
                        lanes: int | None = None) -> float:
        """Throughput-peak FLOPs per cycle for a given instruction mix.

        Each pipe retires one (vector or scalar) FP instruction per cycle.
        An FMA counts 2 FLOPs per lane, a plain add/mul counts 1.  With an
        FMA fraction ``f`` of the *FLOPs*, the instruction cost per FLOP is
        ``f/2 + (1 - f)`` lane-instructions.  ``lanes`` overrides the native
        lane count (SVE vector-length capping).
        """
        if not 0.0 <= fma_fraction <= 1.0:
            raise ConfigurationError("fma_fraction must be in [0, 1]")
        max_lanes = self.simd_bits // 32        # fp32 doubles the lane count
        if lanes is not None and not 1 <= lanes <= max_lanes:
            raise ConfigurationError("lanes override out of range")
        if not vector:
            lanes = 1
        elif lanes is None:
            lanes = self.simd_lanes_fp64
        instr_per_flop = (fma_fraction / 2.0 + (1.0 - fma_fraction)) / lanes
        return self.fma_pipes / instr_per_flop

    def pipeline_fill(self, independent_ops: float, scheduling_boost: float = 1.0) -> float:
        """Fraction of FP pipe slots that can actually be filled.

        To keep ``P`` pipes of latency ``L`` busy, ``P * L`` independent
        operations must be in flight.  ``independent_ops`` is the kernel's
        average number of independent FP operations available per loop
        iteration window (its ILP); the out-of-order engine can additionally
        overlap across iterations, but only as far as its window reaches.
        ``scheduling_boost`` (>= 1) models compiler software pipelining /
        instruction scheduling, which exposes cross-iteration parallelism
        that the OoO window alone cannot see.

        Returns a value in (0, 1].
        """
        if independent_ops <= 0:
            raise ConfigurationError("independent_ops must be positive")
        if scheduling_boost < 1.0:
            raise ConfigurationError("scheduling_boost must be >= 1")
        needed = self.fma_pipes * self.fp_latency_cycles
        # The out-of-order engine can only discover cross-iteration
        # parallelism as far as its window reaches: with a window much
        # smaller than ~4x the in-flight requirement the fraction it can
        # exploit drops proportionally.  A64FX (small effective window, long
        # FP latency) is penalized; Skylake (224-entry ROB, 4-cycle FMA)
        # saturates the factor at 1.
        window_factor = min(1.0, self.ooo_window / (4.0 * needed))
        available = independent_ops * scheduling_boost * window_factor
        return max(0.05, min(1.0, available / needed))

    def describe(self) -> str:
        """One-line human-readable summary."""
        from repro.units import fmt_rate

        return (
            f"{self.name}: {self.freq_hz / 1e9:.2f} GHz, "
            f"{self.simd_bits}-bit SIMD x{self.fma_pipes} FMA pipes, "
            f"peak {fmt_rate(self.peak_flops_fp64)}"
        )
