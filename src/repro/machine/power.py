"""Chip power model and the A64FX power-control modes.

The A64FX exposes three power knobs the companion evaluation papers
(Kodama et al., "Evaluation of Power Management Control on the
Supercomputer Fugaku") study and that this model reproduces:

* **eco mode** — one of the two FLA (FMA) pipelines is disabled and the
  core supply is lowered: compute throughput halves, core power drops by
  ~1/3; memory-bound codes keep their performance and save energy.
* **boost mode** — +10% clock at ~+17% core power.
* **core retention** — unused cores drop to a low-power state, so power
  scales with the *active* core count.

The energy model is the standard decomposition::

    P = P_uncore + P_mem_static
        + n_active * P_core(util) + n_idle * P_retention
        + dram_traffic * E_per_byte / t

with ``P_core(util)`` linear between an active-idle floor and the
full-throughput figure.  Parameters are calibrated to the published
chip-level figures (A64FX ~120-160 W under load, dual-socket Skylake
~300 W, ThunderX2 ~360 W).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Recognized power-control modes.
MODES = ("normal", "eco", "boost")


@dataclass(frozen=True)
class PowerSpec:
    """Static power parameters of one node.

    Parameters
    ----------
    name:
        Matches the cluster/catalog name.
    uncore_watts:
        Chip-static + on-chip fabric + NIC power, whole node.
    mem_static_watts:
        Memory-device static power (HBM stacks / DIMMs), whole node.
    core_max_watts:
        One core running flat-out (SIMD pipes busy).
    core_active_idle_watts:
        One clocked core doing nothing (stalled on memory still costs
        roughly this plus a traffic share).
    core_retention_watts:
        One core parked in the retention state.
    dram_pj_per_byte:
        Dynamic memory energy (HBM2 ~ 30 pJ/B, DDR4 ~ 60 pJ/B).
    """

    name: str
    uncore_watts: float
    mem_static_watts: float
    core_max_watts: float
    core_active_idle_watts: float
    core_retention_watts: float
    dram_pj_per_byte: float

    def __post_init__(self) -> None:
        vals = (self.uncore_watts, self.mem_static_watts, self.core_max_watts,
                self.core_active_idle_watts, self.core_retention_watts,
                self.dram_pj_per_byte)
        if any(v < 0 for v in vals):
            raise ConfigurationError(f"{self.name}: power params must be >= 0")
        if self.core_active_idle_watts > self.core_max_watts:
            raise ConfigurationError(
                f"{self.name}: active-idle power above max core power"
            )

    # ------------------------------------------------------------------
    def core_power(self, utilization: float) -> float:
        """Power of one active core at the given pipeline utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization must be in [0, 1]")
        return (self.core_active_idle_watts
                + utilization * (self.core_max_watts
                                 - self.core_active_idle_watts))

    def node_power(
        self,
        active_cores: int,
        total_cores: int,
        utilization: float,
        dram_bytes_per_s: float = 0.0,
    ) -> float:
        """Average node power draw, watts."""
        if not 0 <= active_cores <= total_cores:
            raise ConfigurationError("active cores out of range")
        if dram_bytes_per_s < 0:
            raise ConfigurationError("bandwidth must be non-negative")
        idle = total_cores - active_cores
        return (
            self.uncore_watts
            + self.mem_static_watts
            + active_cores * self.core_power(utilization)
            + idle * self.core_retention_watts
            + dram_bytes_per_s * self.dram_pj_per_byte * 1e-12
        )

    def with_mode(self, mode: str) -> "PowerSpec":
        """The spec under a power-control mode (A64FX semantics)."""
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown power mode {mode!r}; choose from {MODES}"
            )
        if mode == "normal":
            return self
        if mode == "eco":
            # one FMA pipe off + lowered supply: ~ -35% core power
            return replace(
                self,
                name=f"{self.name}-eco",
                core_max_watts=self.core_max_watts * 0.65,
                core_active_idle_watts=self.core_active_idle_watts * 0.8,
            )
        # boost: +10% clock, ~ +17% core power (published Fugaku figure)
        return replace(
            self,
            name=f"{self.name}-boost",
            core_max_watts=self.core_max_watts * 1.17,
            core_active_idle_watts=self.core_active_idle_watts * 1.1,
        )


#: Node power parameterizations, keyed by catalog cluster name.
POWER_SPECS: dict[str, PowerSpec] = {
    "A64FX": PowerSpec(
        name="A64FX",
        uncore_watts=25.0,
        mem_static_watts=16.0,          # 4 HBM2 stacks
        core_max_watts=1.4,
        core_active_idle_watts=0.55,
        core_retention_watts=0.10,
        dram_pj_per_byte=30.0,
    ),
    "A64FX-FX700": PowerSpec(
        name="A64FX-FX700",
        uncore_watts=22.0,
        mem_static_watts=16.0,
        core_max_watts=1.1,             # 1.8 GHz at lower voltage
        core_active_idle_watts=0.45,
        core_retention_watts=0.10,
        dram_pj_per_byte=30.0,
    ),
    "Xeon-Skylake": PowerSpec(
        name="Xeon-Skylake",
        uncore_watts=70.0,              # 2 sockets' uncore + fabric
        mem_static_watts=24.0,          # 12 DIMMs
        core_max_watts=5.0,
        core_active_idle_watts=1.8,
        core_retention_watts=0.5,
        dram_pj_per_byte=60.0,
    ),
    "ThunderX2": PowerSpec(
        name="ThunderX2",
        uncore_watts=80.0,
        mem_static_watts=32.0,          # 16 DIMMs
        core_max_watts=4.5,
        core_active_idle_watts=1.6,
        core_retention_watts=0.5,
        dram_pj_per_byte=60.0,
    ),
    "SPARC64-VIIIfx": PowerSpec(
        name="SPARC64-VIIIfx",
        uncore_watts=15.0,
        mem_static_watts=8.0,
        core_max_watts=4.5,
        core_active_idle_watts=1.8,
        core_retention_watts=0.8,
        dram_pj_per_byte=50.0,
    ),
}


def power_spec(cluster_name: str, mode: str = "normal") -> PowerSpec:
    """Look up a node power spec by catalog name and mode."""
    try:
        spec = POWER_SPECS[cluster_name]
    except KeyError:
        raise KeyError(
            f"no power spec for {cluster_name!r}; "
            f"available: {sorted(POWER_SPECS)}"
        ) from None
    return spec.with_mode(mode)
