"""Hardware substrate: processor, memory-hierarchy, and interconnect models.

The paper measures real silicon (A64FX, Xeon Skylake-SP, ThunderX2).  This
package replaces the silicon with parameterized analytic models that expose
the same performance-relevant structure:

* :class:`~repro.machine.core.CoreSpec` — per-core execution resources
  (frequency, SIMD width, FMA pipes, out-of-order window, scalar issue).
* :class:`~repro.machine.cache.CacheSpec` — capacities, line sizes,
  latencies, and per-level bandwidths.
* :class:`~repro.machine.memory.MemorySpec` — HBM2 / DDR4 channel models
  with a shared-bandwidth contention curve.
* :class:`~repro.machine.numa.NumaDomain` — the A64FX CMG (and the Xeon
  socket/sub-NUMA domain): cores + shared L2 + local memory.
* :class:`~repro.machine.numa.Chip` / :class:`~repro.machine.numa.Node` —
  aggregation with inter-domain links.
* :class:`~repro.machine.interconnect.InterconnectSpec` — Tofu-D and
  InfiniBand models used for multi-node runs.
* :class:`~repro.machine.topology.Cluster` — nodes + interconnect, global
  core addressing used by the placement machinery.
* :mod:`~repro.machine.catalog` — the concrete processor parameter sets
  evaluated in the paper.
"""

from repro.machine.cache import CacheSpec
from repro.machine.core import CoreSpec
from repro.machine.interconnect import InterconnectSpec, infiniband_edr, tofu_d
from repro.machine.memory import MemorySpec
from repro.machine.numa import Chip, Node, NumaDomain
from repro.machine.topology import Cluster, CoreAddress
from repro.machine import catalog

__all__ = [
    "CacheSpec",
    "CoreSpec",
    "MemorySpec",
    "NumaDomain",
    "Chip",
    "Node",
    "Cluster",
    "CoreAddress",
    "InterconnectSpec",
    "tofu_d",
    "infiniband_edr",
    "catalog",
]
