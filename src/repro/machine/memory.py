"""Main-memory model: HBM2 (A64FX) and DDR4 (Xeon, ThunderX2) channels.

The key phenomenon the paper's placement experiments exercise is *shared
bandwidth saturation*: one A64FX core can draw roughly 50 GB/s from its
CMG's HBM2 stack, and the stack saturates near 220 GB/s — so ~5 cores
saturate a CMG, and spreading threads over CMGs (scatter binding) reaches
peak chip bandwidth with far fewer threads than compact binding.
:meth:`MemorySpec.achievable_bandwidth` encodes exactly that curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemorySpec:
    """Memory attached to one NUMA domain.

    Parameters
    ----------
    kind:
        ``"HBM2"``, ``"DDR4-2666"``, ... (informational).
    capacity_bytes:
        Capacity of this domain's memory.
    peak_bandwidth:
        Vendor peak bandwidth of the domain, bytes/s (256 GB/s per A64FX
        CMG).
    sustained_fraction:
        Fraction of peak reachable by a bandwidth benchmark with all cores
        active (STREAM triad reaches ~0.82 of peak on A64FX, ~0.80 on
        Xeon DDR4).
    single_stream_bandwidth:
        Bandwidth achievable by a single core's demand stream, bytes/s.
        High on A64FX (hardware prefetch + HBM2), low per-core on DDR
        systems.
    latency_s:
        Idle random-access latency in seconds.
    """

    kind: str
    capacity_bytes: float
    peak_bandwidth: float
    sustained_fraction: float
    single_stream_bandwidth: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.peak_bandwidth <= 0:
            raise ConfigurationError(f"{self.kind}: capacity/bandwidth must be positive")
        if not 0.0 < self.sustained_fraction <= 1.0:
            raise ConfigurationError(f"{self.kind}: sustained_fraction in (0, 1]")
        if self.single_stream_bandwidth <= 0:
            raise ConfigurationError(f"{self.kind}: single_stream_bandwidth > 0")
        if self.single_stream_bandwidth > self.peak_bandwidth:
            raise ConfigurationError(
                f"{self.kind}: a single stream cannot exceed domain peak"
            )
        if self.latency_s < 0:
            raise ConfigurationError(f"{self.kind}: latency must be non-negative")

    @property
    def sustained_bandwidth(self) -> float:
        """Aggregate bandwidth with the domain saturated, bytes/s."""
        return self.peak_bandwidth * self.sustained_fraction

    def achievable_bandwidth(self, active_streams: int) -> float:
        """Aggregate bandwidth drawn by ``active_streams`` concurrent
        demand streams (one per active core), bytes/s.

        Linear in the stream count until the domain saturates:
        ``min(sustained, n * single_stream)``.  This two-regime form matches
        measured STREAM scaling curves on both HBM2 and DDR4 systems closely
        enough for placement studies (the knee position is what matters).
        """
        if active_streams < 0:
            raise ConfigurationError("active_streams must be non-negative")
        if active_streams == 0:
            return 0.0
        return min(self.sustained_bandwidth, active_streams * self.single_stream_bandwidth)

    def per_stream_bandwidth(self, active_streams: int) -> float:
        """Fair-share bandwidth of one stream among ``active_streams``."""
        if active_streams <= 0:
            raise ConfigurationError("active_streams must be positive")
        return self.achievable_bandwidth(active_streams) / active_streams
