"""NUMA aggregation: domains (CMGs), chips, and nodes.

The A64FX is organized as 4 *Core Memory Groups* (CMGs) of 12 compute cores,
each with a shared 8 MiB L2 and a private HBM2 stack; the CMGs are joined by
an on-chip ring bus.  A dual-socket Xeon node maps onto the same structure
(2 domains of 24 cores joined by UPI).  All placement effects in the paper —
thread stride, rank-per-CMG packing, first-touch locality — reduce to *which
domain a thread's cycles and which domain its data live in*, which is what
these classes answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.cache import CacheSpec
from repro.machine.core import CoreSpec
from repro.machine.memory import MemorySpec


@dataclass(frozen=True)
class NumaDomain:
    """One NUMA domain: ``n_cores`` identical cores + shared L2 + memory."""

    name: str
    core: CoreSpec
    n_cores: int
    l1d: CacheSpec
    l2: CacheSpec
    memory: MemorySpec

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError(f"{self.name}: need at least one core")
        if self.l1d.shared:
            raise ConfigurationError(f"{self.name}: L1D must be core-private")
        if self.l1d.level != 1 or self.l2.level != 2:
            raise ConfigurationError(f"{self.name}: expected L1 then L2 levels")

    @property
    def peak_flops_fp64(self) -> float:
        return self.n_cores * self.core.peak_flops_fp64

    def l2_bandwidth_share(self, active_cores: int) -> float:
        """Per-core share of L2 bandwidth, bytes/s.

        A shared L2 (A64FX) divides its aggregate bandwidth among active
        cores but never gives one core more than ~1/3 of the aggregate (the
        per-port limit); a private/sliced L2 gives each core its full
        per-core figure.
        """
        if active_cores < 1:
            raise ConfigurationError("active_cores must be positive")
        per_cycle = self.l2.bytes_per_cycle * self.core.freq_hz
        if not self.l2.shared:
            return per_cycle
        single_core_cap = per_cycle / 3.0
        return min(single_core_cap, per_cycle / active_cores)


@dataclass(frozen=True)
class Chip:
    """A processor package: one or more NUMA domains on a die/socket.

    ``inter_domain_bandwidth`` / ``inter_domain_latency_s`` describe the
    on-chip ring (A64FX) or on-package mesh.  Remote memory accesses (a
    thread in domain i touching memory of domain j) are throttled to
    ``remote_access_fraction`` of the home domain's bandwidth and charged
    the ring latency — the first-touch NUMA penalty.
    """

    name: str
    domains: tuple[NumaDomain, ...]
    inter_domain_bandwidth: float
    inter_domain_latency_s: float
    remote_access_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not self.domains:
            raise ConfigurationError(f"{self.name}: chip needs at least one domain")
        if len(self.domains) > 1:
            if self.inter_domain_bandwidth <= 0 or self.inter_domain_latency_s < 0:
                raise ConfigurationError(f"{self.name}: inter-domain link invalid")
        if not 0.0 < self.remote_access_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: remote_access_fraction in (0, 1]")

    @property
    def n_cores(self) -> int:
        return sum(d.n_cores for d in self.domains)

    @property
    def peak_flops_fp64(self) -> float:
        return sum(d.peak_flops_fp64 for d in self.domains)

    @property
    def peak_memory_bandwidth(self) -> float:
        return sum(d.memory.peak_bandwidth for d in self.domains)

    @property
    def sustained_memory_bandwidth(self) -> float:
        return sum(d.memory.sustained_bandwidth for d in self.domains)

    def domain_of_core(self, core_index: int) -> int:
        """Domain index owning chip-local core ``core_index``."""
        if not 0 <= core_index < self.n_cores:
            raise ConfigurationError(
                f"{self.name}: core {core_index} out of range 0..{self.n_cores - 1}"
            )
        base = 0
        for i, d in enumerate(self.domains):
            if core_index < base + d.n_cores:
                return i
            base += d.n_cores
        raise AssertionError("unreachable")


@dataclass(frozen=True)
class Node:
    """One cluster node: one or more chips plus a NIC injection limit."""

    name: str
    chips: tuple[Chip, ...]
    inter_chip_bandwidth: float = 0.0
    inter_chip_latency_s: float = 0.0
    nic_injection_bandwidth: float = 6.8e9
    memory_per_node_hint: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not self.chips:
            raise ConfigurationError(f"{self.name}: node needs at least one chip")
        if len(self.chips) > 1 and self.inter_chip_bandwidth <= 0:
            raise ConfigurationError(
                f"{self.name}: multi-chip node needs an inter-chip link"
            )

    @property
    def n_cores(self) -> int:
        return sum(c.n_cores for c in self.chips)

    @property
    def n_domains(self) -> int:
        return sum(len(c.domains) for c in self.chips)

    @property
    def peak_flops_fp64(self) -> float:
        return sum(c.peak_flops_fp64 for c in self.chips)

    @property
    def peak_memory_bandwidth(self) -> float:
        return sum(c.peak_memory_bandwidth for c in self.chips)

    @property
    def sustained_memory_bandwidth(self) -> float:
        return sum(c.sustained_memory_bandwidth for c in self.chips)

    def flat_domains(self) -> tuple[NumaDomain, ...]:
        """All NUMA domains of the node, in (chip, domain) order."""
        out: list[NumaDomain] = []
        for c in self.chips:
            out.extend(c.domains)
        return tuple(out)

    def domain_of_core(self, core_index: int) -> int:
        """Node-global domain index owning node-local core ``core_index``."""
        if not 0 <= core_index < self.n_cores:
            raise ConfigurationError(
                f"{self.name}: core {core_index} out of range 0..{self.n_cores - 1}"
            )
        base_core = 0
        base_dom = 0
        for c in self.chips:
            if core_index < base_core + c.n_cores:
                return base_dom + c.domain_of_core(core_index - base_core)
            base_core += c.n_cores
            base_dom += len(c.domains)
        raise AssertionError("unreachable")

    def cores_of_domain(self, domain_index: int) -> range:
        """Node-local core indices belonging to node-global domain index."""
        doms = self.flat_domains()
        if not 0 <= domain_index < len(doms):
            raise ConfigurationError(
                f"{self.name}: domain {domain_index} out of range 0..{len(doms) - 1}"
            )
        start = sum(d.n_cores for d in doms[:domain_index])
        return range(start, start + doms[domain_index].n_cores)
