"""Parallel-filesystem model.

The data-analysis miniapp (NGS Analyzer) streams read files in and result
files out through a shared parallel filesystem (FEFS/Lustre on the real
systems).  The model has the two limits that matter:

* a **per-node** bandwidth ceiling (client-side, through the NIC), and
* a shared **aggregate** ceiling across the whole cluster, arbitrated
  first-come-first-served by the executor's storage resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB_S, MS


@dataclass(frozen=True)
class StorageSpec:
    """Shared filesystem parameters.

    Parameters
    ----------
    name:
        ``"FEFS"``, ``"Lustre"``, ...
    aggregate_bandwidth:
        Total filesystem bandwidth across all clients, bytes/s.
    per_node_bandwidth:
        One client's ceiling, bytes/s.
    open_latency_s:
        Metadata cost per operation (open + first byte).
    """

    name: str
    aggregate_bandwidth: float
    per_node_bandwidth: float
    open_latency_s: float

    def __post_init__(self) -> None:
        if self.aggregate_bandwidth <= 0 or self.per_node_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: bandwidths must be positive")
        if self.per_node_bandwidth > self.aggregate_bandwidth:
            raise ConfigurationError(
                f"{self.name}: one node cannot exceed the aggregate"
            )
        if self.open_latency_s < 0:
            raise ConfigurationError(f"{self.name}: latency must be >= 0")

    def transfer_seconds(self, size_bytes: float) -> float:
        """Uncontended time for one node to move ``size_bytes``."""
        if size_bytes < 0:
            raise ConfigurationError("size must be non-negative")
        return self.open_latency_s + size_bytes / self.per_node_bandwidth

    def aggregate_seconds(self, size_bytes: float) -> float:
        """Time the payload occupies the shared aggregate channel."""
        if size_bytes < 0:
            raise ConfigurationError("size must be non-negative")
        return size_bytes / self.aggregate_bandwidth


def fefs() -> StorageSpec:
    """K/Fugaku-generation FEFS-class filesystem."""
    return StorageSpec(name="FEFS", aggregate_bandwidth=150 * GB_S,
                       per_node_bandwidth=3 * GB_S, open_latency_s=2 * MS)


def lustre() -> StorageSpec:
    """Generic mid-size Lustre."""
    return StorageSpec(name="Lustre", aggregate_bandwidth=50 * GB_S,
                       per_node_bandwidth=2 * GB_S, open_latency_s=3 * MS)
