"""ASCII tables and CSV series — the report output layer.

The benchmark harness prints every paper table/figure as both a
fixed-width table (for eyes) and CSV (for replotting).  No plotting
libraries are used; series are data.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass
class Table:
    """A fixed-width text table with CSV export."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    note: str = ""

    def add(self, *cells) -> None:
        row = [self._fmt(c) for c in cells]
        if len(row) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 10:
                return f"{cell:.1f}"
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        out.write(line(self.headers) + "\n")
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in self.rows:
            out.write(line(row) + "\n")
        if self.note:
            out.write(f"note: {self.note}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        def esc(c: str) -> str:
            if "," in c or '"' in c:
                return '"' + c.replace('"', '""') + '"'
            return c

        lines = [",".join(esc(h) for h in self.headers)]
        lines.extend(",".join(esc(c) for c in row) for row in self.rows)
        return "\n".join(lines) + "\n"

    def column(self, header: str) -> list[str]:
        try:
            idx = self.headers.index(header)
        except ValueError:
            raise ConfigurationError(
                f"table has no column {header!r}; columns: {self.headers}"
            ) from None
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
