"""Full-report generation: every artifact into one Markdown document.

``python -m repro report -o REPORT.md`` (or :func:`generate_report`)
regenerates the complete artifact set — T1-T3, F1-F10, A1-A6 — and writes
them as a single Markdown file with fenced tables, ready to diff against
``benchmarks/results/`` or paste into an evaluation write-up.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core import ablations, figures, projection

#: (artifact id, title, callable(cache, workers) returning a Table or
#: (Table, data)).
_FAST_ARTIFACTS = [
    ("T1", "Evaluated processors",
     lambda cache, workers: figures.t1_processor_specs()),
    ("T2", "The Fiber Miniapp Suite",
     lambda cache, workers: figures.t2_miniapp_table()),
    ("F6", "Roofline placement", lambda cache, workers: figures.f6_roofline()),
    ("F7", "STREAM bandwidth scaling",
     lambda cache, workers: figures.f7_stream_scaling()),
    ("P1", "Simulated PMU profile (ccs-qcd, 4x12)",
     lambda cache, workers: _profile_artifact()),
]


def _profile_artifact():
    from repro.perf import profile_summary_table

    return profile_summary_table()

_SWEEP_ARTIFACTS = [
    ("F1", "MPI x OpenMP sweep",
     lambda cache, workers: figures.f1_mpi_omp_sweep(cache=cache,
                                                     workers=workers)),
    ("F2", "Thread-stride comparison",
     lambda cache, workers: figures.f2_thread_stride(cache=cache,
                                                     workers=workers)),
    ("F3", "Process-allocation methods",
     lambda cache, workers: figures.f3_process_allocation(cache=cache,
                                                          workers=workers)),
    ("F4", "Compiler tuning on as-is data",
     lambda cache, workers: figures.f4_compiler_tuning(cache=cache,
                                                       workers=workers)),
    ("F5", "Cross-processor comparison",
     lambda cache, workers: figures.f5_processor_comparison(cache=cache,
                                                            workers=workers)),
    ("F8", "Multi-node strong scaling",
     lambda cache, workers: figures.f8_multinode_scaling(cache=cache,
                                                         workers=workers)),
    ("F9", "Weak scaling", lambda cache, workers: figures.f9_weak_scaling()),
    ("F10", "Time-breakdown attribution",
     lambda cache, workers: figures.f10_time_breakdown()),
]

_ABLATION_ARTIFACTS = [
    ("A1", "SVE vector-length study",
     lambda cache, workers: ablations.a1_vector_length(cache=cache)),
    ("A2", "Power-control modes",
     lambda cache, workers: ablations.a2_power_modes()),
    ("A3", "Micro-architecture sensitivity",
     lambda cache, workers: ablations.a3_microarchitecture()),
    ("A4", "SSSP projection",
     lambda cache, workers: projection.a4_sssp_projection()),
    ("A5", "Collective-algorithm crossovers",
     lambda cache, workers: ablations.a5_collective_algorithms()),
    ("A6", "Mixed-precision lattice solve",
     lambda cache, workers: ablations.a6_mixed_precision()),
]


def _unwrap(result):
    return result[0] if isinstance(result, tuple) else result


def generate_report(
    include_sweeps: bool = True,
    include_ablations: bool = True,
    progress=None,
    cache=None,
    workers: int = 1,
) -> str:
    """Build the Markdown report text.

    ``progress`` is an optional callable receiving each artifact id as it
    completes (the CLI uses it for console feedback).  ``cache`` (a dict
    or :class:`~repro.core.cache.ResultCache`) is shared by every sweep
    artifact; ``workers`` fans each sweep out over a process pool.
    """
    if cache is None:
        cache = {}
    sections = []
    artifacts = list(_FAST_ARTIFACTS)
    if include_sweeps:
        artifacts += _SWEEP_ARTIFACTS
    if include_ablations:
        artifacts += _ABLATION_ARTIFACTS
    # natural ordering: T1, T2, F1..F10, A1..A6, P1 (not lexicographic)
    _letter_rank = {"T": 0, "F": 1, "A": 2, "P": 3}
    artifacts.sort(key=lambda a: (_letter_rank[a[0][0]], int(a[0][1:])))

    for artifact_id, title, builder in artifacts:
        table = _unwrap(builder(cache, workers))
        body = table.render()
        sections.append(f"## {artifact_id} — {title}\n\n```\n{body}```\n")
        if progress is not None:
            progress(artifact_id)

    t3_note = ""
    if include_sweeps:
        _, sweeps = figures.f1_mpi_omp_sweep(cache=cache, workers=workers)
        t3 = figures.t3_best_config(sweeps)
        t3_note = f"## T3 — Best configuration per miniapp\n\n```\n{t3.render()}```\n"

    header = (
        "# Reproduction report — A64FX / Fiber Miniapp Suite "
        "(CLUSTER 2021)\n\n"
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} by "
        "`repro.core.reportgen`.  All times are simulated seconds from the "
        "machine model; shapes, not absolute values, are the reproduction "
        "targets (see EXPERIMENTS.md).\n"
    )
    parts = [header] + sections
    if t3_note:
        parts.append(t3_note)
    return "\n".join(parts)


def write_report(path: str | Path, **kwargs) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.write_text(generate_report(**kwargs))
    return path
