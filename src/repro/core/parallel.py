"""Process-pool fan-out for sweep execution, with failure containment.

Sweep points are independent simulations, so a sweep is embarrassingly
parallel.  :func:`run_configs` dispatches the cache-missing, de-duplicated
subset of a config list over a ``ProcessPoolExecutor`` and reassembles
results in the original order, so ``run_sweep(..., workers=N)`` is
row-for-row identical to the serial path.

Design points:

* **cache first** — lookups (and stores) happen in the parent process
  only; workers never touch the cache file, so there are no concurrent
  writers;
* **dedup** — identical configs within one sweep are simulated once and
  fanned back out to every position they occupy;
* **per-row error capture** — a worker wraps each simulation and ships
  the exception back as a value (with its traceback string and worker
  pid attached), so one failing config cannot kill a 100-point sweep;
* **incremental completion** — results are stored to the cache (and
  reported via ``on_result``) *as they arrive*, not after the whole
  batch, so a sweep killed mid-run keeps every finished row and can be
  resumed (see ``run_sweep(..., resume=True)``);
* **pool resilience** — a crashed worker (``BrokenProcessPool``) or a
  stuck pool (no completion within :attr:`RetryPolicy.timeout_s`) loses
  only the in-flight configs; survivors are retried on a fresh pool with
  exponential backoff and, as the last resort, re-dispatched serially in
  the parent;
* **graceful fallback** — ``workers <= 1``, a single missing config, or
  an unavailable pool (sandboxed environments without ``fork``/semaphores)
  all degrade to the serial loop.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro import telemetry
from repro.core.experiment import ExperimentConfig
from repro.core.runner import Row, run_config

#: Attribute names used to piggyback worker context on captured exceptions
#: (plain attributes survive pickling back to the parent).
_TB_ATTR = "_repro_traceback"
_PID_ATTR = "_repro_pid"


@dataclass(frozen=True)
class SweepError:
    """One captured per-row failure."""

    config: ExperimentConfig
    error: str     # exception class name
    message: str
    #: Formatted traceback from the raising process ("" when unknown).
    traceback: str = ""
    #: PID of the worker (or parent, serial path) that raised.
    worker_pid: int | None = None
    #: How many times the config was attempted before being quarantined.
    attempts: int = 1

    def __str__(self) -> str:
        where = f" [pid {self.worker_pid}]" if self.worker_pid else ""
        return f"{self.config.label()}{where}: {self.error}: {self.message}"

    def details(self) -> str:
        """The full diagnostic: header plus the originating traceback."""
        if not self.traceback:
            return str(self)
        return f"{self}\n{self.traceback.rstrip()}"

    @classmethod
    def from_exception(cls, config: ExperimentConfig, exc: Exception,
                       attempts: int = 1) -> "SweepError":
        return cls(
            config=config,
            error=type(exc).__name__,
            message=str(exc),
            traceback=getattr(exc, _TB_ATTR, ""),
            worker_pid=getattr(exc, _PID_ATTR, None),
            attempts=attempts,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How hard :func:`run_configs` fights for a parallel sweep.

    ``timeout_s`` is a *progress* timeout: if no future completes within
    the window, the pool is declared stuck and its pending configs are
    retried.  ``max_attempts`` bounds pool passes (crashed or stuck pools
    trigger a retry after an exponentially growing ``backoff_s`` pause);
    whatever still isn't done after the last pass runs serially in the
    parent, so a broken pool can degrade throughput but never results.
    """

    max_attempts: int = 3
    backoff_s: float = 0.1
    timeout_s: float | None = 300.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive when given")


def default_workers() -> int:
    """A sensible ``workers`` value for "use the machine": CPU count."""
    return os.cpu_count() or 1


def simulate_config(config: ExperimentConfig) -> tuple[bool, Any]:
    """Top-level (picklable) worker: simulate one config.

    Returns ``(True, Row)`` or ``(False, exception)`` — exceptions travel
    back as values (annotated with the traceback and worker pid) so the
    parent controls error policy.  This is the one sweep-point
    entrypoint every pool shares: the sweep fan-out here and the
    service's :mod:`repro.service.scheduler` dispatch the same function,
    so a row is bit-identical whichever path produced it.
    """
    try:
        return True, run_config(config)
    except Exception as exc:  # noqa: BLE001 - per-row capture by design
        setattr(exc, _TB_ATTR, traceback.format_exc())
        setattr(exc, _PID_ATTR, os.getpid())
        return False, exc


#: Backward-compatible alias (pre-service name).
_pool_run = simulate_config


#: Completion callback: (config, ok, Row-or-exception) -> None.
ResultCallback = Callable[[ExperimentConfig, bool, Any], None]


def _one_pool_pass(
    configs: list[ExperimentConfig],
    workers: int,
    note: ResultCallback,
    policy: RetryPolicy,
) -> list[ExperimentConfig]:
    """One ProcessPoolExecutor pass; returns the configs it lost.

    Completions are consumed as they happen (completion order), so the
    parent checkpoints rows even if the pool dies a moment later.  A
    ``BrokenProcessPool`` (worker crashed) or a progress timeout ends the
    pass early; pending configs become the survivors to retry.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    # Workers never open their own run directories: the parent records
    # the sweep, so telemetry is suppressed at pool start (works for both
    # fork and spawn start methods).
    pool = ProcessPoolExecutor(max_workers=min(workers, len(configs)),
                               initializer=telemetry.suppress_in_worker)
    pending: dict[Any, ExperimentConfig] = {}
    try:
        pending = {pool.submit(simulate_config, c): c for c in configs}
        while pending:
            done, _ = wait(pending, timeout=policy.timeout_s,
                           return_when=FIRST_COMPLETED)
            if not done:
                # no completion inside the window: the pool is stuck
                return _abandon(pool, pending)
            for fut in done:
                config = pending.pop(fut)
                try:
                    ok, value = fut.result()
                except BrokenProcessPool:
                    # this config's worker died; the whole pool is toast
                    pending[fut] = config
                    return _abandon(pool, pending)
                except Exception:  # noqa: BLE001 - pool-level failure
                    # result unpickling / executor internals: lose only
                    # this config, keep draining the rest
                    pending[fut] = config
                    return _abandon(pool, pending)
                note(config, ok, value)
    finally:
        if not pending:
            pool.shutdown(wait=True)
    return []


def _abandon(pool, pending: dict) -> list[ExperimentConfig]:
    """Tear a broken/stuck pool down without waiting on wedged workers."""
    for fut in pending:
        fut.cancel()
    pool.shutdown(wait=False, cancel_futures=True)
    return list(pending.values())


def _run_unique(
    unique: list[ExperimentConfig],
    workers: int,
    note: ResultCallback,
    policy: RetryPolicy,
) -> None:
    """Simulate each unique config, parallel if possible, resilient
    to worker crashes and stuck pools; every config is eventually
    reported through ``note`` exactly once."""
    remaining = list(unique)
    if workers > 1 and len(remaining) > 1:
        usable = True
        delay = policy.backoff_s
        for attempt in range(policy.max_attempts):
            if not remaining:
                return
            if attempt > 0 and delay > 0:
                telemetry.count("pool.restarts")
                telemetry.count("pool.retries", len(remaining))
                time.sleep(delay)
                delay *= 2
            try:
                remaining = _one_pool_pass(remaining, workers, note, policy)
            except (ImportError, OSError, PermissionError):
                usable = False   # no usable pool here — go serial
                telemetry.count("pool.unavailable")
                break
            if len(remaining) <= 1:
                break            # a single survivor is cheaper serially
        if usable and not remaining:
            return
        telemetry.count("pool.serial_fallback", len(remaining))
    for c in remaining:
        note(c, *simulate_config(c))


def run_configs(
    configs: list[ExperimentConfig],
    *,
    workers: int = 1,
    cache=None,
    on_result: ResultCallback | None = None,
    retry: RetryPolicy | None = None,
) -> list[Row | Exception]:
    """Simulate ``configs``, returning one outcome per input, in order.

    Each outcome is the :class:`Row`, or the exception that config raised.
    ``cache`` may be a plain dict or a
    :class:`~repro.core.cache.ResultCache`; hits skip dispatch entirely
    and fresh rows are stored back from the parent process **as each
    config completes** (so an interrupted sweep keeps its finished rows).
    ``on_result`` observes every fresh completion (cache hits excluded)
    in completion order — the journaling hook for resumable sweeps.
    ``retry`` tunes the pool-resilience policy (see :class:`RetryPolicy`).
    """
    policy = retry if retry is not None else RetryPolicy()
    outcomes: list[Row | Exception | None] = [None] * len(configs)

    # 1. serve cache hits; collect positions of each unique missing config
    pending: dict[ExperimentConfig, list[int]] = {}
    for i, config in enumerate(configs):
        row = cache.get(config) if cache is not None else None
        if row is not None:
            outcomes[i] = row
        else:
            pending.setdefault(config, []).append(i)

    if not pending:
        return outcomes  # type: ignore[return-value]

    # 2. simulate the unique misses; checkpoint each as it completes
    def note(config: ExperimentConfig, ok: bool, value: Any) -> None:
        telemetry.count("sweep.rows_completed" if ok
                        else "sweep.rows_failed")
        if ok and cache is not None:
            cache[config] = value
        for i in pending[config]:
            outcomes[i] = value
        if on_result is not None:
            on_result(config, ok, value)

    _run_unique(list(pending), workers, note, policy)
    return outcomes  # type: ignore[return-value]
