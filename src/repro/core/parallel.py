"""Process-pool fan-out for sweep execution.

Sweep points are independent simulations, so a sweep is embarrassingly
parallel.  :func:`run_configs` dispatches the cache-missing, de-duplicated
subset of a config list over a ``ProcessPoolExecutor`` and reassembles
results in the original order, so ``run_sweep(..., workers=N)`` is
row-for-row identical to the serial path.

Design points:

* **cache first** — lookups (and stores) happen in the parent process
  only; workers never touch the cache file, so there are no concurrent
  writers;
* **dedup** — identical configs within one sweep are simulated once and
  fanned back out to every position they occupy;
* **per-row error capture** — a worker wraps each simulation and ships
  the exception back as a value, so one failing config cannot kill a
  100-point sweep (the caller decides whether to raise or record);
* **graceful fallback** — ``workers <= 1``, a single missing config, or
  an unavailable pool (sandboxed environments without ``fork``/semaphores)
  all degrade to the serial loop.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.core.experiment import ExperimentConfig
from repro.core.runner import Row, run_config


@dataclass(frozen=True)
class SweepError:
    """One captured per-row failure."""

    config: ExperimentConfig
    error: str     # exception class name
    message: str

    def __str__(self) -> str:
        return f"{self.config.label()}: {self.error}: {self.message}"


def default_workers() -> int:
    """A sensible ``workers`` value for "use the machine": CPU count."""
    return os.cpu_count() or 1


def _pool_run(config: ExperimentConfig) -> tuple[bool, Any]:
    """Top-level (picklable) worker: simulate one config.

    Returns ``(True, Row)`` or ``(False, exception)`` — exceptions travel
    back as values so the parent controls error policy.
    """
    try:
        return True, run_config(config)
    except Exception as exc:  # noqa: BLE001 - per-row capture by design
        return False, exc


def _run_unique(unique: list[ExperimentConfig],
                workers: int) -> list[tuple[bool, Any]]:
    """Simulate each unique config, parallel if possible."""
    if workers > 1 and len(unique) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            n = min(workers, len(unique))
            chunksize = max(1, len(unique) // (n * 4))
            with ProcessPoolExecutor(max_workers=n) as pool:
                return list(pool.map(_pool_run, unique,
                                     chunksize=chunksize))
        except (ImportError, OSError, PermissionError):
            pass  # no usable pool here — fall through to serial
    return [_pool_run(c) for c in unique]


def run_configs(
    configs: list[ExperimentConfig],
    *,
    workers: int = 1,
    cache=None,
) -> list[Row | Exception]:
    """Simulate ``configs``, returning one outcome per input, in order.

    Each outcome is the :class:`Row`, or the exception that config raised.
    ``cache`` may be a plain dict or a
    :class:`~repro.core.cache.ResultCache`; hits skip dispatch entirely
    and fresh rows are stored back from the parent process.
    """
    outcomes: list[Row | Exception | None] = [None] * len(configs)

    # 1. serve cache hits; collect positions of each unique missing config
    pending: dict[ExperimentConfig, list[int]] = {}
    for i, config in enumerate(configs):
        row = cache.get(config) if cache is not None else None
        if row is not None:
            outcomes[i] = row
        else:
            pending.setdefault(config, []).append(i)

    if not pending:
        return outcomes  # type: ignore[return-value]

    # 2. simulate the unique misses (possibly in parallel)
    unique = list(pending)
    results = _run_unique(unique, workers)

    # 3. reassemble in input order; store fresh rows
    for config, (ok, value) in zip(unique, results):
        if ok and cache is not None:
            cache[config] = value
        for i in pending[config]:
            outcomes[i] = value
    return outcomes  # type: ignore[return-value]
