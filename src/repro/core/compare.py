"""Cross-processor comparison (the F5 experiment).

Runs each miniapp node-vs-node on every cataloged processor at that
processor's best single-node MPI x OpenMP configuration (a small inner
sweep — the paper likewise reports tuned-per-machine numbers), and
normalizes to A64FX = 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import ExperimentConfig, single_node_configs
from repro.core.runner import Row, run_sweep
from repro.machine import catalog


@dataclass(frozen=True)
class Comparison:
    """Per-app best rows across processors."""

    app: str
    dataset: str
    best: dict[str, Row]          # processor -> fastest row

    def relative_to(self, reference: str = "A64FX") -> dict[str, float]:
        """elapsed(reference) / elapsed(processor): >1 = faster than ref."""
        ref = self.best[reference]
        return {
            proc: ref.elapsed / row.elapsed
            for proc, row in self.best.items()
        }


def candidate_configs(processor: str) -> list[tuple[int, int]]:
    """A small representative (ranks, threads) grid for one node."""
    cores = catalog.by_name(processor).cores_per_node
    all_cfgs = single_node_configs(cores)
    # thin the grid: extremes plus near-square hybrids
    picks = {all_cfgs[0], all_cfgs[-1]}
    n_domains = catalog.by_name(processor).domains_per_node
    for ranks, threads in all_cfgs:
        if ranks in (n_domains, 2 * n_domains):
            picks.add((ranks, threads))
    return sorted(picks)


def compare_processors(
    app: str,
    dataset: str = "as-is",
    processors: list[str] | None = None,
    options_preset: str = "kfast",
    cache=None,
    workers: int = 1,
    _cache=None,
) -> Comparison:
    """Best-of-node comparison of one miniapp across processors."""
    cache = cache if cache is not None else _cache
    procs = processors if processors is not None else list(catalog.PROCESSORS)
    best: dict[str, Row] = {}
    for proc in procs:
        configs = [
            ExperimentConfig(
                app=app, dataset=dataset, processor=proc,
                n_ranks=nr, n_threads=nt, options_preset=options_preset,
            )
            for nr, nt in candidate_configs(proc)
        ]
        sweep = run_sweep(f"{app}-{proc}", configs, cache, workers=workers)
        best[proc] = sweep.fastest()
    return Comparison(app=app, dataset=dataset, best=best)
