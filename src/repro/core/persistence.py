"""JSON persistence for sweep results.

Long experiment campaigns want durable run records: :func:`save_sweep` /
:func:`load_sweep` round-trip a :class:`~repro.core.runner.SweepResult`
(including the full configuration of every row) through a stable JSON
schema, so results can be archived, diffed between model versions, and
re-plotted without re-simulation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.experiment import ExperimentConfig
from repro.core.runner import Row, SweepResult
from repro.errors import ConfigurationError
from repro.runtime.affinity import ProcessAllocation, ThreadBinding

#: Schema version written into every file; bump on breaking changes.
SCHEMA_VERSION = 1


def config_to_dict(config: ExperimentConfig) -> dict:
    return {
        "app": config.app,
        "dataset": config.dataset,
        "processor": config.processor,
        "n_nodes": config.n_nodes,
        "n_ranks": config.n_ranks,
        "n_threads": config.n_threads,
        "binding": {"policy": config.binding.policy,
                    "stride": config.binding.stride},
        "allocation": config.allocation.method,
        "options_preset": config.options_preset,
        "data_policy": config.data_policy,
    }


def config_from_dict(d: dict) -> ExperimentConfig:
    try:
        return ExperimentConfig(
            app=d["app"],
            dataset=d["dataset"],
            processor=d["processor"],
            n_nodes=d["n_nodes"],
            n_ranks=d["n_ranks"],
            n_threads=d["n_threads"],
            binding=ThreadBinding(d["binding"]["policy"],
                                  d["binding"]["stride"]),
            allocation=ProcessAllocation(d["allocation"]),
            options_preset=d["options_preset"],
            data_policy=d["data_policy"],
        )
    except KeyError as exc:
        raise ConfigurationError(f"malformed config record: missing {exc}") \
            from None


def row_to_dict(row: Row) -> dict:
    return {
        "config": config_to_dict(row.config),
        "elapsed": row.elapsed,
        "gflops": row.gflops,
        "dram_gbytes_per_s": row.dram_gbytes_per_s,
        "comm_fraction": row.comm_fraction,
    }


def row_from_dict(d: dict) -> Row:
    return Row(
        config=config_from_dict(d["config"]),
        elapsed=d["elapsed"],
        gflops=d["gflops"],
        dram_gbytes_per_s=d["dram_gbytes_per_s"],
        comm_fraction=d["comm_fraction"],
    )


def save_sweep(sweep: SweepResult, path: str | Path) -> Path:
    """Write a sweep to JSON; returns the path."""
    payload = {
        "schema": SCHEMA_VERSION,
        "name": sweep.name,
        "rows": [row_to_dict(r) for r in sweep.rows],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_sweep(path: str | Path) -> SweepResult:
    """Load a sweep written by :func:`save_sweep`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read sweep file {path}: {exc}") \
            from None
    if payload.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path}: schema {payload.get('schema')!r} is not "
            f"{SCHEMA_VERSION} (regenerate the file)"
        )
    sweep = SweepResult(payload["name"])
    for rd in payload["rows"]:
        sweep.add(row_from_dict(rd))
    return sweep
