"""JSON persistence for sweep results.

Long experiment campaigns want durable run records: :func:`save_sweep` /
:func:`load_sweep` round-trip a :class:`~repro.core.runner.SweepResult`
(including the full configuration of every row) through a stable JSON
schema, so results can be archived, diffed between model versions, and
re-plotted without re-simulation.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.core.experiment import ExperimentConfig
from repro.core.runner import Row, SweepResult
from repro.errors import ConfigurationError
from repro.runtime.affinity import ProcessAllocation, ThreadBinding

#: Schema version written into every file; bump on breaking changes.
SCHEMA_VERSION = 1

#: Oldest schema this reader still understands.
MIN_SCHEMA_VERSION = 1


def config_to_dict(config: ExperimentConfig) -> dict:
    return {
        "app": config.app,
        "dataset": config.dataset,
        "processor": config.processor,
        "n_nodes": config.n_nodes,
        "n_ranks": config.n_ranks,
        "n_threads": config.n_threads,
        "binding": {"policy": config.binding.policy,
                    "stride": config.binding.stride},
        "allocation": config.allocation.method,
        "options_preset": config.options_preset,
        "data_policy": config.data_policy,
    }


def config_from_dict(d: dict) -> ExperimentConfig:
    try:
        return ExperimentConfig(
            app=d["app"],
            dataset=d["dataset"],
            processor=d["processor"],
            n_nodes=d["n_nodes"],
            n_ranks=d["n_ranks"],
            n_threads=d["n_threads"],
            binding=ThreadBinding(d["binding"]["policy"],
                                  d["binding"]["stride"]),
            allocation=ProcessAllocation(d["allocation"]),
            options_preset=d["options_preset"],
            data_policy=d["data_policy"],
        )
    except KeyError as exc:
        raise ConfigurationError(f"malformed config record: missing {exc}") \
            from None


def row_to_dict(row: Row) -> dict:
    return {
        "config": config_to_dict(row.config),
        "elapsed": row.elapsed,
        "gflops": row.gflops,
        "dram_gbytes_per_s": row.dram_gbytes_per_s,
        "comm_fraction": row.comm_fraction,
        "engine": row.engine,
    }


def row_from_dict(d: dict) -> Row:
    try:
        return Row(
            config=config_from_dict(d["config"]),
            elapsed=d["elapsed"],
            gflops=d["gflops"],
            dram_gbytes_per_s=d["dram_gbytes_per_s"],
            comm_fraction=d["comm_fraction"],
            # rows written before the analytic engine existed are event rows
            engine=d.get("engine", "event"),
        )
    except KeyError as exc:
        raise ConfigurationError(f"malformed row record: missing {exc}") \
            from None


def save_sweep(sweep: SweepResult, path: str | Path) -> Path:
    """Write a sweep to JSON atomically; returns the path.

    The payload lands in a temporary sibling first and is moved into
    place with ``os.replace``, so readers never observe a half-written
    file even if the writer dies mid-dump.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "name": sweep.name,
        "rows": [row_to_dict(r) for r in sweep.rows],
    }
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent or Path("."),
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(payload, indent=2))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_sweep(path: str | Path) -> SweepResult:
    """Load a sweep written by :func:`save_sweep`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read sweep file {path}: {exc}") \
            from None
    schema = payload.get("schema")
    if not isinstance(schema, int):
        raise ConfigurationError(
            f"{path}: missing or non-integer schema field {schema!r} "
            f"(not a repro sweep file?)"
        )
    if schema > SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path}: schema {schema} was written by a newer repro "
            f"(this build reads up to {SCHEMA_VERSION}); upgrade repro "
            f"or regenerate the file"
        )
    if schema < MIN_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path}: schema {schema} is older than the oldest supported "
            f"version {MIN_SCHEMA_VERSION} (regenerate the file)"
        )
    sweep = SweepResult(payload["name"])
    for rd in payload["rows"]:
        sweep.add(row_from_dict(rd))
    return sweep
