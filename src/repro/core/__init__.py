"""The evaluation framework — the paper's deliverable.

Everything the paper's evaluation section does is a function here:

* :mod:`~repro.core.experiment` — configuration spaces (MPI x OpenMP
  grids, binding/allocation policies, compiler option sets, processors);
* :mod:`~repro.core.runner` — executes sweeps into result tables;
* :mod:`~repro.core.cache` — persistent content-addressed result cache
  (config digest x model fingerprint);
* :mod:`~repro.core.parallel` — process-pool sweep fan-out with per-row
  error capture;
* :mod:`~repro.core.metrics` — speedup / efficiency / best-config helpers;
* :mod:`~repro.core.analysis` — roofline placement and bottleneck
  attribution;
* :mod:`~repro.core.compare` — cross-processor normalization;
* :mod:`~repro.core.report` — ASCII tables and CSV series;
* :mod:`~repro.core.figures` — one entry point per paper table/figure
  (T1-T3, F1-F10; ablations A1-A6 live in sibling modules), used by
  ``benchmarks/`` and the examples.
"""

from repro.core.cache import ResultCache, default_cache_dir, model_fingerprint
from repro.core.experiment import (
    MPI_OMP_CONFIGS,
    STRIDE_SWEEP,
    ExperimentConfig,
    single_node_configs,
)
from repro.core.metrics import best_config, parallel_efficiency, speedup
from repro.core.parallel import SweepError, default_workers
from repro.core.runner import Row, SweepResult, run_config, run_sweep
from repro.core.report import Table

__all__ = [
    "ExperimentConfig",
    "MPI_OMP_CONFIGS",
    "STRIDE_SWEEP",
    "single_node_configs",
    "Row",
    "SweepResult",
    "SweepError",
    "ResultCache",
    "default_cache_dir",
    "default_workers",
    "model_fingerprint",
    "run_config",
    "run_sweep",
    "speedup",
    "parallel_efficiency",
    "best_config",
    "Table",
]
