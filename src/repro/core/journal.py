"""Append-only sweep journal: the bookkeeping behind ``--resume``.

Completed *rows* survive a killed sweep through the persistent
:class:`~repro.core.cache.ResultCache` (each row is checkpointed the
moment it completes).  What the cache cannot remember is *failure*: a
config that raised has no row, so a naive restart would re-run it —
forever, if the failure is deterministic.  The journal closes that gap.

Every fresh completion of a sweep appends one JSONL record::

    {"format": 1, "sweep": "f1", "key": "<config digest>",
     "status": "done" | "failed", "error": "...", "message": "...",
     "pid": 1234}

keyed by the same content digest the result cache uses.  On
``run_sweep(..., resume=True)`` the journal's failure counts decide
which configs are **quarantined** — recorded straight into
``SweepResult.errors`` without burning another attempt.  A later
success clears a config's strike count, so transient failures (a
worker OOM-killed once) do not poison the config forever.

Like the result cache, the journal is written with single ``O_APPEND``
writes and tolerates torn or corrupt lines on load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.core.cache import config_digest
from repro.core.experiment import ExperimentConfig

#: On-disk journal record format version.
JOURNAL_FORMAT = 1


def _fresh_entry() -> dict[str, Any]:
    return {"fails": 0, "done": False, "error": "", "message": "",
            "pid": None}


class SweepJournal:
    """Progress log for one cache directory, shared by all sweeps in it."""

    FILENAME = "sweep-journal.jsonl"

    __slots__ = ("path", "_state", "_loaded")

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: (sweep name, config digest) -> aggregated status
        self._state: dict[tuple[str, str], dict[str, Any]] = {}
        self._loaded = False

    @classmethod
    def for_cache(cls, cache) -> "SweepJournal | None":
        """The journal living beside a persistent cache's JSONL file.

        Returns ``None`` for non-persistent caches (plain dicts have no
        directory, so there is nothing durable to journal against).
        """
        directory = getattr(cache, "directory", None)
        if directory is None:
            return None
        return cls(Path(directory) / cls.FILENAME)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        self._loaded = True
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        # Bytes, not text: a line torn mid-multibyte UTF-8 sequence must
        # cost only that line, not fail the whole load.
        for raw_line in raw.splitlines():
            raw_line = raw_line.strip()
            if not raw_line:
                continue
            try:
                rec = json.loads(raw_line.decode())
                if rec.get("format") != JOURNAL_FORMAT:
                    continue
                key = (rec["sweep"], rec["key"])
                status = rec["status"]
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                continue  # torn write or foreign line: replay what's intact
            self._apply(key, status, rec)

    def _apply(self, key: tuple[str, str], status: str, rec: dict) -> None:
        entry = self._state.setdefault(key, _fresh_entry())
        if status == "done":
            entry["done"] = True
            entry["fails"] = 0  # success clears the strike count
        elif status == "failed":
            entry["done"] = False
            entry["fails"] += 1
            entry["error"] = str(rec.get("error", ""))
            entry["message"] = str(rec.get("message", ""))
            entry["pid"] = rec.get("pid")

    def _append(self, rec: dict) -> None:
        line = json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    def status(self, sweep: str, config: ExperimentConfig) -> dict | None:
        """Aggregated journal state for one config, or ``None`` if the
        config was never journaled (keys: done, fails, error, message,
        pid)."""
        if not self._loaded:
            self._load()
        entry = self._state.get((sweep, config_digest(config)))
        return dict(entry) if entry is not None else None

    def failures(self, sweep: str, config: ExperimentConfig) -> int:
        """Consecutive failure count for a config (0 if unknown/done)."""
        entry = self.status(sweep, config)
        return 0 if entry is None else int(entry["fails"])

    def quarantined(self, sweep: str, config: ExperimentConfig,
                    threshold: int) -> dict | None:
        """The journal entry if ``config`` has failed ``threshold``+
        consecutive times for ``sweep`` (the quarantine predicate shared
        by ``run_sweep(..., resume=True)`` and the sweep service), else
        ``None``."""
        entry = self.status(sweep, config)
        if entry is not None and int(entry["fails"]) >= threshold:
            return entry
        return None

    def record(self, sweep: str, config: ExperimentConfig, ok: bool,
               exc: BaseException | None = None) -> None:
        """Journal one fresh completion (called as each config finishes)."""
        if not self._loaded:
            self._load()
        digest = config_digest(config)
        rec: dict[str, Any] = {
            "format": JOURNAL_FORMAT,
            "sweep": sweep,
            "key": digest,
            "status": "done" if ok else "failed",
        }
        if not ok:
            rec["error"] = type(exc).__name__ if exc is not None else ""
            rec["message"] = str(exc) if exc is not None else ""
            pid = getattr(exc, "_repro_pid", None)
            if pid is not None:
                rec["pid"] = pid
        telemetry.count("journal.done" if ok else "journal.failed")
        self._apply((sweep, digest), rec["status"], rec)
        self._append(rec)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<SweepJournal {self.path} entries={len(self._state)}>"
