"""Performance analysis: roofline placement and bottleneck attribution.

Mirrors the paper's analysis section: for each miniapp kernel, where does
it sit on the machine's roofline (arithmetic intensity vs. attainable
FLOP/s), and which resource bounds each phase of a run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compile.compiler import Compiler
from repro.compile.options import CompilerOptions, PRESETS
from repro.kernels.kernel import LoopKernel
from repro.kernels.timing import phase_time
from repro.kernels.workingset import level_traffic
from repro.machine.topology import Cluster
from repro.miniapps.base import MiniApp


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on a machine roofline."""

    kernel: str
    arithmetic_intensity: float      # FLOPs per DRAM byte
    attainable_gflops: float         # per-core ceiling at that intensity
    achieved_gflops: float           # model-predicted per-core performance
    bound: str

    @property
    def memory_bound(self) -> bool:
        return self.bound in ("dram", "l2", "latency")


@dataclass(frozen=True)
class Roofline:
    """Machine ceilings (per core, with fair bandwidth shares)."""

    name: str
    peak_gflops: float               # per-core fp64 peak
    mem_bandwidth_gbytes: float      # per-core fair share of sustained BW

    @property
    def ridge_intensity(self) -> float:
        """AI at which compute and memory ceilings meet."""
        return self.peak_gflops / self.mem_bandwidth_gbytes

    def attainable(self, intensity: float) -> float:
        return min(self.peak_gflops, intensity * self.mem_bandwidth_gbytes)


def machine_roofline(cluster: Cluster) -> Roofline:
    """Per-core roofline of a node with every core active."""
    dom = cluster.node.chips[0].domains[0]
    share = dom.memory.per_stream_bandwidth(dom.n_cores)
    return Roofline(
        name=cluster.name,
        peak_gflops=dom.core.peak_flops_fp64 / 1e9,
        mem_bandwidth_gbytes=share / 1e9,
    )


def kernel_roofline_point(
    kernel: LoopKernel,
    cluster: Cluster,
    options: CompilerOptions | None = None,
) -> RooflinePoint:
    """Place one kernel on a cluster's roofline (all cores active)."""
    dom = cluster.node.chips[0].domains[0]
    opts = options if options is not None else PRESETS["kfast"]
    ck = Compiler(opts).compile(kernel, dom.core)
    traffic = level_traffic(kernel, dom.l1d, dom.l2)
    pt = phase_time(
        ck, 1e6, dom.core, dom.l1d, dom.l2,
        mem_bandwidth_share=dom.memory.per_stream_bandwidth(dom.n_cores),
        l2_bandwidth_share=dom.l2_bandwidth_share(dom.n_cores),
        mem_latency_s=dom.memory.latency_s,
    )
    roof = machine_roofline(cluster)
    ai = kernel.dram_arithmetic_intensity(traffic.dram_bytes)
    return RooflinePoint(
        kernel=kernel.name,
        arithmetic_intensity=ai,
        attainable_gflops=roof.attainable(ai),
        achieved_gflops=pt.achieved_flops_per_s / 1e9,
        bound=pt.bound,
    )


def app_roofline(app: MiniApp, cluster: Cluster, dataset: str = "as-is",
                 options: CompilerOptions | None = None) -> list[RooflinePoint]:
    """Roofline points for every kernel of a miniapp."""
    ds = app.dataset(dataset)
    return [
        kernel_roofline_point(k, cluster, options)
        for k in app.kernels(ds).values()
    ]


def bottleneck_summary(points: list[RooflinePoint]) -> str:
    """Verdict string ("memory-bound", "compute-bound", "mixed")."""
    if not points:
        return "unknown"
    mem = sum(1 for p in points if p.memory_bound)
    if mem == len(points):
        return "memory-bound"
    if mem == 0:
        return "compute-bound"
    return "mixed"
