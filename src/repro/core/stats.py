"""Statistics for correlated Monte-Carlo series.

The mVMC miniapp produces autocorrelated Markov-chain samples; naive
standard errors underestimate the true uncertainty.  This module provides
the standard tools the real analysis pipelines use:

* :func:`binning_analysis` — blocked error estimation whose plateau gives
  the true standard error (and the integrated autocorrelation time);
* :func:`jackknife` — leave-one-block-out bias/error estimation for
  arbitrary derived quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BinningResult:
    """Outcome of a binning analysis."""

    mean: float
    naive_error: float
    error: float                 # plateau (largest-bin) error
    tau_int: float               # integrated autocorrelation time
    errors_per_level: tuple[float, ...]

    @property
    def correlated(self) -> bool:
        """Whether the series shows significant autocorrelation."""
        return self.tau_int > 1.0


def binning_analysis(samples, min_bins: int = 32) -> BinningResult:
    """Blocked (binning) error analysis of a scalar MC series.

    Repeatedly halves the series into pairwise block means; the standard
    error of the block means grows until blocks exceed the correlation
    length and then plateaus.  ``tau_int`` is estimated from the ratio of
    the plateau variance to the naive variance.
    """
    x = np.asarray(samples, dtype=float).ravel()
    if len(x) < 2 * min_bins:
        raise ConfigurationError(
            f"need at least {2 * min_bins} samples, got {len(x)}"
        )
    mean = float(x.mean())
    naive_var = float(x.var(ddof=1))
    naive_error = np.sqrt(naive_var / len(x))

    errors = []
    level = x
    while len(level) >= min_bins:
        err = float(np.sqrt(level.var(ddof=1) / len(level)))
        errors.append(err)
        if len(level) % 2:
            level = level[:-1]
        level = 0.5 * (level[0::2] + level[1::2])
    plateau = max(errors)
    tau = 0.5 * ((plateau / naive_error) ** 2) if naive_error > 0 else 0.0
    return BinningResult(
        mean=mean,
        naive_error=naive_error,
        error=plateau,
        tau_int=max(0.5, tau),
        errors_per_level=tuple(errors),
    )


def jackknife(samples, estimator: Callable[[np.ndarray], float],
              n_blocks: int = 20) -> tuple[float, float]:
    """Leave-one-block-out jackknife of an arbitrary estimator.

    Returns (bias-corrected estimate, standard error).
    """
    x = np.asarray(samples, dtype=float).ravel()
    if n_blocks < 2:
        raise ConfigurationError("need at least 2 jackknife blocks")
    if len(x) < n_blocks:
        raise ConfigurationError("fewer samples than blocks")
    usable = len(x) - len(x) % n_blocks
    blocks = x[:usable].reshape(n_blocks, -1)
    full = float(estimator(x[:usable]))
    loo = np.array([
        float(estimator(np.delete(blocks, k, axis=0).ravel()))
        for k in range(n_blocks)
    ])
    estimate = n_blocks * full - (n_blocks - 1) * float(loo.mean())
    error = float(np.sqrt((n_blocks - 1) / n_blocks
                          * ((loo - loo.mean()) ** 2).sum()))
    return estimate, error


def ar1_series(n: int, rho: float, rng: np.random.Generator,
               mean: float = 0.0, sigma: float = 1.0) -> np.ndarray:
    """AR(1) test series with known autocorrelation (test utility).

    The exact integrated autocorrelation time of AR(1) is
    ``tau_int = (1 + rho) / (2 (1 - rho))``.
    """
    if not -1.0 < rho < 1.0:
        raise ConfigurationError("rho must be in (-1, 1)")
    innov = rng.standard_normal(n) * sigma * np.sqrt(1 - rho * rho)
    out = np.empty(n)
    out[0] = rng.standard_normal() * sigma
    for i in range(1, n):
        out[i] = rho * out[i - 1] + innov[i]
    return out + mean
