"""Experiment configuration spaces.

The sweep axes of the paper, as data:

* **MPI x OpenMP** — all (ranks, threads) factorizations of a 48-core
  A64FX node (1x48 ... 48x1), the F1 axis;
* **thread stride** — binding strides {1, 2, 4, 12}, the F2 axis;
* **process allocation** — {block, cyclic, domain-pack, spread}, F3;
* **compiler option sets** — the :data:`repro.compile.options.PRESETS`
  progression, F4;
* **processors** — the :data:`repro.machine.catalog.PROCESSORS`, F5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compile.options import CompilerOptions, PRESETS
from repro.errors import ConfigurationError
from repro.runtime.affinity import ProcessAllocation, ThreadBinding


def single_node_configs(cores: int) -> list[tuple[int, int]]:
    """All (n_ranks, n_threads) pairs with ``ranks * threads == cores``."""
    if cores < 1:
        raise ConfigurationError("cores must be positive")
    out = []
    for ranks in range(1, cores + 1):
        if cores % ranks == 0:
            out.append((ranks, cores // ranks))
    return out


#: The paper-style MPI x OpenMP grid for a 48-core A64FX node.
MPI_OMP_CONFIGS: list[tuple[int, int]] = [
    (1, 48), (2, 24), (4, 12), (6, 8), (8, 6), (12, 4), (16, 3),
    (24, 2), (48, 1),
]

#: Thread-stride sweep (1 = compact ... 12 = one thread per CMG round).
STRIDE_SWEEP: list[int] = [1, 2, 4, 12]

#: Process-allocation methods (F3).
ALLOCATION_SWEEP: list[str] = list(ProcessAllocation.METHODS)

#: Compiler-option progression (F4), in tuning order.
COMPILER_SWEEP: list[str] = ["as-is", "+simd", "+simd+sched", "tuned"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully specified run configuration."""

    app: str
    dataset: str = "as-is"
    processor: str = "A64FX"
    n_nodes: int = 1
    n_ranks: int = 4
    n_threads: int = 12
    binding: ThreadBinding = field(default_factory=ThreadBinding)
    allocation: ProcessAllocation = field(default_factory=ProcessAllocation)
    options_preset: str = "kfast"
    data_policy: str = "first-touch"

    def __post_init__(self) -> None:
        if self.options_preset not in PRESETS:
            raise ConfigurationError(
                f"unknown compiler preset {self.options_preset!r}"
            )
        if self.n_nodes < 1 or self.n_ranks < 1 or self.n_threads < 1:
            raise ConfigurationError("counts must be positive")

    @property
    def options(self) -> CompilerOptions:
        return PRESETS[self.options_preset]

    def label(self) -> str:
        parts = [
            f"{self.app}/{self.dataset}",
            self.processor,
            f"{self.n_ranks}x{self.n_threads}",
        ]
        if self.n_nodes > 1:
            parts.append(f"{self.n_nodes}nodes")
        if self.binding.label() != "compact":
            parts.append(self.binding.label())
        if self.allocation.label() != "block":
            parts.append(self.allocation.label())
        if self.options_preset != "kfast":
            parts.append(self.options_preset)
        return " ".join(parts)
