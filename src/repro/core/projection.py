"""Simplified Sustained System Performance (SSSP) projection.

Implements the methodology of the authors' companion paper ("A Performance
Projection of Mini-Applications onto Benchmarks", Tsuji, Kramer & Sato):
approximate each miniapp's runtime on a machine as a non-negative weighted
sum of simple microbenchmark times measured on that machine::

    t_app(machine) ~= sum_b  w_b * t_b(machine)

The weights ``w_b`` are learned (non-negative least squares) over a
training set of machines and then *project* the app's performance onto
machines outside the training set — the cheap procurement-style estimate
the SSSP metric provides.

The microbenchmark basis spans the resource axes of this study: streaming
bandwidth, dense compute, gather/latency, and scalar-integer throughput.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.optimize

from repro.compile.compiler import Compiler
from repro.compile.options import PRESETS
from repro.core.report import Table
from repro.errors import ConfigurationError
from repro.kernels import presets
from repro.kernels.kernel import LoopKernel
from repro.machine import catalog
from repro.machine.memory import MemorySpec
from repro.machine.topology import Cluster
from repro.miniapps import by_name
from repro.runtime.executor import run_job
from repro.runtime.openmp import region_time
from repro.runtime.placement import JobPlacement
from repro.runtime.program import Compute
from repro.units import GB_S, GIB, NS

#: The microbenchmark basis (name -> kernel).
MICROBENCHMARKS: dict[str, LoopKernel] = {
    "stream": presets.stream_triad(),
    "dgemm": presets.dgemm_blocked(),
    "gather": presets.spmv_csr(30, 8.0 * 1024 * 1024),
    "scalar-int": presets.integer_compare_scan(64e3),
}

#: Iterations per microbenchmark — large enough that fork/join overhead is
#: negligible even for the cheap per-iteration dgemm kernel.
_MICRO_ITERS = 50_000_000.0


def microbenchmark_times(cluster: Cluster) -> dict[str, float]:
    """Full-node time of each microbenchmark on ``cluster`` (seconds)."""
    core = cluster.node.chips[0].domains[0].core
    compiler = Compiler(PRESETS["kfast"])
    placement = JobPlacement(cluster, 1, cluster.cores_per_node)
    out: dict[str, float] = {}
    for name, kernel in MICROBENCHMARKS.items():
        ck = compiler.compile(kernel, core)
        rt = region_time(
            ck, Compute(name, iters=_MICRO_ITERS),
            placement.thread_cores(0), cluster,
            placement.threads_per_domain, placement.home_domain(0),
            "first-touch",
        )
        out[name] = rt.seconds
    return out


def app_time(app_name: str, cluster: Cluster, dataset: str = "as-is") -> float:
    """Simulated full-node runtime of one miniapp on ``cluster``."""
    app = by_name(app_name)
    n_domains = cluster.domains_per_node
    threads = cluster.cores_per_node // n_domains
    placement = JobPlacement(cluster, n_domains, threads)
    return run_job(app.build_job(cluster, placement, dataset)).elapsed


# ----------------------------------------------------------------------
# machine pool: catalog processors + A64FX design variants, so the fit
# has more observations than weights
# ----------------------------------------------------------------------
def _a64fx_ddr4() -> Cluster:
    base = catalog.a64fx()
    chip = base.node.chips[0]
    dom = dataclasses.replace(
        chip.domains[0],
        memory=MemorySpec(kind="DDR4", capacity_bytes=32 * GIB,
                          peak_bandwidth=42.6 * GB_S, sustained_fraction=0.8,
                          single_stream_bandwidth=13 * GB_S,
                          latency_s=90 * NS),
    )
    chip = dataclasses.replace(chip, domains=(dom,) * 4)
    node = dataclasses.replace(base.node, chips=(chip,))
    return dataclasses.replace(base, name="A64FX-DDR4", node=node)


def machine_pool() -> dict[str, Cluster]:
    """Training/evaluation machines: the catalog + A64FX variants."""
    return {
        "A64FX": catalog.a64fx(),
        "A64FX-eco": dataclasses.replace(catalog.a64fx(eco=True),
                                         name="A64FX-eco"),
        "A64FX-boost": dataclasses.replace(catalog.a64fx(boost=True),
                                           name="A64FX-boost"),
        "A64FX-DDR4": _a64fx_ddr4(),
        "Xeon-Skylake": catalog.xeon_skylake(),
        "ThunderX2": catalog.thunderx2(),
        "SPARC64-VIIIfx": catalog.sparc64_viiifx(),
    }


@dataclasses.dataclass(frozen=True)
class SsspModel:
    """Fitted projection model for one miniapp."""

    app: str
    dataset: str
    benchmark_names: tuple[str, ...]
    weights: np.ndarray
    training_machines: tuple[str, ...]
    training_residual: float
    mean_benchmark_times: np.ndarray

    def predict(self, micro_times: dict[str, float]) -> float:
        """Projected app runtime from a machine's microbenchmark vector."""
        vec = np.array([micro_times[b] for b in self.benchmark_names])
        return float(self.weights @ vec)

    def contributions(self) -> dict[str, float]:
        """Mean predicted-time share of each basis benchmark."""
        raw = self.weights * self.mean_benchmark_times
        total = float(raw.sum()) or 1.0
        return {b: float(v) / total
                for b, v in zip(self.benchmark_names, raw)}

    def dominant_benchmark(self) -> str:
        """The benchmark carrying the largest predicted-time share."""
        contrib = self.contributions()
        return max(contrib, key=contrib.__getitem__)


def fit(app_name: str, machines: dict[str, Cluster],
        dataset: str = "as-is") -> SsspModel:
    """Fit non-negative weights over the given training machines."""
    if len(machines) < len(MICROBENCHMARKS):
        raise ConfigurationError(
            "need at least as many training machines as benchmarks"
        )
    names = tuple(MICROBENCHMARKS)
    rows = []
    targets = []
    for mname, cluster in machines.items():
        micro = microbenchmark_times(cluster)
        rows.append([micro[b] for b in names])
        targets.append(app_time(app_name, cluster, dataset))
    a = np.asarray(rows)
    b = np.asarray(targets)
    weights, residual = scipy.optimize.nnls(a, b)
    rel_residual = residual / float(np.linalg.norm(b))
    return SsspModel(
        app=app_name,
        dataset=dataset,
        benchmark_names=names,
        weights=weights,
        training_machines=tuple(machines),
        training_residual=rel_residual,
        mean_benchmark_times=a.mean(axis=0),
    )


def leave_one_out(app_name: str, held_out: str,
                  dataset: str = "as-is") -> tuple[float, float, SsspModel]:
    """Fit on all pool machines except ``held_out``; project onto it.

    Returns (predicted seconds, actual seconds, model).
    """
    pool = machine_pool()
    if held_out not in pool:
        raise ConfigurationError(
            f"unknown machine {held_out!r}; pool: {sorted(pool)}"
        )
    target = pool.pop(held_out)
    model = fit(app_name, pool, dataset)
    predicted = model.predict(microbenchmark_times(target))
    actual = app_time(app_name, target, dataset)
    return predicted, actual, model


def a4_sssp_projection(
    apps: list[str] | None = None,
    held_out: str = "ThunderX2",
    dataset: str = "as-is",
) -> tuple[Table, dict[str, tuple[float, float, SsspModel]]]:
    """A4 artifact: projection quality per miniapp on a held-out machine."""
    apps = apps if apps is not None else ["ffvc", "ntchem", "ngsa", "ccs-qcd"]
    t = Table(
        f"A4: SSSP projection onto held-out {held_out} ({dataset})",
        ["miniapp", "predicted ms", "actual ms", "error %",
         "dominant benchmark"],
        note="weights fitted by NNLS over the remaining machine pool "
             "(the companion SSSP-metric methodology)",
    )
    data: dict[str, tuple[float, float, SsspModel]] = {}
    for app in apps:
        predicted, actual, model = leave_one_out(app, held_out, dataset)
        data[app] = (predicted, actual, model)
        err = abs(predicted - actual) / actual * 100
        t.add(app, predicted * 1e3, actual * 1e3, err,
              model.dominant_benchmark())
    return t, data
