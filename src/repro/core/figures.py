"""One entry point per paper table/figure (see DESIGN.md experiment index).

Every function regenerates one artifact as a :class:`~repro.core.report.Table`
(plus, where useful, the raw sweep data).  The ``benchmarks/`` harness calls
these and prints both the table and its CSV; the examples call a subset.

The IDs are assigned by this project — the source text provided only the
paper's abstract (DESIGN.md documents this), so these reconstruct the
experiment matrix the abstract describes.
"""

from __future__ import annotations

from repro.compile.options import PRESETS
from repro.core import analysis
from repro.core.compare import compare_processors
from repro.core.experiment import (
    ALLOCATION_SWEEP,
    COMPILER_SWEEP,
    MPI_OMP_CONFIGS,
    STRIDE_SWEEP,
    ExperimentConfig,
)
from repro.core.metrics import spread
from repro.core.report import Table
from repro.core.runner import SweepResult, run_sweep
from repro.machine import catalog
from repro.miniapps import SUITE
from repro.runtime.affinity import ProcessAllocation, ThreadBinding
from repro.units import fmt_bw, fmt_rate

#: Default app subsets per experiment (full suite unless an experiment is
#: specifically about the poorly performing apps).
TUNING_APPS = ["ngsa", "mvmc", "ffb"]


# ----------------------------------------------------------------------
# T1 — processor specifications
# ----------------------------------------------------------------------
def t1_processor_specs() -> Table:
    t = Table(
        "T1: Evaluated processors (one node each)",
        ["processor", "cores", "SIMD", "freq GHz", "peak fp64",
         "mem BW", "network"],
    )
    for name in catalog.PROCESSORS:
        c = catalog.by_name(name)
        dom = c.node.chips[0].domains[0]
        t.add(
            name,
            c.cores_per_node,
            f"{dom.core.simd_bits}-bit x{dom.core.fma_pipes}",
            dom.core.freq_hz / 1e9,
            fmt_rate(c.node.peak_flops_fp64),
            fmt_bw(c.node.peak_memory_bandwidth),
            c.network.name,
        )
    return t


# ----------------------------------------------------------------------
# T2 — the miniapp suite
# ----------------------------------------------------------------------
def t2_miniapp_table() -> Table:
    t = Table(
        "T2: Fiber Miniapp Suite",
        ["miniapp", "full name", "character", "as-is dataset", "large dataset"],
    )
    for app in SUITE.values():
        t.add(
            app.name,
            app.full_name,
            app.character,
            app.dataset("as-is").description,
            app.dataset("large").description,
        )
    return t


# ----------------------------------------------------------------------
# F1 — MPI x OpenMP sweep (single A64FX node)
# ----------------------------------------------------------------------
def f1_mpi_omp_sweep(
    apps: list[str] | None = None,
    dataset: str = "as-is",
    processor: str = "A64FX",
    configs: list[tuple[int, int]] | None = None,
    cache=None,
    workers: int = 1,
    resume: bool = False,
    engine: str = "event",
    _cache=None,
) -> tuple[Table, dict[str, SweepResult]]:
    cache = cache if cache is not None else _cache
    apps = apps if apps is not None else list(SUITE)
    grid = configs if configs is not None else MPI_OMP_CONFIGS
    tag = "" if engine == "event" else f", {engine} engine"
    t = Table(
        f"F1: time [ms] vs MPI x OpenMP ({processor}, {dataset}{tag})",
        ["miniapp"] + [f"{r}x{h}" for r, h in grid],
        note="rows: miniapps; best configuration per row in T3",
    )
    sweeps: dict[str, SweepResult] = {}
    for app in apps:
        cfgs = [
            ExperimentConfig(app=app, dataset=dataset, processor=processor,
                             n_ranks=nr, n_threads=nt)
            for nr, nt in grid
        ]
        sweep = run_sweep(f"f1-{app}", cfgs, cache, workers=workers,
                          resume=resume, engine=engine)
        sweeps[app] = sweep
        if sweep.errors:
            # resumed sweeps may quarantine configs: blank those cells
            by_cfg = {row.config: row for row in sweep.rows}
            cells = [by_cfg[c].elapsed * 1e3 if c in by_cfg
                     else float("nan") for c in cfgs]
        else:
            cells = [row.elapsed * 1e3 for row in sweep.rows]
        t.add(app, *cells)
    return t, sweeps


# ----------------------------------------------------------------------
# T3 — best configuration per miniapp (derived from F1)
# ----------------------------------------------------------------------
def t3_best_config(sweeps: dict[str, SweepResult]) -> Table:
    t = Table(
        "T3: best MPI x OpenMP configuration per miniapp",
        ["miniapp", "best config", "time ms", "GFLOP/s", "comm frac"],
    )
    combined = SweepResult(
        "t3", [row for sweep in sweeps.values() for row in sweep.rows]
    )
    for app, row in combined.best_per("app").items():
        t.add(
            app,
            f"{row.config.n_ranks}x{row.config.n_threads}",
            row.elapsed * 1e3,
            row.gflops,
            row.comm_fraction,
        )
    return t


# ----------------------------------------------------------------------
# F2 — thread-stride (binding) comparison
# ----------------------------------------------------------------------
def f2_thread_stride(
    apps: list[str] | None = None,
    dataset: str = "as-is",
    n_ranks: int = 4,
    n_threads: int = 12,
    data_policy: str = "serial-init",
    cache=None,
    workers: int = 1,
    _cache=None,
) -> tuple[Table, dict[str, SweepResult]]:
    """Stride 1 (compact) vs longer strides at a fixed rank/thread shape.

    ``serial-init`` reflects the suite's Fortran codes, whose per-rank
    arrays are touched by the master thread first — the situation in which
    thread placement interacts with NUMA locality.
    """
    cache = cache if cache is not None else _cache
    apps = apps if apps is not None else list(SUITE)
    t = Table(
        f"F2: time [ms] vs thread stride ({n_ranks}x{n_threads}, {dataset})",
        ["miniapp"] + [f"stride-{s}" for s in STRIDE_SWEEP]
        + ["stride-1 wins?"],
    )
    sweeps: dict[str, SweepResult] = {}
    for app in apps:
        cfgs = [
            ExperimentConfig(
                app=app, dataset=dataset, n_ranks=n_ranks,
                n_threads=n_threads,
                binding=(ThreadBinding("compact") if s == 1
                         else ThreadBinding("stride", stride=s)),
                data_policy=data_policy,
            )
            for s in STRIDE_SWEEP
        ]
        sweep = run_sweep(f"f2-{app}", cfgs, cache, workers=workers)
        sweeps[app] = sweep
        times = [row.elapsed for row in sweep.rows]
        t.add(app, *[x * 1e3 for x in times],
              "yes" if times[0] <= min(times) * 1.0001 else "no")
    return t, sweeps


# ----------------------------------------------------------------------
# F3 — MPI process-allocation methods (multi-node)
# ----------------------------------------------------------------------
def f3_process_allocation(
    apps: list[str] | None = None,
    dataset: str = "large",
    n_nodes: int = 4,
    ranks_per_node: int = 4,
    n_threads: int = 12,
    cache=None,
    workers: int = 1,
    _cache=None,
) -> tuple[Table, dict[str, SweepResult]]:
    cache = cache if cache is not None else _cache
    apps = apps if apps is not None else list(SUITE)
    t = Table(
        f"F3: time [ms] vs process allocation "
        f"({n_nodes} nodes, {ranks_per_node * n_nodes}x{n_threads}, {dataset})",
        ["miniapp"] + ALLOCATION_SWEEP + ["spread %"],
        note="small spread = allocation method has little impact (paper)",
    )
    sweeps: dict[str, SweepResult] = {}
    for app in apps:
        cfgs = [
            ExperimentConfig(
                app=app, dataset=dataset, n_nodes=n_nodes,
                n_ranks=ranks_per_node * n_nodes, n_threads=n_threads,
                allocation=ProcessAllocation(method),
            )
            for method in ALLOCATION_SWEEP
        ]
        sweep = run_sweep(f"f3-{app}", cfgs, cache, workers=workers)
        sweeps[app] = sweep
        t.add(app, *[row.elapsed * 1e3 for row in sweep.rows],
              spread(sweep.rows) * 100)
    return t, sweeps


# ----------------------------------------------------------------------
# F4 — compiler tuning on "as-is" data
# ----------------------------------------------------------------------
def f4_compiler_tuning(
    apps: list[str] | None = None,
    dataset: str = "as-is",
    n_ranks: int = 4,
    n_threads: int = 12,
    cache=None,
    workers: int = 1,
    _cache=None,
) -> tuple[Table, dict[str, SweepResult]]:
    cache = cache if cache is not None else _cache
    apps = apps if apps is not None else TUNING_APPS
    t = Table(
        f"F4: A64FX time [ms] vs compiler options ({dataset})",
        ["miniapp"] + COMPILER_SWEEP + ["gain x"],
        note="gain = as-is / tuned; SIMD + instruction scheduling recover "
             "the A64FX's as-is deficit (paper)",
    )
    sweeps: dict[str, SweepResult] = {}
    for app in apps:
        cfgs = [
            ExperimentConfig(app=app, dataset=dataset, n_ranks=n_ranks,
                             n_threads=n_threads, options_preset=preset)
            for preset in COMPILER_SWEEP
        ]
        sweep = run_sweep(f"f4-{app}", cfgs, cache, workers=workers)
        sweeps[app] = sweep
        times = [row.elapsed for row in sweep.rows]
        t.add(app, *[x * 1e3 for x in times], times[0] / times[-1])
    return t, sweeps


# ----------------------------------------------------------------------
# F5 — cross-processor comparison
# ----------------------------------------------------------------------
def f5_processor_comparison(
    apps: list[str] | None = None,
    dataset: str = "as-is",
    processors: list[str] | None = None,
    cache=None,
    workers: int = 1,
    _cache=None,
) -> Table:
    cache = cache if cache is not None else _cache
    apps = apps if apps is not None else list(SUITE)
    procs = processors if processors is not None else list(catalog.PROCESSORS)
    t = Table(
        f"F5: node-vs-node performance relative to A64FX ({dataset})",
        ["miniapp"] + procs,
        note=">1 = that processor's node is faster than the A64FX node",
    )
    for app in apps:
        comp = compare_processors(app, dataset, procs, cache=cache,
                                  workers=workers)
        rel = comp.relative_to("A64FX")
        t.add(app, *[rel[p] for p in procs])
    return t


# ----------------------------------------------------------------------
# F6 — roofline / bottleneck analysis
# ----------------------------------------------------------------------
def f6_roofline(apps: list[str] | None = None,
                dataset: str = "as-is",
                processor: str = "A64FX") -> Table:
    apps = apps if apps is not None else list(SUITE)
    cluster = catalog.by_name(processor)
    roof = analysis.machine_roofline(cluster)
    t = Table(
        f"F6: roofline placement on {processor} "
        f"(core peak {roof.peak_gflops:.1f} GF/s, "
        f"BW share {roof.mem_bandwidth_gbytes:.1f} GB/s, "
        f"ridge {roof.ridge_intensity:.2f} F/B)",
        ["miniapp", "kernel", "AI F/B", "attainable GF/s",
         "achieved GF/s", "bound"],
    )
    for app_name in apps:
        app = SUITE[app_name]
        for p in analysis.app_roofline(app, cluster, dataset):
            ai = "inf" if p.arithmetic_intensity == float("inf") \
                else f"{p.arithmetic_intensity:.2f}"
            t.add(app_name, p.kernel, ai, p.attainable_gflops,
                  p.achieved_gflops, p.bound)
    return t


# ----------------------------------------------------------------------
# F7 — memory-bandwidth scaling (STREAM triad)
# ----------------------------------------------------------------------
def f7_stream_scaling(
    processor: str = "A64FX",
    thread_counts: list[int] | None = None,
    _cache: dict | None = None,
) -> tuple[Table, dict]:
    """Aggregate triad bandwidth vs thread count for compact vs scatter."""
    from repro.compile.compiler import Compiler
    from repro.kernels.presets import stream_triad
    from repro.runtime.openmp import region_time
    from repro.runtime.placement import JobPlacement
    from repro.runtime.program import Compute

    cluster = catalog.by_name(processor)
    cores = cluster.cores_per_node
    counts = thread_counts if thread_counts is not None else \
        [1, 2, 4, 6, 8, 12, 16, 24, 32, 48]
    counts = [c for c in counts if c <= cores]
    kernel = stream_triad()
    core = cluster.node.chips[0].domains[0].core
    ck = Compiler(PRESETS["kfast"]).compile(kernel, core)
    iters = 4_000_000

    t = Table(
        f"F7: STREAM triad bandwidth [GB/s] vs threads ({processor})",
        ["threads", "compact", "scatter"],
        note="scatter reaches chip bandwidth with few threads; compact "
             "saturates one CMG first",
    )
    data: dict[str, dict[int, float]] = {"compact": {}, "scatter": {}}
    for n in counts:
        row = [n]
        for policy in ("compact", "scatter"):
            pl = JobPlacement(cluster, 1, n, binding=ThreadBinding(policy))
            rt = region_time(
                ck, Compute("triad", iters=iters), pl.thread_cores(0),
                cluster, pl.threads_per_domain, pl.home_domain(0),
                "first-touch",
            )
            bw = rt.dram_bytes / rt.seconds / 1e9
            data[policy][n] = bw
            row.append(bw)
        t.add(*row)
    return t, data


# ----------------------------------------------------------------------
# F8 — multi-node scaling over the interconnect
# ----------------------------------------------------------------------
def f9_weak_scaling(
    apps: list[str] | None = None,
    node_counts: list[int] | None = None,
    ranks_per_node: int = 4,
    n_threads: int = 12,
) -> tuple[Table, dict[str, list[float]]]:
    """Weak scaling: the problem grows with the node count, so ideal
    scaling keeps the time flat.  Uses the apps that define
    :meth:`~repro.miniapps.base.MiniApp.weak_dataset`.
    """
    from repro.machine import catalog as cat
    from repro.miniapps import by_name
    from repro.runtime.executor import run_job
    from repro.runtime.placement import JobPlacement

    apps = apps if apps is not None else ["ccs-qcd", "ffvc"]
    nodes = node_counts if node_counts is not None else [1, 2, 4, 8]
    t = Table(
        f"F9: weak scaling over Tofu-D ({ranks_per_node} ranks x "
        f"{n_threads} threads per node; problem grows with nodes)",
        ["miniapp"] + [f"{n} node(s)" for n in nodes] + ["efficiency %"],
        note="time in ms; ideal weak scaling is a flat row",
    )
    data: dict[str, list[float]] = {}
    for app_name in apps:
        app = by_name(app_name)
        times = []
        for n in nodes:
            cluster = cat.a64fx(n_nodes=n)
            ds = app.weak_dataset(n)
            placement = JobPlacement(cluster, ranks_per_node * n, n_threads)
            res = run_job(app.build_job(cluster, placement, ds.name))
            times.append(res.elapsed)
        data[app_name] = times
        eff = times[0] / times[-1] * 100.0
        t.add(app_name, *[x * 1e3 for x in times], eff)
    return t, data


def f10_time_breakdown(
    apps: list[str] | None = None,
    dataset: str = "as-is",
    n_ranks: int = 4,
    n_threads: int = 12,
    top_kernels: int = 2,
) -> tuple[Table, dict[str, dict[str, float]]]:
    """Per-app time attribution: dominant kernels, serial regions,
    point-to-point, collectives, I/O (mean over ranks)."""
    from repro.machine import catalog as cat
    from repro.miniapps import by_name
    from repro.runtime.executor import run_job
    from repro.runtime.placement import JobPlacement

    apps = apps if apps is not None else list(SUITE)
    t = Table(
        f"F10: time breakdown [%] ({n_ranks}x{n_threads}, {dataset})",
        ["miniapp", "total ms", "kernel-1", "kernel-2", "serial",
         "p2p", "collective", "io"],
        note="kernel-N = the app's dominant compute kernels by time share",
    )
    data: dict[str, dict[str, float]] = {}
    cluster = cat.a64fx()
    for app_name in apps:
        app = by_name(app_name)
        placement = JobPlacement(cluster, n_ranks, n_threads)
        res = run_job(app.build_job(cluster, placement, dataset))
        n = len(res.traces)
        by_label: dict[str, float] = {}
        cats = {"serial": 0.0, "p2p": 0.0, "collective": 0.0, "io": 0.0}
        for tr in res.traces.values():
            for seg in tr.segments:
                if seg.category == "compute":
                    by_label[seg.label] = by_label.get(seg.label, 0.0) \
                        + seg.duration / n
                elif seg.category in cats:
                    cats[seg.category] += seg.duration / n
        top = sorted(by_label.items(), key=lambda kv: -kv[1])[:top_kernels]
        while len(top) < top_kernels:
            top.append(("-", 0.0))
        total = res.elapsed

        def pct(x: float) -> float:
            return 100.0 * x / total if total > 0 else 0.0

        data[app_name] = {**{k: pct(v) for k, v in by_label.items()},
                          **{k: pct(v) for k, v in cats.items()}}
        t.add(
            app_name,
            total * 1e3,
            f"{top[0][0]} {pct(top[0][1]):.0f}%",
            f"{top[1][0]} {pct(top[1][1]):.0f}%",
            pct(cats["serial"]),
            pct(cats["p2p"]),
            pct(cats["collective"]),
            pct(cats["io"]),
        )
    return t, data


def f8_multinode_scaling(
    apps: list[str] | None = None,
    dataset: str = "large",
    node_counts: list[int] | None = None,
    ranks_per_node: int = 4,
    n_threads: int = 12,
    cache=None,
    workers: int = 1,
    _cache=None,
) -> tuple[Table, dict[str, SweepResult]]:
    cache = cache if cache is not None else _cache
    apps = apps if apps is not None else ["ccs-qcd", "ffvc"]
    nodes = node_counts if node_counts is not None else [1, 2, 4, 8]
    t = Table(
        f"F8: strong scaling over Tofu-D ({dataset}, "
        f"{ranks_per_node} ranks x {n_threads} threads per node)",
        ["miniapp"] + [f"{n} node(s)" for n in nodes]
        + ["speedup", "efficiency %"],
        note="time in ms; speedup/efficiency at the largest node count",
    )
    sweeps: dict[str, SweepResult] = {}
    for app in apps:
        cfgs = [
            ExperimentConfig(
                app=app, dataset=dataset, n_nodes=n,
                n_ranks=ranks_per_node * n, n_threads=n_threads,
            )
            for n in nodes
        ]
        sweep = run_sweep(f"f8-{app}", cfgs, cache, workers=workers)
        sweeps[app] = sweep
        times = [row.elapsed for row in sweep.rows]
        sp = times[0] / times[-1]
        eff = sp / (nodes[-1] / nodes[0]) * 100
        t.add(app, *[x * 1e3 for x in times], sp, eff)
    return t, sweeps
