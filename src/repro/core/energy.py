"""Energy-to-solution estimation on top of simulation results.

Combines a :class:`~repro.runtime.executor.RunResult` with the node
:class:`~repro.machine.power.PowerSpec` to produce the energy metrics the
Fugaku power-management study reports: average power, energy to solution,
and energy efficiency (FLOP/J), under the normal / eco / boost modes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.power import PowerSpec, power_spec
from repro.machine.topology import Cluster
from repro.runtime.executor import RunResult
from repro.runtime.placement import JobPlacement


@dataclass(frozen=True)
class EnergyReport:
    """Energy metrics of one simulated run."""

    mode: str
    elapsed_s: float
    average_watts: float
    energy_joules: float
    flops_per_joule: float

    @property
    def gflops_per_watt(self) -> float:
        return self.flops_per_joule / 1e9


def utilization_from_result(result: RunResult) -> float:
    """Mean pipeline utilization proxy: fraction of rank time computing."""
    b = result.breakdown()
    if result.elapsed <= 0:
        return 0.0
    busy = b.get("compute", 0.0) + b.get("serial", 0.0)
    return max(0.0, min(1.0, busy / result.elapsed))


def estimate_energy(
    result: RunResult,
    cluster: Cluster,
    placement: JobPlacement,
    mode: str = "normal",
    spec: PowerSpec | None = None,
) -> EnergyReport:
    """Energy to solution for one run.

    ``spec`` overrides the catalog lookup (for custom machines); ``mode``
    applies the A64FX power-control semantics to the spec.  Note that the
    *performance* side of a mode (eco's halved FMA pipes, boost's +10%
    clock) must already be in the ``result`` — build the job against
    ``catalog.a64fx(eco=True)`` / ``(boost=True)``; this function prices
    the power side.
    """
    if result.elapsed <= 0:
        raise ConfigurationError("cannot price a run with no elapsed time")
    base = spec if spec is not None else power_spec(cluster.name.split("-eco")[0]
                                                    .split("-boost")[0], "normal")
    priced = base.with_mode(mode)

    n_nodes_used = len({placement.node_of(r) for r in range(placement.n_ranks)})
    active_per_node = (placement.n_ranks * placement.threads_per_rank
                       / max(1, n_nodes_used))
    total_cores = cluster.cores_per_node
    util = utilization_from_result(result)
    dram_per_node = result.dram_bandwidth / max(1, n_nodes_used)

    watts_per_node = priced.node_power(
        active_cores=min(total_cores, round(active_per_node)),
        total_cores=total_cores,
        utilization=util,
        dram_bytes_per_s=dram_per_node,
    )
    watts = watts_per_node * n_nodes_used
    energy = watts * result.elapsed
    return EnergyReport(
        mode=mode,
        elapsed_s=result.elapsed,
        average_watts=watts,
        energy_joules=energy,
        flops_per_joule=result.total_flops / energy if energy > 0 else 0.0,
    )


def mode_study(app_name: str, dataset: str = "as-is",
               n_ranks: int = 4, n_threads: int = 12) -> dict[str, EnergyReport]:
    """Run one miniapp under normal / eco / boost and price each mode.

    This is the A2 ablation: eco saves energy on memory-bound apps at no
    performance cost; boost buys ~10% speed for ~17% more core power on
    compute-bound apps.
    """
    from repro.machine import catalog
    from repro.miniapps import by_name
    from repro.runtime.executor import run_job

    app = by_name(app_name)
    out: dict[str, EnergyReport] = {}
    for mode in ("normal", "eco", "boost"):
        cluster = catalog.a64fx(eco=(mode == "eco"), boost=(mode == "boost"))
        placement = JobPlacement(cluster, n_ranks, n_threads)
        result = run_job(app.build_job(cluster, placement, dataset))
        out[mode] = estimate_energy(result, cluster, placement, mode)
    return out
