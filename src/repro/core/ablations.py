"""Ablation experiments (A1-A3, A5-A6) on the design choices DESIGN.md calls out.

These go beyond the paper's artifacts to exercise the model along the axes
its companion papers study:

* **A1 — SVE vector length** (cf. "Preliminary Performance Evaluation of
  Application Kernels Using ARM SVE with Multiple Vector Lengths"):
  recompile kernels at VL 128/256/512 on the same hardware and measure
  the speedup — compute-bound kernels scale with VL, memory-bound ones
  do not.
* **A2 — power-control modes** (cf. "Evaluation of Power Management
  Control on the Supercomputer Fugaku"): normal / eco / boost energy to
  solution per miniapp.
* **A3 — micro-architecture sensitivity**: the out-of-order window and
  the 256-byte cache-line choice, the two A64FX idiosyncrasies behind the
  paper's "as-is" analysis.
"""

from __future__ import annotations

import dataclasses

from repro.compile.options import PRESETS
from repro.core.energy import mode_study
from repro.core.experiment import ExperimentConfig
from repro.core.report import Table
from repro.machine import catalog

#: Vector lengths SVE supports on the A64FX model (bits).
VECTOR_LENGTHS = [128, 256, 512]


# ----------------------------------------------------------------------
# A1 — vector-length agnostic execution
# ----------------------------------------------------------------------
def a1_vector_length(
    apps: list[str] | None = None,
    dataset: str = "as-is",
    cache=None,
    _cache=None,
) -> tuple[Table, dict[str, dict[int, float]]]:
    cache = cache if cache is not None else _cache
    apps = apps if apps is not None else ["ntchem", "ccs-qcd", "ffvc", "mvmc"]
    t = Table(
        "A1: A64FX speedup vs SVE vector length (VL-128 = 1.0)",
        ["miniapp"] + [f"VL-{vl}" for vl in VECTOR_LENGTHS],
        note="compute-bound kernels scale with VL; memory-bound ones do not "
             "(the SVE multiple-VL companion study's finding)",
    )
    data: dict[str, dict[int, float]] = {}
    for app in apps:
        times: dict[int, float] = {}
        for vl in VECTOR_LENGTHS:
            cfg = ExperimentConfig(app=app, dataset=dataset, n_ranks=4,
                                   n_threads=12, options_preset="kfast")
            row = _run_with_vl(cfg, vl, cache)
            times[vl] = row.elapsed
        data[app] = times
        base = times[VECTOR_LENGTHS[0]]
        t.add(app, *[base / times[vl] for vl in VECTOR_LENGTHS])
    return t, data


def _run_with_vl(cfg: ExperimentConfig, vl: int, cache):
    """Run a config with the compiler's vector length capped at ``vl``.

    The cache key is ``(config, vl)`` — :class:`~repro.core.cache.
    ResultCache` digests the extra element alongside the config.
    """
    from repro.machine import catalog as cat
    from repro.miniapps import by_name
    from repro.runtime.executor import run_job
    from repro.runtime.placement import JobPlacement
    from repro.core.runner import Row

    key = (cfg, vl)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    cluster = cat.by_name(cfg.processor, n_nodes=cfg.n_nodes)
    app = by_name(cfg.app)
    placement = JobPlacement(cluster, cfg.n_ranks, cfg.n_threads,
                             allocation=cfg.allocation, binding=cfg.binding)
    options = PRESETS[cfg.options_preset].with_(simd_width_bits=vl)
    job = app.build_job(cluster, placement, dataset=cfg.dataset,
                        options=options, data_policy=cfg.data_policy)
    result = run_job(job)
    row = Row(config=cfg, elapsed=result.elapsed,
              gflops=result.achieved_flops_per_s / 1e9,
              dram_gbytes_per_s=result.dram_bandwidth / 1e9,
              comm_fraction=result.communication_fraction())
    if cache is not None:
        cache[key] = row
    return row


# ----------------------------------------------------------------------
# A2 — power-control modes
# ----------------------------------------------------------------------
def a2_power_modes(
    apps: list[str] | None = None,
    dataset: str = "as-is",
) -> tuple[Table, dict[str, dict[str, object]]]:
    apps = apps if apps is not None else ["ffvc", "nicam-dc", "ntchem", "mvmc"]
    t = Table(
        "A2: A64FX power-control modes (4x12, as-is)",
        ["miniapp", "normal ms", "eco ms", "boost ms",
         "eco W", "normal W", "boost W", "best GF/W"],
        note="eco = 1 FMA pipe + lowered supply; boost = +10% clock. "
             "Memory-bound apps: eco is (nearly) free and saves power.",
    )
    data: dict[str, dict[str, object]] = {}
    for app in apps:
        reports = mode_study(app, dataset)
        data[app] = reports
        best = max(reports.values(), key=lambda r: r.flops_per_joule)
        t.add(
            app,
            reports["normal"].elapsed_s * 1e3,
            reports["eco"].elapsed_s * 1e3,
            reports["boost"].elapsed_s * 1e3,
            reports["eco"].average_watts,
            reports["normal"].average_watts,
            reports["boost"].average_watts,
            f"{best.gflops_per_watt:.2f} ({best.mode})",
        )
    return t, data


# ----------------------------------------------------------------------
# A3 — micro-architecture sensitivity
# ----------------------------------------------------------------------
def _a64fx_variant(**core_changes) -> "catalog.Cluster":
    base = catalog.a64fx()
    chip = base.node.chips[0]
    dom = chip.domains[0]
    core = dataclasses.replace(dom.core, **core_changes)
    dom = dataclasses.replace(dom, core=core)
    chip = dataclasses.replace(chip, domains=(dom,) * 4)
    node = dataclasses.replace(base.node, chips=(chip,))
    return dataclasses.replace(base, node=node)


def _a64fx_line_variant(line_bytes: int) -> "catalog.Cluster":
    base = catalog.a64fx()
    chip = base.node.chips[0]
    dom = chip.domains[0]
    l2 = dataclasses.replace(dom.l2, line_bytes=line_bytes)
    dom = dataclasses.replace(dom, l2=l2)
    chip = dataclasses.replace(chip, domains=(dom,) * 4)
    node = dataclasses.replace(base.node, chips=(chip,))
    return dataclasses.replace(base, node=node)


def _time_on(cluster, app_name: str, dataset: str = "as-is") -> float:
    from repro.miniapps import by_name
    from repro.runtime.executor import run_job
    from repro.runtime.placement import JobPlacement

    app = by_name(app_name)
    placement = JobPlacement(cluster, 4, 12)
    return run_job(app.build_job(cluster, placement, dataset)).elapsed


def a5_collective_algorithms(
    sizes: list[int] | None = None,
    rank_counts: list[int] | None = None,
    n_nodes: int = 64,
) -> tuple[Table, dict[tuple[int, int], float]]:
    """A5: collective-algorithm selection crossovers (allreduce).

    Tables the model's allreduce times across payloads and rank counts on
    a Tofu-D system, against the latency-optimal algorithm forced — the
    crossover every production MPI library exhibits.
    """
    import math

    from repro.runtime import program as rt_ops
    from repro.runtime.collectives import (collective_time,
                                           profile_communicator)

    sizes = sizes if sizes is not None else [8, 1 << 10, 1 << 16,
                                             1 << 20, 1 << 24]
    ranks = rank_counts if rank_counts is not None else [4, 16, 64]
    cluster = catalog.a64fx(n_nodes=n_nodes)
    members = tuple(cluster.address_of(n * cluster.cores_per_node)
                    for n in range(n_nodes))
    profile = profile_communicator(cluster, members)
    t = Table(
        f"A5: Allreduce time [us] vs payload and ranks "
        f"(Tofu-D, {n_nodes} nodes)",
        ["payload B"] + [f"p={p}" for p in ranks]
        + [f"recursive-doubling p={max(ranks)}", "speedup"],
        note="speedup = size-aware algorithm selection vs forcing the "
             "latency-optimal algorithm",
    )
    data: dict[tuple[int, int], float] = {}
    p_max = max(ranks)
    for size in sizes:
        row: list = [size]
        for p in ranks:
            us = collective_time(rt_ops.Allreduce(size_bytes=size), p,
                                 profile) * 1e6
            data[(size, p)] = us
            row.append(us)
        rounds = math.ceil(math.log2(p_max))
        forced = (rounds * (profile.alpha_s
                            + 2.0 * size / profile.bandwidth)
                  + 0.2e-6 * rounds) * 1e6
        row.append(forced)
        row.append(forced / data[(size, p_max)])
        t.add(*row)
    return t, data


def a6_mixed_precision(
    lattice: tuple[int, int, int, int] = (4, 4, 4, 4),
    seed: int = 77,
) -> tuple[Table, dict[str, float]]:
    """A6: mixed-precision (fp32 inner + fp64 refinement) lattice solve.

    Couples the *executable* physics to the *kernel model*:

    1. run the real fp64 BiCGStab and the real mixed solver on a small
       lattice and count their Dirac applications;
    2. time the Dirac kernel in fp64 and fp32 (half the bytes, twice the
       lanes) on the A64FX model;
    3. combine both into the projected end-to-end speedup.
    """
    import numpy as np

    from repro.compile.compiler import Compiler
    from repro.kernels.timing import phase_time
    from repro.miniapps import by_name
    from repro.miniapps.ccs_qcd import physics as qcd

    rng = np.random.default_rng(seed)
    gauge = qcd.random_su3_field(lattice, rng)
    b = qcd.random_spinor(lattice, rng)
    kappa = 0.12
    _, it64, _ = qcd.bicgstab(gauge, b, kappa, tol=1e-10)
    _, outer, inner, _ = qcd.bicgstab_mixed(gauge, b, kappa, tol=1e-10)
    # Dirac applications: 2 per BiCGStab iteration; each outer refinement
    # adds one fp64 residual evaluation.
    dirac64_only = 2 * it64
    dirac64_mixed = outer
    dirac32_mixed = 2 * inner

    app = by_name("ccs-qcd")
    kern64 = app.kernels(app.dataset("as-is"))["qcd-dirac"]
    kern32 = dataclasses.replace(
        kern64, name="qcd-dirac-fp32", element_bytes=4,
        bytes_load=kern64.bytes_load / 2.0,
        bytes_store=kern64.bytes_store / 2.0,
        working_set_bytes=kern64.working_set_bytes / 2.0,
    )
    dom = catalog.a64fx().node.chips[0].domains[0]
    compiler = Compiler(PRESETS["kfast"])
    times = {}
    for name, kern in (("fp64", kern64), ("fp32", kern32)):
        ck = compiler.compile(kern, dom.core)
        pt = phase_time(
            ck, 1e6, dom.core, dom.l1d, dom.l2,
            mem_bandwidth_share=dom.memory.per_stream_bandwidth(12),
            l2_bandwidth_share=dom.l2_bandwidth_share(12),
            mem_latency_s=dom.memory.latency_s,
        )
        times[name] = pt.seconds

    t64_total = dirac64_only * times["fp64"]
    t_mixed = dirac64_mixed * times["fp64"] + dirac32_mixed * times["fp32"]
    speedup = t64_total / t_mixed

    t = Table(
        "A6: mixed-precision lattice solve (fp32 inner + fp64 refinement)",
        ["quantity", "fp64 solver", "mixed solver"],
        note="Dirac counts from the executable solvers; per-application "
             "times from the A64FX kernel model (12 threads/CMG)",
    )
    t.add("fp64 Dirac applications", dirac64_only, dirac64_mixed)
    t.add("fp32 Dirac applications", 0, dirac32_mixed)
    t.add("kernel time per application [us]",
          times["fp64"] * 1e6, times["fp32"] * 1e6)
    t.add("projected Dirac time [us]", t64_total * 1e6, t_mixed * 1e6)
    t.add("projected speedup", 1.0, speedup)
    data = {
        "speedup": speedup,
        "kernel_ratio": times["fp64"] / times["fp32"],
        "outer": float(outer),
        "inner": float(inner),
        "it64": float(it64),
    }
    return t, data


def a3_microarchitecture(
    apps: list[str] | None = None,
) -> tuple[Table, dict[str, dict[str, float]]]:
    apps = apps if apps is not None else ["mvmc", "ccs-qcd", "ffb", "ffvc"]
    variants = {
        "baseline": catalog.a64fx(),
        "ooo-224": _a64fx_variant(ooo_window=224),
        "fp-lat-4": _a64fx_variant(fp_latency_cycles=4.0),
        "line-64B": _a64fx_line_variant(64),
    }
    t = Table(
        "A3: A64FX micro-architecture sensitivity (speedup over baseline)",
        ["miniapp"] + list(variants)[1:],
        note="ooo-224 = Skylake-size OoO window; fp-lat-4 = Skylake FMA "
             "latency; line-64B = small L2 lines (helps gather apps)",
    )
    data: dict[str, dict[str, float]] = {}
    for app in apps:
        base = _time_on(variants["baseline"], app)
        row: dict[str, float] = {}
        for name, cluster in variants.items():
            if name == "baseline":
                continue
            row[name] = base / _time_on(cluster, app)
        data[app] = row
        t.add(app, *row.values())
    return t, data
