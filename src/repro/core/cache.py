"""Persistent, content-addressed result cache for sweep rows.

Every simulated :class:`~repro.core.runner.Row` is cached under a key with
two components:

* the **config digest** — a SHA-256 over the canonical JSON form of the
  :class:`~repro.core.experiment.ExperimentConfig`
  (:func:`repro.core.persistence.config_to_dict` with sorted keys), so the
  key is stable across processes and Python versions;
* the **model fingerprint** — a digest of the package version, the full
  processor catalog, the compiler presets, and every miniapp's kernel
  parameters.  Any change to the simulator's inputs changes the
  fingerprint, so stale rows self-invalidate instead of silently serving
  results from an older model.

Storage is a JSON-lines file (one record per line, append-only, written
with single atomic ``write`` calls), fronted by an LRU-bounded in-memory
dict.  Corrupt or truncated lines — e.g. from a run killed mid-write —
are skipped on load, never fatal.

The cache duck-types the plain-``dict`` protocol the runner always used
(``cache.get(config)`` / ``cache[config] = row``), so every ``cache=``
parameter in :mod:`repro.core` accepts either a throwaway dict or a
:class:`ResultCache`.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.core.experiment import ExperimentConfig
from repro.core.persistence import config_to_dict, row_from_dict, row_to_dict
from repro.core.runner import Row
from repro.errors import ConfigurationError

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: On-disk record format version (independent of the sweep-file schema).
CACHE_FORMAT = 1

_fingerprint_memo: str | None = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def model_fingerprint(refresh: bool = False) -> str:
    """Digest of everything that determines a simulated result.

    Covers the package version, the repr of every cataloged cluster
    (all hardware parameters are frozen dataclasses, so their reprs are
    canonical), the compiler presets, and each miniapp's per-dataset
    kernel descriptors.  Memoized per process; ``refresh=True`` recomputes
    (tests use this after monkeypatching the catalog).
    """
    global _fingerprint_memo
    if _fingerprint_memo is not None and not refresh:
        return _fingerprint_memo

    import repro
    from repro.compile.options import PRESETS
    from repro.machine import catalog
    from repro.miniapps import SUITE

    parts = [f"repro={repro.__version__}"]
    for name in sorted(catalog.PROCESSORS):
        parts.append(f"processor:{name}={catalog.by_name(name)!r}")
    for pname in sorted(PRESETS):
        parts.append(f"preset:{pname}={PRESETS[pname]!r}")
    for aname in sorted(SUITE):
        app = SUITE[aname]
        for dname in sorted(app.datasets):
            kernels = app.kernels(app.dataset(dname))
            for kname in sorted(kernels):
                parts.append(f"kernel:{aname}/{dname}/{kname}="
                             f"{kernels[kname]!r}")
    digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]
    _fingerprint_memo = digest
    return digest


def _key_payload(key: Any) -> dict:
    """Canonical JSON payload for a cache key.

    Accepts an :class:`ExperimentConfig`, or a tuple whose first element
    is one (the remaining elements must be JSON-safe primitives — the
    ablation studies key on ``(config, vector_length)``).
    """
    if isinstance(key, ExperimentConfig):
        return {"config": config_to_dict(key)}
    if isinstance(key, tuple) and key and isinstance(key[0], ExperimentConfig):
        extra = list(key[1:])
        for item in extra:
            if not isinstance(item, (str, int, float, bool, type(None))):
                raise ConfigurationError(
                    f"cache key extras must be JSON primitives, got {item!r}"
                )
        return {"config": config_to_dict(key[0]), "extra": extra}
    raise ConfigurationError(
        f"uncacheable key {key!r}: expected an ExperimentConfig or a "
        f"(config, *primitives) tuple"
    )


def config_digest(key: Any) -> str:
    """Stable content digest of a cache key (hex, 16 chars)."""
    blob = json.dumps(_key_payload(key), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class ResultCache:
    """Persistent content-addressed cache of sweep :class:`Row` objects.

    Parameters
    ----------
    directory:
        Where the JSONL file lives (created on first write).  ``None``
        selects :func:`default_cache_dir`.
    max_memory_entries:
        LRU bound on the in-memory layer; the disk file is unbounded.
    """

    __slots__ = ("directory", "max_memory_entries", "hits", "misses",
                 "torn_lines", "_mem", "_loaded", "_fingerprint")

    FILENAME = "results.jsonl"

    def __init__(self, directory: str | Path | None = None, *,
                 max_memory_entries: int = 65536) -> None:
        if max_memory_entries < 1:
            raise ConfigurationError("max_memory_entries must be positive")
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.max_memory_entries = max_memory_entries
        self.hits = 0
        self.misses = 0
        self.torn_lines = 0
        self._mem: OrderedDict[str, Row] = OrderedDict()
        self._loaded = False
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self.directory / self.FILENAME

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = model_fingerprint()
        return self._fingerprint

    # ------------------------------------------------------------------
    def _remember(self, digest: str, row: Row) -> None:
        mem = self._mem
        if digest in mem:
            mem.move_to_end(digest)
        mem[digest] = row
        while len(mem) > self.max_memory_entries:
            mem.popitem(last=False)

    def _load(self) -> None:
        """Read the JSONL file, keeping current-fingerprint rows.

        Tolerates corrupt/truncated lines and records whose config no
        longer validates (e.g. a preset that was since removed) — those
        are simply skipped.
        """
        self._loaded = True
        try:
            text = self.path.read_text()
        except OSError:
            return
        fp = self.fingerprint
        corrupt = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                corrupt += 1  # torn write / non-JSON garbage
                continue
            try:
                if (rec.get("format") != CACHE_FORMAT
                        or rec.get("fp") != fp):
                    continue  # expected invalidation, not corruption
                digest = rec["key"]
                row = row_from_dict(rec["row"])
            except (ValueError, KeyError, TypeError, ConfigurationError,
                    AttributeError):
                corrupt += 1  # current-format record we cannot decode
                continue
            self._remember(digest, row)
        if corrupt:
            # Surface through telemetry rather than a one-shot
            # warnings.warn: the count lands in metrics.jsonl and shows
            # up as a `repro report` line item, and stays inspectable on
            # the cache object itself.
            self.torn_lines += corrupt
            telemetry.count("cache.torn_lines", corrupt)

    def _append(self, digest: str, row: Row) -> None:
        rec = {"format": CACHE_FORMAT, "fp": self.fingerprint,
               "key": digest, "row": row_to_dict(row)}
        line = json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
        self.directory.mkdir(parents=True, exist_ok=True)
        # One O_APPEND write per record: concurrent appenders interleave
        # whole lines, and a killed process leaves at most one truncated
        # line, which _load() skips.
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    def get(self, key: Any, default: Row | None = None) -> Row | None:
        if not self._loaded:
            self._load()
        digest = config_digest(key)
        row = self._mem.get(digest)
        if row is None:
            self.misses += 1
            telemetry.count("cache.miss")
            return default
        self._mem.move_to_end(digest)
        self.hits += 1
        telemetry.count("cache.hit")
        return row

    def put(self, key: Any, row: Row) -> None:
        if not self._loaded:
            self._load()
        digest = config_digest(key)
        if digest in self._mem:
            self._remember(digest, row)
            return
        self._remember(digest, row)
        self._append(digest, row)
        telemetry.count("cache.store")

    # dict-protocol aliases so ResultCache drops in wherever a plain
    # memo dict was accepted.
    def __setitem__(self, key: Any, row: Row) -> None:
        self.put(key, row)

    def __getitem__(self, key: Any) -> Row:
        row = self.get(key)
        if row is None:
            raise KeyError(key)
        return row

    def __contains__(self, key: Any) -> bool:
        if not self._loaded:
            self._load()
        return config_digest(key) in self._mem

    def __len__(self) -> int:
        if not self._loaded:
            self._load()
        return len(self._mem)

    def compact(self, *, keep_stale: bool = True) -> dict[str, int]:
        """Rewrite the JSONL file without torn or duplicate lines.

        The append-only write path never rewrites history, so a
        long-lived cache accumulates garbage: truncated lines from
        killed processes, and superseded records when a key was stored
        more than once (every ``put`` appends).  ``compact`` rewrites
        the file keeping only the **last** record per (fingerprint, key)
        pair, dropping everything unparseable; with
        ``keep_stale=False`` records from other model fingerprints are
        dropped too (they can never be served by this build).

        The rewrite is atomic — records stream to a temporary file in
        the same directory, then ``os.replace`` swaps it in — so a
        reader or concurrent appender sees either the old file or the
        new one, never a half-written hybrid.  Returns counters:
        ``kept``, ``dropped_torn``, ``dropped_duplicates``,
        ``dropped_stale``, ``bytes_before``, ``bytes_after``.
        """
        stats = {"kept": 0, "dropped_torn": 0, "dropped_duplicates": 0,
                 "dropped_stale": 0, "bytes_before": 0, "bytes_after": 0}
        try:
            text = self.path.read_text()
        except OSError:
            return stats  # nothing on disk: already as compact as it gets
        stats["bytes_before"] = len(text.encode())
        fp = self.fingerprint
        #: (fp, key) -> last good line for it, in first-seen order.
        latest: "OrderedDict[tuple[str, str], str]" = OrderedDict()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                record_fp = str(rec["fp"])
                key = str(rec["key"])
                ok = rec.get("format") == CACHE_FORMAT and "row" in rec
            except (ValueError, KeyError, TypeError):
                ok = False
            if not ok:
                stats["dropped_torn"] += 1
                continue
            if not keep_stale and record_fp != fp:
                stats["dropped_stale"] += 1
                continue
            if (record_fp, key) in latest:
                stats["dropped_duplicates"] += 1
            latest[(record_fp, key)] = line
        stats["kept"] = len(latest)
        body = "".join(line + "\n" for line in latest.values())
        stats["bytes_after"] = len(body.encode())
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, body.encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.path)
        # Reload so the memory layer reflects exactly what survived.
        self._mem.clear()
        self._loaded = False
        telemetry.count("cache.compacted")
        return stats

    def clear(self) -> None:
        """Drop the in-memory layer and delete the on-disk file."""
        self._mem.clear()
        self._loaded = True
        try:
            self.path.unlink()
        except OSError:
            pass

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "torn_lines": self.torn_lines, "entries": len(self)}

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"<ResultCache {self.path} entries={len(self._mem)} "
                f"hits={self.hits} misses={self.misses}>")
