"""Derived performance metrics."""

from __future__ import annotations

from repro.core.runner import Row, SweepResult
from repro.errors import ConfigurationError


def speedup(baseline: Row, candidate: Row) -> float:
    """How much faster ``candidate`` is than ``baseline`` (>1 = faster)."""
    if candidate.elapsed <= 0:
        raise ConfigurationError("candidate has non-positive elapsed time")
    return baseline.elapsed / candidate.elapsed


def parallel_efficiency(serial: Row, parallel: Row, resources: int) -> float:
    """Classic strong-scaling efficiency against a serial baseline."""
    if resources < 1:
        raise ConfigurationError("resources must be positive")
    return speedup(serial, parallel) / resources


def best_config(sweep: SweepResult, **filters) -> Row:
    """Fastest row of a sweep, optionally filtered by config attributes."""
    rows = sweep.by(**filters) if filters else sweep.rows
    if not rows:
        raise ConfigurationError(
            f"no rows in sweep {sweep.name!r} match {filters}"
        )
    return min(rows, key=lambda r: r.elapsed)


def spread(rows: list[Row]) -> float:
    """(max - min) / min of elapsed times — the 'does this axis matter'
    statistic used for the process-allocation finding."""
    if not rows:
        raise ConfigurationError("spread of an empty row set")
    times = [r.elapsed for r in rows]
    lo = min(times)
    if lo <= 0:
        raise ConfigurationError("non-positive elapsed time")
    return (max(times) - lo) / lo


def relative_performance(rows: list[Row], reference_label: str) -> dict[str, float]:
    """Per-row performance relative to the row whose processor matches
    ``reference_label`` (reference = 1.0; higher is faster)."""
    ref = next((r for r in rows if r.config.processor == reference_label), None)
    if ref is None:
        raise ConfigurationError(f"no row for reference {reference_label!r}")
    return {
        r.config.processor: ref.elapsed / r.elapsed
        for r in rows
    }
