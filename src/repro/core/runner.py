"""Sweep execution: configurations in, result rows out.

``run_config``/``run_sweep`` accept a ``cache`` (a plain dict for
process-lifetime memoization, or a persistent
:class:`~repro.core.cache.ResultCache`) and ``run_sweep`` additionally
accepts ``workers=N`` to fan the sweep out over a process pool (see
:mod:`repro.core.parallel`).  Parallel execution preserves the exact
serial row ordering and values.  With a persistent cache, finished rows
are checkpointed as they complete and ``run_sweep(..., resume=True)``
restarts an interrupted sweep where it stopped (see
:mod:`repro.core.journal`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro import telemetry
from repro.core.experiment import ExperimentConfig
from repro.machine import catalog
from repro.miniapps import by_name
from repro.runtime.executor import RunResult, run_job
from repro.runtime.placement import JobPlacement


@dataclass(frozen=True)
class Row:
    """One sweep result.

    ``engine`` records which scoring path produced the numbers —
    ``"event"`` (discrete-event executor) or ``"analytic"`` (closed-form
    batch engine) — and survives cache round-trips, so warm hits report
    their provenance.
    """

    config: ExperimentConfig
    elapsed: float
    gflops: float
    dram_gbytes_per_s: float
    comm_fraction: float
    engine: str = "event"

    @property
    def label(self) -> str:
        return self.config.label()


@dataclass
class SweepResult:
    """An ordered collection of sweep rows with lookup helpers.

    ``errors`` holds per-row failures when the sweep ran with
    ``errors="capture"`` (see :func:`run_sweep`); successful rows keep
    their relative order regardless.
    """

    name: str
    rows: list[Row] = field(default_factory=list)
    errors: list = field(default_factory=list, compare=False)
    #: attr -> (row count at build time, value -> rows); rebuilt lazily
    #: whenever the row count changes, so direct ``rows`` appends are safe.
    _indexes: dict = field(default_factory=dict, init=False, repr=False,
                           compare=False)

    def add(self, row: Row) -> None:
        self.rows.append(row)

    def _index_for(self, attr: str) -> dict[Any, list[Row]]:
        cached = self._indexes.get(attr)
        if cached is not None and cached[0] == len(self.rows):
            return cached[1]
        index: dict[Any, list[Row]] = {}
        for row in self.rows:
            index.setdefault(getattr(row.config, attr), []).append(row)
        self._indexes[attr] = (len(self.rows), index)
        return index

    def by(self, **attrs) -> list[Row]:
        """Rows whose config matches all given attributes.

        The first attribute is served from a per-attribute index (one
        dict probe instead of a full scan); any further attributes filter
        the indexed candidates.
        """
        if not attrs:
            return list(self.rows)
        items = iter(attrs.items())
        first_attr, first_value = next(items)
        candidates = self._index_for(first_attr).get(first_value, [])
        rest = list(items)
        if not rest:
            return list(candidates)
        return [
            row for row in candidates
            if all(getattr(row.config, k) == v for k, v in rest)
        ]

    def best_per(self, attr: str) -> dict[Any, Row]:
        """Fastest row per distinct config value of ``attr``.

        Values appear in first-seen row order, so e.g.
        ``best_per("app")`` over a multi-app sweep walks apps in sweep
        order.
        """
        best: dict[Any, Row] = {}
        for value, rows in self._index_for(attr).items():
            best[value] = min(rows, key=lambda r: r.elapsed)
        return best

    def fastest(self) -> Row:
        if not self.rows:
            raise ValueError(f"sweep {self.name!r} is empty")
        return min(self.rows, key=lambda r: r.elapsed)


def _preflight(config: ExperimentConfig, cache) -> None:
    """Static pre-flight lint before spending simulation time.

    Raises :class:`~repro.errors.LintError` on error-severity findings;
    a no-op when disabled via ``--no-lint`` / ``REPRO_NO_LINT=1`` (the
    environment variable travels into sweep worker processes).  When the
    result cache is persistent, lint verdicts share its directory.
    """
    from repro.analysis import analyzer

    if not analyzer.preflight_enabled():
        return
    lint_cache = None
    directory = getattr(cache, "directory", None)
    if directory is not None:
        from repro.analysis.cache import lint_cache_for

        lint_cache = lint_cache_for(directory)
    t0 = time.perf_counter()
    try:
        with telemetry.span("gate.lint", config=config.label()):
            analyzer.preflight(config, lint_cache)
    except Exception:
        telemetry.count("gate.lint.blocked")
        raise
    finally:
        telemetry.observe("gate.lint.seconds", time.perf_counter() - t0)


def _advise_preflight(config: ExperimentConfig, cache,
                      mode: str | None) -> None:
    """Opt-in static performance gate before spending simulation time.

    ``mode=None`` defers to the global :func:`repro.analysis.advisor.
    advise_mode` (``REPRO_ADVISE``, worker-propagating); ``"off"`` is a
    no-op.  ``"warn"`` raises :class:`~repro.errors.AdviseError` on
    error-severity findings (infeasible placements); ``"error"``
    additionally blocks on warnings.  Unlike the lint gate this runs for
    every engine — the advisor consumes only the closed-form model, so
    the analytic path is gated too.
    """
    from repro.analysis import advisor

    mode = advisor.advise_mode() if mode is None else \
        advisor.check_mode(mode)
    if mode == "off":
        return
    lint_cache = None
    directory = getattr(cache, "directory", None)
    if directory is not None:
        from repro.analysis.cache import lint_cache_for

        lint_cache = lint_cache_for(directory)
    t0 = time.perf_counter()
    try:
        with telemetry.span("gate.advise", config=config.label(),
                            mode=mode):
            advisor.advise_gate(config, lint_cache, mode=mode)
    except Exception:
        telemetry.count("gate.advise.blocked")
        raise
    finally:
        telemetry.observe("gate.advise.seconds", time.perf_counter() - t0)


def cache_key(config: ExperimentConfig, engine: str):
    """Cache key for one config under one engine.

    Event rows keep the bare-config key (backward compatible with every
    cache written before engines existed); analytic rows are tagged so
    the two scoring paths can never alias in the content-addressed
    cache.
    """
    if engine == "event":
        return config
    return (config, f"engine={engine}")


def run_config(config: ExperimentConfig, cache=None, *,
               engine: str = "event", fault_plan=None,
               advise: str | None = None) -> Row:
    """Simulate (or analytically score) one configuration.

    ``cache`` memoizes identical configs across sweeps — experiments
    share baseline points.  It may be a plain dict (dies with the
    process) or a :class:`~repro.core.cache.ResultCache` (persistent,
    fingerprint-validated).

    ``engine`` selects the scoring path: ``"event"`` (discrete-event
    executor, the default), ``"analytic"`` (closed-form batch engine —
    no event-level effects, see DESIGN.md), or ``"auto"`` (analytic
    score, cross-checked against an event re-simulation; raises
    :class:`~repro.errors.EngineDisagreement` beyond tolerance).

    ``advise`` opts into the static performance gate
    (:mod:`repro.analysis.advisor`): ``"warn"`` raises
    :class:`~repro.errors.AdviseError` on error-severity findings,
    ``"error"`` blocks on warnings too, ``"off"`` skips; ``None``
    (default) follows the global mode (``REPRO_ADVISE`` /
    ``set_advise_mode``).  The gate runs before the cache lookup — an
    opted-in caller wants the verdict even for warm rows, and the
    advisor memoizes per config so the repeat cost is a dict probe.

    A non-empty ``fault_plan`` requires the event engine (the analytic
    model has no fault dynamics — anything else would silently ignore
    the plan) and bypasses the cache in both directions: a degraded run
    must never poison, nor be served from, fault-free rows.

    With telemetry on (the default — see :mod:`repro.telemetry`), a
    top-level call records itself as ``results/runs/<run_id>/``; inside
    an active run (a sweep's serial path) it contributes a ``config``
    span instead.
    """
    with telemetry.run_scope(kind="config", name=config.label(),
                             configs=[config], engine=engine,
                             cache=cache, advise=advise,
                             fault_plan=fault_plan) as run:
        row = _run_config_impl(config, cache, engine=engine,
                               fault_plan=fault_plan, advise=advise)
        if run is not None:
            run.attach_rows(config.label(), [row])
        return row


def _run_config_impl(config: ExperimentConfig, cache=None, *,
                     engine: str = "event", fault_plan=None,
                     advise: str | None = None) -> Row:
    from repro.analytic import engine as analytic_engine

    analytic_engine.check_engine(engine)
    telemetry.count(f"engine.pick.{engine}")
    _advise_preflight(config, cache, advise)
    faulty = fault_plan is not None and not getattr(fault_plan, "empty", False)
    if faulty and engine != "event":
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"engine={engine!r} cannot inject faults: the analytic model "
            f"has no fault dynamics; use engine='event' for FaultPlan / "
            f"chaos runs"
        )

    if engine in ("analytic", "auto"):
        key = cache_key(config, "analytic")
        row = cache.get(key) if cache is not None else None
        if row is None:
            with telemetry.span("score.analytic", config=config.label()):
                row = analytic_engine.score_config(config)
            if cache is not None:
                cache[key] = row
        if engine == "auto":
            event_row = run_config(config, cache, engine="event")
            analytic_engine.check_agreement(config, row, event_row)
        return row

    if cache is not None and not faulty:
        row = cache.get(config)
        if row is not None:
            return row
    _preflight(config, cache)
    cluster = catalog.by_name(config.processor, n_nodes=config.n_nodes)
    app = by_name(config.app)
    placement = JobPlacement(
        cluster,
        config.n_ranks,
        config.n_threads,
        allocation=config.allocation,
        binding=config.binding,
    )
    job = app.build_job(
        cluster,
        placement,
        dataset=config.dataset,
        options=config.options,
        data_policy=config.data_policy,
    )
    if faulty:
        import dataclasses

        job = dataclasses.replace(job, fault_plan=fault_plan)
        telemetry.count("faults.runs")
    with telemetry.span("score.event", config=config.label()):
        result: RunResult = run_job(job)
    if result.fault_stats is not None:
        for stat, value in result.fault_stats.to_dict().items():
            if value:
                telemetry.count(f"faults.{stat}", value)
    row = Row(
        config=config,
        elapsed=result.elapsed,
        gflops=result.achieved_flops_per_s / 1e9,
        dram_gbytes_per_s=result.dram_bandwidth / 1e9,
        comm_fraction=result.communication_fraction(),
        engine="event",
    )
    if cache is not None and not faulty:
        cache[config] = row
    return row


#: Journal failure count at which ``resume`` quarantines a config.
QUARANTINE_AFTER = 2


def run_sweep(name: str, configs: list[ExperimentConfig],
              cache=None, *, workers: int = 1,
              errors: str = "raise", resume: bool = False,
              retry=None, engine: str = "event",
              advise: str | None = None) -> SweepResult:
    """Simulate every configuration of a sweep, preserving order.

    Parameters
    ----------
    cache:
        Optional result cache shared across sweeps (dict or
        :class:`~repro.core.cache.ResultCache`).
    workers:
        ``> 1`` fans the cache-missing configs out over a process pool;
        row order and values are identical to the serial run.  ``<= 1``
        (or an environment without a usable pool) runs serially.
    errors:
        ``"raise"`` (default) re-raises the first failing config's
        exception; ``"capture"`` records failures as
        :class:`~repro.core.parallel.SweepError` entries on
        ``SweepResult.errors`` and keeps the surviving rows.
    resume:
        Pick up a previously interrupted run of this sweep.  Requires a
        persistent :class:`~repro.core.cache.ResultCache`: completed
        rows are served from the cache (they were checkpointed as they
        finished) and only the remainder is simulated.  Configs the
        sweep journal shows failing :data:`QUARANTINE_AFTER` or more
        times are **quarantined** — recorded on ``SweepResult.errors``
        without another attempt, whatever the ``errors`` mode, so one
        deterministically broken config cannot wedge the restart loop.
    retry:
        Optional :class:`~repro.core.parallel.RetryPolicy` tuning pool
        resilience (progress timeout, retry attempts, backoff).
    engine:
        ``"event"`` (default) simulates each config; ``"analytic"``
        scores the whole sweep in one closed-form batch pass (workers
        are irrelevant — there is no per-config simulation to fan out);
        ``"auto"`` scores analytically, then re-simulates a seeded
        sample with the event executor and raises
        :class:`~repro.errors.EngineDisagreement` if the engines differ
        beyond tolerance — whatever the ``errors`` mode, because a
        model-level disagreement taints every row, not one config.
    advise:
        Opt-in static performance gate, checked serially before any
        config is dispatched (the advisor is closed-form — no
        simulation time is spent).  ``"warn"`` blocks configs with
        error-severity findings, ``"error"`` blocks on warnings too,
        ``"off"`` skips, ``None`` (default) follows the global mode.
        Under ``errors="capture"`` a gated config is recorded on
        ``SweepResult.errors`` (like a quarantined one) and the rest of
        the sweep proceeds; under ``errors="raise"`` the first
        :class:`~repro.errors.AdviseError` propagates.

    When the cache is persistent, every fresh completion (success or
    failure) is also journaled next to the cache file — that journal is
    what ``resume`` consults.

    With telemetry on (the default), the sweep records itself as a run
    directory ``results/runs/<run_id>/`` — manifest, streamed metrics,
    orchestration spans, and the rows as ``summary.json`` (see
    :mod:`repro.telemetry`); a resumed sweep re-enters the original
    run's directory and appends.  Nested sweeps (figure builders inside
    ``repro report``) become spans of the enclosing run instead.
    """
    if errors not in ("raise", "capture"):
        raise ValueError(f"errors must be 'raise' or 'capture', not {errors!r}")
    from repro.analytic import engine as analytic_engine

    analytic_engine.check_engine(engine)
    with telemetry.run_scope(kind="sweep", name=name, configs=configs,
                             engine=engine, workers=workers,
                             resume=resume, cache=cache,
                             advise=advise) as run:
        sweep = _run_sweep_impl(name, configs, cache, workers=workers,
                                errors=errors, resume=resume, retry=retry,
                                engine=engine, advise=advise)
        if run is not None:
            run.attach_sweep(sweep)
        return sweep


def _run_sweep_impl(name: str, configs: list[ExperimentConfig],
                    cache=None, *, workers: int = 1,
                    errors: str = "raise", resume: bool = False,
                    retry=None, engine: str = "event",
                    advise: str | None = None) -> SweepResult:
    from repro.analytic import engine as analytic_engine
    from repro.core.journal import SweepJournal
    from repro.core.parallel import SweepError, run_configs

    journal = SweepJournal.for_cache(cache)
    if resume and journal is None:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            "resume requires a persistent ResultCache (completed rows and "
            "the failure journal live in its directory)"
        )

    quarantine: dict[ExperimentConfig, SweepError] = {}
    if resume:
        for config in configs:
            if config in quarantine:
                continue
            entry = journal.quarantined(name, config, QUARANTINE_AFTER)
            if entry is not None:
                quarantine[config] = SweepError(
                    config=config,
                    error=entry["error"] or "Quarantined",
                    message=(entry["message"] or "repeated failure")
                    + f" (quarantined after {entry['fails']} attempts)",
                    worker_pid=entry["pid"],
                    attempts=entry["fails"],
                )

    def note(config: ExperimentConfig, ok: bool, value) -> None:
        if journal is not None:
            journal.record(name, config, ok,
                           exc=None if ok else value)

    from repro.errors import AdviseError

    for config in configs:
        if config in quarantine:
            continue
        try:
            _advise_preflight(config, cache, advise)
        except AdviseError as exc:
            if errors == "raise":
                raise
            quarantine[config] = SweepError.from_exception(config, exc)

    if quarantine:
        telemetry.count("sweep.quarantined", len(quarantine))
    to_run = [c for c in configs if c not in quarantine]
    with telemetry.span("dispatch", engine=engine, configs=len(to_run),
                        workers=workers):
        if engine == "event":
            outcome_list = run_configs(to_run, workers=workers,
                                       cache=cache, on_result=note,
                                       retry=retry)
        else:
            outcome_list = _score_analytic(to_run, cache, note)
    outcomes = iter(outcome_list)
    sweep = SweepResult(name)
    aligned: list = []
    for config in configs:
        quarantined = quarantine.get(config)
        if quarantined is not None:
            sweep.errors.append(quarantined)
            aligned.append(None)
            continue
        outcome = next(outcomes)
        aligned.append(outcome)
        if isinstance(outcome, Exception):
            if errors == "raise":
                raise outcome
            sweep.errors.append(SweepError.from_exception(config, outcome))
        else:
            sweep.add(outcome)
    if engine == "auto":
        # fail loudly on model-level disagreement, whatever the errors
        # mode — it taints every analytic row, not one config
        with telemetry.span("cross-validate", configs=len(configs)):
            analytic_engine.cross_validate(name, configs, aligned, cache)
    return sweep


def _score_analytic(configs: list[ExperimentConfig], cache,
                    note) -> list:
    """Batch-score configs analytically, honoring the cache + journal.

    Returns one :class:`Row` or Exception per config, in order.  Cached
    rows (under their engine-tagged keys) are served without scoring;
    only the misses enter the batch pass.
    """
    from repro.analytic import engine as analytic_engine

    outcomes: list = [None] * len(configs)
    misses: list[tuple[int, ExperimentConfig]] = []
    for i, config in enumerate(configs):
        key = cache_key(config, "analytic")
        row = cache.get(key) if cache is not None else None
        if row is not None:
            outcomes[i] = row
        else:
            misses.append((i, config))
    if misses:
        telemetry.count("engine.analytic.scored", len(misses))
        scored = analytic_engine.score_configs([c for _, c in misses])
        for (i, config), outcome in zip(misses, scored):
            outcomes[i] = outcome
            ok = not isinstance(outcome, Exception)
            if ok and cache is not None:
                cache[cache_key(config, "analytic")] = outcome
            note(config, ok, outcome)
    return outcomes
