"""Sweep execution: configurations in, result rows out."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig
from repro.machine import catalog
from repro.miniapps import by_name
from repro.runtime.executor import RunResult, run_job
from repro.runtime.placement import JobPlacement


@dataclass(frozen=True)
class Row:
    """One sweep result."""

    config: ExperimentConfig
    elapsed: float
    gflops: float
    dram_gbytes_per_s: float
    comm_fraction: float

    @property
    def label(self) -> str:
        return self.config.label()


@dataclass
class SweepResult:
    """An ordered collection of sweep rows with lookup helpers."""

    name: str
    rows: list[Row] = field(default_factory=list)

    def add(self, row: Row) -> None:
        self.rows.append(row)

    def by(self, **attrs) -> list[Row]:
        """Rows whose config matches all given attributes."""
        out = []
        for row in self.rows:
            if all(getattr(row.config, k) == v for k, v in attrs.items()):
                out.append(row)
        return out

    def fastest(self) -> Row:
        if not self.rows:
            raise ValueError(f"sweep {self.name!r} is empty")
        return min(self.rows, key=lambda r: r.elapsed)


def run_config(config: ExperimentConfig,
               _cache: dict | None = None) -> Row:
    """Simulate one configuration.

    ``_cache`` (optional dict) memoizes identical configs across sweeps —
    experiments share baseline points.
    """
    if _cache is not None and config in _cache:
        return _cache[config]
    cluster = catalog.by_name(config.processor, n_nodes=config.n_nodes)
    app = by_name(config.app)
    placement = JobPlacement(
        cluster,
        config.n_ranks,
        config.n_threads,
        allocation=config.allocation,
        binding=config.binding,
    )
    job = app.build_job(
        cluster,
        placement,
        dataset=config.dataset,
        options=config.options,
        data_policy=config.data_policy,
    )
    result: RunResult = run_job(job)
    row = Row(
        config=config,
        elapsed=result.elapsed,
        gflops=result.achieved_flops_per_s / 1e9,
        dram_gbytes_per_s=result.dram_bandwidth / 1e9,
        comm_fraction=result.communication_fraction(),
    )
    if _cache is not None:
        _cache[config] = row
    return row


def run_sweep(name: str, configs: list[ExperimentConfig],
              _cache: dict | None = None) -> SweepResult:
    """Simulate every configuration of a sweep, preserving order."""
    sweep = SweepResult(name)
    for config in configs:
        sweep.add(run_config(config, _cache))
    return sweep
