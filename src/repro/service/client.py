"""Blocking client SDK for the sweep service.

:class:`ServiceClient` speaks :mod:`repro.service.protocol` over one
unix-socket connection.  Connection failures, timeouts, and mid-stream
disconnects (a server draining for shutdown closes its socket) all
surface as the typed, retryable
:class:`~repro.errors.ServiceUnavailable` — callers decide whether to
back off and reconnect (a restarted server resumes journaled jobs, so
retrying a ``watch`` against the new server replays the full stream).

The highest-level call, :meth:`ServiceClient.run_sweep`, submits a
sweep, consumes the row stream, and reassembles a
:class:`~repro.core.runner.SweepResult` that is **row-for-row,
bit-for-bit identical** to calling :func:`repro.core.runner.run_sweep`
directly — rows ride the wire through the persistence schema, whose
float round-trip is exact.
"""

from __future__ import annotations

import os
import random
import socket
import time
from pathlib import Path
from typing import Any, Iterator

from repro.core.cache import default_cache_dir
from repro.core.experiment import ExperimentConfig
from repro.core.parallel import SweepError
from repro.core.runner import Row, SweepResult
from repro.errors import (
    JobError,
    ProtocolError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.service import protocol

#: Environment override for the service socket location.
ENV_SERVICE_SOCKET = "REPRO_SERVICE_SOCKET"

#: Environment override for the client identity fair-share bills to.
ENV_SERVICE_CLIENT = "REPRO_SERVICE_CLIENT"


def default_socket_path() -> Path:
    """``$REPRO_SERVICE_SOCKET``, else ``service.sock`` beside the
    default result cache (server and clients agree by default)."""
    env = os.environ.get(ENV_SERVICE_SOCKET)
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "service.sock"


def default_client_name() -> str:
    """``$REPRO_SERVICE_CLIENT``, else a per-process identity."""
    env = os.environ.get(ENV_SERVICE_CLIENT, "").strip()
    return env if env else f"pid-{os.getpid()}"


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.SweepService`.

    Parameters
    ----------
    socket_path:
        Where the server listens (default:
        :func:`default_socket_path`).
    connect_retries:
        Extra connection attempts before giving up with
        :class:`~repro.errors.ServiceUnavailable` — each waits
        ``backoff_s`` doubled per attempt, so a client started moments
        before its server still connects.
    timeout_s:
        Socket timeout for reads/writes; a stream that stays silent this
        long raises :class:`~repro.errors.ServiceUnavailable` rather
        than hanging forever (server heartbeats on live-but-slow jobs
        reset it).  ``None`` blocks indefinitely.
    client_name:
        Identity the server's fair-share scheduler bills this client's
        jobs to (default: ``$REPRO_SERVICE_CLIENT``, else
        ``pid-<pid>``).
    jitter_seed:
        Seeds the deterministic backoff jitter.  Defaults to a
        per-process value so N clients restarted together spread their
        retries instead of thundering in lockstep; fix it for
        reproducible tests.
    overload_retries:
        How many ``overloaded`` rejections :meth:`run_sweep` absorbs
        with exponential backoff before giving up (raising, or falling
        back locally when ``fallback="local"``).

    Usable as a context manager; the connection opens lazily on first
    use.
    """

    def __init__(self, socket_path: str | Path | None = None, *,
                 connect_retries: int = 5, backoff_s: float = 0.05,
                 timeout_s: float | None = 600.0,
                 client_name: str | None = None,
                 jitter_seed: int | None = None,
                 overload_retries: int = 6) -> None:
        self.socket_path = Path(socket_path) if socket_path is not None \
            else default_socket_path()
        self.connect_retries = max(0, connect_retries)
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.client_name = client_name if client_name is not None \
            else default_client_name()
        self.overload_retries = max(0, overload_retries)
        self._rng = random.Random(
            jitter_seed if jitter_seed is not None else os.getpid())
        self.server_info: dict[str, Any] = {}
        self._sock: socket.socket | None = None
        self._reader: Any = None

    def _backoff_delay(self, attempt: int, floor_s: float = 0.0) -> float:
        """Seeded-jitter exponential backoff: ``backoff_s * 2^attempt``
        scaled by a deterministic factor in [0.5, 1.0), floored at the
        server's ``retry_after_s`` hint."""
        delay = self.backoff_s * (2 ** attempt)
        delay *= 0.5 + 0.5 * self._rng.random()
        return max(delay, floor_s)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        """Connect (with retry/backoff) and consume the hello frame."""
        if self._sock is not None:
            return self
        last: OSError | None = None
        for attempt in range(self.connect_retries + 1):
            if attempt > 0 and self.backoff_s > 0:
                # Jittered, not lockstep: N clients reconnecting to a
                # restarted server spread over the backoff window.
                time.sleep(self._backoff_delay(attempt - 1))
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            try:
                sock.connect(str(self.socket_path))
            except OSError as exc:
                last = exc
                sock.close()
                continue
            self._sock = sock
            self._reader = sock.makefile("rb")
            break
        else:
            raise ServiceUnavailable(
                f"cannot reach the sweep service at {self.socket_path} "
                f"after {self.connect_retries + 1} attempt(s): {last}")
        hello = self._read_frame()
        if hello.get("type") != "hello":
            self.close()
            raise ProtocolError(
                f"expected a hello frame, got {hello.get('type')!r}")
        if hello.get("v") != protocol.PROTOCOL_VERSION:
            self.close()
            raise ProtocolError(
                f"server speaks protocol v{hello.get('v')!r}, this "
                f"client speaks v{protocol.PROTOCOL_VERSION}")
        self.server_info = hello
        return self

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _write_frame(self, frame: dict[str, Any]) -> None:
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(protocol.encode_frame(frame))
        except socket.timeout as exc:
            self.close()
            raise ServiceUnavailable(
                f"sweep service write timed out: {exc}") from None
        except OSError as exc:
            self.close()
            raise ServiceUnavailable(
                f"lost the sweep service connection: {exc}") from None

    def _read_frame(self) -> dict[str, Any]:
        assert self._reader is not None
        try:
            line = self._reader.readline()
        except socket.timeout:
            self.close()
            raise ServiceUnavailable(
                f"sweep service went silent for {self.timeout_s}s"
            ) from None
        except OSError as exc:
            self.close()
            raise ServiceUnavailable(
                f"lost the sweep service connection: {exc}") from None
        if not line:
            self.close()
            raise ServiceUnavailable(
                "the sweep service closed the connection (draining for "
                "shutdown, or crashed); its journaled jobs resume on "
                "the next server")
        return protocol.decode_frame(line)

    def _raise_error(self, frame: dict[str, Any]) -> None:
        code = str(frame.get("code", ""))
        message = str(frame.get("message", "request failed"))
        if code == "overloaded":
            def _num(key: str) -> float:
                try:
                    return float(frame.get(key, 0) or 0)
                except (TypeError, ValueError):
                    return 0.0
            raise ServiceOverloaded(
                message, queue_depth=int(_num("queue_depth")),
                max_queued=int(_num("max_queued")),
                retry_after_s=_num("retry_after_s"))
        if code == "unavailable":
            raise ServiceUnavailable(message)
        raise ProtocolError(f"{code}: {message}" if code else message)

    def _roundtrip(self, frame: dict[str, Any],
                   expect: str) -> dict[str, Any]:
        self._write_frame(frame)
        reply = self._read_frame()
        if reply.get("type") == "error":
            self._raise_error(reply)
        if reply.get("type") != expect:
            raise ProtocolError(
                f"expected a {expect!r} frame, got {reply.get('type')!r}")
        return reply

    # ------------------------------------------------------------------
    # the service API
    # ------------------------------------------------------------------
    def ping(self) -> float:
        """Round-trip latency to the server, in seconds."""
        t0 = time.perf_counter()
        self._roundtrip({"v": protocol.PROTOCOL_VERSION, "op": "ping"},
                        "pong")
        return time.perf_counter() - t0

    def status(self) -> dict[str, Any]:
        """Server + scheduler statistics (the ``status`` op)."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "status"}, "status")
        stats = reply.get("stats")
        return dict(stats) if isinstance(stats, dict) else {}

    def health(self) -> dict[str, Any]:
        """Operational health snapshot (the ``health`` op): queue
        depth, in-flight executions, pool state, ledger lag, uptime."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "health"}, "health")
        payload = reply.get("health")
        return dict(payload) if isinstance(payload, dict) else {}

    def jobs(self) -> list[dict[str, Any]]:
        """Every job the server knows, oldest first."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "jobs"}, "jobs")
        raw = reply.get("jobs")
        return [dict(j) for j in raw] if isinstance(raw, list) else []

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job (idempotent on terminal jobs); returns its
        record."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "cancel",
             "job_id": job_id}, "job")
        return dict(reply.get("job") or {})

    def shutdown(self) -> None:
        """Ask the server to drain and exit (the ``shutdown`` op)."""
        self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "shutdown"}, "ack")
        self.close()

    def submit(self, name: str, configs: list[ExperimentConfig], *,
               engine: str = "event", priority: str = "normal",
               deadline_s: float | None = None) -> dict[str, Any]:
        """Fire-and-forget submit; returns the queued job record."""
        reply = self._roundtrip(
            protocol.submit_frame(name, configs, engine, watch=False,
                                  priority=priority,
                                  deadline_s=deadline_s,
                                  client=self.client_name),
            "job")
        return dict(reply.get("job") or {})

    def watch(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream a job's events (replayed from the start, then live)
        through its ``done`` frame.  Yields the initial job snapshot
        first."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "watch",
             "job_id": job_id}, "job")
        yield reply
        yield from self._stream()

    def wait(self, job_id: str) -> dict[str, Any]:
        """Block until a job finishes; returns its final record."""
        final: dict[str, Any] = {}
        for frame in self.watch(job_id):
            if frame.get("type") == "done":
                final = dict(frame.get("job") or {})
        return final

    def stream(self, name: str, configs: list[ExperimentConfig], *,
               engine: str = "event", priority: str = "normal",
               deadline_s: float | None = None
               ) -> Iterator[dict[str, Any]]:
        """Submit and stream: yields the job snapshot, then every
        ``row`` / ``row-error`` event as it completes, then ``done``."""
        reply = self._roundtrip(
            protocol.submit_frame(name, configs, engine, watch=True,
                                  priority=priority,
                                  deadline_s=deadline_s,
                                  client=self.client_name),
            "job")
        yield reply
        yield from self._stream()

    def _stream(self) -> Iterator[dict[str, Any]]:
        while True:
            frame = self._read_frame()
            if frame.get("type") == "heartbeat":
                # Liveness proof on a slow stream: the read itself
                # reset the socket timeout; nothing to surface.
                continue
            if frame.get("type") == "error":
                self._raise_error(frame)
            yield frame
            if frame.get("type") == "done":
                return

    # ------------------------------------------------------------------
    def run_sweep(self, name: str, configs: list[ExperimentConfig], *,
                  engine: str = "event", priority: str = "normal",
                  deadline_s: float | None = None,
                  fallback: str | None = None) -> SweepResult:
        """Run a sweep through the service; returns a
        :class:`~repro.core.runner.SweepResult` bit-identical to the
        direct :func:`~repro.core.runner.run_sweep` path.

        Per-config failures are captured into ``result.errors`` (the
        ``errors="capture"`` contract); a job-level failure — ``auto``
        cross-validation disagreement, cancellation from another client
        — raises :class:`~repro.errors.JobError` carrying the final job
        record.

        An ``overloaded`` rejection is absorbed with seeded-jitter
        exponential backoff up to ``overload_retries`` times.
        ``fallback="local"`` degrades gracefully instead of raising:
        when the server stays saturated (retries exhausted) or is
        unreachable, the sweep runs in-process — same engine, same
        capture semantics, bit-identical rows.
        """
        if fallback not in (None, "local"):
            raise ValueError(
                f"fallback must be None or 'local', got {fallback!r}")
        attempt = 0
        while True:
            try:
                return self._run_sweep_remote(
                    name, configs, engine=engine, priority=priority,
                    deadline_s=deadline_s)
            except ServiceOverloaded as exc:
                if attempt >= self.overload_retries:
                    if fallback == "local":
                        return self._run_sweep_local(
                            name, configs, engine=engine)
                    raise
                time.sleep(self._backoff_delay(
                    attempt, floor_s=exc.retry_after_s))
                attempt += 1
            except ServiceUnavailable:
                if fallback == "local":
                    return self._run_sweep_local(
                        name, configs, engine=engine)
                raise

    @staticmethod
    def _run_sweep_local(name: str, configs: list[ExperimentConfig], *,
                         engine: str) -> SweepResult:
        """The degraded path: in-process
        :func:`~repro.core.runner.run_sweep` with the service's capture
        semantics (deterministic simulation makes the rows
        bit-identical to the served ones)."""
        from repro.core.runner import run_sweep as local_run_sweep

        return local_run_sweep(name, configs, engine=engine,
                               errors="capture")

    def _run_sweep_remote(self, name: str,
                          configs: list[ExperimentConfig], *,
                          engine: str, priority: str,
                          deadline_s: float | None) -> SweepResult:
        rows_by_index: dict[int, Row] = {}
        errors_by_index: dict[int, SweepError] = {}
        final: dict[str, Any] = {}
        for frame in self.stream(name, configs, engine=engine,
                                 priority=priority,
                                 deadline_s=deadline_s):
            kind = frame.get("type")
            if kind == "row":
                index, row, _source = protocol.parse_row(frame)
                rows_by_index[index] = row
            elif kind == "row-error":
                index = int(frame.get("index", -1))
                if 0 <= index < len(configs):
                    errors_by_index[index] = SweepError(
                        config=configs[index],
                        error=str(frame.get("error", "Error")),
                        message=str(frame.get("message", "")))
            elif kind == "done":
                final = dict(frame.get("job") or {})
        state = str(final.get("state", ""))
        if state != "completed":
            raise JobError(
                f"service job {final.get('job_id', '?')} ended "
                f"{state or 'unknown'}: "
                f"{final.get('error') or 'no detail'}", job=final)
        result = SweepResult(name)
        for index in sorted(rows_by_index):
            result.add(rows_by_index[index])
        result.errors = [errors_by_index[i]
                         for i in sorted(errors_by_index)]
        return result
