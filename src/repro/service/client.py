"""Blocking client SDK for the sweep service.

:class:`ServiceClient` speaks :mod:`repro.service.protocol` over one
unix-socket connection.  Connection failures, timeouts, and mid-stream
disconnects (a server draining for shutdown closes its socket) all
surface as the typed, retryable
:class:`~repro.errors.ServiceUnavailable` — callers decide whether to
back off and reconnect (a restarted server resumes journaled jobs, so
retrying a ``watch`` against the new server replays the full stream).

The highest-level call, :meth:`ServiceClient.run_sweep`, submits a
sweep, consumes the row stream, and reassembles a
:class:`~repro.core.runner.SweepResult` that is **row-for-row,
bit-for-bit identical** to calling :func:`repro.core.runner.run_sweep`
directly — rows ride the wire through the persistence schema, whose
float round-trip is exact.
"""

from __future__ import annotations

import os
import socket
import time
from pathlib import Path
from typing import Any, Iterator

from repro.core.cache import default_cache_dir
from repro.core.experiment import ExperimentConfig
from repro.core.parallel import SweepError
from repro.core.runner import Row, SweepResult
from repro.errors import JobError, ProtocolError, ServiceUnavailable
from repro.service import protocol

#: Environment override for the service socket location.
ENV_SERVICE_SOCKET = "REPRO_SERVICE_SOCKET"


def default_socket_path() -> Path:
    """``$REPRO_SERVICE_SOCKET``, else ``service.sock`` beside the
    default result cache (server and clients agree by default)."""
    env = os.environ.get(ENV_SERVICE_SOCKET)
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "service.sock"


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.SweepService`.

    Parameters
    ----------
    socket_path:
        Where the server listens (default:
        :func:`default_socket_path`).
    connect_retries:
        Extra connection attempts before giving up with
        :class:`~repro.errors.ServiceUnavailable` — each waits
        ``backoff_s`` doubled per attempt, so a client started moments
        before its server still connects.
    timeout_s:
        Socket timeout for reads/writes; a stream that stays silent this
        long raises :class:`~repro.errors.ServiceUnavailable` rather
        than hanging forever.  ``None`` blocks indefinitely.

    Usable as a context manager; the connection opens lazily on first
    use.
    """

    def __init__(self, socket_path: str | Path | None = None, *,
                 connect_retries: int = 5, backoff_s: float = 0.05,
                 timeout_s: float | None = 600.0) -> None:
        self.socket_path = Path(socket_path) if socket_path is not None \
            else default_socket_path()
        self.connect_retries = max(0, connect_retries)
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.server_info: dict[str, Any] = {}
        self._sock: socket.socket | None = None
        self._reader: Any = None

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        """Connect (with retry/backoff) and consume the hello frame."""
        if self._sock is not None:
            return self
        delay = self.backoff_s
        last: OSError | None = None
        for attempt in range(self.connect_retries + 1):
            if attempt > 0 and delay > 0:
                time.sleep(delay)
                delay *= 2
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            try:
                sock.connect(str(self.socket_path))
            except OSError as exc:
                last = exc
                sock.close()
                continue
            self._sock = sock
            self._reader = sock.makefile("rb")
            break
        else:
            raise ServiceUnavailable(
                f"cannot reach the sweep service at {self.socket_path} "
                f"after {self.connect_retries + 1} attempt(s): {last}")
        hello = self._read_frame()
        if hello.get("type") != "hello":
            self.close()
            raise ProtocolError(
                f"expected a hello frame, got {hello.get('type')!r}")
        if hello.get("v") != protocol.PROTOCOL_VERSION:
            self.close()
            raise ProtocolError(
                f"server speaks protocol v{hello.get('v')!r}, this "
                f"client speaks v{protocol.PROTOCOL_VERSION}")
        self.server_info = hello
        return self

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _write_frame(self, frame: dict[str, Any]) -> None:
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(protocol.encode_frame(frame))
        except socket.timeout as exc:
            self.close()
            raise ServiceUnavailable(
                f"sweep service write timed out: {exc}") from None
        except OSError as exc:
            self.close()
            raise ServiceUnavailable(
                f"lost the sweep service connection: {exc}") from None

    def _read_frame(self) -> dict[str, Any]:
        assert self._reader is not None
        try:
            line = self._reader.readline()
        except socket.timeout:
            self.close()
            raise ServiceUnavailable(
                f"sweep service went silent for {self.timeout_s}s"
            ) from None
        except OSError as exc:
            self.close()
            raise ServiceUnavailable(
                f"lost the sweep service connection: {exc}") from None
        if not line:
            self.close()
            raise ServiceUnavailable(
                "the sweep service closed the connection (draining for "
                "shutdown, or crashed); its journaled jobs resume on "
                "the next server")
        return protocol.decode_frame(line)

    def _raise_error(self, frame: dict[str, Any]) -> None:
        code = str(frame.get("code", ""))
        message = str(frame.get("message", "request failed"))
        if code == "unavailable":
            raise ServiceUnavailable(message)
        raise ProtocolError(f"{code}: {message}" if code else message)

    def _roundtrip(self, frame: dict[str, Any],
                   expect: str) -> dict[str, Any]:
        self._write_frame(frame)
        reply = self._read_frame()
        if reply.get("type") == "error":
            self._raise_error(reply)
        if reply.get("type") != expect:
            raise ProtocolError(
                f"expected a {expect!r} frame, got {reply.get('type')!r}")
        return reply

    # ------------------------------------------------------------------
    # the service API
    # ------------------------------------------------------------------
    def ping(self) -> float:
        """Round-trip latency to the server, in seconds."""
        t0 = time.perf_counter()
        self._roundtrip({"v": protocol.PROTOCOL_VERSION, "op": "ping"},
                        "pong")
        return time.perf_counter() - t0

    def status(self) -> dict[str, Any]:
        """Server + scheduler statistics (the ``status`` op)."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "status"}, "status")
        stats = reply.get("stats")
        return dict(stats) if isinstance(stats, dict) else {}

    def jobs(self) -> list[dict[str, Any]]:
        """Every job the server knows, oldest first."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "jobs"}, "jobs")
        raw = reply.get("jobs")
        return [dict(j) for j in raw] if isinstance(raw, list) else []

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job (idempotent on terminal jobs); returns its
        record."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "cancel",
             "job_id": job_id}, "job")
        return dict(reply.get("job") or {})

    def shutdown(self) -> None:
        """Ask the server to drain and exit (the ``shutdown`` op)."""
        self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "shutdown"}, "ack")
        self.close()

    def submit(self, name: str, configs: list[ExperimentConfig], *,
               engine: str = "event") -> dict[str, Any]:
        """Fire-and-forget submit; returns the queued job record."""
        reply = self._roundtrip(
            protocol.submit_frame(name, configs, engine, watch=False),
            "job")
        return dict(reply.get("job") or {})

    def watch(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream a job's events (replayed from the start, then live)
        through its ``done`` frame.  Yields the initial job snapshot
        first."""
        reply = self._roundtrip(
            {"v": protocol.PROTOCOL_VERSION, "op": "watch",
             "job_id": job_id}, "job")
        yield reply
        yield from self._stream()

    def wait(self, job_id: str) -> dict[str, Any]:
        """Block until a job finishes; returns its final record."""
        final: dict[str, Any] = {}
        for frame in self.watch(job_id):
            if frame.get("type") == "done":
                final = dict(frame.get("job") or {})
        return final

    def stream(self, name: str, configs: list[ExperimentConfig], *,
               engine: str = "event") -> Iterator[dict[str, Any]]:
        """Submit and stream: yields the job snapshot, then every
        ``row`` / ``row-error`` event as it completes, then ``done``."""
        reply = self._roundtrip(
            protocol.submit_frame(name, configs, engine, watch=True),
            "job")
        yield reply
        yield from self._stream()

    def _stream(self) -> Iterator[dict[str, Any]]:
        while True:
            frame = self._read_frame()
            if frame.get("type") == "error":
                self._raise_error(frame)
            yield frame
            if frame.get("type") == "done":
                return

    # ------------------------------------------------------------------
    def run_sweep(self, name: str, configs: list[ExperimentConfig], *,
                  engine: str = "event") -> SweepResult:
        """Run a sweep through the service; returns a
        :class:`~repro.core.runner.SweepResult` bit-identical to the
        direct :func:`~repro.core.runner.run_sweep` path.

        Per-config failures are captured into ``result.errors`` (the
        ``errors="capture"`` contract); a job-level failure — ``auto``
        cross-validation disagreement, cancellation from another client
        — raises :class:`~repro.errors.JobError` carrying the final job
        record.
        """
        rows_by_index: dict[int, Row] = {}
        errors_by_index: dict[int, SweepError] = {}
        final: dict[str, Any] = {}
        for frame in self.stream(name, configs, engine=engine):
            kind = frame.get("type")
            if kind == "row":
                index, row, _source = protocol.parse_row(frame)
                rows_by_index[index] = row
            elif kind == "row-error":
                index = int(frame.get("index", -1))
                if 0 <= index < len(configs):
                    errors_by_index[index] = SweepError(
                        config=configs[index],
                        error=str(frame.get("error", "Error")),
                        message=str(frame.get("message", "")))
            elif kind == "done":
                final = dict(frame.get("job") or {})
        state = str(final.get("state", ""))
        if state != "completed":
            raise JobError(
                f"service job {final.get('job_id', '?')} ended "
                f"{state or 'unknown'}: "
                f"{final.get('error') or 'no detail'}", job=final)
        result = SweepResult(name)
        for index in sorted(rows_by_index):
            result.add(rows_by_index[index])
        result.errors = [errors_by_index[i]
                         for i in sorted(errors_by_index)]
        return result
