"""Job specs, the job state machine, and the crash-durable job ledger.

A **job** is one client-submitted sweep: an ordered config list plus an
engine, executed once and streamed back per-row.  Its lifecycle is a
small explicit state machine::

    queued ──> running ──> completed
       │          ├──────> failed        (engine-level, e.g. auto
       │          │                       cross-validation disagreement)
       │          └──────> cancelled
       └────────────────-> cancelled     (cancelled before it started)

Terminal states never transition again; illegal transitions raise
:class:`~repro.errors.ServiceError` rather than silently corrupting the
record.

The **ledger** (``service-jobs.jsonl`` beside the persistent result
cache) makes jobs survive the server process: every submit appends the
full spec, every state change appends a transition, both with the same
single-``O_APPEND``-write, torn-line-tolerant idiom as the cache and
journal.  A restarted server replays the ledger and re-enqueues every
job whose last recorded state is non-terminal — completed rows then come
straight from the content-addressed cache, so a resume costs only the
configs that never finished.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.experiment import ExperimentConfig
from repro.core.persistence import config_from_dict, config_to_dict
from repro.errors import ConfigurationError, ServiceError

#: On-disk ledger record format version.
LEDGER_FORMAT = 1

#: Job states (the ``state`` field of every record).
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
EXPIRED = "expired"

STATES = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED, EXPIRED)
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED, EXPIRED})

#: Legal state transitions.
_TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED, EXPIRED}),
    RUNNING: frozenset({COMPLETED, FAILED, CANCELLED, EXPIRED}),
    COMPLETED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
    EXPIRED: frozenset(),
}

#: Job priorities, in ascending weight order.  Priorities *weight* the
#: fair-share scheduler (see :mod:`repro.service.fairshare`) but never
#: starve lower ones.
PRIORITIES = ("low", "normal", "high")

#: Fair-share weight per priority (a ``high`` job accrues virtual time
#: 4x slower than a ``low`` one, so it is picked earlier — but every
#: queued client's virtual time eventually becomes minimal, so nothing
#: starves).
PRIORITY_WEIGHTS = {"low": 1.0, "normal": 2.0, "high": 4.0}

_job_counter = itertools.count(1)


def new_job_id() -> str:
    """Sortable, collision-resistant job id (time + counter + random)."""
    return (time.strftime("%Y%m%d-%H%M%S")
            + f"-{next(_job_counter):04d}-{uuid.uuid4().hex[:6]}")


@dataclass(frozen=True)
class JobSpec:
    """What a client asked for: the immutable half of a job.

    ``priority``/``deadline_s``/``client`` are the fleet-scheduling
    knobs added for fair-share: ``client`` is the submitter's identity
    (fair-share is computed across identities), ``deadline_s`` is a
    wall-clock budget measured from ``submitted_at`` after which the
    job expires instead of running.  All default to the pre-deadline
    wire/ledger format, so old ledgers replay unchanged.
    """

    job_id: str
    name: str
    engine: str
    configs: tuple[ExperimentConfig, ...]
    priority: str = "normal"
    deadline_s: float | None = None
    client: str = ""
    submitted_at: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "job_id": self.job_id,
            "name": self.name,
            "engine": self.engine,
            "configs": [config_to_dict(c) for c in self.configs],
        }
        if self.priority != "normal":
            record["priority"] = self.priority
        if self.deadline_s is not None:
            record["deadline_s"] = self.deadline_s
        if self.client:
            record["client"] = self.client
        if self.submitted_at:
            record["submitted_at"] = self.submitted_at
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "JobSpec":
        try:
            configs = tuple(config_from_dict(c) for c in record["configs"])
            priority = str(record.get("priority", "normal"))
            if priority not in PRIORITIES:
                priority = "normal"
            raw_deadline = record.get("deadline_s")
            deadline_s = (float(raw_deadline)
                          if raw_deadline is not None else None)
            return cls(job_id=str(record["job_id"]),
                       name=str(record["name"]),
                       engine=str(record["engine"]),
                       configs=configs,
                       priority=priority,
                       deadline_s=deadline_s,
                       client=str(record.get("client", "")),
                       submitted_at=float(record.get("submitted_at", 0.0)))
        except (KeyError, TypeError, ValueError,
                ConfigurationError) as exc:
            raise ServiceError(f"malformed job spec: {exc}") from None


@dataclass
class JobRecord:
    """The live (server-side) half of a job: state, counts, events.

    ``events`` is the replayable stream a watcher consumes: ``row`` /
    ``row-error`` frames in completion order, closed by one ``done``
    frame.  Watchers that attach late replay from the start, so a
    reconnected client never misses rows.
    """

    spec: JobSpec
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str = ""
    n_done: int = 0
    n_failed: int = 0
    n_quarantined: int = 0
    n_cache_hits: int = 0
    n_dedup_hits: int = 0
    n_executed: int = 0
    #: Replayable event frames (``row`` / ``row-error`` / ``done``).
    events: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        # A replayed spec carries its original submission time; adopt it
        # so deadlines survive a server restart.
        if self.spec.submitted_at:
            self.submitted_at = self.spec.submitted_at

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def n_configs(self) -> int:
        return len(self.spec.configs)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def priority(self) -> str:
        return self.spec.priority

    @property
    def deadline_at(self) -> float | None:
        """Absolute expiry time, or ``None`` for no deadline."""
        if self.spec.deadline_s is None:
            return None
        return self.submitted_at + self.spec.deadline_s

    def expired(self, now: float | None = None) -> bool:
        """True when a deadline exists and has passed (state unchanged)."""
        deadline = self.deadline_at
        if deadline is None:
            return False
        return (time.time() if now is None else now) >= deadline

    def transition(self, state: str, error: str = "") -> None:
        """Move to ``state``, enforcing the machine's legal edges."""
        if state not in STATES:
            raise ServiceError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state} -> {state}"
            )
        self.state = state
        if state == RUNNING:
            self.started_at = time.time()
        elif state in TERMINAL_STATES:
            self.finished_at = time.time()
        if error:
            self.error = error

    def note_row(self, source: str) -> None:
        """Account one completed row by provenance."""
        self.n_done += 1
        if source == "cache":
            self.n_cache_hits += 1
        elif source == "dedup":
            self.n_dedup_hits += 1
        else:
            self.n_executed += 1

    def to_dict(self) -> dict[str, Any]:
        """Wire/ledger snapshot (spec + mutable state, no events)."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "engine": self.spec.engine,
            "state": self.state,
            "n_configs": self.n_configs,
            "n_done": self.n_done,
            "n_failed": self.n_failed,
            "n_quarantined": self.n_quarantined,
            "n_cache_hits": self.n_cache_hits,
            "n_dedup_hits": self.n_dedup_hits,
            "n_executed": self.n_executed,
            "error": self.error,
            "priority": self.priority,
            "deadline_s": self.spec.deadline_s,
            "client": self.spec.client,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobLedger:
    """Append-only JSONL record of job specs and state transitions.

    ``path=None`` (no persistent cache directory to live in) disables
    persistence: the ledger still answers queries from memory, jobs just
    do not survive the process.

    ``fault_hook`` is the chaos-harness seam: when set, every encoded
    record line passes through it before hitting the file.  The hook may
    return a mutated (e.g. torn) line, or raise
    :class:`~repro.faults.service.SimulatedKill` to emulate the process
    dying mid-append.  ``None`` return means "write the line unchanged".

    ``replay()`` additionally exposes two tolerance counters —
    ``torn_lines`` (lines that failed UTF-8 decode or JSON parse, e.g.
    a crash mid-``write``) and ``duplicate_transitions`` (a terminal
    transition recorded twice across a crash/restart boundary) — so
    operators can observe corruption that the replay survived.
    """

    __slots__ = ("path", "fault_hook", "last_append_at",
                 "torn_lines", "duplicate_transitions")

    FILENAME = "service-jobs.jsonl"

    def __init__(self, path: str | Path | None = None, *,
                 fault_hook: Callable[[bytes], bytes | None] | None = None,
                 ) -> None:
        self.path = Path(path) if path is not None else None
        self.fault_hook = fault_hook
        #: ``time.time()`` of the last successful append (0.0 = never);
        #: the health probe reports ``now - last_append_at`` as ledger
        #: lag.
        self.last_append_at = 0.0
        #: Corrupt lines tolerated by the last :meth:`replay`.
        self.torn_lines = 0
        #: Duplicate terminal transitions tolerated by the last
        #: :meth:`replay`.
        self.duplicate_transitions = 0

    @classmethod
    def for_cache(cls, cache: Any) -> "JobLedger":
        """The ledger living beside a persistent cache's JSONL file
        (memory-only for plain-dict caches)."""
        directory = getattr(cache, "directory", None)
        if directory is None:
            return cls(None)
        return cls(Path(directory) / cls.FILENAME)

    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        if self.path is None:
            return
        record = {"format": LEDGER_FORMAT, **record}
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        data = line.encode()
        if self.fault_hook is not None:
            mutated = self.fault_hook(data)
            if mutated is not None:
                data = mutated
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        self.last_append_at = time.time()

    def record_submit(self, job: JobRecord) -> None:
        self._append({"event": "submitted", "job": job.spec.to_dict(),
                      "t": time.time()})

    def record_state(self, job: JobRecord) -> None:
        self._append({"event": "state", "job_id": job.job_id,
                      "state": job.state, "error": job.error,
                      "t": time.time()})

    # ------------------------------------------------------------------
    def replay(self) -> dict[str, tuple[JobSpec, str]]:
        """Rebuild ``job_id -> (spec, last recorded state)`` from disk.

        Torn or foreign lines are skipped (and counted in
        ``torn_lines`` when they fail to decode or parse — a line
        truncated mid-multibyte UTF-8 sequence is a decode error, not a
        crash); a transition for an unknown job id (its submit line was
        lost) is ignored rather than fatal.  A terminal transition for
        an already-terminal job — the signature of a crash between the
        append and the ack, replayed on restart — keeps the *first*
        terminal state and bumps ``duplicate_transitions``.
        """
        state: dict[str, tuple[JobSpec, str]] = {}
        self.torn_lines = 0
        self.duplicate_transitions = 0
        if self.path is None:
            return state
        try:
            raw = self.path.read_bytes()
        except OSError:
            return state
        for raw_line in raw.splitlines():
            raw_line = raw_line.strip()
            if not raw_line:
                continue
            try:
                record = json.loads(raw_line.decode())
            except (UnicodeDecodeError, ValueError):
                self.torn_lines += 1
                continue
            if not isinstance(record, dict) \
                    or record.get("format") != LEDGER_FORMAT:
                continue
            event = record.get("event")
            if event == "submitted":
                try:
                    spec = JobSpec.from_dict(record["job"])
                except (ServiceError, KeyError, TypeError):
                    continue
                state[spec.job_id] = (spec, QUEUED)
            elif event == "state":
                job_id = record.get("job_id")
                new = record.get("state")
                known = state.get(str(job_id))
                if known is None or new not in STATES:
                    continue
                if known[1] in TERMINAL_STATES \
                        and str(new) in TERMINAL_STATES:
                    self.duplicate_transitions += 1
                    continue
                state[str(job_id)] = (known[0], str(new))
        return state

    def incomplete(self) -> list[JobSpec]:
        """Specs whose last recorded state is non-terminal, in ledger
        order — the restart queue."""
        return [spec for spec, last in self.replay().values()
                if last not in TERMINAL_STATES]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<JobLedger {self.path}>"
