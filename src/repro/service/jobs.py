"""Job specs, the job state machine, and the crash-durable job ledger.

A **job** is one client-submitted sweep: an ordered config list plus an
engine, executed once and streamed back per-row.  Its lifecycle is a
small explicit state machine::

    queued ──> running ──> completed
       │          ├──────> failed        (engine-level, e.g. auto
       │          │                       cross-validation disagreement)
       │          └──────> cancelled
       └────────────────-> cancelled     (cancelled before it started)

Terminal states never transition again; illegal transitions raise
:class:`~repro.errors.ServiceError` rather than silently corrupting the
record.

The **ledger** (``service-jobs.jsonl`` beside the persistent result
cache) makes jobs survive the server process: every submit appends the
full spec, every state change appends a transition, both with the same
single-``O_APPEND``-write, torn-line-tolerant idiom as the cache and
journal.  A restarted server replays the ledger and re-enqueues every
job whose last recorded state is non-terminal — completed rows then come
straight from the content-addressed cache, so a resume costs only the
configs that never finished.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.experiment import ExperimentConfig
from repro.core.persistence import config_from_dict, config_to_dict
from repro.errors import ConfigurationError, ServiceError

#: On-disk ledger record format version.
LEDGER_FORMAT = 1

#: Job states (the ``state`` field of every record).
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

#: Legal state transitions.
_TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({COMPLETED, FAILED, CANCELLED}),
    COMPLETED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

_job_counter = itertools.count(1)


def new_job_id() -> str:
    """Sortable, collision-resistant job id (time + counter + random)."""
    return (time.strftime("%Y%m%d-%H%M%S")
            + f"-{next(_job_counter):04d}-{uuid.uuid4().hex[:6]}")


@dataclass(frozen=True)
class JobSpec:
    """What a client asked for: the immutable half of a job."""

    job_id: str
    name: str
    engine: str
    configs: tuple[ExperimentConfig, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "name": self.name,
            "engine": self.engine,
            "configs": [config_to_dict(c) for c in self.configs],
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "JobSpec":
        try:
            configs = tuple(config_from_dict(c) for c in record["configs"])
            return cls(job_id=str(record["job_id"]),
                       name=str(record["name"]),
                       engine=str(record["engine"]),
                       configs=configs)
        except (KeyError, TypeError, ConfigurationError) as exc:
            raise ServiceError(f"malformed job spec: {exc}") from None


@dataclass
class JobRecord:
    """The live (server-side) half of a job: state, counts, events.

    ``events`` is the replayable stream a watcher consumes: ``row`` /
    ``row-error`` frames in completion order, closed by one ``done``
    frame.  Watchers that attach late replay from the start, so a
    reconnected client never misses rows.
    """

    spec: JobSpec
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str = ""
    n_done: int = 0
    n_failed: int = 0
    n_quarantined: int = 0
    n_cache_hits: int = 0
    n_dedup_hits: int = 0
    n_executed: int = 0
    #: Replayable event frames (``row`` / ``row-error`` / ``done``).
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def n_configs(self) -> int:
        return len(self.spec.configs)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str, error: str = "") -> None:
        """Move to ``state``, enforcing the machine's legal edges."""
        if state not in STATES:
            raise ServiceError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state} -> {state}"
            )
        self.state = state
        if state == RUNNING:
            self.started_at = time.time()
        elif state in TERMINAL_STATES:
            self.finished_at = time.time()
        if error:
            self.error = error

    def note_row(self, source: str) -> None:
        """Account one completed row by provenance."""
        self.n_done += 1
        if source == "cache":
            self.n_cache_hits += 1
        elif source == "dedup":
            self.n_dedup_hits += 1
        else:
            self.n_executed += 1

    def to_dict(self) -> dict[str, Any]:
        """Wire/ledger snapshot (spec + mutable state, no events)."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "engine": self.spec.engine,
            "state": self.state,
            "n_configs": self.n_configs,
            "n_done": self.n_done,
            "n_failed": self.n_failed,
            "n_quarantined": self.n_quarantined,
            "n_cache_hits": self.n_cache_hits,
            "n_dedup_hits": self.n_dedup_hits,
            "n_executed": self.n_executed,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobLedger:
    """Append-only JSONL record of job specs and state transitions.

    ``path=None`` (no persistent cache directory to live in) disables
    persistence: the ledger still answers queries from memory, jobs just
    do not survive the process.
    """

    __slots__ = ("path",)

    FILENAME = "service-jobs.jsonl"

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None

    @classmethod
    def for_cache(cls, cache: Any) -> "JobLedger":
        """The ledger living beside a persistent cache's JSONL file
        (memory-only for plain-dict caches)."""
        directory = getattr(cache, "directory", None)
        if directory is None:
            return cls(None)
        return cls(Path(directory) / cls.FILENAME)

    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        if self.path is None:
            return
        record = {"format": LEDGER_FORMAT, **record}
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def record_submit(self, job: JobRecord) -> None:
        self._append({"event": "submitted", "job": job.spec.to_dict(),
                      "t": time.time()})

    def record_state(self, job: JobRecord) -> None:
        self._append({"event": "state", "job_id": job.job_id,
                      "state": job.state, "error": job.error,
                      "t": time.time()})

    # ------------------------------------------------------------------
    def replay(self) -> dict[str, tuple[JobSpec, str]]:
        """Rebuild ``job_id -> (spec, last recorded state)`` from disk.

        Torn or foreign lines are skipped; a transition for an unknown
        job id (its submit line was lost) is ignored rather than fatal.
        """
        state: dict[str, tuple[JobSpec, str]] = {}
        if self.path is None:
            return state
        try:
            text = self.path.read_text()
        except OSError:
            return state
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) \
                    or record.get("format") != LEDGER_FORMAT:
                continue
            event = record.get("event")
            if event == "submitted":
                try:
                    spec = JobSpec.from_dict(record["job"])
                except (ServiceError, KeyError, TypeError):
                    continue
                state[spec.job_id] = (spec, QUEUED)
            elif event == "state":
                job_id = record.get("job_id")
                new = record.get("state")
                known = state.get(str(job_id))
                if known is not None and new in STATES:
                    state[str(job_id)] = (known[0], str(new))
        return state

    def incomplete(self) -> list[JobSpec]:
        """Specs whose last recorded state is non-terminal, in ledger
        order — the restart queue."""
        return [spec for spec, last in self.replay().values()
                if last not in TERMINAL_STATES]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<JobLedger {self.path}>"
