"""Fleet-wide dedup, batching, and sharding for service jobs.

The scheduler answers one question — *give me the row for this config
under this engine* — while guaranteeing that across every connected
client there is **at most one in-flight simulation per engine-tagged
config digest**:

* a **cache hit** (the content-addressed
  :class:`~repro.core.cache.ResultCache`, keyed digest × model
  fingerprint) returns immediately;
* a digest already **in flight** subscribes to the existing execution's
  future — the second, tenth, and hundredth client asking for the same
  config all await the same simulation;
* a genuine miss starts one execution: **event**-engine configs are
  sharded over a process pool (the PR-1 worker entrypoint,
  :func:`repro.core.parallel.simulate_config`), **analytic**-engine
  configs are micro-batched — every request that arrives while the
  scorer is busy is swept into the next vectorized
  :func:`repro.analytic.engine.score_configs` call;
* fresh completions are stored to the cache and journaled under the
  initiating job's sweep name, exactly like ``run_sweep`` would, so the
  PR-4 resume/quarantine machinery sees service jobs too.

Executions are owned by the scheduler, not by the requesting job: a
*cancelled* subscriber stops waiting, the simulation still completes
and lands in the cache (that is what makes a cancelled job resumable
for free).  An *abandoned* execution — every subscriber gone because
their jobs expired — is different: nobody will ever read the row, so
the scheduler reference-counts subscribers and cancels the execution
only when the last one leaves (:meth:`Scheduler.obtain`).

A per-execution **watchdog** (``exec_timeout_s``) bounds how long one
config may run: an execution that exceeds the progress timeout is
killed and retried under the PR-4 :class:`~repro.core.parallel
.RetryPolicy` semantics (bounded attempts, then the failure is
journaled so the quarantine threshold accrues).  A process-pool worker
cannot be killed individually, so a watchdog firing marks the pool
broken and re-runs on threads — the same recovery path as a crashed
pool.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable

from repro import telemetry
from repro.core.cache import config_digest
from repro.core.experiment import ExperimentConfig
from repro.core.journal import SweepJournal
from repro.core.parallel import RetryPolicy, simulate_config
from repro.core.runner import QUARANTINE_AFTER, cache_key

#: One scheduling outcome: (source, ok, Row-or-exception) where source
#: is "cache" | "dedup" | "executed".
Outcome = tuple[str, bool, Any]


def _engine_tag(engine: str) -> str:
    """The cache-key tag for an engine (auto rows are analytic rows)."""
    return "analytic" if engine in ("analytic", "auto") else "event"


def _simulate_suppressed(config: ExperimentConfig) -> tuple[bool, Any]:
    """Thread-fallback worker: simulate with telemetry silenced (the
    server records orchestration into per-job contexts instead)."""
    with telemetry.suppressed():
        return simulate_config(config)


def _score_batch(configs: list[ExperimentConfig]) -> list[Any]:
    """Thread worker: one vectorized analytic pass over a micro-batch."""
    from repro.analytic.engine import score_configs

    with telemetry.suppressed():
        return score_configs(configs)


class Scheduler:
    """Dedup + dispatch engine shared by every job on one server."""

    def __init__(self, cache: Any = None, *,
                 workers: int | None = None,
                 exec_timeout_s: float | None = None,
                 retry: RetryPolicy | None = None,
                 simulate_fn: Callable[[ExperimentConfig],
                                       tuple[bool, Any]] | None = None,
                 ) -> None:
        self.cache = cache
        self.workers = max(1, workers if workers is not None else 1)
        #: Watchdog progress timeout per execution attempt (``None`` =
        #: no watchdog, the pre-hardening behavior).
        self.exec_timeout_s = exec_timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        #: Test/chaos seam: replaces the event-engine worker function.
        #: A custom fn runs on threads (closures don't pickle), which
        #: is exactly what the hung-worker chaos scenario needs.
        self._simulate_fn = simulate_fn
        self.journal: SweepJournal | None = SweepJournal.for_cache(cache)
        #: engine-tagged config digest -> the owning execution task.
        self._inflight: dict[str, asyncio.Task[tuple[bool, Any]]] = {}
        #: engine-tagged config digest -> live subscriber count; an
        #: execution whose count drops to zero is truly abandoned
        #: (every awaiting job expired) and gets cancelled.
        self._refs: dict[str, int] = {}
        self._pool: Any = None
        self._pool_broken = False
        self._analytic_pending: list[
            tuple[ExperimentConfig, asyncio.Future[tuple[bool, Any]]]] = []
        self._analytic_drainer: asyncio.Task[None] | None = None
        self.stats: dict[str, int] = {
            "cache_hits": 0, "dedup_hits": 0, "executed": 0,
            "failed": 0, "analytic_batches": 0, "analytic_batched_rows": 0,
            "pool_fallbacks": 0, "watchdog_kills": 0,
            "abandoned_executions": 0,
        }

    # ------------------------------------------------------------------
    def quarantined(self, sweep: str,
                    config: ExperimentConfig) -> dict[str, Any] | None:
        """The journal entry if ``config`` is quarantined for ``sweep``
        (failed :data:`~repro.core.runner.QUARANTINE_AFTER`+ times),
        else ``None``."""
        if self.journal is None:
            return None
        return self.journal.quarantined(sweep, config, QUARANTINE_AFTER)

    # ------------------------------------------------------------------
    async def obtain(self, sweep: str, config: ExperimentConfig,
                     engine: str) -> Outcome:
        """Resolve one config to its row (or captured exception).

        Exactly one execution per digest exists at any moment; every
        concurrent caller for the same digest shares it.
        """
        key = cache_key(config, _engine_tag(engine))
        if self.cache is not None:
            row = self.cache.get(key)
            if row is not None:
                self.stats["cache_hits"] += 1
                return "cache", True, row
        digest = config_digest(key)
        task = self._inflight.get(digest)
        if task is not None:
            self.stats["dedup_hits"] += 1
            source = "dedup"
        else:
            task = asyncio.ensure_future(
                self._execute(sweep, config, engine))
            self._inflight[digest] = task
            task.add_done_callback(
                lambda _t, d=digest: self._inflight.pop(d, None))
            source = "executed"
        self._refs[digest] = self._refs.get(digest, 0) + 1
        try:
            ok, value = await asyncio.shield(task)
        except asyncio.CancelledError:
            # This subscriber is gone (job expired / task cancelled).
            # A *shared* execution keeps running for the others — but
            # when the last subscriber leaves, nobody will ever read
            # the row, so stop burning a worker on it.
            remaining = self._refs.get(digest, 1) - 1
            self._refs[digest] = remaining
            if remaining <= 0:
                self._refs.pop(digest, None)
                if not task.done():
                    task.cancel()
                    self.stats["abandoned_executions"] += 1
            raise
        else:
            remaining = self._refs.get(digest, 1) - 1
            if remaining <= 0:
                self._refs.pop(digest, None)
            else:
                self._refs[digest] = remaining
        return source, ok, value

    # ------------------------------------------------------------------
    async def _execute(self, sweep: str, config: ExperimentConfig,
                       engine: str) -> tuple[bool, Any]:
        """One fresh execution: dispatch, then cache + journal the
        completion from the server side (workers never touch either)."""
        if _engine_tag(engine) == "analytic":
            ok, value = await self._execute_analytic(config)
        else:
            ok, value = await self._execute_event(config)
        self.stats["executed"] += 1
        if not ok:
            self.stats["failed"] += 1
        if ok and self.cache is not None:
            self.cache[cache_key(config, _engine_tag(engine))] = value
        if self.journal is not None:
            self.journal.record(sweep, config, ok,
                                exc=None if ok else value)
        return ok, value

    # -- event engine: shard over the process pool ---------------------
    def _get_pool(self) -> Any:
        if self._pool_broken:
            return None
        if self._pool is None:
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                # Spawn, not fork: a forked worker inherits every open
                # fd — including the listening socket and accepted
                # connections — so a dead server's socket would stay
                # connectable (and half-closed connections never see
                # EOF) as long as one worker lives.  Spawned workers
                # hold no server fds; fork is also unsafe under the
                # threads this server always runs with.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=telemetry.suppress_in_worker)
            except (ImportError, OSError, PermissionError):
                self._mark_pool_broken()
        return self._pool

    def _mark_pool_broken(self) -> None:
        self._pool_broken = True
        self.stats["pool_fallbacks"] += 1
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _recycle_pool(self) -> None:
        """Throw away the pool but allow a fresh one (watchdog path).

        A process pool cannot kill one running worker; abandoning the
        pool and letting ``_get_pool`` build a new one is the closest
        legal move.  Unlike :meth:`_mark_pool_broken` this does not
        demote future executions to threads.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def _watched(self, future: "asyncio.Future[tuple[bool, Any]]"
                       ) -> tuple[bool, Any]:
        """Await one execution attempt under the progress watchdog.

        Not ``asyncio.wait_for``: that waits for the cancellation to
        land, and a *running* executor future never honors a cancel —
        the watchdog would hang exactly when it is needed.  Instead the
        attempt is abandoned on timeout (its eventual result discarded,
        its eventual exception retrieved so it never logs as lost).
        """
        if self.exec_timeout_s is None:
            return await future
        done, _pending = await asyncio.wait(
            {future}, timeout=self.exec_timeout_s)
        if done:
            return future.result()
        future.add_done_callback(
            lambda f: f.cancelled() or f.exception())
        future.cancel()  # no-op if already running; pending is freed
        raise asyncio.TimeoutError

    async def _execute_event(self,
                             config: ExperimentConfig) -> tuple[bool, Any]:
        from concurrent.futures.process import BrokenProcessPool

        loop = asyncio.get_running_loop()
        attempts = max(1, self.retry.max_attempts) \
            if self.exec_timeout_s is not None else 1
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(
                    self.retry.backoff_s * (2 ** (attempt - 1)))
            try:
                pool = None if self._simulate_fn is not None \
                    else self._get_pool()
                if pool is not None:
                    try:
                        return await self._watched(loop.run_in_executor(
                            pool, simulate_config, config))
                    except (BrokenProcessPool, OSError, PermissionError,
                            RuntimeError):
                        # crashed/unusable pool: lose the pool, not the
                        # config — re-run it (and everything after it)
                        # on threads
                        self._mark_pool_broken()
                fn = self._simulate_fn if self._simulate_fn is not None \
                    else _simulate_suppressed
                return await self._watched(
                    loop.run_in_executor(None, fn, config))
            except asyncio.TimeoutError:
                # Watchdog fired: this attempt made no progress within
                # the budget.  Recycle the pool (a stuck pool worker is
                # unkillable individually) and retry under the PR-4
                # policy; threads simply get abandoned — the leaked
                # thread dies when its work function returns.
                self.stats["watchdog_kills"] += 1
                telemetry.count("service.watchdog_kill")
                self._recycle_pool()
        timeout_exc = TimeoutError(
            f"no progress within {self.exec_timeout_s}s "
            f"(watchdog, {attempts} attempt(s))")
        return False, timeout_exc

    # -- analytic engine: micro-batch through the vectorized scorer ----
    async def _execute_analytic(self,
                                config: ExperimentConfig
                                ) -> tuple[bool, Any]:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future[tuple[bool, Any]] = loop.create_future()
        self._analytic_pending.append((config, fut))
        if self._analytic_drainer is None or self._analytic_drainer.done():
            self._analytic_drainer = asyncio.ensure_future(
                self._drain_analytic())
        return await fut

    async def _drain_analytic(self) -> None:
        """Score pending analytic requests until none are left.

        Each pass takes *everything* queued at that moment as one batch,
        so requests arriving while the scorer is busy coalesce into the
        next vectorized call instead of going one-by-one.
        """
        loop = asyncio.get_running_loop()
        while self._analytic_pending:
            batch = self._analytic_pending
            self._analytic_pending = []
            self.stats["analytic_batches"] += 1
            self.stats["analytic_batched_rows"] += len(batch)
            configs = [config for config, _ in batch]
            try:
                outcomes = await loop.run_in_executor(
                    None, _score_batch, configs)
            except Exception as exc:  # noqa: BLE001 - per-batch capture
                outcomes = [exc] * len(batch)
            for (_, fut), outcome in zip(batch, outcomes):
                if not fut.done():
                    fut.set_result(
                        (not isinstance(outcome, Exception), outcome))

    # ------------------------------------------------------------------
    @property
    def pool_state(self) -> str:
        """Health-probe view of the worker pool: ``live`` (warm process
        pool), ``cold`` (no pool built yet), or ``threads`` (pool
        broke; running on the thread fallback)."""
        if self._pool_broken:
            return "threads"
        return "live" if self._pool is not None else "cold"

    @property
    def inflight(self) -> int:
        """Executions currently owned by the scheduler."""
        return len(self._inflight)

    # ------------------------------------------------------------------
    async def wait_idle(self, timeout: float | None = None) -> bool:
        """Wait for every in-flight execution to finish (drain helper).

        Returns ``True`` when idle, ``False`` on timeout.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while self._inflight or self._analytic_pending:
            pending: list[asyncio.Task[Any]] = list(self._inflight.values())
            if self._analytic_drainer is not None \
                    and not self._analytic_drainer.done():
                pending.append(self._analytic_drainer)
            if not pending:
                await asyncio.sleep(0.01)
                continue
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            done, _ = await asyncio.wait(pending, timeout=remaining)
            if deadline is not None and time.monotonic() >= deadline \
                    and not done:
                return False
        return True

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down (drained servers pass
        ``wait=True``; aborts pass ``False``)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None
