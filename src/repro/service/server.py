"""The sweep service daemon: asyncio unix-socket server for sweep jobs.

One :class:`SweepService` owns one socket, one
:class:`~repro.service.scheduler.Scheduler` (dedup + worker pool), one
:class:`~repro.service.jobs.JobLedger`, and a registry of jobs.  Each
client connection is a coroutine speaking :mod:`repro.service.protocol`
frames; each job is a coroutine streaming per-row events to any number
of watchers through a replayable event list, so a late (or reconnected)
watcher sees the full stream.

Lifecycle:

* ``start()`` binds the socket and **resumes** every non-terminal job
  found in the ledger — completed rows of a half-finished job come
  straight from the content-addressed cache, so a resume re-executes
  only what never finished;
* SIGTERM/SIGINT (or the ``shutdown`` op) begin a **drain**: new
  submissions are refused with an ``unavailable`` error (clients raise
  a typed, retryable :class:`~repro.errors.ServiceUnavailable`),
  running jobs finish and are journaled, queued jobs are left in the
  ledger for the next server;
* with telemetry on, every job records itself as a
  ``results/runs/<run_id>/`` directory of kind ``service-job`` —
  manifest, ``queue-wait``/``execute`` spans with per-config
  ``execute``/``dedup-hit``/``cache-hit`` children, ``service.*``
  metrics, and the rows as ``summary.json`` (so ``repro report`` and
  ``repro reproduce`` work on service jobs unchanged).

:func:`serve_in_thread` hosts a service on a background thread of the
current process — the harness tests, benchmarks, and notebook users
share it.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from functools import partial
from pathlib import Path
from typing import Any

import repro
from repro import telemetry
from repro.core.experiment import ExperimentConfig
from repro.core.parallel import RetryPolicy, SweepError
from repro.core.runner import Row
from repro.errors import ProtocolError, ServiceError
from repro.service import protocol
from repro.service.client import default_socket_path
from repro.service.fairshare import FairShareQueue
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    EXPIRED,
    FAILED,
    QUEUED,
    RUNNING,
    JobLedger,
    JobRecord,
    JobSpec,
    new_job_id,
)
from repro.service.scheduler import Scheduler
from repro.telemetry.run import RunContext

#: Environment override for the admission cap (``repro serve`` flag
#: wins; ``0``/unset means unbounded).
ENV_MAX_QUEUED = "REPRO_SERVICE_MAX_QUEUED"


def _env_max_queued() -> int | None:
    raw = os.environ.get(ENV_MAX_QUEUED, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class SweepService:
    """A long-running, multi-client sweep job server.

    Parameters
    ----------
    socket_path:
        Unix socket to listen on (default:
        :func:`~repro.service.client.default_socket_path`).
    cache:
        Shared result cache (a
        :class:`~repro.core.cache.ResultCache` makes jobs durable:
        rows, journal, and ledger all live in its directory).  ``None``
        serves from memory only.
    workers:
        Process-pool width for event-engine rows.
    max_jobs:
        Jobs allowed to execute concurrently; the rest queue under the
        weighted fair-share policy (that wait is the ``queue-wait``
        span).
    max_queued:
        Admission cap: submissions while this many jobs are already
        pending (queued or running) are rejected with a typed,
        retryable ``overloaded`` error frame.  ``None`` falls back to
        ``$REPRO_SERVICE_MAX_QUEUED``; unset/0 means unbounded (the
        pre-hardening behavior).
    heartbeat_s:
        Emit a ``heartbeat`` frame on a watch stream after this many
        seconds of silence, so clients can tell "slow job" from "dead
        server".  ``None`` disables heartbeats.
    exec_timeout_s:
        Per-execution progress watchdog: one config attempt exceeding
        this is killed and retried (``retry`` bounds attempts), then
        failed + journaled so quarantine accrues.  ``None`` disables
        the watchdog.
    retry:
        :class:`~repro.core.parallel.RetryPolicy` for watchdog
        retries (default: the PR-4 policy defaults).
    results_dir:
        Telemetry results root for per-job run directories (default:
        the usual ``$REPRO_RESULTS_DIR`` / ``./results`` resolution).
    drain_timeout_s:
        How long a drain waits for running jobs before giving up and
        leaving them to the ledger (``None`` = wait indefinitely).
    """

    def __init__(self, socket_path: str | Path | None = None, *,
                 cache: Any = None, workers: int | None = None,
                 max_jobs: int = 4, max_queued: int | None = None,
                 heartbeat_s: float | None = 10.0,
                 exec_timeout_s: float | None = None,
                 retry: RetryPolicy | None = None,
                 results_dir: str | Path | None = None,
                 drain_timeout_s: float | None = None,
                 simulate_fn: Any = None) -> None:
        if max_jobs < 1:
            raise ServiceError("max_jobs must be positive")
        if max_queued is not None and max_queued < 1:
            raise ServiceError("max_queued must be positive (or None)")
        self.socket_path = Path(socket_path) if socket_path is not None \
            else default_socket_path()
        self.cache = cache
        self.results_dir = Path(results_dir) if results_dir is not None \
            else None
        self.drain_timeout_s = drain_timeout_s
        self.scheduler = Scheduler(cache, workers=workers,
                                   exec_timeout_s=exec_timeout_s,
                                   retry=retry, simulate_fn=simulate_fn)
        self.ledger = JobLedger.for_cache(cache)
        self.jobs: dict[str, JobRecord] = {}
        self.draining = False
        self.max_jobs = max_jobs
        self.max_queued = max_queued if max_queued is not None \
            else _env_max_queued()
        self.heartbeat_s = heartbeat_s
        self._job_tasks: dict[str, asyncio.Task[None]] = {}
        self._job_conds: dict[str, asyncio.Condition] = {}
        self._exec_tasks: dict[str, list[asyncio.Task[Any]]] = {}
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._queue: FairShareQueue | None = None
        self._reaper: asyncio.Task[None] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._started_at = time.time()
        self._n_resumed = 0
        self._n_rejected = 0
        self._n_expired = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def _socket_alive(self) -> bool:
        """Connect-probe an existing socket file: is a server home?

        Accepting the connection is not proof of life — a forked pool
        worker that inherited the old listening fd keeps the kernel
        accepting into a backlog nobody reads.  A live server greets
        every connection with a hello frame immediately, so the probe
        demands one within the timeout.
        """
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_unix_connection(str(self.socket_path)), 2.0)
        except (ConnectionRefusedError, FileNotFoundError,
                asyncio.TimeoutError, OSError):
            return False
        try:
            greeting = await asyncio.wait_for(reader.readline(), 2.0)
        except (asyncio.TimeoutError, ConnectionResetError, OSError):
            greeting = b""
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        return bool(greeting)

    async def start(self) -> None:
        """Bind the socket and resume ledgered jobs.

        An existing socket file is connect-probed first: a live server
        answering it means refusing to start (unlinking it would orphan
        that server's clients); only a dead socket — connection refused
        — is removed as stale.
        """
        self._queue = FairShareQueue(self.max_jobs)
        self._stop_event = asyncio.Event()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            if await self._socket_alive():
                raise ServiceError(
                    f"socket {self.socket_path} is owned by a live "
                    f"server; refusing to start (stop it first, or "
                    f"serve on a different --socket)")
            try:
                self.socket_path.unlink()  # stale socket, dead server
            except OSError:
                pass
        self._server = await asyncio.start_unix_server(
            self._on_connection, path=str(self.socket_path),
            limit=protocol.MAX_FRAME_BYTES)
        self._started_at = time.time()
        self._reaper = asyncio.ensure_future(self._reap_expired())
        for spec in self.ledger.incomplete():
            if spec.job_id in self.jobs:
                continue
            self._n_resumed += 1
            self._register(JobRecord(spec))

    def request_stop(self) -> None:
        """Begin the drain (signal handlers and the ``shutdown`` op)."""
        self.draining = True
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until a stop is requested, then drain and shut down
        (call after :meth:`start`)."""
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Drain: refuse new work, finish running jobs, journal the
        rest, release the socket and the pool."""
        if self._stopped:
            return
        self._stopped = True
        self.draining = True
        if self._reaper is not None:
            self._reaper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = [t for t in self._job_tasks.values() if not t.done()]
        if tasks:
            gathered = asyncio.gather(*tasks, return_exceptions=True)
            try:
                if self.drain_timeout_s is None:
                    await gathered
                else:
                    await asyncio.wait_for(gathered, self.drain_timeout_s)
            except asyncio.TimeoutError:
                for task in tasks:
                    task.cancel()
        conns = [t for t in self._conn_tasks if not t.done()]
        for conn in conns:
            conn.cancel()
        if conns:
            await asyncio.gather(*conns, return_exceptions=True)
        self.scheduler.close(wait=True)
        try:
            self.socket_path.unlink()
        except OSError:
            pass

    async def abort(self) -> None:
        """Hard stop: the closest an in-process server can get to
        SIGKILL (the chaos harness's crash primitive).

        No drain, no ledger writes, and — deliberately — the socket
        file is **left behind**, exactly like a killed process leaves
        it; the restart path must connect-probe and reclaim it.
        """
        if self._stopped:
            return
        self._stopped = True
        self.draining = True
        if self._reaper is not None:
            self._reaper.cancel()
        if self._server is not None:
            self._server.close()
        doomed: list[asyncio.Task[Any]] = [
            t for t in (*self._job_tasks.values(), *self._conn_tasks)
            if not t.done()]
        for task in doomed:
            task.cancel()
        if doomed:
            # Bounded wait: a worker stuck in an executor cannot be
            # interrupted; abandon it like a killed process would.
            await asyncio.wait(doomed, timeout=2.0)
        for task in doomed:
            if task.done() and not task.cancelled():
                task.exception()  # retrieved: crash-path noise is ours
        self.scheduler.close(wait=False)
        if self._stop_event is not None:
            self._stop_event.set()

    def run(self) -> int:
        """Synchronous entrypoint (``repro serve``): serve until
        SIGTERM/SIGINT, drain, exit 0."""
        async def main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            if threading.current_thread() is threading.main_thread():
                for sig in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(sig, self.request_stop)
                    except (NotImplementedError, RuntimeError):
                        pass
            await self.serve_until_stopped()

        asyncio.run(main())
        return 0

    # ------------------------------------------------------------------
    # job registry
    # ------------------------------------------------------------------
    def _register(self, job: JobRecord) -> JobRecord:
        self.jobs[job.job_id] = job
        self._job_conds[job.job_id] = asyncio.Condition()
        task = asyncio.ensure_future(self._run_job(job))
        self._job_tasks[job.job_id] = task

        def _done(t: "asyncio.Task[None]", j: str = job.job_id) -> None:
            self._job_tasks.pop(j, None)
            if not t.cancelled():
                # Retrieve (don't re-raise) so a task killed by the
                # chaos harness's SimulatedKill never logs as lost;
                # ordinary failures were already converted to a
                # terminal job state inside _run_job.
                t.exception()

        task.add_done_callback(_done)
        return job

    def find_job(self, job_id: str) -> JobRecord | None:
        """Exact job-id match, else a unique-prefix match."""
        job = self.jobs.get(job_id)
        if job is not None:
            return job
        matches = [j for key, j in self.jobs.items()
                   if key.startswith(job_id)]
        return matches[0] if len(matches) == 1 else None

    def stats(self) -> dict[str, Any]:
        """The ``status`` op payload: scheduler + job-state counters."""
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "uptime_s": round(time.time() - self._started_at, 3),
            "draining": self.draining,
            "workers": self.scheduler.workers,
            "max_jobs": self.max_jobs,
            "max_queued": self.max_queued,
            "jobs_total": len(self.jobs),
            "jobs_resumed": self._n_resumed,
            "jobs_rejected": self._n_rejected,
            "jobs_expired": self._n_expired,
            "jobs_by_state": by_state,
            **self.scheduler.stats,
        }

    def pending_jobs(self) -> int:
        """Jobs admitted but not yet terminal (the admission measure)."""
        return sum(1 for job in self.jobs.values() if not job.terminal)

    def health(self) -> dict[str, Any]:
        """The ``health`` op payload: liveness-probe essentials.

        Unlike :meth:`stats` (cumulative counters), this is the
        *operational snapshot* a fleet monitor scrapes: queue state,
        pool state, ledger lag, and the knobs that shape admission.
        """
        now = time.time()
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        queue = self._queue
        ledger_lag = None if not self.ledger.last_append_at \
            else round(now - self.ledger.last_append_at, 3)
        return {
            "status": "draining" if self.draining else "ok",
            "pid": os.getpid(),
            "version": repro.__version__,
            "uptime_s": round(now - self._started_at, 3),
            "queue_depth": queue.depth if queue is not None else 0,
            "running": queue.in_service if queue is not None else 0,
            "pending": self.pending_jobs(),
            "inflight_executions": self.scheduler.inflight,
            "pool_state": self.scheduler.pool_state,
            "max_jobs": self.max_jobs,
            "max_queued": self.max_queued,
            "heartbeat_s": self.heartbeat_s,
            "ledger_lag_s": ledger_lag,
            "jobs_by_state": by_state,
            "rejected": self._n_rejected,
            "expired": self._n_expired,
            "watchdog_kills": self.scheduler.stats["watchdog_kills"],
            "fair_share": queue.stats() if queue is not None else {},
        }

    # ------------------------------------------------------------------
    # event streams
    # ------------------------------------------------------------------
    async def _publish(self, job: JobRecord, event: dict[str, Any]) -> None:
        cond = self._job_conds[job.job_id]
        async with cond:
            job.events.append(event)
            cond.notify_all()

    async def _next_event(self, job: JobRecord,
                          index: int) -> dict[str, Any]:
        cond = self._job_conds[job.job_id]
        async with cond:
            while len(job.events) <= index:
                await cond.wait()
            return job.events[index]

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    async def _reap_expired(self) -> None:
        """Deadline reaper: expire jobs whose wall-clock budget ran
        out, queued or running alike."""
        while True:
            now = time.time()
            nearest: float | None = None
            for job in list(self.jobs.values()):
                if job.terminal:
                    continue
                deadline = job.deadline_at
                if deadline is None:
                    continue
                if now >= deadline:
                    await self._expire(job)
                elif nearest is None or deadline < nearest:
                    nearest = deadline
            if nearest is None:
                await asyncio.sleep(0.25)
            else:
                await asyncio.sleep(min(0.25, max(0.01, nearest - now)))

    async def _expire(self, job: JobRecord) -> None:
        """Move one overdue job to ``expired``.

        A queued job just leaves the fair-share queue.  A running job
        has its per-config subscriptions cancelled — the scheduler's
        reference counts then cancel each underlying execution *only
        if no other job still awaits it* (shared work survives).
        """
        if job.terminal:
            return
        was_queued = job.state == QUEUED
        job.transition(
            EXPIRED,
            error=f"deadline of {job.spec.deadline_s}s exceeded")
        self.ledger.record_state(job)
        self._n_expired += 1
        telemetry.count("service.jobs.expired")
        if was_queued:
            if self._queue is not None:
                self._queue.drop(job)
            await self._publish(job, {"type": "done",
                                      "job": job.to_dict()})
        else:
            for task in self._exec_tasks.get(job.job_id, []):
                task.cancel()

    async def _run_job(self, job: JobRecord) -> None:
        assert self._queue is not None
        try:
            await self._queue.acquire(job)
        except asyncio.CancelledError:
            # Expired (or dropped) while queued: the reaper already
            # journaled the transition and closed the stream.
            return
        try:
            if job.state != QUEUED:
                return  # cancelled/expired while waiting its turn
            if self.draining:
                return  # stays queued in the ledger for the next server
            job.transition(RUNNING)
            self.ledger.record_state(job)
            run_ctx = self._open_run(job)
            queue_wait = time.time() - job.submitted_at
            telemetry.observe("service.queue_wait_seconds", queue_wait)
            if run_ctx is not None:
                run_ctx.metrics.observe("service.queue_wait_seconds",
                                        queue_wait)
                now = run_ctx.spans.now()
                run_ctx.spans.emit("queue-wait",
                                   max(0.0, now - queue_wait), now,
                                   job=job.job_id)
            status, error = COMPLETED, ""
            try:
                status, error = await self._execute_job(job, run_ctx)
            except asyncio.CancelledError:
                # Config subscriptions were torn down under us.  Job
                # expiry does that deliberately (the reaper already
                # journaled the terminal state); anything else is a
                # genuine teardown and must keep propagating.
                if job.state != EXPIRED:
                    raise
                status, error = job.state, job.error
            except Exception as exc:  # noqa: BLE001 - job must terminate
                status, error = FAILED, f"{type(exc).__name__}: {exc}"
            transitioned = False
            if job.state == RUNNING:
                job.transition(status, error=error)
                transitioned = True
            if transitioned or job.state in (COMPLETED, FAILED):
                self.ledger.record_state(job)
            await self._publish(job, {"type": "done",
                                      "job": job.to_dict()})
            self._finalize_run(run_ctx, job)
        finally:
            self._queue.release()

    async def _execute_job(self, job: JobRecord,
                           run_ctx: RunContext | None
                           ) -> tuple[str, str]:
        """Dispatch every config of one job; returns (status, error)."""
        spec = job.spec
        configs = spec.configs
        outcomes: list[Row | None] = [None] * len(configs)
        errors: list[SweepError] = []
        runnable: list[tuple[int, ExperimentConfig]] = []
        for i, config in enumerate(configs):
            entry = self.scheduler.quarantined(spec.name, config)
            if entry is not None:
                job.n_failed += 1
                job.n_quarantined += 1
                message = ((entry["message"] or "repeated failure")
                           + f" (quarantined after {entry['fails']} "
                             f"attempts)")
                errors.append(SweepError(
                    config=config,
                    error=entry["error"] or "Quarantined",
                    message=message, worker_pid=entry["pid"],
                    attempts=int(entry["fails"])))
                if run_ctx is not None:
                    run_ctx.metrics.count("service.quarantined")
                await self._publish(job, protocol.row_error_frame(
                    i, entry["error"] or "Quarantined", message,
                    quarantined=True))
            else:
                runnable.append((i, config))

        exec_span = None
        if run_ctx is not None:
            exec_span = run_ctx.spans.open(
                "execute", job=job.job_id, engine=spec.engine,
                configs=len(runnable))

        async def one(i: int, config: ExperimentConfig
                      ) -> tuple[int, float, str, bool, Any]:
            t0 = time.perf_counter()
            source, ok, value = await self.scheduler.obtain(
                spec.name, config, spec.engine)
            return i, time.perf_counter() - t0, source, ok, value

        tasks = [asyncio.ensure_future(one(i, c)) for i, c in runnable]
        self._exec_tasks[job.job_id] = tasks
        try:
            for fut in asyncio.as_completed(tasks):
                i, dt, source, ok, value = await fut
                if job.state != RUNNING:
                    break  # cancelled mid-stream
                if run_ctx is not None:
                    end = run_ctx.spans.now()
                    name = {"executed": "execute", "dedup": "dedup-hit",
                            "cache": "cache-hit"}[source]
                    run_ctx.spans.emit(name, max(0.0, end - dt), end,
                                       parent=exec_span,
                                       config=configs[i].label())
                    run_ctx.metrics.count(f"service.rows.{source}")
                    run_ctx.metrics.observe("service.config_seconds", dt)
                if ok:
                    job.note_row(source)
                    outcomes[i] = value
                    await self._publish(
                        job, protocol.row_frame(i, value, source))
                else:
                    job.n_failed += 1
                    err = SweepError.from_exception(configs[i], value)
                    errors.append(err)
                    if run_ctx is not None:
                        run_ctx.metrics.count("service.rows.failed")
                    await self._publish(job, protocol.row_error_frame(
                        i, err.error, err.message))
        finally:
            self._exec_tasks.pop(job.job_id, None)
            for task in tasks:
                task.cancel()
            if run_ctx is not None and exec_span is not None:
                run_ctx.spans.close(exec_span)

        if job.state != RUNNING:
            self._attach_summary(run_ctx, job, outcomes, errors)
            return job.state, job.error
        if spec.engine == "auto":
            try:
                with telemetry.span("cross-validate",
                                    configs=len(configs)):
                    await asyncio.get_running_loop().run_in_executor(
                        None, partial(self._cross_validate, spec,
                                      list(outcomes)))
            except Exception as exc:  # noqa: BLE001 - job-level failure
                self._attach_summary(run_ctx, job, outcomes, errors)
                return FAILED, f"{type(exc).__name__}: {exc}"
        self._attach_summary(run_ctx, job, outcomes, errors)
        return (COMPLETED, "") if not errors else (
            COMPLETED, f"{len(errors)} config(s) failed")

    def _cross_validate(self, spec: JobSpec,
                        outcomes: list[Row | None]) -> None:
        """The ``auto`` engine's seeded event cross-check (thread-side,
        telemetry-suppressed; raises ``EngineDisagreement``)."""
        from repro.analytic.engine import cross_validate

        with telemetry.suppressed():
            cross_validate(spec.name, list(spec.configs), list(outcomes))

    # ------------------------------------------------------------------
    # per-job telemetry
    # ------------------------------------------------------------------
    def _open_run(self, job: JobRecord) -> RunContext | None:
        """A detached (never globally-activated) run directory for one
        job — many jobs record concurrently, one directory each."""
        if not telemetry.enabled():
            return None
        try:
            ctx = RunContext.open(
                kind="service-job", name=job.spec.name,
                configs=list(job.spec.configs), engine=job.spec.engine,
                workers=self.scheduler.workers,
                cache_dir=str(getattr(self.cache, "directory", ""))
                or None,
                results_dir=self.results_dir)
        except Exception:  # noqa: BLE001 - telemetry must never kill a job
            return None
        ctx.manifest["job_id"] = job.job_id
        ctx.metrics.count("service.jobs")
        return ctx

    @staticmethod
    def _attach_summary(run_ctx: RunContext | None, job: JobRecord,
                        outcomes: list[Row | None],
                        errors: list[SweepError]) -> None:
        if run_ctx is None:
            return
        rows = [row for row in outcomes if row is not None]
        run_ctx.attach_rows(job.spec.name, rows, errors)

    @staticmethod
    def _finalize_run(run_ctx: RunContext | None, job: JobRecord) -> None:
        if run_ctx is None:
            return
        try:
            run_ctx.finalize(status=job.state)
        except Exception:  # noqa: BLE001 - telemetry must never kill a job
            pass

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter,
                    frame: dict[str, Any]) -> bool:
        try:
            writer.write(protocol.encode_frame(frame))
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            return False

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # server teardown: drop the connection quietly
        except BaseException:  # noqa: BLE001 - a connection handler
            # must never take the server down (and the chaos harness's
            # SimulatedKill deliberately detonates here); the client
            # sees the closed socket either way.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        await self._send(writer, protocol.hello_frame(
            repro.__version__, os.getpid()))
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await self._send(writer, protocol.error_frame(
                    "protocol", "frame exceeds the size limit"))
                return
            except (ConnectionResetError, OSError):
                return
            if not line:
                return
            try:
                frame = protocol.decode_frame(line)
                op = protocol.check_request(frame)
            except ProtocolError as exc:
                await self._send(writer, protocol.error_frame(
                    "protocol", str(exc)))
                continue
            if not await self._dispatch(op, frame, writer):
                return

    async def _dispatch(self, op: str, frame: dict[str, Any],
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one request; returns False to end the connection."""
        if op == "ping":
            return await self._send(writer, {"type": "pong",
                                             "t": time.time()})
        if op == "status":
            return await self._send(writer, {"type": "status",
                                             "stats": self.stats()})
        if op == "health":
            return await self._send(writer, {"type": "health",
                                             "health": self.health()})
        if op == "jobs":
            ordered = sorted(self.jobs.values(),
                             key=lambda j: j.submitted_at)
            return await self._send(writer, {
                "type": "jobs",
                "jobs": [j.to_dict() for j in ordered]})
        if op == "submit":
            return await self._op_submit(frame, writer)
        if op == "watch":
            return await self._op_watch(frame, writer)
        if op == "cancel":
            return await self._op_cancel(frame, writer)
        if op == "shutdown":
            await self._send(writer, {"type": "ack", "op": "shutdown"})
            self.request_stop()
            return False
        return await self._send(writer, protocol.error_frame(
            "protocol", f"unhandled op {op!r}"))  # pragma: no cover

    async def _op_submit(self, frame: dict[str, Any],
                         writer: asyncio.StreamWriter) -> bool:
        try:
            req = protocol.parse_submit(frame)
        except ProtocolError as exc:
            return await self._send(writer, protocol.error_frame(
                "bad-request", str(exc)))
        if self.draining:
            return await self._send(writer, protocol.error_frame(
                "unavailable",
                "service is draining for shutdown; retry against the "
                "next server"))
        pending = self.pending_jobs()
        telemetry.gauge("service.pending_jobs", pending)
        if self.max_queued is not None and pending >= self.max_queued:
            # Admission control: refuse *before* registering or
            # journaling anything, so a rejected submission leaves no
            # trace to lose.  The hint scales with the backlog each
            # execution slot must clear.
            self._n_rejected += 1
            telemetry.count("service.jobs.rejected")
            retry_after = round(
                0.05 * (1 + pending / max(1, self.max_jobs)), 3)
            return await self._send(writer, protocol.error_frame(
                "overloaded",
                f"admission queue is full ({pending} pending >= "
                f"--max-queued {self.max_queued}); retry with backoff",
                queue_depth=pending, max_queued=self.max_queued,
                retry_after_s=retry_after))
        job = self._register(JobRecord(JobSpec(
            job_id=new_job_id(), name=req.name, engine=req.engine,
            configs=tuple(req.configs), priority=req.priority,
            deadline_s=req.deadline_s, client=req.client,
            submitted_at=time.time())))
        # Durability order matters: ledger append *before* the ack
        # frame, so a crash in between loses an un-acked submission
        # (client retries) — never an acked one.
        self.ledger.record_submit(job)
        if not await self._send(writer, {"type": "job",
                                         "job": job.to_dict()}):
            return False
        if req.watch:
            return await self._stream_job(job, writer)
        return True

    async def _op_watch(self, frame: dict[str, Any],
                        writer: asyncio.StreamWriter) -> bool:
        job = self.find_job(str(frame.get("job_id", "")))
        if job is None:
            return await self._send(writer, protocol.error_frame(
                "unknown-job", f"no job matches {frame.get('job_id')!r}"))
        if not await self._send(writer, {"type": "job",
                                         "job": job.to_dict()}):
            return False
        return await self._stream_job(job, writer)

    async def _op_cancel(self, frame: dict[str, Any],
                         writer: asyncio.StreamWriter) -> bool:
        job = self.find_job(str(frame.get("job_id", "")))
        if job is None:
            return await self._send(writer, protocol.error_frame(
                "unknown-job", f"no job matches {frame.get('job_id')!r}"))
        if not job.terminal:
            was_queued = job.state == QUEUED
            job.transition(CANCELLED, error="cancelled by client")
            self.ledger.record_state(job)
            if was_queued:
                # the job task will exit without publishing; free its
                # fair-share waiter and close the stream for watchers
                if self._queue is not None:
                    self._queue.drop(job)
                await self._publish(job, {"type": "done",
                                          "job": job.to_dict()})
        return await self._send(writer, {"type": "job",
                                         "job": job.to_dict()})

    async def _stream_job(self, job: JobRecord,
                          writer: asyncio.StreamWriter) -> bool:
        index = 0
        while True:
            if self.heartbeat_s is None:
                event = await self._next_event(job, index)
            else:
                try:
                    event = await asyncio.wait_for(
                        self._next_event(job, index), self.heartbeat_s)
                except asyncio.TimeoutError:
                    # Silent stream: prove liveness so the client's
                    # read timeout means "dead server", not "slow job".
                    if not await self._send(writer,
                                            protocol.heartbeat_frame()):
                        return False
                    continue
            if not await self._send(writer, event):
                return False  # watcher went away; the job carries on
            if event.get("type") == "done":
                return True
            index += 1


class ServiceThread:
    """A :class:`SweepService` hosted on a daemon thread.

    The thread runs its own event loop; :meth:`stop` requests a drain
    and joins.  Tests, benchmarks, and interactive sessions use this to
    get a real server without a second process.
    """

    def __init__(self, service: SweepService) -> None:
        self.service = service
        self.error: BaseException | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.service.start()
        self._ready.set()
        await self.service.serve_until_stopped()

    def start(self, timeout_s: float = 30.0) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServiceError("service thread did not come up in time")
        if self.error is not None:
            raise ServiceError(
                f"service thread failed to start: {self.error}")
        return self

    def stop(self, timeout_s: float = 60.0) -> None:
        """Drain and join (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout_s)

    def abort(self, timeout_s: float = 30.0) -> None:
        """Crash-stop the hosted service: no drain, no ledger writes,
        socket file left behind (the chaos harness's SIGKILL stand-in).
        Idempotent, joins the thread."""
        import concurrent.futures

        if self._loop is not None and self._thread.is_alive():
            fut = asyncio.run_coroutine_threadsafe(
                self.service.abort(), self._loop)
            try:
                fut.result(timeout_s)
            except (concurrent.futures.TimeoutError,
                    concurrent.futures.CancelledError, RuntimeError):
                pass
        self._thread.join(timeout_s)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()


def serve_in_thread(service: SweepService, *,
                    timeout_s: float = 30.0) -> ServiceThread:
    """Start ``service`` on a background thread and wait until its
    socket is accepting connections."""
    return ServiceThread(service).start(timeout_s)
