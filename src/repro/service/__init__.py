"""repro.service — the sweep service: a multi-client async job server.

``repro serve`` promotes :func:`repro.core.runner.run_sweep` from a
library call into a long-running daemon.  Many concurrent clients submit
sweep jobs over a local unix socket; the server

* **dedups fleet-wide** — one in-flight simulation per config digest
  (engine-tagged, under the current model fingerprint); every subscriber
  — in the same job or another client's — shares the result, and the
  content-addressed :class:`~repro.core.cache.ResultCache` serves warm
  rows without any dispatch at all;
* **batches and shards** — analytic-engine rows are micro-batched
  through the vectorized closed-form scorer, event-engine rows fan out
  over a process pool;
* **streams** — each client receives per-row results the moment they
  complete, tagged with the submission index so the final
  :class:`~repro.core.runner.SweepResult` is bit-identical to a direct
  ``run_sweep``;
* **survives** — jobs are journaled in a ledger next to the cache;
  SIGTERM drains in-flight jobs and a restarted server resumes the
  queued ones, while repeat-failing configs are quarantined per job via
  the sweep journal.

Layers: :mod:`.protocol` (wire frames), :mod:`.jobs` (specs, state
machine, ledger), :mod:`.fairshare` (weighted fair-share run-slot
queue), :mod:`.scheduler` (dedup/batch/shard execution),
:mod:`.server` (the asyncio daemon), :mod:`.client` (blocking SDK).
"""

from __future__ import annotations

from repro.service.client import ServiceClient, default_socket_path
from repro.service.fairshare import FairShareQueue
from repro.service.jobs import JobLedger, JobRecord, JobSpec
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import ServiceThread, SweepService, serve_in_thread

__all__ = [
    "FairShareQueue",
    "JobLedger",
    "JobRecord",
    "JobSpec",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceThread",
    "SweepService",
    "default_socket_path",
    "serve_in_thread",
]
