"""Wire protocol for the sweep service: newline-delimited JSON frames.

Both directions speak the same framing: one JSON object per line
(``\\n``-terminated, UTF-8), small enough to be read with a buffered
line reader and torn-tolerant in the same spirit as the cache/journal
files — a malformed line is a :class:`~repro.errors.ProtocolError`
naming what was wrong, never a hang.

**Requests** (client → server) carry ``op``::

    {"v": 1, "op": "submit", "name": "f1", "engine": "event",
     "watch": true, "configs": [{...}, ...]}
    {"v": 1, "op": "watch",  "job_id": "..."}
    {"v": 1, "op": "jobs"}
    {"v": 1, "op": "status"}
    {"v": 1, "op": "cancel", "job_id": "..."}
    {"v": 1, "op": "ping"}
    {"v": 1, "op": "health"}
    {"v": 1, "op": "shutdown"}

A ``submit`` may additionally carry the fleet-scheduling fields
``priority`` (``low`` | ``normal`` | ``high``), ``deadline_s`` (float
seconds of wall-clock budget), and ``client`` (the submitter identity
fair-share is computed across); all optional and backward compatible.

**Responses** (server → client) carry ``type``:

* ``hello`` — sent once per connection before any request is read
  (protocol/package version, server pid);
* ``job`` — a job-record snapshot (after submit/cancel);
* ``row`` — one completed row: submission ``index``, the row payload,
  and its ``source`` (``executed`` | ``dedup`` | ``cache``);
* ``row-error`` — one failed config: ``index``, error class, message,
  and whether it was ``quarantined`` without an attempt;
* ``done`` — terminal frame of a stream, with the final job record;
* ``heartbeat`` — a keep-alive on an otherwise-silent stream (no rows
  completed for a while); clients swallow it and reset their read
  timeout, so "slow job" and "dead server" are distinguishable;
* ``jobs`` / ``status`` / ``health`` / ``pong`` / ``ack`` — query
  answers;
* ``error`` — a request-level failure (``code`` + ``message``, plus
  typed extras such as ``queue_depth`` on an ``overloaded``
  rejection); the connection stays usable unless the transport itself
  broke.

Config and row payloads reuse the persistence schema
(:func:`repro.core.persistence.config_to_dict` /
:func:`~repro.core.persistence.row_to_dict`), so a job spec is exactly
the manifest vocabulary and floats survive the JSON round-trip
bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.experiment import ExperimentConfig
from repro.core.persistence import (
    config_from_dict,
    config_to_dict,
    row_from_dict,
    row_to_dict,
)
from repro.core.runner import Row
from repro.errors import ConfigurationError, ProtocolError

#: Wire protocol version; bump on breaking frame changes.
PROTOCOL_VERSION = 1

#: Upper bound on one frame (a 48-point sweep submit is ~20 kB; this is
#: a safety valve against a garbage peer, not a practical limit).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Request operations the server understands.
OPS = ("submit", "watch", "jobs", "status", "cancel", "ping", "health",
       "shutdown")

#: Engines a job may request (mirrors ``run_sweep``).
ENGINES = ("event", "analytic", "auto")

#: Priorities a submit may request (mirrors the job ledger).
PRIORITIES = ("low", "normal", "high")


def encode_frame(frame: dict[str, Any]) -> bytes:
    """Serialize one frame to its wire form (compact JSON + newline)."""
    line = json.dumps(frame, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return data


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` on oversized, non-JSON, or non-object
    payloads — the caller decides whether that kills the connection.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from None
    else:
        text = line
    text = text.strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        frame = json.loads(text)
    except ValueError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def check_request(frame: dict[str, Any]) -> str:
    """Validate a request frame; returns its ``op``.

    Checks the protocol version and the op vocabulary, so a client from
    a future incompatible release gets a clear refusal instead of
    undefined behavior.
    """
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} not supported "
            f"(this server speaks v{PROTOCOL_VERSION})"
        )
    op = frame.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    return str(op)


def hello_frame(server_version: str, pid: int) -> dict[str, Any]:
    """The per-connection greeting the server sends before reading."""
    return {"type": "hello", "v": PROTOCOL_VERSION,
            "server": "repro-service", "version": server_version,
            "pid": pid}


def error_frame(code: str, message: str,
                **extra: Any) -> dict[str, Any]:
    """A request-level failure (the connection stays open).

    ``extra`` keys ride along verbatim — e.g. an ``overloaded``
    rejection carries ``queue_depth``/``max_queued``/``retry_after_s``
    so the client's backoff can honor the server's hint.
    """
    frame = {"type": "error", "code": code, "message": message}
    frame.update(extra)
    return frame


def heartbeat_frame() -> dict[str, Any]:
    """A keep-alive on a silent stream (no payload beyond the type)."""
    return {"type": "heartbeat"}


@dataclass(frozen=True)
class SubmitRequest:
    """A decoded ``submit`` request (see :func:`parse_submit`)."""

    name: str
    configs: list[ExperimentConfig] = field(default_factory=list)
    engine: str = "event"
    watch: bool = True
    priority: str = "normal"
    deadline_s: float | None = None
    client: str = ""


def submit_frame(name: str, configs: list[ExperimentConfig], engine: str,
                 watch: bool = True, *, priority: str = "normal",
                 deadline_s: float | None = None,
                 client: str = "") -> dict[str, Any]:
    """Build a ``submit`` request from live config objects."""
    if engine not in ENGINES:
        raise ProtocolError(
            f"unknown engine {engine!r} (expected one of {ENGINES})"
        )
    if priority not in PRIORITIES:
        raise ProtocolError(
            f"unknown priority {priority!r} "
            f"(expected one of {PRIORITIES})"
        )
    frame: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "op": "submit",
        "name": name,
        "engine": engine,
        "watch": bool(watch),
        "configs": [config_to_dict(c) for c in configs],
    }
    if priority != "normal":
        frame["priority"] = priority
    if deadline_s is not None:
        frame["deadline_s"] = float(deadline_s)
    if client:
        frame["client"] = client
    return frame


def parse_submit(frame: dict[str, Any]) -> SubmitRequest:
    """Decode a ``submit`` request into a :class:`SubmitRequest`.

    Every config is revalidated through the persistence loader, so a
    malformed spec is rejected at the door rather than poisoning the
    queue.
    """
    name = frame.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError("submit needs a non-empty string 'name'")
    engine = frame.get("engine", "event")
    if engine not in ENGINES:
        raise ProtocolError(
            f"unknown engine {engine!r} (expected one of {ENGINES})"
        )
    priority = frame.get("priority", "normal")
    if priority not in PRIORITIES:
        raise ProtocolError(
            f"unknown priority {priority!r} "
            f"(expected one of {PRIORITIES})"
        )
    raw_deadline = frame.get("deadline_s")
    if raw_deadline is not None:
        try:
            deadline_s: float | None = float(raw_deadline)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"deadline_s must be a number, got {raw_deadline!r}"
            ) from None
        if deadline_s is not None and deadline_s <= 0:
            raise ProtocolError("deadline_s must be positive")
    else:
        deadline_s = None
    raw = frame.get("configs")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("submit needs a non-empty 'configs' list")
    configs: list[ExperimentConfig] = []
    for i, record in enumerate(raw):
        if not isinstance(record, dict):
            raise ProtocolError(f"configs[{i}] is not an object")
        try:
            configs.append(config_from_dict(record))
        except ConfigurationError as exc:
            raise ProtocolError(f"configs[{i}]: {exc}") from None
    return SubmitRequest(name=str(name), configs=configs,
                         engine=str(engine),
                         watch=bool(frame.get("watch", True)),
                         priority=str(priority), deadline_s=deadline_s,
                         client=str(frame.get("client", "")))


def row_frame(index: int, row: Row, source: str) -> dict[str, Any]:
    """One completed row, tagged with its submission index and where it
    came from (``executed`` / ``dedup`` / ``cache``)."""
    return {"type": "row", "index": index, "source": source,
            "row": row_to_dict(row)}


def row_error_frame(index: int, error: str, message: str,
                    quarantined: bool = False) -> dict[str, Any]:
    """One failed config, tagged with its submission index."""
    return {"type": "row-error", "index": index, "error": error,
            "message": message, "quarantined": bool(quarantined)}


def parse_row(frame: dict[str, Any]) -> tuple[int, Row, str]:
    """Decode a ``row`` event into ``(index, row, source)``."""
    try:
        index = int(frame["index"])
        row = row_from_dict(frame["row"])
        source = str(frame.get("source", "executed"))
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        raise ProtocolError(f"malformed row frame: {exc}") from None
    return index, row, source
