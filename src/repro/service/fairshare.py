"""Weighted fair-share run-slot scheduling across client identities.

The sweep service used to drain its queue with a plain semaphore: FIFO
across all clients, so one client submitting a 10x backlog starved
everyone behind it.  :class:`FairShareQueue` replaces the semaphore
with **stride scheduling** over client identities:

* every client has a *virtual time*; granting a job advances the
  client's virtual time by ``n_configs / weight(priority)``;
* the next free run slot goes to the waiter whose prospective virtual
  start time is smallest (ties: higher priority weight, then FIFO);
* a client joining (or rejoining after idling) starts at the queue's
  *floor* — the most recent granted start — so it neither jumps an
  unbounded backlog of credit nor waits behind hours of other clients'
  accumulated virtual time.

The result is the classic fair-share contract: a light client's jobs
interleave with a heavy client's backlog instead of queueing behind it,
``high`` priority weights selection 2x over ``normal`` and 4x over
``low``, and *nothing starves* — every waiter's prospective start is
finite and the floor only moves forward when jobs are granted, so every
queued job's rank strictly improves as others run.

The queue is deliberately asyncio-native and server-local: admission
control (the ``--max-queued`` cap) happens *before* a job reaches this
queue, in the server's submit path, so rejected work never holds a
waiter entry.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.service.jobs import PRIORITY_WEIGHTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.jobs import JobRecord

#: Client identity used when a submit carried none.
ANONYMOUS = "anonymous"


@dataclass(order=True)
class _Waiter:
    """One queued job waiting for a run slot (orderable by pick key)."""

    start: float
    neg_weight: float
    seq: int
    job: "JobRecord" = field(compare=False)
    client: str = field(compare=False)
    cost: float = field(compare=False)
    future: "asyncio.Future[None]" = field(compare=False)


class FairShareQueue:
    """Grant up to ``slots`` concurrent run slots in fair-share order."""

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = slots
        self._in_service = 0
        self._waiters: list[_Waiter] = []
        self._vtime: dict[str, float] = {}
        self._floor = 0.0
        self._seq = itertools.count()
        self._granted = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _client_of(job: "JobRecord") -> str:
        return job.spec.client or ANONYMOUS

    def _prospective_start(self, client: str) -> float:
        return max(self._vtime.get(client, 0.0), self._floor)

    def _dispatch(self) -> None:
        """Grant free slots to the best waiters (smallest virtual
        start; ties broken by weight then arrival)."""
        while self._in_service < self.slots and self._waiters:
            # Re-rank at dispatch time: the floor may have moved since
            # the waiter enqueued, but a client's own vtime only grows,
            # so recomputing keeps starts honest without re-sorting on
            # every grant.
            for waiter in self._waiters:
                waiter.start = max(waiter.start,
                                   self._prospective_start(waiter.client))
            best = min(self._waiters)
            self._waiters.remove(best)
            self._vtime[best.client] = best.start + best.cost
            self._floor = best.start
            self._in_service += 1
            self._granted += 1
            if not best.future.done():
                best.future.set_result(None)

    # ------------------------------------------------------------------
    async def acquire(self, job: "JobRecord") -> None:
        """Wait for a run slot under the fair-share policy.

        Cancellation-safe: a cancelled waiter (job expiry, shutdown)
        leaves no queue entry and releases nothing it never held.
        """
        client = self._client_of(job)
        weight = PRIORITY_WEIGHTS.get(job.priority, 1.0)
        # Charge per config, not per job, so a 48-point sweep costs its
        # size and a 1-point probe stays cheap; weight divides the
        # charge (high priority accrues virtual time slower).
        cost = max(1.0, float(job.n_configs)) / weight
        loop = asyncio.get_running_loop()
        future: asyncio.Future[None] = loop.create_future()
        waiter = _Waiter(start=self._prospective_start(client),
                         neg_weight=-weight, seq=next(self._seq),
                         job=job, client=client, cost=cost, future=future)
        self._waiters.append(waiter)
        self._dispatch()
        try:
            await future
        except asyncio.CancelledError:
            if waiter in self._waiters:
                self._waiters.remove(waiter)
            elif future.done() and not future.cancelled():
                # Granted and cancelled in the same tick: the slot was
                # already charged, give it back.
                self.release()
            raise

    def release(self) -> None:
        """Return a previously granted slot and wake the next waiter."""
        if self._in_service <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self._in_service -= 1
        self._dispatch()

    def drop(self, job: "JobRecord") -> bool:
        """Remove ``job``'s pending waiter (expiry path).  Returns
        whether a waiter was found; its future is cancelled so the
        awaiting task unblocks."""
        for waiter in self._waiters:
            if waiter.job is job:
                self._waiters.remove(waiter)
                if not waiter.future.done():
                    waiter.future.cancel()
                return True
        return False

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs holding a waiter entry (queued, not yet running)."""
        return len(self._waiters)

    @property
    def in_service(self) -> int:
        """Run slots currently granted."""
        return self._in_service

    def stats(self) -> dict[str, Any]:
        """Health-probe snapshot (queue depth, slots, per-client
        virtual times)."""
        return {
            "slots": self.slots,
            "in_service": self._in_service,
            "depth": len(self._waiters),
            "granted": self._granted,
            "clients": {c: round(v, 6)
                        for c, v in sorted(self._vtime.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"<FairShareQueue slots={self.slots} "
                f"in_service={self._in_service} depth={len(self._waiters)}>")
