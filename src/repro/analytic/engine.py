"""Batched closed-form scoring of sweep configurations.

Instead of replaying rank programs event by event, the analytic engine
scores a whole batch of configurations in one NumPy array pass:

1. every config is *compiled to entries* — one entry per (rank class,
   compute group, thread context), carrying the per-iteration resource
   times the ECM model (:func:`repro.kernels.timing.phase_time`) assigns
   on that context's NUMA domain;
2. a single vectorized pass applies the roofline
   ``T_iter = max(T_compute, T_L1, T_L2, T_DRAM) + T_gather_latency``
   across all entries of all configs at once;
3. per-group worst-context folds, the analytic communication terms
   (LogGP collectives via :func:`repro.runtime.collectives.collective_time`,
   point-to-point waits via :meth:`Cluster.transfer_time`), and the
   storage model produce the same :class:`~repro.core.runner.Row` fields
   the event executor emits.

The per-iteration constants are obtained by calling the *event engine's
own* ``phase_time`` with unit iteration count and unit bandwidth shares,
so the two engines share one arithmetic by construction; what the
analytic engine drops is event-level dynamics — fault injection, message
protocol stalls (NIC serialization, torus contention, eager/rendezvous),
arrival skew at synchronization points, and storage contention between
ranks.  Those need ``engine="event"`` (see DESIGN.md).

Determinism: scoring is pure float arithmetic over deterministically
ordered profiles, so repeated runs are bit-identical.

Assumes homogeneous nodes (every NUMA domain identical), which the
placement layer already enforces and every cataloged cluster satisfies:
per-iteration constants are evaluated once on domain (0, 0) and reused
for every context.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Any

import numpy as np

from repro import telemetry
from repro.analytic.profile import AppProfile, RankClass
from repro.compile.compiler import CompiledKernel, Compiler
from repro.compile.options import PRESETS
from repro.core.experiment import ExperimentConfig
from repro.core.runner import Row
from repro.errors import ConfigurationError, EngineDisagreement, SimulationError
from repro.kernels.timing import phase_time
from repro.machine import catalog
from repro.machine.numa import NumaDomain
from repro.machine.topology import Cluster
from repro.miniapps import by_name
from repro.runtime import program as ops
from repro.runtime.collectives import collective_time, profile_communicator
from repro.runtime.openmp import _thread_iters, fork_join_overhead
from repro.runtime.placement import JobPlacement

#: Engine names accepted by ``run_config`` / ``run_sweep`` / the CLI.
ENGINES = ("event", "analytic", "auto")

#: Agreement tolerances of the seeded sim-vs-analytic cross-validation.
#: The analytic model's largest divergence is synchronization skew it
#: cannot see (ranks arriving at collectives/waits at different times).
#: Calibrated 2026-08 over every processor x every miniapp plus
#: serial-init, stride/scatter bindings, multi-node allocations, and
#: compiler presets: worst observed deviation 1.8% on elapsed/gflops
#: (ffvc/large on 2 nodes, cyclic allocation).  10% leaves ~5x headroom
#: while still catching real model drift (see DESIGN.md).
ELAPSED_RTOL = 0.10
GFLOPS_RTOL = 0.10

#: Configs the ``auto`` engine re-simulates per sweep.
AUTO_SAMPLE_SIZE = 3

_COLLECTIVE_CLASSES = {
    "barrier": ops.Barrier,
    "bcast": ops.Bcast,
    "reduce": ops.Reduce,
    "allreduce": ops.Allreduce,
    "allgather": ops.Allgather,
    "alltoall": ops.Alltoall,
    "gather": ops.Gather,
    "scatter": ops.Scatter,
    "reducescatter": ops.ReduceScatter,
    "scan": ops.Scan,
}


def check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    return engine


# ----------------------------------------------------------------------
# memoized model inputs (all keyed on hashable config fields)
# ----------------------------------------------------------------------
@lru_cache(maxsize=64)
def _cluster(processor: str, n_nodes: int) -> Cluster:
    return catalog.by_name(processor, n_nodes=n_nodes)


@lru_cache(maxsize=1024)
def _placement(processor: str, n_nodes: int, n_ranks: int, n_threads: int,
               allocation: str, binding: str) -> JobPlacement:
    return JobPlacement(_cluster(processor, n_nodes), n_ranks, n_threads,
                        allocation=allocation, binding=binding)


@lru_cache(maxsize=256)
def _compiled(app: str, dataset: str, preset: str,
              processor: str) -> dict[str, CompiledKernel]:
    """Compiled kernel set, lowered for the executor's compile target."""
    cluster = _cluster(processor, 1)
    app_obj = by_name(app)
    ds = app_obj.dataset(dataset)
    core = cluster.node.chips[0].domains[0].core
    return Compiler(PRESETS[preset]).compile_many(app_obj.kernels(ds), core)


@lru_cache(maxsize=512)
def _profile(app: str, dataset: str, n_ranks: int) -> AppProfile:
    app_obj = by_name(app)
    return app_obj.analytic_profile(app_obj.dataset(dataset), n_ranks)


@lru_cache(maxsize=256)
def _communicator_ranks(app: str,
                        n_ranks: int) -> dict[str, tuple[int, ...]]:
    members = {"world": tuple(range(n_ranks))}
    extra = by_name(app).communicators(n_ranks)
    if extra:
        members.update(extra)
    return members


@lru_cache(maxsize=8192)
def _phase_consts(app: str, dataset: str, preset: str, processor: str,
                  kernel: str, ws_scale: float
                  ) -> tuple[float, float, float, float, float,
                             float, float]:
    """Per-iteration ECM constants of one kernel on one processor.

    Returned as ``(t_compute, t_l1, l2_num, dram_num, t_latency,
    dram_bytes, flops)`` where the context-dependent terms divide the
    numerators by the context's bandwidth share:
    ``t_l2 = l2_num / l2_share`` and ``t_dram = dram_num / mem_share``.
    Produced by the event engine's own ``phase_time`` at unit iteration
    count and unit shares, so the arithmetic cannot drift between
    engines.
    """
    try:
        ck = _compiled(app, dataset, preset, processor)[kernel]
    except KeyError:
        raise SimulationError(
            f"{app}/{dataset} references unregistered kernel {kernel!r}"
        ) from None
    dom = _cluster(processor, 1).node.chips[0].domains[0]
    pt = phase_time(
        ck, 1.0, dom.core, dom.l1d, dom.l2,
        mem_bandwidth_share=1.0, l2_bandwidth_share=1.0,
        mem_latency_s=dom.memory.latency_s,
        working_set_scale=ws_scale,
    )
    c = pt.components
    return (c["compute"], c["l1"], c["l2"], c["dram"], c["latency"],
            pt.dram_bytes, pt.flops)


def clear_memos() -> None:
    """Drop every engine memo (tests monkeypatching the catalog use this)."""
    for fn in (_cluster, _placement, _compiled, _profile,
               _communicator_ranks, _phase_consts):
        fn.cache_clear()


# ----------------------------------------------------------------------
# per-config compilation to struct-of-arrays entries
# ----------------------------------------------------------------------
@dataclass
class _Group:
    """One compute group awaiting the batch pass (entry slice + scalars)."""

    start: int
    end: int
    max_iters: float        # critical-thread iterations, all regions
    iters: float            # total iterations (work accounting)
    overhead_s: float       # fork/join + chunk overhead, all regions
    flops_per_iter: float
    class_idx: int
    kernel: str             # kernel name (advisor attribution)
    schedule: str           # OpenMP schedule of the parallel region
    serial: bool            # single-thread region
    regions: int            # parallel regions per group execution


@dataclass
class _Compiled:
    """One config compiled to entries, plus its per-class scalar terms."""

    config: ExperimentConfig
    groups: list[_Group]
    class_ranks: list[int]          # ranks per class
    class_rep_ranks: list[int]      # representative rank per class
    class_comm_s: list[float]       # collective + p2p seconds per class
    class_other_s: list[float]      # sleep + file I/O seconds per class
    class_comm_items: list[tuple[tuple[str, float], ...]]
    n_ranks: int


def _class_comm_items(cluster: Cluster, placement: JobPlacement,
                      profile: AppProfile, cls: RankClass,
                      comm_ranks: dict[str, tuple[int, ...]],
                      comm_profiles: dict[str, Any],
                      ) -> list[tuple[str, float]]:
    """Itemized collective + p2p wait time of one rank class.

    Returns ``(label, seconds)`` pairs — one per collective group and one
    per exchange — whose sum is the class's communication term.  The
    itemization feeds :func:`config_breakdown` (and through it the
    advisor's collective-domination rule); :func:`_compile_config` sums
    it, so the scoring pass and the breakdown share one arithmetic.
    """
    items: list[tuple[str, float]] = []
    rep_addr = placement.thread_cores(cls.rep_rank)[0]
    for g in cls.collectives:
        try:
            members = comm_ranks[g.comm]
        except KeyError:
            raise SimulationError(
                f"profile references unknown communicator {g.comm!r}"
            ) from None
        prof = comm_profiles.get(g.comm)
        if prof is None:
            addrs = tuple(placement.thread_cores(r)[0] for r in members)
            prof = profile_communicator(cluster, addrs)
            comm_profiles[g.comm] = prof
        try:
            op_cls = _COLLECTIVE_CLASSES[g.kind]
        except KeyError:
            raise SimulationError(
                f"no analytic model for collective {g.kind!r}"
            ) from None
        items.append((
            f"{g.kind}[{g.comm}] x{g.count} @{g.size_bytes}B",
            g.count * collective_time(
                op_cls(size_bytes=g.size_bytes), len(members), prof),
        ))
    n = profile.n_ranks
    for ex in cls.exchanges:
        if ex.overlapped:
            continue    # wait hidden under the interleaved compute
        wait = 0.0
        for offset, nbytes in ex.partners:
            dst_addr = placement.thread_cores(
                (cls.rep_rank + offset) % n)[0]
            wait = max(wait,
                       cluster.transfer_time(rep_addr, dst_addr, nbytes))
        items.append((
            f"p2p exchange x{ex.count} ({len(ex.partners)} partners)",
            ex.count * wait,
        ))
    return items


def _mem_share(cluster: Cluster, dom: NumaDomain, key: tuple,
               active: int, home_key: tuple, home_active: int,
               data_policy: str) -> float:
    if data_policy == "serial-init" and key != home_key:
        home_dom = cluster.node.chips[home_key[1]].domains[home_key[2]]
        chip = cluster.node.chips[key[1]]
        return (home_dom.memory.per_stream_bandwidth(home_active)
                * chip.remote_access_fraction)
    return dom.memory.per_stream_bandwidth(active)


def _compile_config(config: ExperimentConfig,
                    columns: list[list[float]]) -> _Compiled:
    """Turn one config into batch entries appended onto ``columns``."""
    cluster = _cluster(config.processor, config.n_nodes)
    placement = _placement(config.processor, config.n_nodes,
                           config.n_ranks, config.n_threads,
                           config.allocation, config.binding)
    profile = _profile(config.app, config.dataset, config.n_ranks)
    comm_ranks = _communicator_ranks(config.app, config.n_ranks)
    census = placement.threads_per_domain
    key = (config.app, config.dataset, config.options_preset,
           config.processor)

    groups: list[_Group] = []
    class_ranks: list[int] = []
    class_rep_ranks: list[int] = []
    class_comm: list[float] = []
    class_other: list[float] = []
    class_comm_items: list[tuple[tuple[str, float], ...]] = []
    comm_profiles: dict[str, Any] = {}
    storage = cluster.storage

    for class_idx, cls in enumerate(profile.classes):
        addrs = placement.thread_cores(cls.rep_rank)
        home_key = placement.home_domain(cls.rep_rank)
        home_active = max(1, census.get(home_key, 1))

        for g in cls.compute:
            use_addrs = addrs[:1] if g.serial else addrs
            n_threads = len(use_addrs)
            # distinct NUMA domains this group's threads occupy, with the
            # rank's own thread count in each (shared-L2 footprint scale)
            contexts: dict[tuple, int] = {}
            for a in use_addrs:
                k = (a.node, a.chip, a.domain)
                contexts[k] = contexts.get(k, 0) + 1

            unit_max, chunk_s = _thread_iters(1.0, n_threads, g.schedule,
                                              g.imbalance)
            per_region = chunk_s if g.serial else \
                fork_join_overhead(n_threads, len(contexts)) + chunk_s

            start = len(columns[0])
            for ctx_key, rank_threads_here in sorted(contexts.items()):
                dom = cluster.node.chips[ctx_key[1]].domains[ctx_key[2]]
                active = max(1, census.get(ctx_key, 1))
                ws = g.working_set_scale
                if dom.l2.shared and rank_threads_here > 1:
                    ws *= max(0.3, 1.0 / rank_threads_here ** 0.5)
                consts = _phase_consts(*key, g.kernel, ws)
                mem = _mem_share(cluster, dom, ctx_key, active,
                                 home_key, home_active, config.data_policy)
                l2 = dom.l2_bandwidth_share(active)
                row = consts + (l2, mem)
                for col, v in zip(columns, row):
                    col.append(v)
            groups.append(_Group(
                start=start, end=len(columns[0]),
                max_iters=unit_max * g.iters, iters=g.iters,
                overhead_s=per_region * g.regions,
                flops_per_iter=consts[6],
                class_idx=class_idx,
                kernel=g.kernel, schedule=g.schedule, serial=g.serial,
                regions=g.regions,
            ))

        class_ranks.append(cls.n_ranks)
        class_rep_ranks.append(cls.rep_rank)
        items = _class_comm_items(
            cluster, placement, profile, cls, comm_ranks, comm_profiles)
        class_comm_items.append(tuple(items))
        class_comm.append(sum(s for _, s in items))
        io_ops = cls.file_reads + cls.file_writes
        io_bytes = cls.file_read_bytes + cls.file_write_bytes
        class_other.append(
            cls.sleep_s
            + io_ops * storage.open_latency_s
            + io_bytes / storage.per_node_bandwidth
        )

    return _Compiled(config=config, groups=groups, class_ranks=class_ranks,
                     class_rep_ranks=class_rep_ranks,
                     class_comm_s=class_comm, class_other_s=class_other,
                     class_comm_items=class_comm_items,
                     n_ranks=config.n_ranks)


# ----------------------------------------------------------------------
# the batch pass
# ----------------------------------------------------------------------
def score_configs(configs: list[ExperimentConfig]
                  ) -> list[Row | Exception]:
    """Score a batch of configs; returns a Row or Exception per config.

    Entries from every config share one vectorized roofline pass;
    exceptions (bad decompositions, unknown kernels, placement errors)
    are captured per config so one broken point cannot sink a batch —
    callers decide whether to raise or record them.
    """
    with telemetry.span("score.analytic.batch", configs=len(configs)):
        return _score_configs_batch(configs)


def _score_configs_batch(configs: list[ExperimentConfig]
                         ) -> list[Row | Exception]:
    results: list[Any] = [None] * len(configs)
    compiled: list[tuple[int, _Compiled]] = []
    # entry columns: t_comp, t_l1, l2_num, dram_num, t_lat,
    #                dram_bytes/iter, flops/iter, l2_share, mem_share
    columns: list[list[float]] = [[] for _ in range(9)]
    for i, config in enumerate(configs):
        mark = len(columns[0])
        try:
            compiled.append((i, _compile_config(config, columns)))
        except Exception as exc:  # noqa: BLE001 - per-config error capture
            results[i] = exc
            # discard any partial entries this config appended
            for col in columns:
                del col[mark:]

    if compiled:
        t_comp, t_l1, l2_num, dram_num, t_lat, dram_it, _flops_it, \
            l2_share, mem_share = (np.asarray(c, dtype=float)
                                   for c in columns)
        t_iter = np.maximum(
            np.maximum(t_comp, t_l1),
            np.maximum(l2_num / l2_share, dram_num / mem_share),
        ) + t_lat

    for i, comp in compiled:
        n_classes = len(comp.class_ranks)
        compute_s = [0.0] * n_classes
        flops_c = [0.0] * n_classes
        dram_c = [0.0] * n_classes
        for g in comp.groups:
            seg = t_iter[g.start:g.end]
            j = int(np.argmax(seg)) if g.end > g.start else 0
            worst = float(seg[j]) if g.end > g.start else 0.0
            compute_s[g.class_idx] += worst * g.max_iters + g.overhead_s
            # work accounting mirrors the event engine: DRAM volume of
            # the critical context, FLOPs of the full iteration count
            dram_c[g.class_idx] += float(dram_it[g.start + j]) * g.iters
            flops_c[g.class_idx] += g.flops_per_iter * g.iters

        totals = [compute_s[c] + comp.class_comm_s[c] + comp.class_other_s[c]
                  for c in range(n_classes)]
        elapsed = max(totals, default=0.0)
        total_flops = sum(r * f for r, f in zip(comp.class_ranks, flops_c))
        total_dram = sum(r * d for r, d in zip(comp.class_ranks, dram_c))
        comm_mean = sum(r * s for r, s in
                        zip(comp.class_ranks, comp.class_comm_s)) \
            / comp.n_ranks
        results[i] = Row(
            config=comp.config,
            elapsed=elapsed,
            gflops=(total_flops / elapsed / 1e9) if elapsed > 0 else 0.0,
            dram_gbytes_per_s=(total_dram / elapsed / 1e9)
            if elapsed > 0 else 0.0,
            comm_fraction=min(1.0, comm_mean / elapsed)
            if elapsed > 0 else 0.0,
            engine="analytic",
        )
    return results


def score_config(config: ExperimentConfig) -> Row:
    """Score one config analytically; raises on failure."""
    out = score_configs([config])[0]
    if isinstance(out, Exception):
        raise out
    return out


# ----------------------------------------------------------------------
# itemized cost breakdown (the static advisor's data source)
# ----------------------------------------------------------------------
#: ECM pipeline phases of the roofline max (latency is additive on top).
ECM_PHASES = ("compute", "l1", "l2", "dram")


@dataclass(frozen=True)
class GroupCost:
    """Closed-form cost of one compute group on its critical context."""

    class_idx: int
    kernel: str
    schedule: str
    serial: bool
    iters: float            # total iterations across threads
    regions: int            # parallel regions per group execution
    contexts: int           # distinct NUMA domains the threads span
    seconds: float          # worst-context time incl. fork/join overhead
    overhead_s: float       # fork/join + chunk overhead share of seconds
    iter_s: float           # critical-context seconds per iteration
    bound: str              # dominant phase: compute|l1|l2|dram|latency
    per_iter: dict[str, float]  # phase -> critical-context seconds/iter

    @property
    def memory_bound(self) -> bool:
        """Off-core bound (same cut as counter rooflines)."""
        return self.bound in ("l2", "dram", "latency")


@dataclass(frozen=True)
class ClassCost:
    """Per-step time of one rank equivalence class, itemized."""

    class_idx: int
    rep_rank: int
    n_ranks: int
    compute_s: float
    comm_s: float
    other_s: float          # sleep + file I/O
    comm_items: tuple[tuple[str, float], ...]

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s + self.other_s


@dataclass(frozen=True)
class ConfigBreakdown:
    """Itemized closed-form cost model of one configuration.

    The same entries the batch scorer folds into a single
    :class:`~repro.core.runner.Row`, kept apart: per-group ECM phase
    times on the critical thread context, per-class communication items,
    and the class totals whose max is the elapsed time.  This is what
    the static advisor (:mod:`repro.analysis.advisor`) reasons over —
    by construction every number it cites is the scoring engine's own.
    """

    config: ExperimentConfig
    classes: tuple[ClassCost, ...]
    groups: tuple[GroupCost, ...]
    elapsed: float

    @property
    def critical_class(self) -> ClassCost:
        """The class whose total sets the elapsed time."""
        return max(self.classes, key=lambda c: c.total_s)

    def class_groups(self, class_idx: int) -> list[GroupCost]:
        return [g for g in self.groups if g.class_idx == class_idx]


def config_breakdown(config: ExperimentConfig) -> ConfigBreakdown:
    """Compile one config and keep the per-group/per-class terms apart.

    Raises the same exceptions as :func:`score_config` (placement,
    decomposition, unknown-kernel errors); never runs the event
    executor.
    """
    columns: list[list[float]] = [[] for _ in range(9)]
    comp = _compile_config(config, columns)
    (t_comp, t_l1, l2_num, dram_num, t_lat,
     _dram_it, _flops_it, l2_share, mem_share) = columns

    n_classes = len(comp.class_ranks)
    compute_s = [0.0] * n_classes
    groups: list[GroupCost] = []
    for g in comp.groups:
        best_j, best_t = -1, 0.0
        for j in range(g.start, g.end):
            t = max(t_comp[j], t_l1[j],
                    l2_num[j] / l2_share[j],
                    dram_num[j] / mem_share[j]) + t_lat[j]
            if best_j < 0 or t > best_t:
                best_j, best_t = j, t
        if best_j < 0:      # group compiled to no contexts
            per_iter = dict.fromkeys(ECM_PHASES + ("latency",), 0.0)
            bound = "compute"
        else:
            j = best_j
            per_iter = {
                "compute": t_comp[j], "l1": t_l1[j],
                "l2": l2_num[j] / l2_share[j],
                "dram": dram_num[j] / mem_share[j],
                "latency": t_lat[j],
            }
            bound = max(ECM_PHASES, key=per_iter.__getitem__)
            if per_iter["latency"] > per_iter[bound]:
                bound = "latency"
        seconds = best_t * g.max_iters + g.overhead_s
        compute_s[g.class_idx] += seconds
        groups.append(GroupCost(
            class_idx=g.class_idx, kernel=g.kernel, schedule=g.schedule,
            serial=g.serial, iters=g.iters, regions=g.regions,
            contexts=g.end - g.start, seconds=seconds,
            overhead_s=g.overhead_s, iter_s=best_t, bound=bound,
            per_iter=per_iter,
        ))

    classes = tuple(
        ClassCost(class_idx=c, rep_rank=comp.class_rep_ranks[c],
                  n_ranks=comp.class_ranks[c], compute_s=compute_s[c],
                  comm_s=comp.class_comm_s[c],
                  other_s=comp.class_other_s[c],
                  comm_items=comp.class_comm_items[c])
        for c in range(n_classes)
    )
    elapsed = max((c.total_s for c in classes), default=0.0)
    return ConfigBreakdown(config=config, classes=classes,
                           groups=tuple(groups), elapsed=elapsed)


# ----------------------------------------------------------------------
# sim-vs-analytic cross-validation (the ``auto`` engine's gate)
# ----------------------------------------------------------------------
def validation_sample(name: str, n: int,
                      sample_size: int = AUTO_SAMPLE_SIZE) -> list[int]:
    """Deterministic config indices to re-simulate for a named sweep.

    Seeding ``random.Random`` with a string hashes it through SHA-512,
    so the sample is stable across processes and Python versions.
    """
    if n <= 0:
        return []
    rng = random.Random(f"repro-auto:{name}:{n}")
    return sorted(rng.sample(range(n), min(sample_size, n)))


def check_agreement(config: ExperimentConfig, analytic: Row,
                    event: Row) -> None:
    """Raise :class:`EngineDisagreement` if the rows differ beyond
    tolerance on ``elapsed`` or ``gflops``."""
    for attr, tol in (("elapsed", ELAPSED_RTOL), ("gflops", GFLOPS_RTOL)):
        a = getattr(analytic, attr)
        e = getattr(event, attr)
        rel = abs(a - e) / max(abs(e), 1e-30)
        if rel > tol:
            raise EngineDisagreement(
                f"engines disagree on {attr} for {config.label()}: "
                f"analytic {a:.6g} vs event {e:.6g} "
                f"({rel:.1%} > {tol:.0%} tolerance)",
                config=config, analytic=analytic, event=event,
            )


def cross_validate(name: str, configs: list[ExperimentConfig],
                   analytic_rows: list[Row | Exception], cache: Any = None,
                   *, sample_size: int = AUTO_SAMPLE_SIZE
                   ) -> list[tuple[ExperimentConfig, Row, Row]]:
    """Re-simulate a seeded sample with the event engine and compare.

    Returns the checked ``(config, analytic_row, event_row)`` triples;
    raises :class:`EngineDisagreement` on the first violation.  Event
    rows land in ``cache`` under their normal (event) keys, so the
    cross-check also warms the event cache.
    """
    from repro.core.runner import run_config

    checked = []
    for i in validation_sample(name, len(configs), sample_size):
        row_a = analytic_rows[i]
        if isinstance(row_a, Exception) or row_a is None:
            continue
        row_e = run_config(configs[i], cache, engine="event")
        check_agreement(configs[i], row_a, row_e)
        checked.append((configs[i], row_a, row_e))
    return checked
