"""Placement-independent communication/compute profiles of rank programs.

The analytic engine (:mod:`repro.analytic.engine`) scores a configuration
without interpreting its rank programs event by event.  What it needs from
the program is a *profile*: for every distinct class of ranks, the total
compute iterations per kernel group, the collectives entered, the
point-to-point exchange shapes, and the file/sleep volumes.  None of that
depends on the placement — only on ``(app, dataset, n_ranks)`` — so one
profile serves every (processor, threads, binding, allocation) point of a
sweep.

Two producers build profiles:

* each miniapp's ``rank_summary`` closed form (mirroring its skeleton's
  arithmetic without constructing a single op), assembled by
  :func:`profile_from_summaries`; and
* :func:`profile_from_replay`, which symbolically replays the real rank
  generators and folds the yielded ops.  It is exact but ~1000x slower
  than the closed forms, so it serves as the fallback for apps without a
  closed form — and as the oracle the equivalence tests check the closed
  forms against.

Grouping compute regions by ``(kernel, schedule, serial, imbalance,
working_set_scale)`` and summing their iteration counts is *exact* with
respect to the event executor's arithmetic: region seconds are linear in
the iteration count for a fixed context, and the per-region fork/chunk
overheads are preserved via the group's ``regions`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable

from repro.errors import SimulationError
from repro.runtime import program as ops


@dataclass(frozen=True)
class ComputeGroup:
    """All compute regions of one rank sharing a timing context.

    ``iters`` is the **total** iteration count across the ``regions``
    regions folded into the group (region time is linear in iterations,
    so the fold loses nothing); per-region fork/chunk overheads are
    re-applied ``regions`` times by the engine.
    """

    kernel: str
    iters: float
    regions: int
    schedule: str = "static"
    serial: bool = False
    imbalance: float = 1.0
    working_set_scale: float = 1.0


@dataclass(frozen=True)
class CollectiveGroup:
    """``count`` entries into one collective shape on one communicator."""

    kind: str            # op class name, lowercase ("allreduce", ...)
    size_bytes: float
    count: int
    comm: str = "world"


@dataclass(frozen=True)
class ExchangeGroup:
    """``count`` repetitions of one point-to-point exchange pattern.

    ``partners`` holds ``(offset, bytes)`` pairs — the rank-space offset
    ``(dst - rank) % n_ranks`` of each outgoing message and its payload
    (halo exchanges are symmetric, so the matching receive carries the
    same volume).  ``overlapped`` marks exchanges whose wait was covered
    by an interleaved parallel compute region (the skeletons' interior/
    boundary overlap pattern); the engine charges them no wait time.
    """

    partners: tuple[tuple[int, float], ...]
    count: int
    overlapped: bool = False


@dataclass(frozen=True)
class RankClass:
    """One equivalence class of ranks with identical per-rank behaviour."""

    rep_rank: int        # lowest rank of the class (placement lookups)
    n_ranks: int         # how many ranks share this behaviour
    compute: tuple[ComputeGroup, ...]
    collectives: tuple[CollectiveGroup, ...] = ()
    exchanges: tuple[ExchangeGroup, ...] = ()
    sleep_s: float = 0.0
    file_read_bytes: float = 0.0
    file_reads: int = 0
    file_write_bytes: float = 0.0
    file_writes: int = 0


@dataclass(frozen=True)
class AppProfile:
    """The full per-rank-class profile of one (app, dataset, n_ranks)."""

    app: str
    dataset: str
    n_ranks: int
    classes: tuple[RankClass, ...]

    def __post_init__(self) -> None:
        total = sum(c.n_ranks for c in self.classes)
        if total != self.n_ranks:
            raise SimulationError(
                f"profile {self.app}/{self.dataset}: rank classes cover "
                f"{total} ranks, expected {self.n_ranks}"
            )


class SummaryBuilder:
    """Accumulates one rank's profile; folds repeats into groups.

    The closed forms and the replay extractor both speak this API, so
    their outputs are structurally comparable.
    """

    __slots__ = ("n_ranks", "_compute", "_collectives", "_exchanges",
                 "sleep_s", "file_read_bytes", "file_reads",
                 "file_write_bytes", "file_writes")

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks
        self._compute: dict[tuple, list] = {}
        self._collectives: dict[tuple, int] = {}
        self._exchanges: dict[tuple, int] = {}
        self.sleep_s = 0.0
        self.file_read_bytes = 0.0
        self.file_reads = 0
        self.file_write_bytes = 0.0
        self.file_writes = 0

    # ------------------------------------------------------------------
    def compute(self, kernel: str, iters: float, *, regions: int = 1,
                schedule: str = "static", serial: bool = False,
                imbalance: float = 1.0,
                working_set_scale: float = 1.0) -> None:
        if iters < 0 or regions < 0:
            raise SimulationError("compute group needs iters/regions >= 0")
        if regions == 0:
            return    # zero regions also ran zero iterations
        key = (kernel, schedule, serial, imbalance, working_set_scale)
        slot = self._compute.setdefault(key, [0.0, 0])
        slot[0] += iters
        slot[1] += regions

    def collective(self, kind: str, size_bytes: float, *,
                   comm: str = "world", count: int = 1) -> None:
        if count <= 0:
            return
        key = (kind, float(size_bytes), comm)
        self._collectives[key] = self._collectives.get(key, 0) + count

    def exchange(self, rank: int,
                 partners: Iterable[tuple[int, float]], *,
                 overlapped: bool = False, count: int = 1) -> None:
        """One exchange: ``partners`` is an iterable of (dst, bytes)."""
        if count <= 0:
            return
        offs = tuple(sorted(
            ((dst - rank) % self.n_ranks, float(nbytes))
            for dst, nbytes in partners
        ))
        if not offs:
            return
        key = (offs, overlapped)
        self._exchanges[key] = self._exchanges.get(key, 0) + count

    def sleep(self, seconds: float) -> None:
        self.sleep_s += seconds

    def file_read(self, size_bytes: float) -> None:
        self.file_read_bytes += size_bytes
        self.file_reads += 1

    def file_write(self, size_bytes: float) -> None:
        self.file_write_bytes += size_bytes
        self.file_writes += 1

    # ------------------------------------------------------------------
    def freeze(self, rep_rank: int) -> RankClass:
        compute = tuple(
            ComputeGroup(kernel=k[0], iters=v[0], regions=v[1],
                         schedule=k[1], serial=k[2], imbalance=k[3],
                         working_set_scale=k[4])
            for k, v in sorted(self._compute.items())
        )
        collectives = tuple(
            CollectiveGroup(kind=k[0], size_bytes=k[1], comm=k[2], count=n)
            for k, n in sorted(self._collectives.items())
        )
        exchanges = tuple(
            ExchangeGroup(partners=k[0], count=n, overlapped=k[1])
            for k, n in sorted(self._exchanges.items())
        )
        return RankClass(
            rep_rank=rep_rank, n_ranks=1, compute=compute,
            collectives=collectives, exchanges=exchanges,
            sleep_s=self.sleep_s,
            file_read_bytes=self.file_read_bytes,
            file_reads=self.file_reads,
            file_write_bytes=self.file_write_bytes,
            file_writes=self.file_writes,
        )


def _class_signature(cls: RankClass) -> tuple:
    """Equality key of a rank class, ignoring identity fields."""
    return (cls.compute, cls.collectives, cls.exchanges, cls.sleep_s,
            cls.file_read_bytes, cls.file_reads, cls.file_write_bytes,
            cls.file_writes)


def _cluster_classes(app: str, dataset: str, n_ranks: int,
                     per_rank: list[RankClass]) -> AppProfile:
    """Fold per-rank classes (one per rank) into distinct classes."""
    seen: dict[tuple, int] = {}
    classes: list[RankClass] = []
    for cls in per_rank:
        sig = _class_signature(cls)
        idx = seen.get(sig)
        if idx is None:
            seen[sig] = len(classes)
            classes.append(cls)
        else:
            classes[idx] = replace(classes[idx],
                                   n_ranks=classes[idx].n_ranks + 1)
    return AppProfile(app=app, dataset=dataset, n_ranks=n_ranks,
                      classes=tuple(classes))


def profile_from_summaries(app: str, dataset: str, n_ranks: int,
                           summary_fn: Callable[[int, SummaryBuilder],
                                                None]) -> AppProfile:
    """Build a profile from a closed-form per-rank summary function.

    ``summary_fn(rank, builder)`` fills a :class:`SummaryBuilder` with
    rank ``rank``'s behaviour using plain arithmetic.
    """
    per_rank = []
    for rank in range(n_ranks):
        b = SummaryBuilder(n_ranks)
        summary_fn(rank, b)
        per_rank.append(b.freeze(rank))
    return _cluster_classes(app, dataset, n_ranks, per_rank)


# ----------------------------------------------------------------------
# replay-based extraction (exact fallback + closed-form oracle)
# ----------------------------------------------------------------------
class _Token:
    """Stand-in request handle handed back to a replayed generator."""

    __slots__ = ("kind", "dst", "size", "order")

    def __init__(self, kind: str, dst: int, size: float, order: int) -> None:
        self.kind = kind          # "send" | "recv" | "collective"
        self.dst = dst
        self.size = size
        self.order = order        # op index at post time


def _replay_rank(factory: Callable[[int, int], Any], rank: int,
                 n_ranks: int) -> SummaryBuilder:
    """Fold one rank's generator into a summary without simulating time.

    Outgoing ``Isend`` volumes are kept in a pending ledger: the
    skeletons wait only on their receive requests (sends are posted
    fire-and-forget), and by halo symmetry a rank's own send volumes
    mirror the incoming messages its ``WaitAll`` actually blocks on.
    """
    b = SummaryBuilder(n_ranks)
    gen = factory(rank, n_ranks)
    send_value = None
    order = 0
    last_parallel_compute = -1
    pending_sends: list[tuple[int, int, float]] = []   # (order, dst, bytes)
    while True:
        try:
            op = gen.send(send_value)
        except StopIteration:
            break
        send_value = None
        order += 1

        if isinstance(op, ops.Compute):
            b.compute(op.kernel, op.iters, schedule=op.schedule,
                      serial=op.serial, imbalance=op.imbalance,
                      working_set_scale=op.working_set_scale)
            if not op.serial:
                last_parallel_compute = order
        elif isinstance(op, ops.Sleep):
            b.sleep(op.seconds)
        elif isinstance(op, ops.FileRead):
            b.file_read(op.size_bytes)
        elif isinstance(op, ops.FileWrite):
            b.file_write(op.size_bytes)
        elif isinstance(op, ops.Isend):
            pending_sends.append((order, op.dst, op.size_bytes))
            send_value = _Token("send", op.dst, op.size_bytes, order)
        elif isinstance(op, ops.Irecv):
            send_value = _Token("recv", op.src, 0.0, order)
        elif isinstance(op, ops.Sendrecv):
            b.exchange(rank, [(op.dst, op.size_bytes)])
        elif isinstance(op, (ops.Send, ops.Recv)):
            raise SimulationError(
                f"rank {rank}: blocking {type(op).__name__} has no "
                f"analytic model; use Isend/Irecv + WaitAll"
            )
        elif isinstance(op, ops.WaitAll):
            tokens = [t for t in op.requests if isinstance(t, _Token)]
            if any(not isinstance(t, _Token) for t in op.requests):
                raise SimulationError(
                    f"rank {rank}: WaitAll on a non-request during replay"
                )
            posts = [t.order for t in tokens if t.kind != "collective"]
            posts.extend(o for o, _, _ in pending_sends)
            if pending_sends:
                overlapped = min(posts) <= last_parallel_compute
                b.exchange(rank,
                           [(dst, sz) for _, dst, sz in pending_sends],
                           overlapped=overlapped)
                pending_sends.clear()
        elif isinstance(op, ops.NONBLOCKING_COLLECTIVE_OPS):
            b.collective(type(op).__name__.lower().lstrip("i"),
                         op.size_bytes, comm=op.comm)
            send_value = _Token("collective", -1, op.size_bytes, order)
        elif isinstance(op, ops.COLLECTIVE_OPS):
            b.collective(type(op).__name__.lower(), op.size_bytes,
                         comm=op.comm)
        else:
            raise SimulationError(
                f"rank {rank} yielded an unknown operation during replay: "
                f"{op!r}"
            )
    return b


def profile_from_replay(app: str, dataset: str,
                        factory: Callable[[int, int], Any],
                        n_ranks: int) -> AppProfile:
    """Exact profile by symbolic replay of every rank's generator."""
    per_rank = [
        _replay_rank(factory, rank, n_ranks).freeze(rank)
        for rank in range(n_ranks)
    ]
    return _cluster_classes(app, dataset, n_ranks, per_rank)
