"""Batched analytic (closed-form) sweep engine.

``repro.analytic`` scores sweep configurations without discrete-event
simulation: rank programs are summarized into placement-independent
:class:`~repro.analytic.profile.AppProfile` objects (closed-form per-app
arithmetic, with symbolic replay as the fallback/oracle), and a single
NumPy pass applies the ECM roofline plus analytic communication terms to
every (config x processor) point of a batch.  See DESIGN.md ("Engine
selection") for the model's assumptions and known divergences.
"""

from repro.analytic.engine import (
    AUTO_SAMPLE_SIZE,
    ELAPSED_RTOL,
    ENGINES,
    GFLOPS_RTOL,
    check_agreement,
    check_engine,
    clear_memos,
    cross_validate,
    score_config,
    score_configs,
    validation_sample,
)
from repro.analytic.profile import (
    AppProfile,
    CollectiveGroup,
    ComputeGroup,
    ExchangeGroup,
    RankClass,
    SummaryBuilder,
    profile_from_replay,
    profile_from_summaries,
)

__all__ = [
    "AUTO_SAMPLE_SIZE",
    "ELAPSED_RTOL",
    "ENGINES",
    "GFLOPS_RTOL",
    "AppProfile",
    "CollectiveGroup",
    "ComputeGroup",
    "ExchangeGroup",
    "RankClass",
    "SummaryBuilder",
    "check_agreement",
    "check_engine",
    "clear_memos",
    "cross_validate",
    "profile_from_replay",
    "profile_from_summaries",
    "score_config",
    "score_configs",
    "validation_sample",
]
