"""Command-line interface: ``python -m repro <command>``.

Commands mirror what a user of the original study's scripts would run:

* ``list-apps`` / ``list-processors`` — inventory;
* ``run`` — simulate one configuration and print the report;
* ``profile`` — simulate with the PMU on and print the fapp-style report;
* ``sweep`` — the MPI x OpenMP grid for one app (``--resume`` restarts
  an interrupted run from the persistent cache + journal);
* ``chaos`` — deterministic fault-injection campaigns with invariant
  checks (the CI resilience gate);
* ``figure`` — regenerate one paper artifact (t1..t2, f1..f10, a1..a5);
* ``roofline`` — per-kernel roofline placement for one app;
* ``energy`` — the power-mode study for one app;
* ``runs`` / ``report <run_id>`` / ``reproduce <run_id>`` — the
  telemetry trio: list recorded runs, summarize one (metrics, gate
  timings, fault events, Chrome trace export), and re-execute one from
  its manifest, diffing the replay against the recorded rows.

Sweep-running commands record themselves under ``results/runs/<id>/``
by default; ``--no-telemetry`` (or ``REPRO_TELEMETRY=off``) restores
the unrecorded path.

``run`` and ``profile`` accept the same app/placement flags (one shared
wiring, :func:`_add_app_flags` / :func:`_add_placement_flags`), with
forgiving spellings: ``--app ccs_qcd`` and ``--processor a64fx`` resolve
to ``ccs-qcd`` / ``A64FX``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.machine import catalog
from repro.miniapps import SUITE, by_name
from repro.units import fmt_bw, fmt_rate, fmt_time


def _app_name(value: str) -> str:
    """Normalize an ``--app`` spelling: suite keys use hyphens."""
    return value.strip().lower().replace("_", "-")


def _processor_name(value: str) -> str:
    """Normalize a ``--processor`` spelling to the catalog's exact case."""
    lookup = {name.lower(): name for name in catalog.PROCESSORS}
    return lookup.get(value.strip().lower(), value)


def _add_app_flags(parser: argparse.ArgumentParser) -> None:
    """``--app`` / ``--dataset`` / ``--processor`` — what to simulate."""
    parser.add_argument("--app", required=True, type=_app_name,
                        choices=sorted(SUITE))
    parser.add_argument("--dataset", default="as-is")
    parser.add_argument("--processor", default="A64FX", type=_processor_name,
                        choices=sorted(catalog.PROCESSORS))


def _add_placement_flags(parser: argparse.ArgumentParser) -> None:
    """Placement/machine flags shared by ``run`` and ``profile``."""
    parser.add_argument("--nodes", type=int, default=1)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--threads", type=int, default=12)
    parser.add_argument("--stride", type=int, default=1,
                        help="thread-binding stride (1 = compact)")
    parser.add_argument("--allocation", default="block",
                        choices=["block", "cyclic", "domain-pack", "spread"])
    parser.add_argument("--options", default="kfast",
                        choices=["as-is", "+simd", "+simd+sched", "tuned",
                                 "kfast"])
    parser.add_argument("--data-policy", default="first-touch",
                        choices=["first-touch", "serial-init"])


def _resolve_placement(args):
    """(cluster, app, placement, binding, allocation) from the shared
    flags — the one interpretation ``run`` and ``profile`` both use."""
    from repro.runtime.affinity import ProcessAllocation, ThreadBinding
    from repro.runtime.placement import JobPlacement

    cluster = catalog.by_name(args.processor, n_nodes=args.nodes)
    app = by_name(args.app)
    binding = (ThreadBinding("compact") if args.stride == 1
               else ThreadBinding("stride", stride=args.stride))
    allocation = ProcessAllocation(args.allocation)
    placement = JobPlacement(
        cluster, args.ranks, args.threads,
        allocation=allocation,
        binding=binding,
    )
    return cluster, app, placement, binding, allocation


def _add_exec_flags(parser: argparse.ArgumentParser,
                    jobs: bool = True) -> None:
    """``--jobs`` / ``--cache-dir`` / ``--no-cache`` on sweep-running
    commands."""
    if jobs:
        parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="simulate up to N sweep points in parallel "
                 "(process pool; 1 = serial)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache for this invocation")
    parser.add_argument(
        "--no-lint", action="store_true",
        help="skip the static pre-flight lint (see `repro lint`)")
    parser.add_argument(
        "--advise", default=None, choices=["off", "warn", "error"],
        metavar="MODE",
        help="static performance gate (see `repro advise`): 'warn' "
             "blocks configs with error findings (infeasible "
             "placements), 'error' blocks on warnings too "
             "(default: $REPRO_ADVISE or off)")
    parser.add_argument(
        "--engine", default="event",
        choices=["event", "analytic", "auto"],
        help="scoring engine: 'event' simulates, 'analytic' scores the "
             "whole sweep in one closed-form batch pass (~100x faster, "
             "no fault/protocol effects), 'auto' scores analytically "
             "and cross-checks a seeded sample against the simulator")
    parser.add_argument(
        "--no-telemetry", action="store_true",
        help="do not record this invocation as a run directory "
             "(equivalent to REPRO_TELEMETRY=off)")
    parser.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="root for recorded run directories (default: "
             "$REPRO_RESULTS_DIR or ./results; runs land in "
             "<DIR>/runs/<run_id>/)")


def _cache_from_args(args):
    """A ResultCache per the flags, or None with ``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    from repro.core.cache import ResultCache

    return ResultCache(args.cache_dir)


def _cmd_list_apps(_args) -> int:
    from repro.core.figures import t2_miniapp_table

    print(t2_miniapp_table().render())
    return 0


def _cmd_list_processors(_args) -> int:
    from repro.core.figures import t1_processor_specs

    print(t1_processor_specs().render())
    return 0


def _run_error(args, exc: Exception) -> int:
    """Surface a failed ``repro run`` as a one-config sweep error:
    class, message, originating pid, and the full traceback."""
    import os
    import traceback

    from repro.core.experiment import ExperimentConfig
    from repro.core.parallel import SweepError

    setattr(exc, "_repro_traceback", traceback.format_exc())
    setattr(exc, "_repro_pid", os.getpid())
    config = ExperimentConfig(
        app=args.app, dataset=args.dataset, processor=args.processor,
        n_nodes=args.nodes, n_ranks=args.ranks, n_threads=args.threads,
    )
    print(f"error: {SweepError.from_exception(config, exc).details()}",
          file=sys.stderr)
    return 1


def _cmd_run(args) -> int:
    from repro.compile.options import PRESETS
    from repro.errors import ReproError

    try:
        cluster, app, placement, binding, allocation = \
            _resolve_placement(args)
    except ReproError as exc:
        return _run_error(args, exc)
    print(f"{app.name}/{args.dataset} on {cluster.name}: "
          f"{placement.describe()}")
    if args.breakdown and args.engine != "event":
        print("error: --breakdown needs the event executor's traces; "
              "drop --engine or use --engine event", file=sys.stderr)
        return 2
    if args.breakdown:
        # the per-phase breakdown needs the full traces, which cached
        # rows don't carry — simulate directly
        from repro.runtime.executor import run_job

        job = app.build_job(cluster, placement, dataset=args.dataset,
                            options=PRESETS[args.options],
                            data_policy=args.data_policy)
        result = run_job(job)
        elapsed = result.elapsed
        flops_per_s = result.achieved_flops_per_s
        dram_bw = result.dram_bandwidth
        comm = result.communication_fraction()
    else:
        from repro.core.experiment import ExperimentConfig
        from repro.core.runner import run_config

        config = ExperimentConfig(
            app=args.app, dataset=args.dataset, processor=args.processor,
            n_nodes=args.nodes, n_ranks=args.ranks, n_threads=args.threads,
            binding=binding, allocation=allocation,
            options_preset=args.options, data_policy=args.data_policy,
        )
        try:
            row = run_config(config, _cache_from_args(args),
                             engine=args.engine)
        except Exception as exc:  # noqa: BLE001 - CLI error surface
            return _run_error(args, exc)
        elapsed = row.elapsed
        flops_per_s = row.gflops * 1e9
        dram_bw = row.dram_gbytes_per_s * 1e9
        comm = row.comm_fraction
        if row.engine != "event":
            print(f"  engine         {row.engine}")
    print(f"  elapsed        {fmt_time(elapsed)}")
    print(f"  performance    {fmt_rate(flops_per_s)}")
    print(f"  DRAM traffic   {fmt_bw(dram_bw)}")
    print(f"  communication  {comm:.1%}")
    if args.breakdown:
        for cat, t in sorted(result.breakdown().items()):
            print(f"    {cat:<12} {fmt_time(t)}")
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.compile.options import PRESETS
    from repro.perf import (
        cycle_accounting_table,
        profile_job,
        region_table,
        roofline_crosscheck_table,
    )

    cluster, app, placement, _, _ = _resolve_placement(args)
    job = app.build_job(cluster, placement, dataset=args.dataset,
                        options=PRESETS[args.options],
                        data_policy=args.data_policy)
    result, profile = profile_job(job)
    print(region_table(profile, top=args.top).render())
    print()
    print(cycle_accounting_table(profile).render())
    print()
    print(roofline_crosscheck_table(
        profile, cluster, app, dataset=args.dataset,
        options=PRESETS[args.options]).render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(profile.to_json(), fh, indent=2)
        print(f"wrote {args.json}")
    if args.trace:
        from repro.runtime.timeline import write_chrome_trace

        write_chrome_trace(result, args.trace, profile)
        print(f"wrote {args.trace}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.core.figures import f1_mpi_omp_sweep, t3_best_config

    table, sweeps = f1_mpi_omp_sweep(
        apps=[args.app], dataset=args.dataset, processor=args.processor,
        cache=_cache_from_args(args), workers=args.jobs,
        resume=args.resume, engine=args.engine)
    print(table.render())
    errors = [err for sweep in sweeps.values() for err in sweep.errors]
    if any(sweep.rows for sweep in sweeps.values()):
        print(t3_best_config(sweeps).render())
    if errors:
        for err in errors:
            print(err.details(), file=sys.stderr)
        print(f"sweep: {len(errors)} quarantined/failed config(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    from repro.errors import ConfigurationError
    from repro.faults import run_campaign

    if args.service:
        from repro.faults.service import run_service_campaign

        report = run_service_campaign(seed=args.seed)
        print(report.render())
        if args.json:
            import json

            with open(args.json, "w") as fh:
                json.dump(report.to_json(), fh, indent=2, sort_keys=True)
            print(f"wrote {args.json}")
        return 0 if report.ok else 1

    apps = tuple(_app_name(a) for a in args.apps.split(",")) \
        if args.apps else None
    try:
        report = run_campaign(seed=args.seed, apps=apps, quick=args.quick,
                              processor=args.processor, engine=args.engine)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


_FIGURES = {
    "t1": ("t1_processor_specs", {}),
    "t2": ("t2_miniapp_table", {}),
    "f1": ("f1_mpi_omp_sweep", {}),
    "f2": ("f2_thread_stride", {}),
    "f3": ("f3_process_allocation", {}),
    "f4": ("f4_compiler_tuning", {}),
    "f5": ("f5_processor_comparison", {}),
    "f6": ("f6_roofline", {}),
    "f7": ("f7_stream_scaling", {}),
    "f8": ("f8_multinode_scaling", {}),
    "f9": ("f9_weak_scaling", {}),
    "f10": ("f10_time_breakdown", {}),
}

_ABLATIONS = {
    "a1": "a1_vector_length",
    "a2": "a2_power_modes",
    "a3": "a3_microarchitecture",
    "a5": "a5_collective_algorithms",
    "a6": "a6_mixed_precision",
}


def _cmd_figure(args) -> int:
    import inspect

    from repro.core import ablations, figures, projection

    def _call(fn, kwargs):
        # pass the cache/worker context only to builders that take it
        params = inspect.signature(fn).parameters
        if "cache" in params:
            kwargs = {**kwargs, "cache": _cache_from_args(args)}
        if "workers" in params:
            kwargs = {**kwargs, "workers": args.jobs}
        if "engine" in params and args.engine != "event":
            kwargs = {**kwargs, "engine": args.engine}
        return fn(**kwargs)

    fid = args.id.lower()
    if fid in _FIGURES:
        name, kwargs = _FIGURES[fid]
        out = _call(getattr(figures, name), kwargs)
    elif fid == "a4":
        out = projection.a4_sssp_projection()
    elif fid in _ABLATIONS:
        out = _call(getattr(ablations, _ABLATIONS[fid]), {})
    else:
        print(f"unknown figure id {args.id!r}; "
              f"available: {sorted(_FIGURES) + sorted(_ABLATIONS) + ['a4']}",
              file=sys.stderr)
        return 2
    table = out[0] if isinstance(out, tuple) else out
    print(table.render())
    if args.csv:
        print(table.to_csv())
    return 0


def _cmd_roofline(args) -> int:
    from repro.core.figures import f6_roofline

    print(f6_roofline(apps=[args.app], dataset=args.dataset,
                      processor=args.processor).render())
    return 0


def _cmd_energy(args) -> int:
    from repro.core.energy import mode_study

    reports = mode_study(args.app, args.dataset,
                         n_ranks=args.ranks, n_threads=args.threads)
    print(f"power-control modes for {args.app}/{args.dataset}:")
    for mode, rep in reports.items():
        print(f"  {mode:<7} {fmt_time(rep.elapsed_s):>12}  "
              f"{rep.average_watts:7.1f} W  "
              f"{rep.energy_joules:10.3f} J  "
              f"{rep.gflops_per_watt:7.2f} GF/W")
    return 0


#: Placement grid `repro lint` checks when no --ranks/--threads given:
#: the grid corners plus the paper's sweet spot — enough to exercise
#: every comm topology the apps build without re-tracing all nine points.
_LINT_GRID = [(1, 48), (4, 12), (48, 1)]


def _cmd_lint(args) -> int:
    from repro.analysis import analyze_config
    from repro.core.experiment import ExperimentConfig

    apps = [args.app] if args.app else sorted(SUITE)
    if args.ranks is not None or args.threads is not None:
        grid = [(args.ranks or 4, args.threads or 12)]
    else:
        grid = _LINT_GRID

    cache = None
    if not args.no_cache:
        from repro.analysis.cache import lint_cache_for

        cache = lint_cache_for(args.cache_dir)

    n_errors = 0
    for app in apps:
        for n_ranks, n_threads in grid:
            config = ExperimentConfig(
                app=app, dataset=args.dataset, processor=args.processor,
                n_nodes=args.nodes, n_ranks=n_ranks, n_threads=n_threads,
            )
            report = analyze_config(config, cache=cache)
            if report.ok:
                print(report.summary())
            else:
                print(report.render())
                n_errors += len(report.errors)
    if n_errors:
        print(f"lint: {n_errors} error(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_advise(args) -> int:
    from repro.analysis import advise_config
    from repro.core.experiment import ExperimentConfig
    from repro.runtime.affinity import ProcessAllocation, ThreadBinding

    apps = [args.app] if args.app else sorted(SUITE)
    cluster = catalog.by_name(args.processor, n_nodes=args.nodes)
    if args.ranks is not None or args.threads is not None:
        grid = [(args.ranks or 4, args.threads or 12)]
    else:
        # machine-sized default grid: both corners plus one rank per
        # NUMA domain (4x12 on A64FX), the paper's sweet spot
        cores = cluster.cores_per_node
        n_dom = cluster.node.n_domains
        grid = [(1, cores)]
        if cores % n_dom == 0 and 1 < n_dom < cores:
            grid.append((n_dom, cores // n_dom))
        grid.append((cores, 1))

    cache = None
    if not args.no_cache:
        from repro.analysis.cache import lint_cache_for

        cache = lint_cache_for(args.cache_dir)

    binding = (ThreadBinding("compact") if args.stride == 1
               else ThreadBinding("stride", stride=args.stride))
    reports = []
    n_errors = 0
    for app in apps:
        for n_ranks, n_threads in grid:
            config = ExperimentConfig(
                app=app, dataset=args.dataset, processor=args.processor,
                n_nodes=args.nodes, n_ranks=n_ranks, n_threads=n_threads,
                binding=binding,
                allocation=ProcessAllocation(args.allocation),
                options_preset=args.options,
                data_policy=args.data_policy,
            )
            report = advise_config(config, cache=cache)
            reports.append(report)
            n_errors += len(report.errors)
            shown = report.at_least(args.min_severity)
            if not shown:
                print(f"{report.subject}: clean at severity >= "
                      f"{args.min_severity}")
            else:
                print(report.render(args.min_severity))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump({"reports": [r.to_dict() for r in reports]},
                      fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if n_errors:
        print(f"advise: {n_errors} error(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_validate(args) -> int:
    if getattr(args, "engines", False):
        from repro.validate import validate_engines

        report = validate_engines()
    elif getattr(args, "counters", False):
        from repro.perf import validate_counters

        report = validate_counters()
    elif getattr(args, "advise", False):
        from repro.validate import validate_advise

        report = validate_advise()
    else:
        from repro.validate import validate_diagnostics

        report = validate_diagnostics()
    if getattr(args, "json", None):
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if getattr(args, "advise", False):
        # the advise-clean gate: errors fail, warnings/infos are the
        # recorded-but-expected model observations
        errors = report.errors
        if not errors:
            print(f"{report.subject}: no error-severity findings "
                  f"({len(report.warnings)} warning(s), "
                  f"{len(report.infos)} info(s) recorded)")
            return 0
        print(report.render("error"), file=sys.stderr)
        return 1
    if report.ok:
        print(f"{report.subject}: all consistency checks passed")
        return 0
    print(report.render(), file=sys.stderr)
    return 1


def _cmd_runs(args) -> int:
    import json

    from repro.telemetry.report import list_runs, render_runs

    entries = list_runs(args.results_dir, kind=args.kind,
                        status=args.status, name=args.name)
    if args.latest:
        entries = entries[-1:]
        if not entries:
            print("no recorded runs", file=sys.stderr)
            return 1
        if not args.json:
            # bare id, so `repro reproduce $(repro runs --latest)` works
            print(entries[0].run_id)
            return 0
    if args.json:
        print(json.dumps([e.to_dict() for e in entries],
                         indent=2, sort_keys=True))
        return 0
    print(render_runs(entries))
    return 0


def _report_run(args) -> int:
    """``repro report <run_id>``: summarize one recorded run."""
    import json

    from repro.errors import ConfigurationError
    from repro.telemetry.report import RunReport

    try:
        rep = RunReport.load(args.run_id, args.results_dir)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        with open(args.trace, "w") as fh:
            json.dump(rep.chrome_trace(), fh)
        print(f"wrote {args.trace}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rep.to_dict(), fh, indent=2, sort_keys=True,
                      default=str)
        print(f"wrote {args.json}")
    print(rep.render())
    return 0


def _cmd_reproduce(args) -> int:
    from repro.errors import ReproError
    from repro.telemetry.reproduce import reproduce_run

    try:
        report = reproduce_run(args.run_id, args.results_dir,
                               rtol=args.rtol, atol=args.atol,
                               workers=args.jobs)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    print(report.render())
    return 0 if report.ok else 1


def _cmd_report(args) -> int:
    if args.run_id is not None:
        return _report_run(args)

    from repro.core.reportgen import write_report

    path = write_report(
        args.output,
        include_sweeps=not args.quick,
        include_ablations=not args.quick,
        progress=lambda aid: print(f"  {aid} done"),
        cache=_cache_from_args(args),
        workers=args.jobs,
    )
    print(f"wrote {path}")
    return 0


def _f1_configs(args) -> list:
    """The F1 MPI x OpenMP grid for the app flags — the same config
    list ``repro sweep`` runs, so service jobs dedup against sweeps."""
    from repro.core.experiment import MPI_OMP_CONFIGS, ExperimentConfig

    return [
        ExperimentConfig(app=args.app, dataset=args.dataset,
                         processor=args.processor,
                         n_ranks=n_ranks, n_threads=n_threads)
        for n_ranks, n_threads in MPI_OMP_CONFIGS
    ]


def _print_stream(frames, *, quiet: bool = False) -> int:
    """Render a submit/watch event stream; exit 0 only on a clean
    completed job."""
    final = None
    for frame in frames:
        kind = frame.get("type")
        if kind == "job" and not quiet:
            job = frame.get("job") or {}
            print(f"job {job.get('job_id')} {job.get('state')} "
                  f"({job.get('n_configs')} configs, "
                  f"engine {job.get('engine')})")
        elif kind == "row" and not quiet:
            from repro.service.protocol import parse_row

            _index, row, source = parse_row(frame)
            print(f"  [{source:>8}] {row.config.label():<42} "
                  f"{row.gflops:9.2f} GF/s  {fmt_time(row.elapsed):>10}")
        elif kind == "row-error":
            mark = " (quarantined)" if frame.get("quarantined") else ""
            print(f"  [  failed] config {frame.get('index')}: "
                  f"{frame.get('error')}: {frame.get('message')}{mark}",
                  file=sys.stderr)
        elif kind == "done":
            final = frame.get("job") or {}
    if final is None:
        print("stream ended without a done frame", file=sys.stderr)
        return 1
    print(f"job {final.get('job_id')} {final.get('state')}: "
          f"{final.get('n_done')} row(s), {final.get('n_failed')} failed "
          f"({final.get('n_executed')} executed, "
          f"{final.get('n_dedup_hits')} dedup, "
          f"{final.get('n_cache_hits')} cache)")
    if final.get("error"):
        print(f"  {final.get('error')}", file=sys.stderr)
    return 0 if (final.get("state") == "completed"
                 and not final.get("n_failed")) else 1


def _service_error(exc: Exception) -> int:
    print(f"error: {exc}", file=sys.stderr)
    from repro.errors import ServiceUnavailable

    if isinstance(exc, ServiceUnavailable):
        print("is a server running?  start one with: repro serve",
              file=sys.stderr)
    return 1


def _service_client(args):
    from repro.service.client import ServiceClient

    return ServiceClient(args.socket, timeout_s=args.timeout)


def _cmd_serve(args) -> int:
    from repro.service.server import SweepService

    heartbeat = args.heartbeat if args.heartbeat > 0 else None
    service = SweepService(
        args.socket, cache=_cache_from_args(args), workers=args.jobs,
        max_jobs=args.max_jobs, max_queued=args.max_queued,
        heartbeat_s=heartbeat, exec_timeout_s=args.exec_timeout,
        results_dir=args.results_dir,
        drain_timeout_s=args.drain_timeout)
    resumable = len(service.ledger.incomplete())
    cap = f", max-queued={service.max_queued}" \
        if service.max_queued is not None else ""
    print(f"repro service listening on {service.socket_path} "
          f"(workers={args.jobs}, max-jobs={args.max_jobs}{cap}"
          + (f", resuming {resumable} job(s)" if resumable else "")
          + "); SIGTERM/Ctrl-C drains")
    return service.run()


def _cmd_health(args) -> int:
    from repro.errors import ServiceError

    try:
        with _service_client(args) as client:
            health = client.health()
    except ServiceError as exc:
        return _service_error(exc)
    if args.json:
        import json

        print(json.dumps(health, indent=2, sort_keys=True))
        return 0 if health.get("status") == "ok" else 1
    by_state = health.get("jobs_by_state") or {}
    states = ", ".join(f"{k}={v}" for k, v in sorted(by_state.items())) \
        or "none"
    lag = health.get("ledger_lag_s")
    print(f"status:    {health.get('status')}  "
          f"(pid {health.get('pid')}, v{health.get('version')}, "
          f"up {health.get('uptime_s')}s)")
    print(f"queue:     depth={health.get('queue_depth')} "
          f"running={health.get('running')} "
          f"pending={health.get('pending')} "
          f"max-jobs={health.get('max_jobs')} "
          f"max-queued={health.get('max_queued')}")
    print(f"pool:      {health.get('pool_state')} "
          f"({health.get('inflight_executions')} in-flight execution(s), "
          f"{health.get('watchdog_kills')} watchdog kill(s))")
    print(f"ledger:    lag="
          + ("never appended" if lag is None else f"{lag}s"))
    print(f"jobs:      {states}  "
          f"(rejected={health.get('rejected')}, "
          f"expired={health.get('expired')})")
    return 0 if health.get("status") == "ok" else 1


def _cmd_submit(args) -> int:
    from repro.errors import ServiceError

    configs = _f1_configs(args)
    name = f"f1-{args.app}"
    try:
        with _service_client(args) as client:
            if args.detach:
                job = client.submit(name, configs, engine=args.engine,
                                    priority=args.priority,
                                    deadline_s=args.deadline)
                print(job.get("job_id", ""))
                return 0
            return _print_stream(
                client.stream(name, configs, engine=args.engine,
                              priority=args.priority,
                              deadline_s=args.deadline))
    except ServiceError as exc:
        return _service_error(exc)


def _cmd_jobs(args) -> int:
    from repro.errors import ServiceError

    try:
        with _service_client(args) as client:
            jobs = client.jobs()
            stats = client.status() if args.stats else None
    except ServiceError as exc:
        return _service_error(exc)
    if args.json:
        import json

        print(json.dumps({"jobs": jobs, "stats": stats}
                         if stats is not None else {"jobs": jobs},
                         indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
    for job in jobs:
        done = f"{job.get('n_done')}/{job.get('n_configs')}"
        line = (f"{job.get('job_id'):<34} {job.get('state'):<10} "
                f"{done:>7}  {job.get('engine'):<8} {job.get('name')}")
        if job.get("error"):
            line += f"  [{job['error']}]"
        print(line)
    if stats is not None:
        print(f"server: {stats.get('jobs_total')} job(s), "
              f"{stats.get('executed')} executed, "
              f"{stats.get('dedup_hits')} dedup hit(s), "
              f"{stats.get('cache_hits')} cache hit(s), "
              f"uptime {stats.get('uptime_s')}s")
    return 0


def _cmd_watch(args) -> int:
    from repro.errors import ServiceError

    try:
        with _service_client(args) as client:
            return _print_stream(client.watch(args.job_id))
    except ServiceError as exc:
        return _service_error(exc)


def _cmd_cancel(args) -> int:
    from repro.errors import ServiceError

    try:
        with _service_client(args) as client:
            job = client.cancel(args.job_id)
    except ServiceError as exc:
        return _service_error(exc)
    print(f"job {job.get('job_id')} {job.get('state')}")
    return 0


def _cmd_cache(args) -> int:
    from repro.core.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_cmd == "compact":
        stats = cache.compact(keep_stale=not args.drop_stale)
        print(f"compacted {cache.path}: kept {stats['kept']} record(s), "
              f"dropped {stats['dropped_torn']} torn, "
              f"{stats['dropped_duplicates']} duplicate(s), "
              f"{stats['dropped_stale']} stale "
              f"({stats['bytes_before']} -> {stats['bytes_after']} bytes)")
        return 0
    print(f"{cache.path}: {len(cache)} usable record(s), "
          f"{cache.torn_lines} torn line(s)")
    return 0


def _add_service_client_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="service socket (default: $REPRO_SERVICE_SOCKET or "
             "service.sock beside the default cache directory)")
    parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up if the service stays silent this long")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A64FX / Fiber Miniapp Suite performance evaluation "
                    "framework (CLUSTER 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="show the miniapp suite") \
        .set_defaults(func=_cmd_list_apps)
    sub.add_parser("list-processors", help="show the processor catalog") \
        .set_defaults(func=_cmd_list_processors)

    run = sub.add_parser("run", help="simulate one configuration")
    _add_app_flags(run)
    _add_placement_flags(run)
    run.add_argument("--breakdown", action="store_true",
                     help="print the per-phase time breakdown")
    _add_exec_flags(run, jobs=False)
    run.set_defaults(func=_cmd_run)

    prof = sub.add_parser(
        "profile",
        help="simulate one configuration with the PMU on and print the "
             "fapp-style region / cycle-accounting / roofline report")
    _add_app_flags(prof)
    _add_placement_flags(prof)
    prof.add_argument("--top", type=int, default=None, metavar="N",
                      help="show only the N hottest regions")
    prof.add_argument("--json", default=None, metavar="FILE",
                      help="also write the profile as JSON")
    prof.add_argument("--trace", default=None, metavar="FILE",
                      help="also write a Chrome trace with counter tracks")
    prof.set_defaults(func=_cmd_profile)

    sweep = sub.add_parser("sweep", help="MPI x OpenMP grid for one app")
    _add_app_flags(sweep)
    _add_exec_flags(sweep)
    sweep.add_argument(
        "--resume", action="store_true",
        help="pick up an interrupted sweep: completed rows come from the "
             "persistent cache, repeat-failing configs are quarantined "
             "(requires the cache, i.e. incompatible with --no-cache)")
    sweep.set_defaults(func=_cmd_sweep)

    chaos = sub.add_parser(
        "chaos",
        help="replay deterministic fault-injection campaigns across the "
             "miniapp catalog and check resilience invariants")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (same seed = bit-identical "
                            "campaign)")
    chaos.add_argument("--quick", action="store_true",
                       help="two-app smoke subset (the CI gate)")
    chaos.add_argument("--apps", default=None, metavar="A,B,...",
                       help="comma-separated app subset (default: full "
                            "suite, or the smoke subset with --quick)")
    chaos.add_argument("--processor", default="A64FX",
                       type=_processor_name,
                       choices=sorted(catalog.PROCESSORS))
    chaos.add_argument(
        "--service", action="store_true",
        help="run the sweep-service crash-consistency campaign instead "
             "(torn ledger writes, kills at journaled transitions, torn "
             "frames, hung workers, lapsed deadlines): no accepted job "
             "may be lost or duplicated across crash/restart")
    chaos.add_argument("--json", default=None, metavar="FILE",
                       help="write the campaign report as JSON")
    chaos.add_argument(
        "--engine", default="event",
        choices=["event", "analytic", "auto"],
        help="must be 'event': fault injection needs the event executor "
             "(anything else is rejected rather than silently ignoring "
             "the fault plans)")
    chaos.set_defaults(func=_cmd_chaos)

    fig = sub.add_parser("figure", help="regenerate one paper artifact")
    fig.add_argument("id", help="t1..t2, f1..f10, a1..a5")
    fig.add_argument("--csv", action="store_true", help="also print CSV")
    _add_exec_flags(fig)
    fig.set_defaults(func=_cmd_figure)

    roof = sub.add_parser("roofline", help="roofline placement for one app")
    _add_app_flags(roof)
    roof.set_defaults(func=_cmd_roofline)

    energy = sub.add_parser("energy", help="power-mode study for one app")
    energy.add_argument("--app", required=True, type=_app_name,
                        choices=sorted(SUITE))
    energy.add_argument("--dataset", default="as-is")
    energy.add_argument("--ranks", type=int, default=4)
    energy.add_argument("--threads", type=int, default=12)
    energy.set_defaults(func=_cmd_energy)

    lint = sub.add_parser(
        "lint",
        help="static pre-flight analysis of rank programs and placements")
    lint.add_argument("app", nargs="?", type=_app_name,
                      choices=sorted(SUITE),
                      help="miniapp to lint (default: whole suite)")
    lint.add_argument("--dataset", default="as-is")
    lint.add_argument("--processor", default="A64FX", type=_processor_name,
                      choices=sorted(catalog.PROCESSORS))
    lint.add_argument("--nodes", type=int, default=1)
    lint.add_argument("--ranks", type=int, default=None,
                      help="lint one placement instead of the default grid")
    lint.add_argument("--threads", type=int, default=None)
    lint.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="lint-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    lint.add_argument("--no-cache", action="store_true",
                      help="re-analyze even if a cached verdict exists")
    lint.set_defaults(func=_cmd_lint)

    advise = sub.add_parser(
        "advise",
        help="static performance analysis: where does the model say the "
             "time goes, and which placement choices leave performance "
             "on the table")
    advise.add_argument("app", nargs="?", type=_app_name,
                        choices=sorted(SUITE),
                        help="miniapp to advise on (default: whole suite)")
    advise.add_argument("--dataset", default="as-is")
    advise.add_argument("--processor", default="A64FX",
                        type=_processor_name,
                        choices=sorted(catalog.PROCESSORS))
    advise.add_argument("--nodes", type=int, default=1)
    advise.add_argument("--ranks", type=int, default=None,
                        help="advise one placement instead of the "
                             "default grid")
    advise.add_argument("--threads", type=int, default=None)
    advise.add_argument("--stride", type=int, default=1,
                        help="thread-binding stride (1 = compact)")
    advise.add_argument("--allocation", default="block",
                        choices=["block", "cyclic", "domain-pack",
                                 "spread"])
    advise.add_argument("--options", default="kfast",
                        choices=["as-is", "+simd", "+simd+sched", "tuned",
                                 "kfast"])
    advise.add_argument("--data-policy", default="first-touch",
                        choices=["first-touch", "serial-init"])
    advise.add_argument("--min-severity", default="info",
                        choices=["error", "warning", "info"],
                        help="hide findings below this severity "
                             "(default: show everything)")
    advise.add_argument("--json", default=None, metavar="FILE",
                        help="also write every report as JSON")
    advise.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="advise-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro; shared with the lint cache)")
    advise.add_argument("--no-cache", action="store_true",
                        help="re-analyze even if a cached verdict exists")
    advise.set_defaults(func=_cmd_advise)

    validate = sub.add_parser(
        "validate",
        help="run the model's internal consistency checks")
    validate.add_argument(
        "--counters", action="store_true",
        help="cross-validate the simulated PMU against the analytic "
             "roofline and the executor's work totals (repro.perf)")
    validate.add_argument(
        "--engines", action="store_true",
        help="seeded sim-vs-analytic cross-validation: score every "
             "app's MPI x OpenMP grid analytically and re-simulate a "
             "deterministic sample with the event executor (the CI "
             "analytic-agreement gate)")
    validate.add_argument(
        "--advise", action="store_true",
        help="advisor cleanliness over every catalog machine x miniapp "
             "F1 grid: fails only on error-severity perf findings (the "
             "CI advise-clean gate)")
    validate.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the report as JSON (the CI warning artifact)")
    validate.set_defaults(func=_cmd_validate)

    report = sub.add_parser(
        "report",
        help="regenerate every artifact into one Markdown file, or — "
             "with a run id — summarize one recorded run")
    report.add_argument(
        "run_id", nargs="?", default=None,
        help="recorded run id (or unique prefix): print its metrics, "
             "gate timings, fault events, and slowest configs instead "
             "of generating the Markdown report")
    report.add_argument("-o", "--output", default="REPORT.md")
    report.add_argument("--quick", action="store_true",
                        help="skip the slow sweep artifacts")
    report.add_argument("--json", default=None, metavar="FILE",
                        help="with a run id: also write the full report "
                             "as JSON")
    report.add_argument("--trace", default=None, metavar="FILE",
                        help="with a run id: write the run's spans as a "
                             "Chrome trace (chrome://tracing, Perfetto)")
    _add_exec_flags(report)
    report.set_defaults(func=_cmd_report)

    serve = sub.add_parser(
        "serve",
        help="run the sweep job service: a long-lived server accepting "
             "sweep submissions from many concurrent clients over a "
             "unix socket, with fleet-wide dedup against the shared "
             "result cache")
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket to listen on (default: $REPRO_SERVICE_SOCKET "
             "or service.sock beside the default cache directory)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="event-engine worker processes")
    serve.add_argument("--max-jobs", type=int, default=4, metavar="N",
                       help="jobs executing concurrently; the rest queue "
                            "under the weighted fair-share policy")
    serve.add_argument("--max-queued", type=int, default=None, metavar="N",
                       help="admission cap: reject submissions (typed, "
                            "retryable 'overloaded' error) while N jobs "
                            "are already pending (default: "
                            "$REPRO_SERVICE_MAX_QUEUED, else unbounded)")
    serve.add_argument("--heartbeat", type=float, default=10.0,
                       metavar="SECONDS",
                       help="emit a heartbeat frame on a silent watch "
                            "stream after this long (0 disables)")
    serve.add_argument("--exec-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-execution progress watchdog: kill and "
                            "retry a config attempt exceeding this "
                            "(default: no watchdog)")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="on shutdown, wait at most this long for "
                            "running jobs (default: wait indefinitely)")
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory; also hosts the job ledger, so "
             "jobs survive a server restart (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve from memory only (jobs do not "
                            "survive the process)")
    serve.add_argument("--results-dir", default=None, metavar="DIR",
                       help="telemetry root for per-job run directories")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit one app's MPI x OpenMP sweep to the running "
             "service and stream its rows")
    _add_app_flags(submit)
    _add_service_client_flags(submit)
    submit.add_argument("--engine", default="event",
                        choices=["event", "analytic", "auto"])
    submit.add_argument("--detach", action="store_true",
                        help="print the job id and return immediately "
                             "(reattach with `repro watch <id>`)")
    submit.add_argument("--priority", default="normal",
                        choices=["low", "normal", "high"],
                        help="fair-share weight class (high is picked "
                             "earlier but never starves others)")
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget from submission; the "
                             "job expires instead of running past it")
    submit.set_defaults(func=_cmd_submit)

    health = sub.add_parser(
        "health",
        help="probe the running service: queue depth, pool state, "
             "ledger lag, uptime (exit 0 only on status ok)")
    _add_service_client_flags(health)
    health.add_argument("--json", action="store_true",
                        help="emit the raw health payload as JSON")
    health.set_defaults(func=_cmd_health)

    jobs_cmd = sub.add_parser(
        "jobs", help="list the service's jobs (oldest first)")
    _add_service_client_flags(jobs_cmd)
    jobs_cmd.add_argument("--stats", action="store_true",
                          help="also print server/scheduler statistics")
    jobs_cmd.add_argument("--json", action="store_true",
                          help="emit as JSON")
    jobs_cmd.set_defaults(func=_cmd_jobs)

    watch = sub.add_parser(
        "watch",
        help="attach to a service job and stream its rows (replays "
             "from the start, then follows live)")
    watch.add_argument("job_id", help="job id (or unique prefix)")
    _add_service_client_flags(watch)
    watch.set_defaults(func=_cmd_watch)

    cancel = sub.add_parser("cancel", help="cancel a service job")
    cancel.add_argument("job_id", help="job id (or unique prefix)")
    _add_service_client_flags(cancel)
    cancel.set_defaults(func=_cmd_cancel)

    cache = sub.add_parser(
        "cache", help="inspect or maintain the persistent result cache")
    cache_sub = cache.add_subparsers(dest="cache_cmd")
    compact = cache_sub.add_parser(
        "compact",
        help="rewrite the cache JSONL without torn or duplicate lines "
             "(atomic replace; safe beside a running service)")
    compact.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    compact.add_argument(
        "--drop-stale", action="store_true",
        help="also drop records from other model fingerprints "
             "(older package versions / changed hardware catalogs)")
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    cache.set_defaults(func=_cmd_cache)

    runs = sub.add_parser(
        "runs", help="list recorded runs (see `repro report <run_id>`)")
    runs.add_argument("--results-dir", default=None, metavar="DIR",
                      help="results root (default: $REPRO_RESULTS_DIR "
                           "or ./results)")
    runs.add_argument("--kind", default=None,
                      choices=["sweep", "config", "service-job"],
                      help="only runs of this kind")
    runs.add_argument("--status", default=None,
                      choices=["running", "completed", "failed",
                               "cancelled", "expired"],
                      help="only runs with this final status")
    runs.add_argument("--name", default=None, metavar="SUBSTR",
                      help="only runs whose name contains SUBSTR")
    runs.add_argument("--latest", action="store_true",
                      help="print only the newest matching run id "
                           "(bare, for shell substitution)")
    runs.add_argument("--json", action="store_true",
                      help="emit the run list as JSON")
    runs.set_defaults(func=_cmd_runs)

    reproduce = sub.add_parser(
        "reproduce",
        help="re-execute a recorded run from its manifest and diff the "
             "replay against the recorded rows (non-zero exit on drift)")
    reproduce.add_argument("run_id",
                           help="recorded run id (or unique prefix)")
    reproduce.add_argument("--results-dir", default=None, metavar="DIR",
                           help="results root (default: "
                                "$REPRO_RESULTS_DIR or ./results)")
    reproduce.add_argument("--rtol", type=float, default=1e-9,
                           help="relative tolerance per compared field "
                                "(default 1e-9; 0 = bit-for-bit)")
    reproduce.add_argument("--atol", type=float, default=0.0,
                           help="absolute tolerance per compared field")
    reproduce.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="replay up to N sweep points in parallel")
    reproduce.add_argument("--json", default=None, metavar="FILE",
                           help="also write the drift report as JSON")
    reproduce.set_defaults(func=_cmd_reproduce)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_lint", False):
        from repro.analysis import set_preflight

        set_preflight(False)
    if getattr(args, "no_telemetry", False):
        from repro import telemetry

        telemetry.set_telemetry(False)
    # exec commands route recorded runs via the env so worker processes
    # and nested builders agree on the root; read-side commands (runs /
    # report <id> / reproduce) also take the flag directly
    if getattr(args, "results_dir", None):
        from repro import telemetry

        telemetry.set_results_dir(args.results_dir)
    # exec-flags --advise carries a mode string; validate's --advise is a
    # boolean gate selector — only the former sets the global gate mode
    mode = getattr(args, "advise", None)
    if isinstance(mode, str):
        from repro.analysis import set_advise_mode

        set_advise_mode(mode)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
