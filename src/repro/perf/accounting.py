"""fapp-style cycle accounting and counter/analytic cross-validation.

Three consumers of the simulated PMU live here:

* :func:`cycle_accounting_table` — the stacked per-region breakdown a
  Fujitsu PA report prints: what fraction of each region's cycles the
  FP pipes, L1D, L2, memory, dependence chains and parallel overhead
  account for.  The categories sum to total cycles by construction
  (:mod:`repro.perf.events`); the table asserts it anyway.
* :func:`counter_roofline` / :func:`roofline_crosscheck_table` — place
  each profiled region on the machine roofline *from its counters*
  (flops / memory bytes / core-seconds), next to the analytic
  :func:`repro.core.analysis.kernel_roofline_point` placement.
* :func:`cross_validate_counters` / :func:`validate_counters` — the CI
  gate (``repro validate --counters``).  The tight pass re-derives
  counters from the exact :class:`~repro.kernels.timing.PhaseTiming`
  the analytic roofline used and demands agreement to
  :data:`TIGHT_TOL`; the run-level pass profiles whole miniapp runs and
  checks global conservation (counter flops == executor flops, counter
  memory bytes == executor DRAM bytes, attributed cycles == simulated
  time x frequency) plus roofline agreement to :data:`RUN_TOL`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.compile.compiler import Compiler
from repro.compile.options import PRESETS, CompilerOptions
from repro.core.analysis import kernel_roofline_point, machine_roofline
from repro.core.report import Table
from repro.errors import SimulationError
from repro.machine.topology import Cluster
from repro.perf.events import STALL_CATEGORIES, derive_counters
from repro.perf.profile import Profile, profile_job

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.analysis import RooflinePoint

#: Cycle-accounting categories (alias of the event model's stall
#: categories — one name for writers, one for readers).
CYCLE_CATEGORIES = STALL_CATEGORIES

#: Relative tolerance of the tight (phase-level) cross-validation.  The
#: counter path re-expresses the same PhaseTiming the analytic roofline
#: used, so disagreement here means the re-expression itself drifted.
TIGHT_TOL = 0.02

#: Relative tolerance of the run-level roofline agreement.  Whole runs
#: add fork/join overhead, schedule imbalance, co-resident working-set
#: effects and serial regions the single-phase analytic point does not
#: model, so the band is wider — same spirit as comparing a measured
#: fapp profile against a first-principles roofline.
RUN_TOL = 0.5

#: Relative tolerance of the conservation identities (pure float noise).
_EXACT_TOL = 1e-9


def _rel(a: float, b: float) -> float:
    """Relative difference, safe at zero."""
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(a - b) / scale


# ----------------------------------------------------------------------
# cycle accounting
# ----------------------------------------------------------------------
def cycle_accounting_table(profile: Profile) -> Table:
    """Per-region stacked cycle breakdown (percent per stall category).

    Raises :class:`~repro.errors.SimulationError` if any region's
    categories fail to sum to its total cycles — the conservation
    identity the event model guarantees.
    """
    meta = profile.meta
    t = Table(
        f"cycle accounting: {meta.get('job', '?')} on "
        f"{meta.get('processor', '?')}",
        ["region", "Gcycles"] + [f"{c} %" for c in CYCLE_CATEGORIES],
        note="critical-thread cycles summed over ranks; "
             "categories sum to 100% of each region's cycles",
    )
    regions = sorted(profile.regions().values(),
                     key=lambda rp: -rp.counters.cycles)
    for rp in regions:
        stalls = rp.counters.stall_cycles()
        total = rp.counters.cycles
        if _rel(sum(stalls.values()), total) > _EXACT_TOL:
            raise SimulationError(
                f"cycle accounting broken for region {rp.name!r}: "
                f"categories sum to {sum(stalls.values()):.6e}, "
                f"total is {total:.6e}"
            )
        if total <= 0:
            continue
        t.add(rp.name, total / 1e9,
              *[100.0 * stalls[c] / total for c in CYCLE_CATEGORIES])
    grand = profile.total_counters()
    if grand.cycles > 0:
        stalls = grand.stall_cycles()
        t.add("TOTAL", grand.cycles / 1e9,
              *[100.0 * stalls[c] / grand.cycles for c in CYCLE_CATEGORIES])
    return t


# ----------------------------------------------------------------------
# counter-derived roofline
# ----------------------------------------------------------------------
#: Stall category -> timing-model bound vocabulary.
_STALL_TO_BOUND = {
    "compute": "compute",
    "l1d": "l1",
    "l2": "l2",
    "memory": "dram",
    "dependence": "latency",
    "overhead": "compute",
}


@dataclass(frozen=True)
class CounterRooflinePoint:
    """A region's roofline placement computed purely from its counters.

    Mirrors :class:`repro.core.analysis.RooflinePoint` so the two are
    directly comparable; ``seconds`` is the region's summed-over-ranks
    wall time (the weight for app-level aggregation).
    """

    kernel: str
    arithmetic_intensity: float      # counter flops per counter mem byte
    attainable_gflops: float         # per-core ceiling at that intensity
    achieved_gflops: float           # counter flops / core-seconds
    bound: str                       # dominant stall, in bound vocabulary
    seconds: float

    @property
    def memory_bound(self) -> bool:
        return self.bound in ("dram", "l2", "latency")


def counter_roofline(profile: Profile,
                     cluster: Cluster) -> list[CounterRooflinePoint]:
    """One :class:`CounterRooflinePoint` per profiled compute region."""
    roof = machine_roofline(cluster)
    points = []
    for rp in profile.regions().values():
        c = rp.counters
        if c.flops <= 0:
            continue
        ai = (c.flops / c.mem_bytes) if c.mem_bytes > 0 else float("inf")
        points.append(CounterRooflinePoint(
            kernel=rp.name,
            arithmetic_intensity=ai,
            attainable_gflops=roof.attainable(ai),
            achieved_gflops=rp.per_core_gflops,
            bound=_STALL_TO_BOUND[rp.dominant_stall],
            seconds=rp.seconds_total,
        ))
    return points


def roofline_crosscheck_table(
    profile: Profile,
    cluster: Cluster,
    app,
    dataset: str = "as-is",
    options: CompilerOptions | None = None,
    tol: float = RUN_TOL,
) -> Table:
    """Counter-derived vs analytic roofline, region by region.

    ``app`` is the :class:`~repro.miniapps.base.MiniApp` the profile ran
    (needed to rebuild the analytic points for its kernels).
    """
    ds = app.dataset(dataset)
    analytic = {
        k.name: kernel_roofline_point(k, cluster, options)
        for k in app.kernels(ds).values()
    }
    t = Table(
        f"roofline cross-check: {profile.meta.get('job', '?')} on "
        f"{cluster.name}",
        ["kernel", "AI ctr", "AI model", "GF/s ctr", "GF/s model",
         "ratio", f"within {tol:.0%}"],
        note="ctr = from PMU counters of the profiled run (per core); "
             "model = analytic single-phase roofline placement",
    )
    for pt in sorted(counter_roofline(profile, cluster),
                     key=lambda p: -p.seconds):
        ref = analytic.get(pt.kernel)
        if ref is None:
            continue
        ratio = (pt.achieved_gflops / ref.achieved_gflops
                 if ref.achieved_gflops > 0 else float("inf"))
        ok = (_rel(pt.arithmetic_intensity, ref.arithmetic_intensity) <= tol
              and _rel(pt.achieved_gflops, ref.achieved_gflops) <= tol)
        t.add(pt.kernel, pt.arithmetic_intensity, ref.arithmetic_intensity,
              pt.achieved_gflops, ref.achieved_gflops, ratio,
              "yes" if ok else "NO")
    return t


# ----------------------------------------------------------------------
# cross-validation (the `repro validate --counters` CI gate)
# ----------------------------------------------------------------------
def _phase_for_analysis(kernel, cluster: Cluster,
                        options: CompilerOptions | None):
    """(compiled kernel, core, PhaseTiming) exactly as
    :func:`repro.core.analysis.kernel_roofline_point` computes them."""
    from repro.kernels.timing import phase_time

    dom = cluster.node.chips[0].domains[0]
    opts = options if options is not None else PRESETS["kfast"]
    ck = Compiler(opts).compile(kernel, dom.core)
    pt = phase_time(
        ck, 1e6, dom.core, dom.l1d, dom.l2,
        mem_bandwidth_share=dom.memory.per_stream_bandwidth(dom.n_cores),
        l2_bandwidth_share=dom.l2_bandwidth_share(dom.n_cores),
        mem_latency_s=dom.memory.latency_s,
    )
    return ck, dom.core, pt


def cross_validate_counters(
    cluster: Cluster,
    apps: list[str] | None = None,
    options: CompilerOptions | None = None,
    tol: float = TIGHT_TOL,
) -> DiagnosticReport:
    """Tight phase-level check: counters re-derived from the analytic
    roofline's own PhaseTiming must reproduce its AI and GFLOP/s.

    Emits ``counter-*`` diagnostics; an empty report means the counter
    path is a faithful re-expression of the timing model for every
    kernel of every requested miniapp.
    """
    from repro.miniapps import SUITE, by_name

    report = DiagnosticReport(
        f"counter cross-validation on {cluster.name} (tol {tol:.1%})")
    names = sorted(SUITE) if apps is None else list(apps)
    for app_name in names:
        app = by_name(app_name)
        ds = app.dataset("as-is")
        for kernel in app.kernels(ds).values():
            analytic = kernel_roofline_point(kernel, cluster, options)
            ck, core, phase = _phase_for_analysis(kernel, cluster, options)
            c = derive_counters(ck, core, phase)

            stalls = sum(c.stall_cycles().values())
            if _rel(stalls, c.cycles) > _EXACT_TOL:
                report.add(Diagnostic(
                    check="counter-conservation", severity="error",
                    message=f"{app_name}/{kernel.name}: stall categories "
                            f"sum to {stalls:.6e} cycles, total is "
                            f"{c.cycles:.6e}",
                    hint="the telescoping attribution in "
                         "repro.perf.events.derive_counters lost a term",
                ))
            expected_cycles = phase.seconds * core.freq_hz
            if _rel(c.cycles, expected_cycles) > _EXACT_TOL:
                report.add(Diagnostic(
                    check="counter-conservation", severity="error",
                    message=f"{app_name}/{kernel.name}: {c.cycles:.6e} "
                            f"cycles vs time x frequency "
                            f"{expected_cycles:.6e}",
                    hint="derive_counters disagrees with PhaseTiming.seconds",
                ))

            if c.mem_bytes > 0:
                ai = c.flops / c.mem_bytes
                if _rel(ai, analytic.arithmetic_intensity) > tol:
                    report.add(Diagnostic(
                        check="counter-roofline-ai", severity="error",
                        message=f"{app_name}/{kernel.name}: counter AI "
                                f"{ai:.4f} vs analytic "
                                f"{analytic.arithmetic_intensity:.4f}",
                        hint="memory byte counters drifted from the "
                             "working-set model's DRAM traffic",
                    ))
            gf = (c.flops / (c.cycles / core.freq_hz) / 1e9
                  if c.cycles > 0 else 0.0)
            if _rel(gf, analytic.achieved_gflops) > tol:
                report.add(Diagnostic(
                    check="counter-roofline-gflops", severity="error",
                    message=f"{app_name}/{kernel.name}: counter "
                            f"{gf:.2f} GF/s vs analytic "
                            f"{analytic.achieved_gflops:.2f}",
                    hint="flop or cycle counters drifted from the ECM "
                         "timing the roofline placed",
                ))
    return report


def _run_level_checks(cluster: Cluster, app_name: str,
                      n_ranks: int, n_threads: int,
                      tol: float) -> list[Diagnostic]:
    """Profile one whole run and check the global conservation laws."""
    from repro.miniapps import by_name
    from repro.runtime.placement import JobPlacement

    diags: list[Diagnostic] = []
    app = by_name(app_name)
    placement = JobPlacement(cluster, n_ranks, n_threads)
    result, profile = profile_job(app.build_job(cluster, placement, "as-is"))
    total = profile.total_counters()

    if _rel(total.flops, result.total_flops) > 1e-6:
        diags.append(Diagnostic(
            check="counter-flops-conservation", severity="error",
            message=f"{app_name}: counter flops {total.flops:.6e} vs "
                    f"executor total {result.total_flops:.6e}",
            hint="a compute region was counted twice or missed by the "
                 "profiling hooks",
        ))
    if _rel(total.mem_bytes, result.total_dram_bytes) > 1e-6:
        diags.append(Diagnostic(
            check="counter-bytes-conservation", severity="error",
            message=f"{app_name}: counter memory bytes "
                    f"{total.mem_bytes:.6e} vs executor DRAM total "
                    f"{result.total_dram_bytes:.6e}",
            hint="read/write byte attribution no longer sums to the "
                 "region's DRAM traffic",
        ))
    for rank, finish in result.rank_finish.items():
        expected = finish * profile.rank_freq[rank]
        got = profile.attributed_cycles(rank)
        if _rel(got, expected) > 1e-6:
            diags.append(Diagnostic(
                check="counter-cycle-conservation", severity="error",
                rank=rank,
                message=f"{app_name}: rank {rank} attributes {got:.6e} "
                        f"cycles, simulated time x frequency is "
                        f"{expected:.6e}",
                hint="an executor interval (compute/wait/io/sleep) is "
                     "not reaching the profile sink",
            ))

    # Roofline agreement at run level: time-weighted achieved GF/s of the
    # profiled regions vs the analytic points of the same kernels.
    ds = app.dataset("as-is")
    analytic = {
        k.name: kernel_roofline_point(k, cluster)
        for k in app.kernels(ds).values()
    }
    points = counter_roofline(profile, cluster)
    weight = sum(p.seconds for p in points if p.kernel in analytic)
    if weight > 0:
        got_gf = sum(p.achieved_gflops * p.seconds
                     for p in points if p.kernel in analytic) / weight
        ref_gf = sum(analytic[p.kernel].achieved_gflops * p.seconds
                     for p in points if p.kernel in analytic) / weight
        if _rel(got_gf, ref_gf) > tol:
            diags.append(Diagnostic(
                check="counter-roofline-run", severity="error",
                message=f"{app_name}: run-level counter roofline "
                        f"{got_gf:.2f} GF/s/core vs analytic "
                        f"{ref_gf:.2f} (tol {tol:.0%})",
                hint="profiled runs should land near the analytic "
                     "roofline; a placement/contention regression moved "
                     "them",
            ))
    return diags


def validate_counters(apps: list[str] | None = None,
                      run_tol: float = RUN_TOL) -> DiagnosticReport:
    """The full counter gate: tight phase-level cross-validation on the
    A64FX plus run-level conservation for every miniapp.

    ``repro validate --counters`` renders this report and CI fails on
    any error in it.
    """
    from repro.machine import catalog
    from repro.miniapps import SUITE

    cluster = catalog.a64fx()
    report = cross_validate_counters(cluster, apps)
    report.subject = (f"counter validation on {cluster.name} "
                      f"(tight {TIGHT_TOL:.0%}, run {run_tol:.0%})")
    names = sorted(SUITE) if apps is None else list(apps)
    for app_name in names:
        report.extend(_run_level_checks(cluster, app_name, 4, 12, run_tol))
    return report
