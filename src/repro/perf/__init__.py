"""Simulated performance-monitoring-unit (PMU) and profiling subsystem.

The paper's analysis rests on *counter-based* evidence — Fujitsu PA/fapp
reports of flops, SVE lane utilization, cache-miss traffic and per-CMG
memory bytes — while the simulator natively emits only end-to-end times.
This package closes that gap with a simulated PMU:

* :mod:`repro.perf.events` — the counter model.  Per-kernel-execution
  :class:`KernelCounters` (cycles by stall category, committed
  instructions, SVE flops by precision, lane utilization, cache-miss
  bytes, memory read/write bytes) are *derived* from the ECM timing
  breakdown the simulator already computed, so counters and times can
  never disagree silently.
* :mod:`repro.perf.profile` — the collection layer.  A
  :class:`ProfileSink` receives instrumentation callbacks from
  :mod:`repro.runtime.executor` / :mod:`repro.runtime.mpi` and aggregates
  them per (rank, region); :class:`NullSink` and the default ``None``
  sink make profiling free when off.  :func:`profile_job` is the
  one-liner entry point.
* :mod:`repro.perf.accounting` — fapp-style reporting: per-region cycle
  accounting whose categories sum to total cycles, counter-derived
  roofline points, and the cross-validation pass that checks the counter
  path against the analytic roofline (:mod:`repro.core.analysis`).
"""

from repro.perf.accounting import (
    CYCLE_CATEGORIES,
    CounterRooflinePoint,
    counter_roofline,
    cross_validate_counters,
    cycle_accounting_table,
    roofline_crosscheck_table,
    validate_counters,
)
from repro.perf.events import STALL_CATEGORIES, KernelCounters, derive_counters
from repro.perf.profile import (
    NullSink,
    Profile,
    ProfileSink,
    RegionProfile,
    profile_job,
    profile_summary_table,
    region_table,
)

__all__ = [
    "CYCLE_CATEGORIES",
    "STALL_CATEGORIES",
    "CounterRooflinePoint",
    "KernelCounters",
    "NullSink",
    "Profile",
    "ProfileSink",
    "RegionProfile",
    "counter_roofline",
    "cross_validate_counters",
    "cycle_accounting_table",
    "derive_counters",
    "profile_job",
    "profile_summary_table",
    "region_table",
    "roofline_crosscheck_table",
    "validate_counters",
]
