"""The simulated PMU event model.

One :class:`KernelCounters` record holds the counter deltas one kernel
execution (one :class:`~repro.runtime.program.Compute` region on one
rank) would increment on a hardware PMU — the same vocabulary a Fujitsu
PA / fapp report prints for an A64FX:

* **cycles by stall category** — compute (FP/integer pipes busy), L1D
  busy, L2 busy, memory busy, dependence-chain (latency exposure), and
  parallel overhead (fork/join, scheduling chunks);
* **committed instructions** — vector FP, scalar FP, load/store, integer,
  and loop-control estimates;
* **SVE flops by precision** (fp64 / fp32) and **lane utilization**;
* **cache traffic** — L1D miss bytes, L2 miss bytes;
* **memory read/write bytes** per region (attributed to CMGs by the
  profile layer).

Every field is *derived* from the :class:`~repro.kernels.timing.PhaseTiming`
the ECM model already produced for the region's critical thread, plus the
compiled kernel's static properties.  That is the design invariant of the
subsystem: counters are a re-expression of the timing model, not a second
model, so counter-derived and time-derived metrics cannot silently
disagree (the cross-validation in :mod:`repro.perf.accounting` checks the
re-expression is faithful).

Cycle-accounting identity
-------------------------
The ECM form ``T = max(T_comp, T_L1, T_L2, T_mem) + T_latency`` is
attributed hierarchically: compute cycles are ``T_comp``; each level's
stall is the *additional* time it needs beyond everything nearer the
core (``stall_L1 = max(T_comp, T_L1) - T_comp`` and so on).  The
telescoping sum reproduces the max exactly, so

    compute + l1d + l2 + memory + dependence + overhead == total cycles

holds to float precision for every region — the property the conservation
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.kernels.timing import PhaseTiming
from repro.machine.core import CoreSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.compile.compiler import CompiledKernel

#: Stall categories of the cycle accounting, in distance-from-core order.
STALL_CATEGORIES = ("compute", "l1d", "l2", "memory", "dependence", "overhead")

#: Loop-control instructions (index update + compare + branch fused)
#: charged per iteration in the committed-instruction estimate.
_LOOP_OVERHEAD_INSTRS = 2.0

#: Fraction of byte-SIMD lanes that materialize for vectorized integer
#: work — must match the figure :func:`repro.kernels.timing.phase_time`
#: times with.
_INT_LANE_EFFICIENCY = 0.4


@dataclass(frozen=True, slots=True)
class KernelCounters:
    """Counter deltas of one kernel execution (or a sum of executions).

    Cycle fields are *critical-thread* cycles (what a PMU on the region's
    slowest thread reads — wall-clock-like, so they reconcile against
    simulated time x frequency).  Work fields (instructions, flops,
    bytes) are *region totals* over all threads.
    """

    # -- cycles, by stall category (critical thread) -------------------
    cycles: float = 0.0
    cycles_compute: float = 0.0
    cycles_l1d: float = 0.0
    cycles_l2: float = 0.0
    cycles_memory: float = 0.0
    cycles_dependence: float = 0.0
    cycles_overhead: float = 0.0
    # -- committed instructions (all threads) --------------------------
    instructions: float = 0.0
    sve_ops: float = 0.0             # vector FP instructions
    sve_active_lanes: float = 0.0    # sum of active lanes over sve_ops
    sve_lane_slots: float = 0.0      # sum of native lanes over sve_ops
    # -- floating-point work by precision (all threads) ----------------
    fp64_flops: float = 0.0
    fp32_flops: float = 0.0
    # -- data movement (all threads) -----------------------------------
    l1d_miss_bytes: float = 0.0
    l2_miss_bytes: float = 0.0
    mem_read_bytes: float = 0.0
    mem_write_bytes: float = 0.0

    # ------------------------------------------------------------------
    @property
    def flops(self) -> float:
        """Total floating-point operations, both precisions."""
        return self.fp64_flops + self.fp32_flops

    @property
    def mem_bytes(self) -> float:
        """Total main-memory traffic (reads + writes)."""
        return self.mem_read_bytes + self.mem_write_bytes

    @property
    def sve_lane_utilization(self) -> float:
        """Mean fraction of native SIMD lanes active per vector op.

        1.0 means every vector instruction filled the full native vector
        length; below 1.0 reflects SVE vector-length capping (and, on
        hardware, predication).  0 when no vector work committed.
        """
        if self.sve_lane_slots <= 0:
            return 0.0
        return self.sve_active_lanes / self.sve_lane_slots

    def stall_cycles(self) -> dict[str, float]:
        """Cycles per stall category (sums to :attr:`cycles`)."""
        return {
            "compute": self.cycles_compute,
            "l1d": self.cycles_l1d,
            "l2": self.cycles_l2,
            "memory": self.cycles_memory,
            "dependence": self.cycles_dependence,
            "overhead": self.cycles_overhead,
        }

    def __add__(self, other: "KernelCounters") -> "KernelCounters":
        if not isinstance(other, KernelCounters):
            return NotImplemented
        return KernelCounters(*[
            getattr(self, f.name) + getattr(other, f.name)
            for f in fields(KernelCounters)
        ])

    def to_dict(self) -> dict[str, float]:
        """Flat dict (dataclass fields + derived metrics) for JSON export."""
        out = {f.name: getattr(self, f.name) for f in fields(KernelCounters)}
        out["flops"] = self.flops
        out["mem_bytes"] = self.mem_bytes
        out["sve_lane_utilization"] = self.sve_lane_utilization
        return out


def _committed_instructions(
    ck: "CompiledKernel", core: CoreSpec, iters: float
) -> tuple[float, float, float, float]:
    """(total instructions, sve_ops, active-lane sum, lane-slot sum).

    A throughput-model estimate of what the commit counters would read:
    FP work at ``(fma/2 + (1-fma))`` instructions per flop (an FMA commits
    two flops), split vector/scalar by the achieved vectorization
    fraction; loads/stores at one vector register per contiguous access
    and one element per gather; integer work on the scalar side unless
    byte-SIMD vectorized; plus loop control.
    """
    k = ck.kernel
    f = k.fma_fraction
    instr_per_flop = f / 2.0 + (1.0 - f)

    native_lanes = max(1, core.simd_bits // (k.element_bytes * 8))
    used_lanes = max(1, ck.simd_bits_used // (k.element_bytes * 8))

    vec_flops = k.flops * ck.vec_fraction_achieved * iters
    scalar_flops = k.flops * iters - vec_flops
    sve_ops = vec_flops * instr_per_flop / used_lanes
    scalar_fp_instr = scalar_flops * instr_per_flop

    ls_instr = 0.0
    total_bytes = k.bytes_total * iters
    if total_bytes > 0:
        vec_bytes = max(1.0, ck.simd_bits_used / 8.0)
        contiguous = total_bytes * k.contiguous_fraction
        gathered = total_bytes - contiguous
        ls_instr = contiguous / vec_bytes + gathered / k.element_bytes

    int_instr = 0.0
    if k.int_ops > 0:
        int_lanes = (
            max(1.0, core.simd_lanes_fp64 * _INT_LANE_EFFICIENCY)
            if ck.int_vectorized else 1.0
        )
        int_instr = k.int_ops * iters / int_lanes

    total = (sve_ops + scalar_fp_instr + ls_instr + int_instr
             + _LOOP_OVERHEAD_INSTRS * iters)
    return total, sve_ops, sve_ops * used_lanes, sve_ops * native_lanes


def derive_counters(
    ck: "CompiledKernel",
    core: CoreSpec,
    phase: PhaseTiming,
    *,
    total_iters: float | None = None,
    overhead_seconds: float = 0.0,
    wall_seconds: float | None = None,
) -> KernelCounters:
    """Counters for one region from its critical thread's ECM timing.

    Parameters
    ----------
    phase:
        The critical thread's :class:`PhaseTiming` (carries the per-level
        time components and byte traffic for ``phase.iters`` iterations).
    total_iters:
        The region's total iteration count over all threads; work
        counters (instructions, flops, bytes) scale from the phase by
        ``total_iters / phase.iters``.  Default: the phase's own count
        (single-thread semantics, used by the roofline cross-validation).
    overhead_seconds:
        Fork/join + scheduling overhead to book under the ``overhead``
        stall category.
    wall_seconds:
        The region's actual wall time when it differs from
        ``phase.seconds + overhead_seconds`` (e.g. straggler-node
        slowdown injection).  All cycle categories are rescaled
        proportionally so the accounting identity still holds.
    """
    if overhead_seconds < 0:
        raise ConfigurationError("overhead_seconds must be non-negative")
    freq = core.freq_hz

    derived_wall = phase.seconds + overhead_seconds
    if derived_wall <= 0.0:
        return KernelCounters()
    scale = 1.0 if wall_seconds is None else wall_seconds / derived_wall
    if scale < 0:
        raise ConfigurationError("wall_seconds must be non-negative")

    # Hierarchical stall attribution (see module docstring): the
    # telescoping maxima reproduce max(components) exactly.
    comp = phase.components
    t_compute = comp.get("compute", 0.0)
    m1 = max(t_compute, comp.get("l1", 0.0))
    m2 = max(m1, comp.get("l2", 0.0))
    m3 = max(m2, comp.get("dram", 0.0))
    cyc = freq * scale
    cycles_compute = t_compute * cyc
    cycles_l1d = (m1 - t_compute) * cyc
    cycles_l2 = (m2 - m1) * cyc
    cycles_memory = (m3 - m2) * cyc
    cycles_dependence = comp.get("latency", 0.0) * cyc
    cycles_overhead = overhead_seconds * cyc
    total_cycles = (cycles_compute + cycles_l1d + cycles_l2 + cycles_memory
                    + cycles_dependence + cycles_overhead)

    # Work counters: region totals, scaled from the critical thread's
    # share of the iteration space.
    if total_iters is None:
        work_scale = 1.0
        iters = phase.iters
    elif phase.iters > 0:
        work_scale = total_iters / phase.iters
        iters = total_iters
    else:
        work_scale = 0.0
        iters = 0.0

    instructions, sve_ops, active_lanes, lane_slots = \
        _committed_instructions(ck, core, iters)

    k = ck.kernel
    flops_total = phase.flops * work_scale
    fp64 = flops_total if k.element_bytes == 8 else 0.0
    fp32 = flops_total if k.element_bytes == 4 else 0.0

    mem_bytes = phase.dram_bytes * work_scale
    read_fraction = (k.bytes_load / k.bytes_total) if k.bytes_total > 0 else 0.0

    return KernelCounters(
        cycles=total_cycles,
        cycles_compute=cycles_compute,
        cycles_l1d=cycles_l1d,
        cycles_l2=cycles_l2,
        cycles_memory=cycles_memory,
        cycles_dependence=cycles_dependence,
        cycles_overhead=cycles_overhead,
        instructions=instructions,
        sve_ops=sve_ops,
        sve_active_lanes=active_lanes,
        sve_lane_slots=lane_slots,
        fp64_flops=fp64,
        fp32_flops=fp32,
        l1d_miss_bytes=phase.l2_bytes * work_scale,
        l2_miss_bytes=phase.dram_bytes * work_scale,
        mem_read_bytes=mem_bytes * read_fraction,
        mem_write_bytes=mem_bytes * (1.0 - read_fraction),
    )
