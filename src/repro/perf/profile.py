"""Counter collection and aggregation — the profiling half of the PMU.

:class:`ProfileSink` is the object the runtime's instrumentation hooks
talk to.  The executor calls it (when attached to a job via
``Job.perf_sink``) on every compute region, blocking wait, I/O transfer
and sleep; the simulated MPI layer reports message deliveries and
collectives.  Counters are aggregated *on the fly* per (rank, region) —
memory stays bounded no matter how many iterations a skeleton runs.

Profiling off is the default (``Job.perf_sink is None``) and costs one
attribute load + ``is not None`` test per operation — the no-overhead
guarantee the F1 sweep benchmark checks.  :class:`NullSink` is the
explicit no-op implementation for callers that want a sink-shaped
object unconditionally.

:func:`profile_job` is the convenience entry point::

    result, profile = profile_job(app.build_job(cluster, placement))
    print(region_table(profile).render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.report import Table
from repro.errors import SimulationError
from repro.perf.events import KernelCounters, derive_counters

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.compile.compiler import CompiledKernel
    from repro.runtime.executor import Job, RegionTiming, RunResult
    from repro.runtime.program import Compute

#: Wait categories the runtime attributes blocked time to.
WAIT_CATEGORIES = ("p2p", "collective", "io", "sleep")


class NullSink:
    """A sink that drops everything — the explicit 'profiling off' object.

    Also the base class of :class:`ProfileSink`, so it doubles as the
    documentation of the instrumentation protocol the runtime speaks.
    """

    __slots__ = ()

    def begin_run(self, job: "Job") -> None:
        """Called once by :func:`~repro.runtime.executor.run_job` before
        the first event fires."""

    def on_compute(self, rank: int, op: "Compute", timing: "RegionTiming",
                   ck: "CompiledKernel", start: float) -> None:
        """One compute region finished timing on ``rank``."""

    def on_wait(self, rank: int, category: str, label: str,
                start: float, end: float) -> None:
        """``rank`` spent ``[start, end]`` blocked in ``category``
        (p2p / collective / io / sleep)."""

    def on_message(self, src: int, dst: int, size_bytes: float) -> None:
        """The MPI layer delivered one point-to-point message."""

    def on_collective(self, comm: str, op_name: str, size_bytes: float,
                      n_members: int, seconds: float) -> None:
        """A collective completed on communicator ``comm``."""

    def end_run(self, result: "RunResult") -> None:
        """Called once after the event heap drained."""


class _RegionAcc:
    """Mutable per-(rank, region) accumulator."""

    __slots__ = ("calls", "seconds", "threads", "phase", "counters")

    def __init__(self, phase: str) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.threads = 1
        self.phase = phase
        self.counters = KernelCounters()


@dataclass(frozen=True)
class RegionProfile:
    """Aggregated view of one region (kernel) across ranks.

    ``seconds_max`` is the per-rank maximum (critical-path-like);
    ``seconds_total`` sums over ranks (CPU-time-like).  ``counters`` are
    summed over ranks: cycle fields are critical-thread cycles per rank,
    work fields are whole-region totals.
    """

    name: str
    phase: str                 # "compute" | "serial"
    calls: int
    ranks: int
    threads: int               # max thread count observed
    seconds_total: float
    seconds_max: float
    counters: KernelCounters

    @property
    def gflops_rate(self) -> float:
        """Aggregate GFLOP/s while the region runs (all ranks)."""
        if self.seconds_max <= 0:
            return 0.0
        return self.counters.flops / self.seconds_max / 1e9

    @property
    def mem_gbytes_rate(self) -> float:
        """Aggregate memory GB/s while the region runs (all ranks)."""
        if self.seconds_max <= 0:
            return 0.0
        return self.counters.mem_bytes / self.seconds_max / 1e9

    @property
    def per_core_gflops(self) -> float:
        """Per-core GFLOP/s from counters: flops / core-seconds.

        Core-seconds are critical-thread cycles x thread count, summed
        over ranks — the counter-derived y-coordinate of the roofline
        cross-check.
        """
        core_seconds = self.seconds_total * self.threads
        if core_seconds <= 0:
            return 0.0
        return self.counters.flops / core_seconds / 1e9

    @property
    def arithmetic_intensity(self) -> float:
        """Counter-derived FLOPs per byte of memory traffic."""
        if self.counters.mem_bytes <= 0:
            return float("inf")
        return self.counters.flops / self.counters.mem_bytes

    @property
    def dominant_stall(self) -> str:
        """The stall category holding the most cycles."""
        stalls = self.counters.stall_cycles()
        return max(stalls, key=stalls.__getitem__)


class ProfileSink(NullSink):
    """Collects counters per (rank, region) during one simulated run."""

    __slots__ = ("_regions", "_waits", "_rank_core", "_rank_cmg",
                 "_msg_count", "_msg_bytes", "_collectives", "_cmg_rw",
                 "_meta", "_result")

    def __init__(self) -> None:
        self._regions: dict[tuple[int, str], _RegionAcc] = {}
        self._waits: dict[tuple[int, str], float] = {}
        self._rank_core: dict[int, object] = {}
        self._rank_cmg: dict[int, int] = {}
        self._msg_count: dict[int, int] = {}
        self._msg_bytes: dict[int, float] = {}
        self._collectives: dict[str, int] = {}
        self._cmg_rw: dict[int, list[float]] = {}
        self._meta: dict[str, object] = {}
        self._result = None

    # -- instrumentation protocol --------------------------------------
    def begin_run(self, job: "Job") -> None:
        placement = job.placement
        cluster = job.cluster
        for rank in range(placement.n_ranks):
            addr = placement.thread_cores(rank)[0]
            self._rank_core[rank] = cluster.domain_spec(addr).core
            self._rank_cmg[rank] = cluster.node_global_domain(addr) \
                + addr.node * cluster.domains_per_node
        self._meta = {
            "job": job.name,
            "processor": cluster.name,
            "placement": placement.describe(),
            "n_ranks": placement.n_ranks,
            "n_threads": placement.threads_per_rank,
        }

    def on_compute(self, rank: int, op: "Compute", timing: "RegionTiming",
                   ck: "CompiledKernel", start: float) -> None:
        if timing.worst is None:
            raise SimulationError(
                f"region {op.kernel!r} carries no PhaseTiming detail; "
                "the OpenMP layer must attach RegionTiming.worst"
            )
        core = self._rank_core[rank]
        counters = derive_counters(
            ck, core, timing.worst,
            total_iters=op.iters,
            overhead_seconds=timing.overhead_seconds,
            wall_seconds=timing.seconds,
        )
        key = (rank, op.kernel)
        acc = self._regions.get(key)
        if acc is None:
            acc = self._regions[key] = _RegionAcc(
                "serial" if op.serial else "compute")
        acc.calls += 1
        acc.seconds += timing.seconds
        acc.threads = max(acc.threads, timing.n_threads)
        acc.counters = acc.counters + counters
        cmg = self._rank_cmg[rank]
        rw = self._cmg_rw.get(cmg)
        if rw is None:
            rw = self._cmg_rw[cmg] = [0.0, 0.0]
        rw[0] += counters.mem_read_bytes
        rw[1] += counters.mem_write_bytes

    def on_wait(self, rank: int, category: str, label: str,
                start: float, end: float) -> None:
        key = (rank, category)
        self._waits[key] = self._waits.get(key, 0.0) + (end - start)

    def on_message(self, src: int, dst: int, size_bytes: float) -> None:
        self._msg_count[src] = self._msg_count.get(src, 0) + 1
        self._msg_bytes[src] = self._msg_bytes.get(src, 0.0) + size_bytes

    def on_collective(self, comm: str, op_name: str, size_bytes: float,
                      n_members: int, seconds: float) -> None:
        self._collectives[op_name] = self._collectives.get(op_name, 0) + 1

    def end_run(self, result: "RunResult") -> None:
        self._result = result

    # ------------------------------------------------------------------
    def profile(self) -> "Profile":
        """Freeze the accumulated counters into a :class:`Profile`."""
        if self._result is None:
            raise SimulationError(
                "profile() before the run completed (end_run not called)"
            )
        return Profile(
            meta=dict(self._meta),
            elapsed=self._result.elapsed,
            rank_finish=dict(self._result.rank_finish),
            rank_freq={r: c.freq_hz for r, c in self._rank_core.items()},
            rank_regions={
                key: RegionProfile(
                    name=key[1], phase=acc.phase, calls=acc.calls, ranks=1,
                    threads=acc.threads, seconds_total=acc.seconds,
                    seconds_max=acc.seconds, counters=acc.counters,
                )
                for key, acc in self._regions.items()
            },
            waits=dict(self._waits),
            messages_sent=dict(self._msg_count),
            bytes_sent=dict(self._msg_bytes),
            collectives=dict(self._collectives),
            cmg_memory_bytes={
                cmg: (rw[0], rw[1]) for cmg, rw in self._cmg_rw.items()
            },
        )


@dataclass(frozen=True)
class Profile:
    """The result of one profiled run — the simulator's fapp report data."""

    meta: dict
    elapsed: float
    rank_finish: dict[int, float]
    rank_freq: dict[int, float]
    #: (rank, region) -> single-rank RegionProfile
    rank_regions: dict[tuple[int, str], RegionProfile]
    #: (rank, category) -> blocked seconds
    waits: dict[tuple[int, str], float]
    messages_sent: dict[int, int]
    bytes_sent: dict[int, float]
    collectives: dict[str, int]
    #: run-global CMG index -> (read bytes, write bytes)
    cmg_memory_bytes: dict[int, tuple[float, float]] = field(
        default_factory=dict)

    # ------------------------------------------------------------------
    def regions(self) -> dict[str, RegionProfile]:
        """Regions aggregated over ranks, in first-seen order."""
        out: dict[str, dict] = {}
        for (rank, name), rp in self.rank_regions.items():
            agg = out.get(name)
            if agg is None:
                agg = out[name] = {
                    "phase": rp.phase, "calls": 0, "ranks": 0, "threads": 1,
                    "seconds_total": 0.0, "seconds_max": 0.0,
                    "counters": KernelCounters(),
                }
            agg["calls"] += rp.calls
            agg["ranks"] += 1
            agg["threads"] = max(agg["threads"], rp.threads)
            agg["seconds_total"] += rp.seconds_total
            agg["seconds_max"] = max(agg["seconds_max"], rp.seconds_total)
            agg["counters"] = agg["counters"] + rp.counters
        return {
            name: RegionProfile(name=name, **agg) for name, agg in out.items()
        }

    def total_counters(self) -> KernelCounters:
        """Every region's counters summed — the whole-run PMU totals."""
        total = KernelCounters()
        for rp in self.rank_regions.values():
            total = total + rp.counters
        return total

    def wait_seconds(self, category: str, rank: int | None = None) -> float:
        """Blocked seconds in a category, for one rank or summed."""
        if rank is not None:
            return self.waits.get((rank, category), 0.0)
        return sum(v for (_, cat), v in self.waits.items() if cat == category)

    def attributed_seconds(self, rank: int) -> float:
        """Seconds the accounting attributes to ``rank`` (regions + waits).

        Conservation: equals ``rank_finish[rank]`` to float precision —
        every interval of a rank's timeline is attributed exactly once.
        """
        regions = sum(
            rp.seconds_total for (r, _), rp in self.rank_regions.items()
            if r == rank
        )
        waits = sum(v for (r, _), v in self.waits.items() if r == rank)
        return regions + waits

    def attributed_cycles(self, rank: int) -> float:
        """Total cycles attributed to ``rank`` (compute + wait cycles)."""
        freq = self.rank_freq[rank]
        cycles = sum(
            rp.counters.cycles for (r, _), rp in self.rank_regions.items()
            if r == rank
        )
        waits = sum(v for (r, _), v in self.waits.items() if r == rank)
        return cycles + waits * freq

    def to_json(self) -> dict:
        """JSON-serializable export (``repro profile --json``)."""
        return {
            "meta": dict(self.meta),
            "elapsed_s": self.elapsed,
            "regions": {
                name: {
                    "phase": rp.phase,
                    "calls": rp.calls,
                    "ranks": rp.ranks,
                    "threads": rp.threads,
                    "seconds_total": rp.seconds_total,
                    "seconds_max": rp.seconds_max,
                    "gflops_rate": rp.gflops_rate,
                    "mem_gbytes_rate": rp.mem_gbytes_rate,
                    "arithmetic_intensity":
                        None if rp.counters.mem_bytes <= 0
                        else rp.arithmetic_intensity,
                    "dominant_stall": rp.dominant_stall,
                    "counters": rp.counters.to_dict(),
                }
                for name, rp in self.regions().items()
            },
            "waits_s": {
                cat: self.wait_seconds(cat) for cat in WAIT_CATEGORIES
            },
            "messages_sent": sum(self.messages_sent.values()),
            "bytes_sent": sum(self.bytes_sent.values()),
            "collectives": dict(self.collectives),
            "cmg_memory_bytes": {
                str(cmg): {"read": rw[0], "write": rw[1]}
                for cmg, rw in sorted(self.cmg_memory_bytes.items())
            },
        }


def profile_job(job: "Job") -> tuple["RunResult", Profile]:
    """Run ``job`` with a fresh :class:`ProfileSink` attached.

    Returns the ordinary :class:`~repro.runtime.executor.RunResult` plus
    the :class:`Profile`.  The job's own ``perf_sink`` is not modified
    (a replaced copy is simulated).
    """
    import dataclasses

    from repro.runtime.executor import run_job

    sink = ProfileSink()
    result = run_job(dataclasses.replace(job, perf_sink=sink))
    return result, sink.profile()


# ----------------------------------------------------------------------
# fapp-style region report
# ----------------------------------------------------------------------
def region_table(profile: Profile, top: int | None = None) -> Table:
    """The fapp-style per-region report.

    One row per kernel region (sorted by time, optionally truncated to
    ``top``), then one ``[category]`` row per wait category.  ``time ms``
    is the slowest rank's total; ``%`` is its share of elapsed time.
    """
    meta = profile.meta
    t = Table(
        f"profile: {meta.get('job', '?')} on {meta.get('processor', '?')} "
        f"({meta.get('n_ranks', '?')}x{meta.get('n_threads', '?')}, "
        f"{profile.elapsed * 1e3:.3f} ms)",
        ["region", "calls", "time ms", "%", "GF/s", "mem GB/s",
         "SVE util %", "L2-miss MB", "top stall"],
        note="time = slowest rank; GF/s + GB/s aggregate over ranks; "
             "counters derived from the ECM timing model",
    )
    regions = sorted(profile.regions().values(),
                     key=lambda rp: -rp.seconds_max)
    if top is not None:
        regions = regions[:top]
    elapsed = profile.elapsed if profile.elapsed > 0 else 1.0
    for rp in regions:
        t.add(
            rp.name,
            rp.calls,
            rp.seconds_max * 1e3,
            100.0 * rp.seconds_max / elapsed,
            rp.gflops_rate,
            rp.mem_gbytes_rate,
            100.0 * rp.counters.sve_lane_utilization,
            rp.counters.l2_miss_bytes / 1e6,
            rp.dominant_stall,
        )
    n_ranks = max(1, int(meta.get("n_ranks", 1)))
    for cat in WAIT_CATEGORIES:
        per_rank = [profile.wait_seconds(cat, r) for r in range(n_ranks)]
        worst = max(per_rank, default=0.0)
        if worst <= 0:
            continue
        t.add(f"[{cat}]", "-", worst * 1e3, 100.0 * worst / elapsed,
              0.0, 0.0, 0.0, 0.0, "-")
    return t


def profile_summary_table(app: str = "ccs-qcd", dataset: str = "as-is",
                          processor: str = "A64FX", n_ranks: int = 4,
                          n_threads: int = 12) -> Table:
    """Profile one representative configuration and return the region
    report — the ``P1`` artifact of the generated report."""
    from repro.machine import catalog
    from repro.miniapps import by_name
    from repro.runtime.placement import JobPlacement

    cluster = catalog.by_name(processor)
    miniapp = by_name(app)
    placement = JobPlacement(cluster, n_ranks, n_threads)
    _, profile = profile_job(miniapp.build_job(cluster, placement, dataset))
    return region_table(profile)
