"""Static structure checks over traced rank programs.

Each check consumes the :class:`~repro.analysis.trace.ProgramTrace` map
and emits :class:`~repro.analysis.diagnostics.Diagnostic` records:

* :func:`check_programs` — per-rank replay failures, op-budget
  truncation, values the executor would reject outright;
* :func:`check_domains` — rank/tag domain validity of every op (what the
  runtime raises ``CommunicatorError`` for, found before the run);
* :func:`check_requests` — request-handle hygiene (waits on
  non-requests, double waits, receives never waited);
* :func:`check_p2p_matching` — send/receive count matching per
  (destination, tag) channel, honoring ``ANY_SOURCE`` wildcards;
* :func:`check_collectives` — collective congruence: every member of a
  communicator must issue the same collective sequence (type and root).

Order-dependent problems (a cyclic rendezvous send, a wildcard receive
stealing another receive's message) are the symbolic scheduler's job —
see :mod:`repro.analysis.deadlock`.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.trace import ProgramTrace, TracedOp, TracedRequest
from repro.runtime import program as ops

Traces = dict[int, ProgramTrace]


def _valid_peer(peer: int, rank: int, n_ranks: int) -> bool:
    return 0 <= peer < n_ranks and peer != rank


# ----------------------------------------------------------------------
# program-level findings
# ----------------------------------------------------------------------
def check_programs(traces: Traces) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for trace in traces.values():
        if trace.failure is not None:
            out.append(trace.failure)
        if trace.truncated:
            out.append(Diagnostic(
                check="program-budget", severity="warning",
                rank=trace.rank, op_index=len(trace.ops),
                message=f"rank {trace.rank} exceeded the analyzer's op "
                        f"budget ({len(trace.ops)} ops traced); checks "
                        f"cover the traced prefix only",
                hint="raise max_ops, or check the program for an "
                     "unbounded loop",
            ))
        for rec in trace.ops:
            if not ops.is_known_op(rec.op):
                out.append(Diagnostic(
                    check="unknown-op", severity="error",
                    rank=rec.rank, op_index=rec.index, op=repr(rec.op),
                    message=f"rank {rec.rank} yielded a value the "
                            f"executor does not understand",
                    hint="yield only operations from "
                         "repro.runtime.program",
                ))
    return out


# ----------------------------------------------------------------------
# rank / tag / communicator domain validity
# ----------------------------------------------------------------------
def check_domains(traces: Traces, n_ranks: int,
                  communicators: dict[str, tuple[int, ...]]
                  ) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    def bad_peer(rec: TracedOp, role: str, peer: int) -> None:
        if peer == rec.rank:
            msg = f"rank {rec.rank} {role}s to itself"
            hint = ("guard the exchange for undecomposed axes "
                    "(skip when the neighbour is the rank itself)")
        else:
            msg = (f"rank {rec.rank} {role}s to invalid rank {peer} "
                   f"(job has ranks 0..{n_ranks - 1})")
            hint = "fix the neighbour computation or the rank-grid mapping"
        out.append(Diagnostic(
            check=f"p2p-invalid-{role}", severity="error",
            rank=rec.rank, op_index=rec.index, op=rec.describe(),
            message=msg, hint=hint,
        ))

    def check_tag(rec: TracedOp, tag: int) -> None:
        if tag > ops.MAX_PORTABLE_TAG:
            out.append(Diagnostic(
                check="p2p-tag-range", severity="warning",
                rank=rec.rank, op_index=rec.index, op=rec.describe(),
                message=f"tag {tag} exceeds the portable MPI tag upper "
                        f"bound ({ops.MAX_PORTABLE_TAG})",
                hint="derive tags from small per-phase constants",
            ))

    for trace in traces.values():
        for rec in trace.ops:
            op = rec.op
            if isinstance(op, (ops.Send, ops.Isend)):
                if not _valid_peer(op.dst, rec.rank, n_ranks):
                    bad_peer(rec, "send", op.dst)
                check_tag(rec, op.tag)
            elif isinstance(op, (ops.Recv, ops.Irecv)):
                if op.src != ops.ANY_SOURCE and \
                        not _valid_peer(op.src, rec.rank, n_ranks):
                    bad_peer(rec, "recv", op.src)
                check_tag(rec, op.tag)
            elif isinstance(op, ops.Sendrecv):
                if not _valid_peer(op.dst, rec.rank, n_ranks):
                    bad_peer(rec, "send", op.dst)
                if op.src != ops.ANY_SOURCE and \
                        not _valid_peer(op.src, rec.rank, n_ranks):
                    bad_peer(rec, "recv", op.src)
                check_tag(rec, op.send_tag)
                check_tag(rec, op.recv_tag)
            elif ops.is_collective(op):
                members = communicators.get(op.comm)
                if members is None:
                    out.append(Diagnostic(
                        check="collective-unknown-comm", severity="error",
                        rank=rec.rank, op_index=rec.index,
                        op=rec.describe(),
                        message=f"collective on unknown communicator "
                                f"{op.comm!r}",
                        hint=f"known communicators: "
                             f"{sorted(communicators)}",
                    ))
                    continue
                if rec.rank not in members:
                    out.append(Diagnostic(
                        check="collective-nonmember", severity="error",
                        rank=rec.rank, op_index=rec.index,
                        op=rec.describe(),
                        message=f"rank {rec.rank} issues a collective on "
                                f"{op.comm!r} but is not a member "
                                f"(members: {list(members)})",
                        hint="guard the collective by communicator "
                             "membership",
                    ))
                root = ops.collective_root(op)
                if root is not None and root not in members:
                    out.append(Diagnostic(
                        check="collective-bad-root", severity="error",
                        rank=rec.rank, op_index=rec.index,
                        op=rec.describe(),
                        message=f"root {root} is not a member of "
                                f"communicator {op.comm!r}",
                        hint=f"pick a root among {list(members)}",
                    ))
    return out


# ----------------------------------------------------------------------
# request-handle hygiene
# ----------------------------------------------------------------------
def check_requests(traces: Traces) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for trace in traces.values():
        waits: dict[int, int] = {}          # id(request) -> wait count
        for rec in trace.ops:
            if not isinstance(rec.op, ops.WaitAll):
                continue
            for item in rec.op.requests:
                if not isinstance(item, TracedRequest):
                    out.append(Diagnostic(
                        check="waitall-non-request", severity="error",
                        rank=rec.rank, op_index=rec.index,
                        op=rec.describe(),
                        message=f"WaitAll on a non-request value "
                                f"{item!r}",
                        hint="capture the handle: "
                             "`r = yield Irecv(...)`; blocking ops "
                             "(Send/Recv) yield no handle",
                    ))
                    continue
                if item.rank != rec.rank:
                    out.append(Diagnostic(
                        check="request-foreign", severity="error",
                        rank=rec.rank, op_index=rec.index,
                        op=rec.describe(),
                        message=f"WaitAll on a request owned by rank "
                                f"{item.rank}",
                        hint="requests are rank-local; wait where the "
                             "op was posted",
                    ))
                    continue
                waits[id(item)] = waits.get(id(item), 0) + 1
                if waits[id(item)] == 2:
                    out.append(Diagnostic(
                        check="request-double-wait", severity="warning",
                        rank=rec.rank, op_index=rec.index,
                        op=rec.describe(),
                        message=f"rank {rec.rank} waits twice on the "
                                f"{item.describe()}",
                        hint="drop the request from the second WaitAll",
                    ))
        # receives posted but never waited: the program uses data it has
        # no completion guarantee for (sends may legitimately be
        # fire-and-forget under eager/rendezvous completion).
        for rec in trace.ops:
            if rec.request is None or isinstance(rec.op, ops.Isend):
                continue
            if id(rec.request) not in waits:
                out.append(Diagnostic(
                    check="request-unwaited", severity="warning",
                    rank=rec.rank, op_index=rec.index, op=rec.describe(),
                    message=f"rank {rec.rank} never waits on the "
                            f"{rec.request.describe()}",
                    hint="add the request to a WaitAll before using the "
                         "received data",
                ))
    return out


# ----------------------------------------------------------------------
# point-to-point count matching per (destination, tag) channel
# ----------------------------------------------------------------------
def _p2p_endpoints(
        rec: TracedOp, n_ranks: int,
) -> tuple[list[tuple[Any, Any, int]], list[tuple[Any, Any, int]]]:
    """(sends, recvs) this op contributes, skipping invalid endpoints
    (those already carry a ``p2p-invalid-*`` error)."""
    sends, recvs = [], []
    op = rec.op
    if isinstance(op, (ops.Send, ops.Isend)):
        if _valid_peer(op.dst, rec.rank, n_ranks):
            sends.append((op.dst, op.tag, rec.rank))
    elif isinstance(op, (ops.Recv, ops.Irecv)):
        if op.src == ops.ANY_SOURCE or _valid_peer(op.src, rec.rank,
                                                   n_ranks):
            recvs.append((rec.rank, op.tag, op.src))
    elif isinstance(op, ops.Sendrecv):
        if _valid_peer(op.dst, rec.rank, n_ranks):
            sends.append((op.dst, op.send_tag, rec.rank))
        if op.src == ops.ANY_SOURCE or _valid_peer(op.src, rec.rank,
                                                   n_ranks):
            recvs.append((rec.rank, op.recv_tag, op.src))
    return sends, recvs


def check_p2p_matching(traces: Traces, n_ranks: int) -> list[Diagnostic]:
    """Count-match sends against receives per (dst, tag) channel.

    Specific-source receives are matched against their source's sends
    first; ``ANY_SOURCE`` receives then absorb leftover sends of the same
    (dst, tag).  Matching specific receives first is optimal (a wildcard
    can absorb anything a specific receive can), so leftovers are genuine
    count mismatches, independent of posting order.
    """
    # (dst, tag) -> {src -> [TracedOp]} / wildcard list
    sends: dict[tuple[int, int], dict[int, list[TracedOp]]] = {}
    specific: dict[tuple[int, int], dict[int, list[TracedOp]]] = {}
    wildcard: dict[tuple[int, int], list[TracedOp]] = {}
    for trace in traces.values():
        for rec in trace.ops:
            s, r = _p2p_endpoints(rec, n_ranks)
            for dst, tag, src in s:
                sends.setdefault((dst, tag), {}).setdefault(
                    src, []).append(rec)
            for dst, tag, src in r:
                if src == ops.ANY_SOURCE:
                    wildcard.setdefault((dst, tag), []).append(rec)
                else:
                    specific.setdefault((dst, tag), {}).setdefault(
                        src, []).append(rec)

    out: list[Diagnostic] = []
    channels = sorted(set(sends) | set(specific) | set(wildcard))
    for chan in channels:
        dst, tag = chan
        chan_sends = sends.get(chan, {})
        chan_specific = specific.get(chan, {})
        leftovers: list[TracedOp] = []      # unmatched sends, FIFO order
        for src in sorted(set(chan_sends) | set(chan_specific)):
            n_send = len(chan_sends.get(src, ()))
            n_recv = len(chan_specific.get(src, ()))
            matched = min(n_send, n_recv)
            leftovers.extend(chan_sends.get(src, ())[matched:])
            for rec in chan_specific.get(src, ())[matched:]:
                out.append(Diagnostic(
                    check="p2p-unmatched-recv", severity="error",
                    rank=rec.rank, op_index=rec.index, op=rec.describe(),
                    message=f"rank {rec.rank} receives from rank {src} "
                            f"tag {tag}, but rank {src} posts no "
                            f"matching send (channel has {n_send} "
                            f"send(s) for {n_recv} receive(s))",
                    hint=f"post a matching send on rank {src} or drop "
                         f"the receive",
                ))
        wild = wildcard.get(chan, [])
        absorbed = min(len(wild), len(leftovers))
        for rec in leftovers[absorbed:]:
            out.append(Diagnostic(
                check="p2p-unmatched-send", severity="error",
                rank=rec.rank, op_index=rec.index, op=rec.describe(),
                message=f"rank {rec.rank} sends to rank {dst} tag {tag}, "
                        f"but rank {dst} posts no matching receive",
                hint=f"post a matching Recv/Irecv on rank {dst} or drop "
                     f"the send",
            ))
        for rec in wild[absorbed:]:
            out.append(Diagnostic(
                check="p2p-unmatched-recv", severity="error",
                rank=rec.rank, op_index=rec.index, op=rec.describe(),
                message=f"rank {rec.rank} receives (ANY_SOURCE) tag "
                        f"{tag}, but no unconsumed send targets rank "
                        f"{dst} with that tag",
                hint="post a matching send or drop the wildcard receive",
            ))
    return out


# ----------------------------------------------------------------------
# collective congruence
# ----------------------------------------------------------------------
def check_collectives(traces: Traces,
                      communicators: dict[str, tuple[int, ...]]
                      ) -> list[Diagnostic]:
    """All members of a communicator must issue the same collective
    sequence: same length, same op types, same roots.

    Per-rank ``size_bytes`` may differ (the simulator models per-rank
    contributions and costs the maximum), so sizes are *not* checked.
    """
    out: list[Diagnostic] = []
    for name, members in sorted(communicators.items()):
        seqs: dict[int, list[TracedOp]] = {}
        for rank in members:
            trace = traces.get(rank)
            if trace is None:
                continue
            seqs[rank] = [rec for rec in trace.ops
                          if ops.is_collective(rec.op)
                          and rec.op.comm == name]
        if not seqs:
            continue
        reference_rank = min(seqs)
        reference = seqs[reference_rank]
        for rank in sorted(seqs):
            seq = seqs[rank]
            if rank == reference_rank:
                continue
            divergence = _first_divergence(reference, seq)
            if divergence is None:
                continue
            index, kind = divergence
            ref_rec = reference[index] if index < len(reference) else None
            rec = seq[index] if index < len(seq) else None
            if kind == "count":
                shorter, longer = (rank, reference_rank) \
                    if len(seq) < len(reference) else (reference_rank, rank)
                extra = (seqs[longer][min(len(seqs[shorter]),
                                          len(seqs[longer]) - 1)])
                out.append(Diagnostic(
                    check="collective-count", severity="error",
                    rank=shorter, op_index=None,
                    op=extra.describe(),
                    message=f"rank {shorter} issues "
                            f"{len(seqs[shorter])} collective(s) on "
                            f"{name!r} while rank {longer} issues "
                            f"{len(seqs[longer])}; the extra collective "
                            f"would hang waiting for rank {shorter}",
                    hint="make every member execute the same collective "
                         "sequence (check rank-dependent branches)",
                ))
            elif kind == "type":
                out.append(Diagnostic(
                    check="collective-divergence", severity="error",
                    rank=rank, op_index=rec.index, op=rec.describe(),
                    message=f"collective sequence diverges on {name!r} "
                            f"at position {index}: rank {rank} issues "
                            f"{type(rec.op).__name__} while rank "
                            f"{reference_rank} issues "
                            f"{type(ref_rec.op).__name__}",
                    hint="collectives are matched by call order; align "
                         "the sequences across ranks",
                ))
            else:  # root
                out.append(Diagnostic(
                    check="collective-root-divergence", severity="error",
                    rank=rank, op_index=rec.index, op=rec.describe(),
                    message=f"{type(rec.op).__name__} on {name!r} at "
                            f"position {index}: rank {rank} uses root "
                            f"{ops.collective_root(rec.op)} while rank "
                            f"{reference_rank} uses root "
                            f"{ops.collective_root(ref_rec.op)}",
                    hint="all members must pass the same root",
                ))
            break   # first diverging member per communicator is enough
    return out


def _first_divergence(reference: list[TracedOp],
                      seq: list[TracedOp]) -> tuple[int, str] | None:
    """(index, kind) of the first mismatch, or None when congruent."""
    for i, (a, b) in enumerate(zip(reference, seq)):
        if type(a.op) is not type(b.op):
            return i, "type"
        if ops.collective_root(a.op) != ops.collective_root(b.op):
            return i, "root"
    if len(reference) != len(seq):
        return min(len(reference), len(seq)), "count"
    return None
